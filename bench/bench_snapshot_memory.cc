// Snapshot-store memory sweep: fleet-wide store bytes and process RSS
// for the full / delta / tiered store encodings at 1k/10k/100k tenants.
//
//   bench_snapshot_memory [--tenants=N(max)] [--points-per-tenant=P]
//                         [--nmicro=Q] [--dims=D] [--budget-bytes=B]
//                         [--csv=PATH]
//
// The workload is the delta-friendly shape: many well-separated centers
// visited in temporal blocks, so consecutive snapshot windows touch only
// one or two of a tenant's micro-clusters and warm delta frames carry a
// small changed-set. Decay is 0 -- with decay > 0 every statistic is
// rescaled between snapshots, no cluster is bit-stable, and delta frames
// cannot shrink (docs/snapshots.md).
//
// Reported per (mode, tenants) cell: summed per-tenant store bytes,
// frame counts, bytes/frame, the ratio vs the full store at the same
// tenant count (the acceptance bar: >= 2x reduction at 10k tenants),
// and the RSS the fleet added while alive. A final section quantifies
// the tiered store's lossy cold tier: max relative centroid error of
// horizon queries against a bit-exact full-store twin, alongside the
// query's realized_ratio.

#include "bench/bench_common.h"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <cmath>
#include <memory>

#include "core/config.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "fleet/engine_fleet.h"

namespace {

using umicro::core::SnapshotStoreMode;

// Many centers, visited in blocks: higher pyramid orders hold frames
// whole blocks apart, and only the centers visited in between differ
// from the parent frame -- with few centers those gaps would touch
// every cluster and high-order deltas would not shrink.
constexpr std::size_t kBlock = 16;    // points per center visit
constexpr std::size_t kCenters = 24;  // visited round-robin, spaced 100

/// Blocked-center drift stream: block b of `kBlock` points sits near
/// center b % kCenters, so one snapshot window touches 1-2 clusters.
umicro::stream::Dataset BlockedStream(std::size_t points, std::size_t dims,
                                      std::uint64_t seed) {
  umicro::util::Rng rng(seed);
  umicro::stream::Dataset dataset(dims);
  for (std::size_t i = 0; i < points; ++i) {
    const double center =
        static_cast<double>((i / kBlock) % kCenters) * 100.0;
    std::vector<double> values(dims);
    std::vector<double> errors(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      values[d] = center + static_cast<double>(d) +
                  rng.Gaussian(0.0, 0.5);
      errors[d] = rng.Uniform(0.1, 0.3);
    }
    dataset.Add(umicro::stream::UncertainPoint(
        std::move(values), std::move(errors), static_cast<double>(i + 1)));
  }
  return dataset;
}

/// Resident set size in KiB from /proc/self/status (0 if unreadable).
std::size_t RssKb() {
#if defined(__GLIBC__)
  malloc_trim(0);  // return freed arenas so RSS tracks live state
#endif
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) != 0) continue;
    std::size_t kb = 0;
    std::sscanf(line.c_str(), "VmRSS: %zu kB", &kb);
    return kb;
  }
  return 0;
}

const char* ModeName(SnapshotStoreMode mode) {
  switch (mode) {
    case SnapshotStoreMode::kFull: return "full";
    case SnapshotStoreMode::kDelta: return "delta";
    case SnapshotStoreMode::kTiered: return "tiered";
  }
  return "?";
}

struct FleetCell {
  std::size_t store_bytes = 0;
  std::size_t frames = 0;
  std::size_t delta_frames = 0;
  std::size_t quantized_frames = 0;
  std::size_t rss_delta_kb = 0;
};

FleetCell RunFleet(SnapshotStoreMode mode, std::size_t tenants,
                   const umicro::stream::Dataset& per_tenant,
                   std::size_t nmicro, std::size_t budget_bytes) {
  const std::size_t rss_before = RssKb();
  FleetCell cell;
  {
    umicro::core::EngineConfig config;
    config.umicro.num_micro_clusters = nmicro;
    config.umicro.decay_lambda = 0.0;
    config.fleet.tenants = tenants;
    config.fleet.workers = 2;
    config.fleet.snapshot.snapshot_every = 16;
    config.fleet.snapshot.pyramid_alpha = 2;
    config.fleet.snapshot.pyramid_l = 2;
    config.fleet.snapshot.tiering = {};  // drop the fleet's delta default
    config.fleet.snapshot.tiering.mode = mode;
    if (mode == SnapshotStoreMode::kTiered) {
      config.fleet.snapshot.tiering.budget_bytes = budget_bytes;
    }
    umicro::fleet::EngineFleet fleet(per_tenant.dimensions(), config);

    // Tenant-major ingest: each tenant replays the same template stream
    // (its own clock), which keeps generation off the measured path and
    // makes every tenant's store byte-identical in expectation.
    for (std::size_t t = 0; t < tenants; ++t) {
      for (const auto& point : per_tenant.points()) {
        fleet.Ingest(t, point);
      }
    }
    fleet.Flush();

    const std::size_t rss_live = RssKb();
    cell.rss_delta_kb = rss_live > rss_before ? rss_live - rss_before : 0;
    for (std::uint64_t t = 0; t < tenants; ++t) {
      const umicro::core::SnapshotTierStats stats =
          fleet.EnsureTenant(t).core().store().TierStats();
      cell.store_bytes += stats.approx_bytes;
      cell.frames += stats.frames;
      cell.delta_frames += stats.delta_frames;
      cell.quantized_frames += stats.quantized_frames;
    }
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const umicro::util::FlagParser flags(argc, argv);
  const std::size_t max_tenants = flags.GetSize("tenants", 100000);
  const std::size_t points_per_tenant =
      flags.GetSize("points-per-tenant", 384);
  const std::size_t nmicro = flags.GetSize("nmicro", 32);
  const std::size_t dims = flags.GetSize("dims", 8);
  // Sized to demote only the oldest few frames: in-memory quantization
  // stores the frame's FULL cluster set in float32, so demoting a short
  // delta frame grows it -- the budget is a tail cap, not a target the
  // store can always reach (docs/snapshots.md).
  const std::size_t budget_bytes = flags.GetSize("budget-bytes", 49152);
  const std::string csv_path =
      flags.GetString("csv", "snapshot_memory.csv");

  umicro::util::CsvWriter csv(
      {"scope", "mode", "tenants", "points_per_tenant", "store_bytes",
       "frames", "bytes_per_frame", "vs_full_ratio", "rss_delta_kb",
       "horizon", "max_rel_error", "realized_ratio"});

  const umicro::stream::Dataset per_tenant =
      BlockedStream(points_per_tenant, dims, 42);

  std::printf("snapshot-store memory sweep: %zu pts/tenant x %zud, q=%zu, "
              "every=16, alpha=2 l=2, tiered budget %zu B/tenant\n\n",
              points_per_tenant, dims, nmicro, budget_bytes);
  std::printf("%8s %8s %14s %8s %12s %10s %12s\n", "tenants", "mode",
              "store-bytes", "frames", "bytes/frame", "vs-full",
              "rss-delta-kb");

  for (const std::size_t tenants : {1000u, 10000u, 100000u}) {
    if (tenants > max_tenants) continue;
    std::size_t full_bytes = 0;
    for (const SnapshotStoreMode mode :
         {SnapshotStoreMode::kFull, SnapshotStoreMode::kDelta,
          SnapshotStoreMode::kTiered}) {
      const FleetCell cell =
          RunFleet(mode, tenants, per_tenant, nmicro, budget_bytes);
      if (mode == SnapshotStoreMode::kFull) full_bytes = cell.store_bytes;
      const double bytes_per_frame =
          cell.frames > 0
              ? static_cast<double>(cell.store_bytes) / cell.frames
              : 0.0;
      const double vs_full =
          full_bytes > 0
              ? static_cast<double>(cell.store_bytes) / full_bytes
              : 1.0;
      std::printf("%8zu %8s %14zu %8zu %12.1f %10.3f %12zu\n", tenants,
                  ModeName(mode), cell.store_bytes, cell.frames,
                  bytes_per_frame, vs_full, cell.rss_delta_kb);
      csv.AddRow({"fleet", ModeName(mode), std::to_string(tenants),
                  std::to_string(points_per_tenant),
                  std::to_string(cell.store_bytes),
                  std::to_string(cell.frames),
                  std::to_string(bytes_per_frame),
                  std::to_string(vs_full),
                  std::to_string(cell.rss_delta_kb), "0", "0", "0"});
    }
    std::printf("\n");
  }

  // ---- Cold-tier accuracy: tiered (quantized) vs bit-exact twin ----
  // Two standalone engines over a longer blocked stream; the tiered one
  // runs under a budget small enough to quantize most warm frames, and
  // every horizon query is compared centroid-by-centroid.
  const umicro::stream::Dataset long_stream =
      BlockedStream(4000, dims, 77);
  umicro::core::EngineOptions full_opt;
  full_opt.umicro.num_micro_clusters = nmicro;
  full_opt.snapshot.snapshot_every = 16;
  full_opt.snapshot.pyramid_alpha = 2;
  full_opt.snapshot.pyramid_l = 2;
  umicro::core::EngineOptions tier_opt = full_opt;
  tier_opt.snapshot.tiering.mode = SnapshotStoreMode::kTiered;
  tier_opt.snapshot.tiering.budget_bytes = 8192;
  umicro::core::UMicroEngine exact(dims, full_opt);
  umicro::core::UMicroEngine tiered(dims, tier_opt);
  for (const auto& point : long_stream.points()) {
    exact.Process(point);
    tiered.Process(point);
  }

  std::printf("%10s %14s %14s\n", "horizon", "max-rel-error",
              "realized-ratio");
  umicro::core::MacroClusteringOptions mopt;
  mopt.k = kCenters;
  for (const double horizon : {100.0, 500.0, 2000.0}) {
    const auto want = exact.ClusterRecent(horizon, mopt);
    const auto got = tiered.ClusterRecent(horizon, mopt);
    if (!want.has_value() || !got.has_value()) continue;
    double max_rel = 0.0;
    const std::size_t k =
        std::min(want->macro.centroids.size(), got->macro.centroids.size());
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t d = 0; d < dims; ++d) {
        const double w = want->macro.centroids[c][d];
        const double g = got->macro.centroids[c][d];
        const double rel = std::fabs(g - w) / (std::fabs(w) + 1e-9);
        max_rel = std::max(max_rel, rel);
      }
    }
    std::printf("%10.0f %14.3e %14.3f\n", horizon, max_rel,
                got->realized_ratio);
    char rel[32];  // scientific: to_string's %f would flush ~1e-7 to 0
    std::snprintf(rel, sizeof(rel), "%.3e", max_rel);
    csv.AddRow({"horizon_error", "tiered", "1", "4000", "0", "0", "0",
                "0", "0", std::to_string(horizon), rel,
                std::to_string(got->realized_ratio)});
  }

  csv.WriteFile(csv_path);
  std::printf("\nwrote %s\n", csv_path.c_str());
  return 0;
}
