// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench binary reproduces one figure of the paper's evaluation
// section: it builds the figure's workload, runs UMicro and the CluStream
// baseline, prints the series the paper plots, and dumps a CSV next to
// the binary. Pass --points=N to rescale the stream length (the paper's
// full 600,000-point runs reproduce with --points=600000).

#ifndef UMICRO_BENCH_BENCH_COMMON_H_
#define UMICRO_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/clustream.h"
#include "core/umicro.h"
#include "eval/experiment.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "stream/dataset.h"
#include "stream/perturbation.h"
#include "stream/stream_stats.h"
#include "synth/drift_generator.h"
#include "synth/forest_generator.h"
#include "synth/intrusion_generator.h"
#include "synth/workloads.h"
#include "util/csv_writer.h"
#include "util/flags.h"

namespace umicro::bench {

/// Parses --points=N / --eta=X style flags; returns defaults otherwise.
struct BenchArgs {
  std::size_t points = 200000;
  double eta = 0.5;
  std::size_t num_micro_clusters = 100;
  /// When nonempty, the figure helpers dump the UMicro run's metrics
  /// registry to <stem>.json + <stem>.csv after the run.
  std::string metrics_out;

  static BenchArgs Parse(int argc, char** argv,
                         std::size_t default_points) {
    const util::FlagParser flags(argc, argv);
    BenchArgs args;
    args.points = flags.GetSize("points", default_points);
    args.eta = flags.GetDouble("eta", args.eta);
    args.num_micro_clusters =
        flags.GetSize("nmicro", args.num_micro_clusters);
    args.metrics_out = flags.GetString("metrics-out", "");
    return args;
  }
};

/// Hardware threads visible to this process (>= 1). Recorded into every
/// timing CSV so single-core artifacts (speedup < 1, scheduler
/// time-slicing) are attributable without knowing the original host.
inline std::size_t HostCores() {
  const unsigned cores = std::thread::hardware_concurrency();
  return cores > 0 ? cores : 1;
}

/// CPU model string from /proc/cpuinfo ("unknown" when unavailable).
inline std::string HostCpuModel() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    std::size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    return line.substr(start);
  }
  return "unknown";
}

/// Dumps `registry` to `<stem>.json` + `<stem>.csv`; no-op on empty stem.
inline void MaybeExportMetrics(const obs::MetricsRegistry& registry,
                               const std::string& stem) {
  if (stem.empty()) return;
  obs::MetricsExporter exporter(&registry, stem);
  if (exporter.ExportNow()) {
    std::printf("metrics written to %s.{json,csv}\n",
                exporter.base_path().c_str());
  } else {
    std::fprintf(stderr, "failed to write metrics to %s.{json,csv}\n",
                 exporter.base_path().c_str());
  }
}

/// Applies the paper's eta perturbation to a clean dataset in place.
inline void PerturbWithEta(stream::Dataset& dataset, double eta,
                           std::uint64_t seed) {
  synth::ApplyPaperNoise(dataset, eta, seed);
}

/// SynDrift(eta): the paper's 20-d drifting synthetic stream.
inline stream::Dataset MakeSynDrift(std::size_t points, double eta,
                                    std::uint64_t seed = 42) {
  return synth::MakeSynDriftWorkload(points, eta, seed);
}

/// Network(eta): the synthetic stand-in for the KDD'99 intrusion stream.
inline stream::Dataset MakeNetwork(std::size_t points, double eta,
                                   std::uint64_t seed = 1999) {
  return synth::MakeNetworkWorkload(points, eta, seed);
}

/// ForestCover(eta): the synthetic stand-in for UCI CoverType.
inline stream::Dataset MakeForest(std::size_t points, double eta,
                                  std::uint64_t seed = 54) {
  return synth::MakeForestWorkload(points, eta, seed);
}

/// Figures 2-4: purity vs stream progression, UMicro vs CluStream.
inline void RunPurityProgressionFigure(const std::string& figure,
                                       const std::string& dataset_name,
                                       const stream::Dataset& dataset,
                                       std::size_t num_micro_clusters,
                                       const std::string& csv_path,
                                       const std::string& metrics_out = "") {
  const std::size_t interval = std::max<std::size_t>(1, dataset.size() / 12);

  obs::MetricsRegistry registry;
  core::UMicroOptions uopt;
  uopt.num_micro_clusters = num_micro_clusters;
  core::UMicro umicro_algo(dataset.dimensions(), uopt);
  if (!metrics_out.empty()) umicro_algo.AttachMetrics(&registry);
  const eval::PuritySeries umicro_series =
      eval::RunPurityExperiment(umicro_algo, dataset, interval);

  baseline::CluStreamOptions copt;
  copt.num_micro_clusters = num_micro_clusters;
  baseline::CluStream clustream_algo(dataset.dimensions(), copt);
  const eval::PuritySeries clustream_series =
      eval::RunPurityExperiment(clustream_algo, dataset, interval);

  std::printf("%s: cluster purity vs stream progression (%s, %zu points, "
              "%zu micro-clusters)\n",
              figure.c_str(), dataset_name.c_str(), dataset.size(),
              num_micro_clusters);
  std::printf("%14s %12s %12s %8s\n", "points", "UMicro", "CluStream",
              "gap");
  util::CsvWriter csv({"points", "umicro_purity", "clustream_purity"});
  const std::size_t rows = std::min(umicro_series.samples.size(),
                                    clustream_series.samples.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& u = umicro_series.samples[i];
    const auto& c = clustream_series.samples[i];
    std::printf("%14zu %12.4f %12.4f %+8.4f\n", u.points_processed,
                u.purity, c.purity, u.purity - c.purity);
    csv.AddRow(std::vector<double>{static_cast<double>(u.points_processed),
                                   u.purity, c.purity});
  }
  std::printf("mean purity: UMicro %.4f  CluStream %.4f\n\n",
              umicro_series.MeanPurity(), clustream_series.MeanPurity());
  csv.WriteFile(csv_path);
  MaybeExportMetrics(registry, metrics_out);
}

/// Figures 5-7: purity vs error level eta, UMicro vs CluStream.
template <typename DatasetFactory>
void RunErrorLevelFigure(const std::string& figure,
                         const std::string& dataset_name,
                         DatasetFactory make_dataset, std::size_t points,
                         std::size_t num_micro_clusters,
                         const std::string& csv_path,
                         const std::string& metrics_out = "") {
  const std::vector<double> etas = {0.25, 0.5, 0.75, 1.0,
                                    1.25, 1.5, 1.75, 2.0};
  std::printf("%s: cluster purity vs error level (%s, %zu points per "
              "level, %zu micro-clusters)\n",
              figure.c_str(), dataset_name.c_str(), points,
              num_micro_clusters);
  std::printf("%8s %12s %12s %8s\n", "eta", "UMicro", "CluStream", "gap");
  util::CsvWriter csv({"eta", "umicro_purity", "clustream_purity"});
  const std::size_t interval = std::max<std::size_t>(1, points / 10);
  // One registry across all error levels: the exported dump aggregates
  // the whole sweep (per-eta UMicro runs write into the same cells).
  obs::MetricsRegistry registry;
  for (double eta : etas) {
    const stream::Dataset dataset = make_dataset(points, eta);

    core::UMicroOptions uopt;
    uopt.num_micro_clusters = num_micro_clusters;
    core::UMicro umicro_algo(dataset.dimensions(), uopt);
    if (!metrics_out.empty()) umicro_algo.AttachMetrics(&registry);
    const double umicro_purity =
        eval::RunPurityExperiment(umicro_algo, dataset, interval)
            .MeanPurity();

    baseline::CluStreamOptions copt;
    copt.num_micro_clusters = num_micro_clusters;
    baseline::CluStream clustream_algo(dataset.dimensions(), copt);
    const double clustream_purity =
        eval::RunPurityExperiment(clustream_algo, dataset, interval)
            .MeanPurity();

    std::printf("%8.2f %12.4f %12.4f %+8.4f\n", eta, umicro_purity,
                clustream_purity, umicro_purity - clustream_purity);
    csv.AddRow(std::vector<double>{eta, umicro_purity, clustream_purity});
  }
  std::printf("\n");
  csv.WriteFile(csv_path);
  MaybeExportMetrics(registry, metrics_out);
}

/// Figures 8-10: points/sec vs progression; CluStream is the paper's
/// "optimistic baseline" (smaller input, simpler computations).
inline void RunThroughputFigure(const std::string& figure,
                                const std::string& dataset_name,
                                const stream::Dataset& dataset,
                                std::size_t num_micro_clusters,
                                const std::string& csv_path,
                                const std::string& metrics_out = "") {
  const std::size_t interval = std::max<std::size_t>(1, dataset.size() / 10);

  obs::MetricsRegistry registry;
  core::UMicroOptions uopt;
  uopt.num_micro_clusters = num_micro_clusters;
  core::UMicro umicro_algo(dataset.dimensions(), uopt);
  if (!metrics_out.empty()) umicro_algo.AttachMetrics(&registry);
  const eval::ThroughputSeries umicro_series =
      eval::RunThroughputExperiment(umicro_algo, dataset, interval);

  baseline::CluStreamOptions copt;
  copt.num_micro_clusters = num_micro_clusters;
  baseline::CluStream clustream_algo(dataset.dimensions(), copt);
  const eval::ThroughputSeries clustream_series =
      eval::RunThroughputExperiment(clustream_algo, dataset, interval);

  std::printf("%s: processing rate vs stream progression (%s, %zu points, "
              "%zu micro-clusters)\n",
              figure.c_str(), dataset_name.c_str(), dataset.size(),
              num_micro_clusters);
  std::printf("%14s %14s %20s %8s\n", "points", "UMicro pts/s",
              "CluStream(opt) pts/s", "ratio");
  util::CsvWriter csv({"points", "umicro_pps", "clustream_pps"});
  const std::size_t rows = std::min(umicro_series.samples.size(),
                                    clustream_series.samples.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& u = umicro_series.samples[i];
    const auto& c = clustream_series.samples[i];
    const double ratio =
        c.points_per_second > 0.0 ? u.points_per_second / c.points_per_second
                                  : 0.0;
    std::printf("%14zu %14.0f %20.0f %8.2f\n", u.points_processed,
                u.points_per_second, c.points_per_second, ratio);
    csv.AddRow(std::vector<double>{static_cast<double>(u.points_processed),
                                   u.points_per_second,
                                   c.points_per_second});
  }
  std::printf(
      "overall: UMicro %.0f pts/s, CluStream %.0f pts/s (UMicro at %.0f%% "
      "of the optimistic baseline)\n\n",
      umicro_series.overall_points_per_second,
      clustream_series.overall_points_per_second,
      100.0 * umicro_series.overall_points_per_second /
          clustream_series.overall_points_per_second);
  csv.WriteFile(csv_path);
  MaybeExportMetrics(registry, metrics_out);
}

}  // namespace umicro::bench

#endif  // UMICRO_BENCH_BENCH_COMMON_H_
