// Parallel scaling sweep: sharded ingest throughput vs the sequential
// engine, with ECF-total conservation checks.
//
//   bench_parallel_scaling [--points=N] [--eta=X] [--nmicro=Q]
//                          [--merge-every=M] [--csv=PATH]
//
// For SynDrift and the intrusion (Network) generator, the sweep times the
// sequential UMicro and the sharded pipeline at 1/2/4/8 shards over the
// same stream, then verifies that the merged global ECF totals
// (n, CF1, EF2) are conserved: n must match the sequential run exactly
// (unit weights sum exactly in floating point), CF1/EF2 up to summation-
// order rounding, reported as max relative deviation per dimension.
// Runs use merge-only maintenance (effectively infinite eviction horizon)
// so the additive totals are conserved and comparable across engines.
//
// Note: speedup is bounded by the cores actually available; on a
// single-core host the sweep degenerates to measuring pipeline overhead.

#include "bench/bench_common.h"

#include <cmath>
#include <thread>

#include "parallel/sharded_umicro.h"
#include "util/stopwatch.h"

namespace {

using umicro::core::MicroCluster;

umicro::core::UMicroOptions MassConservingOptions(std::size_t nmicro) {
  umicro::core::UMicroOptions options;
  options.num_micro_clusters = nmicro;
  options.eviction_horizon = 1e18;  // merge-only: additive totals conserved
  return options;
}

struct EcfTotals {
  double n = 0.0;
  std::vector<double> cf1;
  std::vector<double> ef2;
};

EcfTotals TotalsOf(const std::vector<MicroCluster>& clusters,
                   std::size_t dimensions) {
  EcfTotals totals;
  totals.cf1.assign(dimensions, 0.0);
  totals.ef2.assign(dimensions, 0.0);
  for (const auto& cluster : clusters) {
    totals.n += cluster.ecf.weight();
    for (std::size_t j = 0; j < dimensions; ++j) {
      totals.cf1[j] += cluster.ecf.cf1()[j];
      totals.ef2[j] += cluster.ecf.ef2()[j];
    }
  }
  return totals;
}

// std::to_string renders sub-1e-6 deviations as "0.000000"; keep the
// recorded deviations meaningful with scientific notation.
std::string Scientific(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3e", value);
  return buffer;
}

double MaxRelativeDeviation(const std::vector<double>& a,
                            const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double scale = std::max({1.0, std::abs(a[j]), std::abs(b[j])});
    worst = std::max(worst, std::abs(a[j] - b[j]) / scale);
  }
  return worst;
}

void RunSweep(const std::string& workload,
              const umicro::stream::Dataset& dataset, std::size_t nmicro,
              std::size_t merge_every, umicro::util::CsvWriter& csv) {
  // Sequential reference.
  umicro::core::UMicro sequential(dataset.dimensions(),
                                  MassConservingOptions(nmicro));
  umicro::util::Stopwatch sequential_watch;
  for (const auto& point : dataset.points()) sequential.Process(point);
  const double sequential_seconds = sequential_watch.ElapsedSeconds();
  const double sequential_pps = dataset.size() / sequential_seconds;
  const EcfTotals sequential_totals =
      TotalsOf(sequential.clusters(), dataset.dimensions());

  std::printf("%s: %zu points x %zud, sequential %.0f pts/s "
              "(%zu hardware threads)\n",
              workload.c_str(), dataset.size(), dataset.dimensions(),
              sequential_pps,
              static_cast<std::size_t>(
                  std::thread::hardware_concurrency()));
  std::printf("%8s %12s %10s %10s %12s %12s %8s %9s\n", "shards", "pts/s",
              "speedup", "n-exact", "cf1-dev", "ef2-dev", "merges",
              "dropped");

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    umicro::parallel::ShardedUMicroOptions options;
    options.umicro = MassConservingOptions(nmicro);
    options.num_shards = shards;
    options.merge_every = merge_every;
    umicro::parallel::ShardedUMicro sharded(dataset.dimensions(), options);

    umicro::util::Stopwatch watch;
    for (const auto& point : dataset.points()) sharded.Process(point);
    sharded.Flush();
    const double seconds = watch.ElapsedSeconds();
    const double pps = dataset.size() / seconds;
    const double speedup = pps / sequential_pps;

    const EcfTotals totals =
        TotalsOf(sharded.GlobalClusters(), dataset.dimensions());
    const bool n_exact = totals.n == sequential_totals.n;
    const double cf1_dev =
        MaxRelativeDeviation(totals.cf1, sequential_totals.cf1);
    const double ef2_dev =
        MaxRelativeDeviation(totals.ef2, sequential_totals.ef2);
    const std::size_t merges = static_cast<std::size_t>(
        sharded.metrics().GetCounter("parallel.merges").value());
    const std::size_t dropped = static_cast<std::size_t>(
        sharded.metrics().GetCounter("parallel.points_dropped").value());

    std::printf("%8zu %12.0f %9.2fx %10s %12.2e %12.2e %8zu %9zu\n",
                shards, pps, speedup, n_exact ? "yes" : "NO", cf1_dev,
                ef2_dev, merges, dropped);
    csv.AddRow({workload, std::to_string(shards),
                std::to_string(dataset.size()),
                std::to_string(sequential_pps), std::to_string(pps),
                std::to_string(speedup), n_exact ? "1" : "0",
                Scientific(cf1_dev), Scientific(ef2_dev),
                std::to_string(merges), std::to_string(dropped),
                std::to_string(umicro::bench::HostCores()),
                umicro::bench::HostCpuModel()});
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const umicro::util::FlagParser flags(argc, argv);
  const std::size_t points = flags.GetSize("points", 200000);
  const double eta = flags.GetDouble("eta", 0.5);
  const std::size_t nmicro = flags.GetSize("nmicro", 100);
  const std::size_t merge_every = flags.GetSize("merge-every", 8192);
  const std::string csv_path =
      flags.GetString("csv", "parallel_scaling.csv");

  umicro::util::CsvWriter csv(
      {"workload", "shards", "points", "sequential_pps", "parallel_pps",
       "speedup", "n_exact", "cf1_max_rel_dev", "ef2_max_rel_dev",
       "merges", "dropped_points", "host_cores", "cpu_model"});

  const umicro::stream::Dataset syndrift = MakeSynDrift(points, eta);
  RunSweep("SynDrift", syndrift, nmicro, merge_every, csv);

  const umicro::stream::Dataset network = MakeNetwork(points, eta);
  RunSweep("Network", network, nmicro, merge_every, csv);

  csv.WriteFile(csv_path);
  std::printf("wrote %s\n", csv_path.c_str());
  return 0;
}
