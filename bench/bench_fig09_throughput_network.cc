// Figure 9: efficiency of stream clustering, Network Intrusion data set.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 200000);
  const umicro::stream::Dataset dataset =
      MakeNetwork(args.points, args.eta);
  RunThroughputFigure("Figure 9", "Network(0.5)", dataset,
                      args.num_micro_clusters, "fig09.csv", args.metrics_out);
  return 0;
}
