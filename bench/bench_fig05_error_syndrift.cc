// Figure 5: accuracy with increasing error level, SynDrift data set.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  RunErrorLevelFigure(
      "Figure 5", "SynDrift",
      [](std::size_t n, double eta) { return MakeSynDrift(n, eta); },
      args.points, args.num_micro_clusters, "fig05.csv", args.metrics_out);
  return 0;
}
