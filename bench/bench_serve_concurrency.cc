// Serve-concurrency bench: what does answering queries cost ingest?
//
//   bench_serve_concurrency [--points=N] [--queriers-max=Q]
//                           [--query-interval-ms=T] [--horizon=H]
//                           [--csv=PATH]
//
// One thread ingests a SynDrift stream through the sequential engine
// (replica attached, so every cadence snapshot is published); 0..Q
// paced query threads concurrently issue CLUSTER-style horizon queries
// through the broker at one query per --query-interval-ms each. For
// every querier count the bench reports ingest throughput, its loss
// relative to the query-free baseline, and the query latency
// distribution -- the acceptance row is loss < 5% at 4 queriers.
//
// The queriers are paced (default 20 qps each), modeling an interactive
// dashboard rather than a saturation load: on a single-core host an
// unpaced closed loop would time-slice the one core between ingest and
// queries and measure the scheduler, not the serving layer's contention
// (which is the claim under test: the replica swap adds no locking to
// the ingest path).

#include "bench/bench_common.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/query_broker.h"
#include "serve/replica.h"
#include "util/stopwatch.h"

namespace {

struct RunResult {
  double ingest_pps = 0.0;
  std::uint64_t queries = 0;
  double query_mean_micros = 0.0;
  double query_p99_micros = 0.0;
};

RunResult RunOnce(const umicro::stream::Dataset& dataset,
                  std::size_t queriers, double query_interval_ms,
                  double horizon) {
  umicro::core::EngineOptions options;
  options.umicro.num_micro_clusters = 100;
  options.umicro.decay_lambda = 0.001;
  options.snapshot.snapshot_every = 4096;
  umicro::core::UMicroEngine engine(dataset.dimensions(), options);
  umicro::serve::SnapshotReadReplica replica(options.snapshot,
                                             options.umicro.decay_lambda);
  engine.AttachSnapshotSink(&replica);

  umicro::serve::QueryBrokerOptions broker_options;
  broker_options.num_threads = queriers == 0 ? 1 : queriers;
  umicro::serve::QueryBroker broker(&replica, broker_options,
                                    &engine.metrics());

  std::atomic<bool> done{false};
  std::vector<std::thread> query_threads;
  std::vector<double> latencies_micros;
  std::mutex latencies_mu;
  for (std::size_t q = 0; q < queriers; ++q) {
    query_threads.emplace_back([&, q] {
      std::vector<double> local;
      while (!done.load(std::memory_order_relaxed)) {
        umicro::serve::QueryRequest request;
        request.kind = umicro::serve::QueryRequest::Kind::kClusterRecent;
        request.horizon = horizon;
        const auto start = std::chrono::steady_clock::now();
        broker.Submit(request).get();
        const auto end = std::chrono::steady_clock::now();
        local.push_back(
            std::chrono::duration<double, std::micro>(end - start).count());
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            query_interval_ms));
      }
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies_micros.insert(latencies_micros.end(), local.begin(),
                              local.end());
    });
  }

  umicro::util::Stopwatch stopwatch;
  constexpr std::size_t kBatch = 256;
  std::vector<umicro::stream::UncertainPoint> batch;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < dataset.size(); i += kBatch) {
    batch.clear();
    const std::size_t n = std::min(kBatch, dataset.size() - i);
    for (std::size_t j = 0; j < n; ++j) batch.push_back(dataset[i + j]);
    engine.ProcessBatch(batch);
  }
  const double seconds = stopwatch.ElapsedSeconds();
  done.store(true);
  for (auto& thread : query_threads) thread.join();
  engine.Flush();

  RunResult result;
  result.ingest_pps = static_cast<double>(dataset.size()) / seconds;
  result.queries = latencies_micros.size();
  if (!latencies_micros.empty()) {
    double sum = 0.0;
    for (const double v : latencies_micros) sum += v;
    result.query_mean_micros =
        sum / static_cast<double>(latencies_micros.size());
    std::sort(latencies_micros.begin(), latencies_micros.end());
    result.query_p99_micros =
        latencies_micros[latencies_micros.size() * 99 / 100];
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const umicro::util::FlagParser flags(argc, argv);
  const std::size_t points = flags.GetSize("points", 400000);
  const std::size_t queriers_max = flags.GetSize("queriers-max", 4);
  const double query_interval_ms =
      flags.GetDouble("query-interval-ms", 50.0);
  const double horizon = flags.GetDouble("horizon", 50000.0);
  const std::string csv_path =
      flags.GetString("csv", "serve_concurrency.csv");

  std::printf("serve-concurrency bench: %zu points, 0..%zu paced queriers "
              "(1 query / %.0f ms each), horizon %.0f\n",
              points, queriers_max, query_interval_ms, horizon);
  const umicro::stream::Dataset dataset =
      umicro::bench::MakeSynDrift(points, 0.5);

  umicro::util::CsvWriter csv({"queriers", "ingest_pps", "loss_pct",
                               "queries", "qps", "query_mean_micros",
                               "query_p99_micros", "host_cores",
                               "cpu_model"});
  // Discarded warmup: the first run pays allocator/page-cache warmup
  // that would otherwise be billed to the query-free baseline.
  (void)RunOnce(dataset, 0, query_interval_ms, horizon);
  const std::size_t repeats = flags.GetSize("repeats", 3);
  double baseline_pps = 0.0;
  for (std::size_t queriers = 0; queriers <= queriers_max; ++queriers) {
    // Median-of-repeats on ingest throughput: scheduler noise on a
    // shared (possibly single-core) host swamps the few-percent effect
    // under test in any single run.
    std::vector<RunResult> runs;
    for (std::size_t r = 0; r < repeats; ++r) {
      runs.push_back(RunOnce(dataset, queriers, query_interval_ms, horizon));
    }
    std::sort(runs.begin(), runs.end(),
              [](const RunResult& a, const RunResult& b) {
                return a.ingest_pps < b.ingest_pps;
              });
    const RunResult run = runs[runs.size() / 2];
    if (queriers == 0) baseline_pps = run.ingest_pps;
    const double loss_pct =
        baseline_pps > 0.0
            ? 100.0 * (1.0 - run.ingest_pps / baseline_pps)
            : 0.0;
    const double qps =
        run.ingest_pps > 0.0
            ? static_cast<double>(run.queries) /
                  (static_cast<double>(points) / run.ingest_pps)
            : 0.0;
    std::printf("%zu queriers: ingest %.0f pts/s (loss %.2f%%), "
                "%llu queries (%.1f qps), mean %.0f us, p99 %.0f us\n",
                queriers, run.ingest_pps, loss_pct,
                static_cast<unsigned long long>(run.queries), qps,
                run.query_mean_micros, run.query_p99_micros);
    const auto cell = [](double value) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.6g", value);
      return std::string(buffer);
    };
    csv.AddRow({cell(static_cast<double>(queriers)), cell(run.ingest_pps),
                cell(loss_pct), cell(static_cast<double>(run.queries)),
                cell(qps), cell(run.query_mean_micros),
                cell(run.query_p99_micros),
                std::to_string(umicro::bench::HostCores()),
                umicro::bench::HostCpuModel()});
  }
  if (csv.WriteFile(csv_path)) {
    std::printf("results written to %s\n", csv_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  return 0;
}
