// Ablation A8: incomplete data -- imputation with known error vs
// zero-information fills.
//
// Sweep the per-entry missing rate on a sensor-field stream; compare
// (a) online mean imputation whose error feeds UMicro's error vectors,
// (b) the same imputation but with the error information discarded
//     (deterministic CluStream on the filled values), and
// (c) naive zero-filling without error information.
// This isolates how much of the value of the paper's framework comes
// from *knowing* the per-entry uncertainty rather than from the fill
// values themselves.

#include <cmath>

#include "bench/bench_common.h"
#include "eval/purity.h"
#include "stream/imputation.h"
#include "synth/sensor_field.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 40000);

  std::printf("Ablation A8: missing data (sensor field, %zu readings, "
              "%zu micro-clusters)\n",
              args.points, args.num_micro_clusters);
  std::printf("%10s %22s %22s %16s\n", "missing", "impute+error (UMicro)",
              "impute, no error (CS)", "zero-fill (CS)");
  umicro::util::CsvWriter csv({"missing_fraction", "impute_error_umicro",
                               "impute_noerror_clustream",
                               "zerofill_clustream"});

  for (double missing : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    umicro::synth::SensorFieldOptions field;
    field.dropout_probability = missing;
    // Overlapped zones: without overlap every pipeline saturates at
    // purity ~1 and the comparison is uninformative.
    field.process_noise = 4.0;
    field.max_noise_floor = 2.0;
    umicro::synth::SensorFieldGenerator generator(field);
    const umicro::stream::Dataset raw = generator.Generate(args.points);

    umicro::stream::OnlineMeanImputer imputer_a(field.channels);
    umicro::core::UMicroOptions uopt;
    uopt.num_micro_clusters = args.num_micro_clusters;
    // Imputation errors are as large as the dimension's own stddev --
    // the heterogeneous-large-error regime where the literal Lemma 2.2
    // absorb test over-inflates; the bias-corrected comparison form is
    // the recommended configuration here (see DESIGN.md 4b.1).
    uopt.distance_form = umicro::core::DistanceForm::kComparable;
    umicro::core::UMicro with_error(field.channels, uopt);

    umicro::stream::OnlineMeanImputer imputer_b(field.channels);
    umicro::baseline::CluStreamOptions copt;
    copt.num_micro_clusters = args.num_micro_clusters;
    umicro::baseline::CluStream no_error(field.channels, copt);
    umicro::baseline::CluStream zero_fill(field.channels, copt);

    for (const auto& reading : raw.points()) {
      with_error.Process(imputer_a.Impute(reading));

      umicro::stream::UncertainPoint imputed = imputer_b.Impute(reading);
      imputed.errors.clear();  // discard the uncertainty information
      no_error.Process(imputed);

      umicro::stream::UncertainPoint zeroed = reading;
      zeroed.errors.clear();
      for (double& v : zeroed.values) {
        if (std::isnan(v)) v = 0.0;
      }
      zero_fill.Process(zeroed);
    }

    const double a =
        umicro::eval::ClusterPurity(with_error.ClusterLabelHistograms());
    const double b =
        umicro::eval::ClusterPurity(no_error.ClusterLabelHistograms());
    const double c =
        umicro::eval::ClusterPurity(zero_fill.ClusterLabelHistograms());
    std::printf("%10.2f %22.4f %22.4f %16.4f\n", missing, a, b, c);
    csv.AddRow(std::vector<double>{missing, a, b, c});
  }
  csv.WriteFile("abl_missing.csv");
  return 0;
}
