// Ablation A9: one-pass micro-clustering vs windowed re-clustering.
//
// The paper dismisses static uncertain clustering because it "cannot be
// easily extended to the case of data streams". This bench quantifies
// the trade-off directly: UMicro against UK-means retrofitted with a
// sliding window, on both quality (purity over the stream) and cost
// (points per second).

#include "baseline/windowed_uk_means.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  const umicro::stream::Dataset dataset =
      MakeSynDrift(args.points, args.eta);
  const std::size_t interval = std::max<std::size_t>(1, args.points / 10);

  std::printf("Ablation A9: one-pass vs windowed re-clustering "
              "(SynDrift(%.2f), %zu points)\n",
              args.eta, args.points);
  std::printf("%-22s %12s %14s\n", "algorithm", "mean purity", "pts/sec");
  umicro::util::CsvWriter csv({"algorithm_id", "mean_purity",
                               "points_per_second"});

  // UMicro, 100 micro-clusters.
  {
    umicro::core::UMicroOptions options;
    options.num_micro_clusters = args.num_micro_clusters;
    umicro::core::UMicro purity_algo(dataset.dimensions(), options);
    const double purity =
        umicro::eval::RunPurityExperiment(purity_algo, dataset, interval)
            .MeanPurity();
    umicro::core::UMicro speed_algo(dataset.dimensions(), options);
    const double pps = umicro::eval::RunThroughputExperiment(
                           speed_algo, dataset, interval)
                           .overall_points_per_second;
    std::printf("%-22s %12.4f %14.0f\n", "UMicro", purity, pps);
    csv.AddRow(std::vector<double>{0.0, purity, pps});
  }

  // Windowed UK-means at two window/recluster settings.
  int id = 1;
  for (const auto& [window, every] :
       std::vector<std::pair<std::size_t, std::size_t>>{{5000, 1000},
                                                        {10000, 2500}}) {
    umicro::baseline::WindowedUkMeansOptions options;
    options.uk_means.k = 20;
    options.window_size = window;
    options.recluster_every = every;
    umicro::baseline::WindowedUkMeans purity_algo(dataset.dimensions(),
                                                  options);
    const double purity =
        umicro::eval::RunPurityExperiment(purity_algo, dataset, interval)
            .MeanPurity();
    umicro::baseline::WindowedUkMeans speed_algo(dataset.dimensions(),
                                                 options);
    const double pps = umicro::eval::RunThroughputExperiment(
                           speed_algo, dataset, interval)
                           .overall_points_per_second;
    char name[64];
    std::snprintf(name, sizeof(name), "UKmeans w=%zu/%zu", window, every);
    std::printf("%-22s %12.4f %14.0f\n", name, purity, pps);
    csv.AddRow(std::vector<double>{static_cast<double>(id++), purity, pps});
  }
  csv.WriteFile("abl_window.csv");
  return 0;
}
