// Distributed merge-tree throughput: leaf count vs merged ingest rate
// over real loopback sockets.
//
//   bench_dist_throughput [--points=N] [--delta-every=M]
//                         [--leaves-max=L] [--nmicro=Q] [--csv=PATH]
//
// For 1..L leaves, the stream is round-robin partitioned; each leaf
// thread runs a sequential engine over its substream and ships
// "ucheckpoint 2" deltas every --delta-every points through a
// dist::LeafShipper to one in-process Aggregator (TCP on 127.0.0.1,
// exactly the multi-process wire path). Reported per leaf count:
// end-to-end merged ingest rate (all points acked and merged), bytes
// shipped per point, aggregator merge count/latency, and whether the
// final merged view is bit-identical to the in-process sharded
// reference -- the exactness claim under load, not just in the e2e test.
//
// Note: leaves are threads here, so on a single-core host the sweep
// measures protocol + merge overhead, not scale-out; host_cores /
// cpu_model columns make that explicit in the CSV.

#include "bench/bench_common.h"

#include <thread>

#include "dist/aggregator.h"
#include "dist/leaf.h"
#include "io/state_io.h"
#include "parallel/sharded_umicro.h"
#include "util/stopwatch.h"

namespace {

using umicro::stream::Dataset;

umicro::core::EngineOptions LeafOptions(std::size_t nmicro) {
  umicro::core::EngineOptions options;
  options.umicro.num_micro_clusters = nmicro;
  options.snapshot.snapshot_every = 0;  // snapshot cost is not under test
  return options;
}

struct SweepResult {
  double merged_pps = 0.0;
  double bytes_per_point = 0.0;
  std::uint64_t merges = 0;
  double merge_mean_micros = 0.0;
  bool bit_identical = false;
};

SweepResult RunTopology(const Dataset& dataset, std::size_t leaves,
                        std::size_t delta_every, std::size_t nmicro,
                        const std::string& reference) {
  using umicro::dist::Aggregator;
  using umicro::dist::AggregatorOptions;
  using umicro::dist::LeafShipper;
  using umicro::dist::LeafShipperOptions;

  umicro::obs::MetricsRegistry metrics;
  AggregatorOptions agg_options;
  agg_options.dimensions = dataset.dimensions();
  agg_options.dimension_threshold =
      LeafOptions(nmicro).umicro.dimension_threshold;
  agg_options.global_budget = nmicro;
  Aggregator aggregator(agg_options, &metrics);
  if (!aggregator.Start()) return {};

  umicro::util::Stopwatch watch;
  std::vector<std::thread> workers;
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    workers.emplace_back([&, leaf] {
      umicro::core::UMicroEngine engine(dataset.dimensions(),
                                        LeafOptions(nmicro));
      LeafShipperOptions options;
      options.leaf_id = leaf;
      options.dimensions = dataset.dimensions();
      LeafShipper shipper({"127.0.0.1", aggregator.port()}, options,
                          &metrics);
      std::uint64_t done = 0;
      for (std::size_t i = leaf; i < dataset.size(); i += leaves) {
        engine.Process(dataset.points()[i]);
        ++done;
        if (done % delta_every == 0) {
          shipper.ShipState(
              done, done,
              umicro::io::EngineStateToString(engine.ExportEngineState()));
        }
      }
      engine.Flush();
      shipper.ShipState(
          done, done,
          umicro::io::EngineStateToString(engine.ExportEngineState()));
      shipper.Finish();
    });
  }
  for (auto& worker : workers) worker.join();
  aggregator.WaitForPoints(dataset.size(), 60000);
  const double seconds = watch.ElapsedSeconds();

  SweepResult result;
  result.merged_pps = dataset.size() / seconds;
  result.bytes_per_point =
      static_cast<double>(metrics.GetCounter("dist.leaf.bytes").value()) /
      static_cast<double>(dataset.size());
  result.merges = metrics.GetCounter("dist.agg.merges").value();
  const auto& merge_micros = metrics.GetHistogram("dist.agg.merge_micros");
  result.merge_mean_micros =
      merge_micros.count() > 0
          ? merge_micros.sum() / static_cast<double>(merge_micros.count())
          : 0.0;
  result.bit_identical =
      umicro::io::MicroClustersToString(aggregator.MergedClusters(),
                                        dataset.dimensions()) == reference;
  aggregator.Stop();
  return result;
}

/// The single-process reference for `leaves` shards (bit-identity
/// check): the sharded engine over the same round-robin partitioning.
std::string ShardedReference(const Dataset& dataset, std::size_t shards,
                             std::size_t nmicro) {
  umicro::parallel::ShardedUMicroOptions options;
  options.umicro = LeafOptions(nmicro).umicro;
  options.num_shards = shards;
  options.producer_batch = 1;
  options.merge_every = 0;
  umicro::parallel::ShardedUMicro sharded(dataset.dimensions(), options);
  for (const auto& point : dataset.points()) sharded.Process(point);
  sharded.Flush();
  return umicro::io::MicroClustersToString(sharded.GlobalClusters(),
                                           dataset.dimensions());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const umicro::util::FlagParser flags(argc, argv);
  const std::size_t points = flags.GetSize("points", 50000);
  const std::size_t delta_every = flags.GetSize("delta-every", 4096);
  const std::size_t leaves_max = flags.GetSize("leaves-max", 4);
  const std::size_t nmicro = flags.GetSize("nmicro", 100);
  const std::string csv_path = flags.GetString("csv", "dist_throughput.csv");

  const Dataset dataset = MakeSynDrift(points, 0.5);
  std::printf("dist-throughput bench: %zu points x %zud, delta every %zu "
              "points, 1..%zu leaves over 127.0.0.1 (%zu hardware "
              "threads)\n",
              dataset.size(), dataset.dimensions(), delta_every,
              leaves_max, HostCores());
  std::printf("%8s %12s %12s %8s %14s %10s\n", "leaves", "merged_pps",
              "bytes/pt", "merges", "merge_mean_us", "identical");

  umicro::util::CsvWriter csv({"leaves", "points", "delta_every",
                               "merged_pps", "bytes_per_point", "merges",
                               "merge_mean_micros", "bit_identical",
                               "host_cores", "cpu_model"});
  for (std::size_t leaves = 1; leaves <= leaves_max; ++leaves) {
    const std::string reference =
        ShardedReference(dataset, leaves, nmicro);
    const SweepResult result =
        RunTopology(dataset, leaves, delta_every, nmicro, reference);
    std::printf("%8zu %12.0f %12.1f %8llu %14.1f %10s\n", leaves,
                result.merged_pps, result.bytes_per_point,
                static_cast<unsigned long long>(result.merges),
                result.merge_mean_micros,
                result.bit_identical ? "yes" : "NO");
    char pps[64], bpp[64], mean[64];
    std::snprintf(pps, sizeof(pps), "%.6g", result.merged_pps);
    std::snprintf(bpp, sizeof(bpp), "%.6g", result.bytes_per_point);
    std::snprintf(mean, sizeof(mean), "%.6g", result.merge_mean_micros);
    csv.AddRow({std::to_string(leaves), std::to_string(dataset.size()),
                std::to_string(delta_every), pps, bpp,
                std::to_string(result.merges), mean,
                result.bit_identical ? "1" : "0",
                std::to_string(HostCores()), HostCpuModel()});
  }
  if (!csv.WriteFile(csv_path)) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("results written to %s\n", csv_path.c_str());
  return 0;
}
