// Fleet scaling sweep: ingest throughput vs tenant count at a fixed
// point budget.
//
//   bench_fleet_scaling [--points=N] [--eta=X] [--nmicro=Q]
//                       [--workers=W] [--csv=PATH]
//
// For SynDrift and the intrusion (Network) generator, the sweep routes
// the same stream round-robin across 1/10/100/1000 tenants of an
// EngineFleet and records throughput, the ingest skew across the shared
// workers (max/mean worker load; 1.0 = perfectly even), and the p99 of
// the per-tenant batch drain latency. The expected shape (docs/fleet.md):
// throughput roughly flat in the tenant count -- the work is the same
// number of points through the same batched kernels, only per-tenant
// state grows -- with skew tightening toward 1.0 as tenants per worker
// grow.
//
// Note: on a single-core host the worker pool time-slices one core, so
// absolute throughput measures pipeline overhead, not parallel speedup.

#include "bench/bench_common.h"

#include "core/config.h"
#include "fleet/engine_fleet.h"
#include "util/stopwatch.h"

namespace {

void RunSweep(const std::string& workload,
              const umicro::stream::Dataset& dataset, std::size_t nmicro,
              std::size_t workers, umicro::util::CsvWriter& csv) {
  std::printf("%s: %zu points x %zud, %zu fleet workers "
              "(%zu hardware threads)\n",
              workload.c_str(), dataset.size(), dataset.dimensions(),
              workers, umicro::bench::HostCores());
  std::printf("%8s %12s %10s %16s\n", "tenants", "pts/s", "skew",
              "batch-p99(us)");

  for (const std::size_t tenants : {1u, 10u, 100u, 1000u}) {
    umicro::core::EngineConfig config;
    config.umicro.num_micro_clusters = nmicro;
    config.fleet.tenants = tenants;
    config.fleet.workers = workers;
    umicro::fleet::EngineFleet fleet(dataset.dimensions(), config);

    umicro::util::Stopwatch watch;
    std::uint64_t row = 0;
    for (const auto& point : dataset.points()) {
      fleet.Ingest(row % tenants, point);
      ++row;
    }
    fleet.Flush();
    const double seconds = watch.ElapsedSeconds();
    const double pps = dataset.size() / seconds;

    const umicro::fleet::FleetStats stats = fleet.Stats();
    const double batch_p99 =
        fleet.metrics()
            .GetHistogram("fleet.tenant_batch_micros")
            .Summarize()
            .p99;

    std::printf("%8zu %12.0f %10.3f %16.1f\n", tenants, pps,
                stats.ingest_skew, batch_p99);
    csv.AddRow({workload, std::to_string(tenants),
                std::to_string(workers), std::to_string(dataset.size()),
                std::to_string(pps), std::to_string(stats.ingest_skew),
                std::to_string(batch_p99),
                std::to_string(umicro::bench::HostCores()),
                umicro::bench::HostCpuModel()});
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const umicro::util::FlagParser flags(argc, argv);
  const std::size_t points = flags.GetSize("points", 200000);
  const double eta = flags.GetDouble("eta", 0.5);
  const std::size_t nmicro = flags.GetSize("nmicro", 25);
  const std::size_t workers = flags.GetSize("workers", 4);
  const std::string csv_path = flags.GetString("csv", "fleet_scaling.csv");

  umicro::util::CsvWriter csv(
      {"workload", "tenants", "workers", "points", "points_per_second",
       "ingest_skew", "batch_p99_micros", "host_cores", "cpu_model"});

  const umicro::stream::Dataset syndrift = MakeSynDrift(points, eta);
  RunSweep("SynDrift", syndrift, nmicro, workers, csv);

  const umicro::stream::Dataset network = MakeNetwork(points, eta);
  RunSweep("Network", network, nmicro, workers, csv);

  csv.WriteFile(csv_path);
  std::printf("wrote %s\n", csv_path.c_str());
  return 0;
}
