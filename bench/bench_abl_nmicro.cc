// Ablation A3: number of micro-clusters.
//
// The paper runs all experiments with 100 micro-clusters; this bench
// sweeps the budget and reports purity and throughput, exposing the
// quality/cost trade-off of the micro-cluster granularity.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  const umicro::stream::Dataset dataset =
      MakeSynDrift(args.points, args.eta);
  const std::size_t interval = std::max<std::size_t>(1, args.points / 10);

  std::printf("Ablation A3: micro-cluster budget (SynDrift(%.2f), %zu "
              "points)\n",
              args.eta, args.points);
  std::printf("%8s %12s %14s\n", "n_micro", "purity", "pts/sec");
  umicro::util::CsvWriter csv({"n_micro", "purity", "points_per_second"});
  for (std::size_t n_micro : {25u, 50u, 100u, 200u}) {
    umicro::core::UMicroOptions options;
    options.num_micro_clusters = n_micro;
    umicro::core::UMicro purity_algo(dataset.dimensions(), options);
    const double purity =
        umicro::eval::RunPurityExperiment(purity_algo, dataset, interval)
            .MeanPurity();

    umicro::core::UMicro throughput_algo(dataset.dimensions(), options);
    const double pps =
        umicro::eval::RunThroughputExperiment(throughput_algo, dataset,
                                              interval)
            .overall_points_per_second;

    std::printf("%8zu %12.4f %14.0f\n", n_micro, purity, pps);
    csv.AddRow(std::vector<double>{static_cast<double>(n_micro), purity,
                                   pps});
  }
  csv.WriteFile("abl_nmicro.csv");
  return 0;
}
