// Graceful-degradation benchmark: what does load shedding cost in
// clustering quality, and what does it buy in ingest latency?
//
//   bench_degradation [--points=N] [--eta=X] [--nmicro=Q] [--csv=PATH]
//
// Three runs over the same SynDrift stream through the sharded pipeline:
//
//   healthy      -- no overload, shedding off (the quality ceiling)
//   overloaded   -- workers stalled via the "parallel.worker.stall"
//                   failpoint, shedding off: kBlock backpressure keeps
//                   every point but ingest time balloons
//   degraded     -- same stall, adaptive shedding on: the controller
//                   drops whole batches while pressured and the stream
//                   keeps moving
//
// The CSV reports, per run, the ingest wall time, points shed, and the
// final cluster purity of the merged global view -- the degraded run
// should recover most of the healthy run's purity at a fraction of the
// overloaded run's wall time.

#include "bench/bench_common.h"

#include <string>

#include "eval/purity.h"
#include "parallel/sharded_umicro.h"
#include "util/failpoints.h"
#include "util/stopwatch.h"

namespace {

struct RunResult {
  std::string config;
  double elapsed_ms = 0.0;
  std::uint64_t shed_points = 0;
  std::uint64_t processed = 0;
  double purity = 0.0;
  double weighted_purity = 0.0;
};

RunResult RunOnce(const std::string& config,
                  const umicro::stream::Dataset& dataset,
                  std::size_t nmicro, bool stalled, bool degrade) {
  umicro::parallel::ShardedUMicroOptions options;
  options.umicro.num_micro_clusters = nmicro;
  options.num_shards = 2;
  options.queue_capacity = 4;
  options.producer_batch = 64;
  options.merge_every = 8192;
  options.degrade.enabled = degrade;
  options.degrade.occupancy_trigger = 0.5;
  options.degrade.trigger_after = 4;
  options.degrade.recover_after = 16;
  // Probabilistic shedding: while pressured, drop roughly half the
  // batches rather than all of them, so the survivors stay a uniform
  // sample of the stream and the global view keeps tracking it.
  options.degrade.shed_probability = 0.5;
  umicro::parallel::ShardedUMicro sharded(dataset.dimensions(), options);

  if (stalled) {
    umicro::util::FailpointRegistry::Instance().Arm(
        "parallel.worker.stall", {.stall_millis = 1});
  }
  umicro::util::Stopwatch stopwatch;
  for (const auto& point : dataset.points()) sharded.Process(point);
  sharded.Flush();
  const double elapsed_ms = stopwatch.ElapsedMillis();
  umicro::util::FailpointRegistry::Instance().DisarmAll();

  RunResult result;
  result.config = config;
  result.elapsed_ms = elapsed_ms;
  result.shed_points =
      sharded.metrics().GetCounter("parallel.degrade.points_shed").value();
  result.processed = sharded.points_processed() - result.shed_points;
  const auto histograms = sharded.ClusterLabelHistograms();
  result.purity = umicro::eval::ClusterPurity(histograms);
  result.weighted_purity = umicro::eval::WeightedClusterPurity(histograms);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = umicro::bench::BenchArgs::Parse(argc, argv, 40000);
  const umicro::util::FlagParser flags(argc, argv);
  const std::string csv_path = flags.GetString("csv", "degradation.csv");

  umicro::stream::Dataset dataset =
      umicro::bench::MakeSynDrift(args.points, args.eta);

  std::printf("degradation sweep: SynDrift, %zu points, eta=%.2f, "
              "%zu micro-clusters, 2 shards\n",
              dataset.size(), args.eta, args.num_micro_clusters);

  const RunResult runs[] = {
      RunOnce("healthy", dataset, args.num_micro_clusters,
              /*stalled=*/false, /*degrade=*/false),
      RunOnce("overloaded", dataset, args.num_micro_clusters,
              /*stalled=*/true, /*degrade=*/false),
      RunOnce("degraded", dataset, args.num_micro_clusters,
              /*stalled=*/true, /*degrade=*/true),
  };

  umicro::util::CsvWriter csv({"config", "points", "processed",
                               "shed_points", "elapsed_ms",
                               "throughput_pts_per_s", "purity",
                               "weighted_purity"});
  for (const RunResult& run : runs) {
    const double throughput =
        run.elapsed_ms > 0.0
            ? static_cast<double>(dataset.size()) / (run.elapsed_ms / 1e3)
            : 0.0;
    std::printf("  %-10s  %8.1f ms  shed %7llu  purity %.4f "
                "(weighted %.4f)\n",
                run.config.c_str(), run.elapsed_ms,
                static_cast<unsigned long long>(run.shed_points),
                run.purity, run.weighted_purity);
    csv.AddRow(std::vector<std::string>{
        run.config, std::to_string(dataset.size()),
        std::to_string(run.processed), std::to_string(run.shed_points),
        std::to_string(run.elapsed_ms), std::to_string(throughput),
        std::to_string(run.purity), std::to_string(run.weighted_purity)});
  }
  if (!csv.WriteFile(csv_path)) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", csv_path.c_str());
  return 0;
}
