// Ablation A4: exponential time decay on an abruptly evolving stream.
//
// Section II-E motivates decay for "evolving data streams in which the
// underlying patterns may change over time". This bench runs the decayed
// variant against the undecayed one on a regime-shift stream and reports
// purity per stream segment: decay should recover faster after shifts.

#include "bench/bench_common.h"
#include "synth/regime_generator.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 80000);

  umicro::synth::RegimeOptions regime;
  regime.regime_length = args.points / 4;  // 4 regimes over the run
  regime.seed = 77;
  umicro::synth::RegimeShiftGenerator generator(regime);
  umicro::stream::Dataset dataset = generator.Generate(args.points);
  PerturbWithEta(dataset, args.eta, 78);

  const std::size_t interval = std::max<std::size_t>(1, args.points / 16);
  const std::vector<double> lambdas = {0.0, 1.0 / 20000.0, 1.0 / 5000.0,
                                       1.0 / 1000.0};

  std::printf("Ablation A4: time decay on a regime-shift stream "
              "(%zu points, 4 regimes, eta=%.2f)\n",
              args.points, args.eta);
  std::printf("%14s", "points");
  for (double lambda : lambdas) {
    if (lambda == 0.0) {
      std::printf(" %13s", "no-decay");
    } else {
      std::printf(" half-life=%-5.0f", 1.0 / lambda);
    }
  }
  std::printf("\n");

  std::vector<umicro::eval::PuritySeries> series;
  for (double lambda : lambdas) {
    umicro::core::UMicroOptions options;
    options.num_micro_clusters = args.num_micro_clusters;
    options.decay_lambda = lambda;
    umicro::core::UMicro algorithm(dataset.dimensions(), options);
    series.push_back(
        umicro::eval::RunPurityExperiment(algorithm, dataset, interval));
  }

  umicro::util::CsvWriter csv(
      {"points", "lambda0", "lambda_20000", "lambda_5000", "lambda_1000"});
  for (std::size_t i = 0; i < series[0].samples.size(); ++i) {
    std::printf("%14zu", series[0].samples[i].points_processed);
    std::vector<double> row = {
        static_cast<double>(series[0].samples[i].points_processed)};
    for (const auto& s : series) {
      std::printf(" %13.4f", s.samples[i].purity);
      row.push_back(s.samples[i].purity);
    }
    std::printf("\n");
    csv.AddRow(row);
  }
  csv.WriteFile("abl_decay.csv");
  return 0;
}
