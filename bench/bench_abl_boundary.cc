// Ablation A2: the uncertainty-boundary factor t.
//
// Section II-C fixes t = 3 ("a high level of certainty ... with the use
// of the normal distribution assumption"). This bench sweeps t and
// reports purity plus how often new micro-clusters were created, showing
// the absorb-vs-create trade-off behind the paper's choice.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  const umicro::stream::Dataset dataset =
      MakeSynDrift(args.points, args.eta);
  const std::size_t interval = std::max<std::size_t>(1, args.points / 10);

  std::printf("Ablation A2: boundary factor t (SynDrift(%.2f), %zu points, "
              "%zu micro-clusters)\n",
              args.eta, args.points, args.num_micro_clusters);
  std::printf("%8s %12s %16s %16s\n", "t", "purity", "clusters-created",
              "evictions");
  umicro::util::CsvWriter csv({"t", "purity", "created", "evicted"});
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    umicro::core::UMicroOptions options;
    options.num_micro_clusters = args.num_micro_clusters;
    options.boundary_factor = t;
    umicro::core::UMicro algorithm(dataset.dimensions(), options);
    const double purity =
        umicro::eval::RunPurityExperiment(algorithm, dataset, interval)
            .MeanPurity();
    std::printf("%8.1f %12.4f %16zu %16zu\n", t, purity,
                algorithm.clusters_created(), algorithm.clusters_evicted());
    csv.AddRow(std::vector<double>{
        t, purity, static_cast<double>(algorithm.clusters_created()),
        static_cast<double>(algorithm.clusters_evicted())});
  }
  csv.WriteFile("abl_boundary.csv");
  return 0;
}
