// Ablation A1: dimension-counting similarity vs raw expected distance.
//
// Section II-B argues that pruning uncertain dimensions improves the
// quality of the similarity computation. This bench quantifies that: the
// same UMicro configuration is run with the dimension-counting similarity
// (the paper's choice) and with the plain minimum expected distance.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  const std::vector<double> etas = {0.5, 1.0, 1.5, 2.0};

  std::printf("Ablation A1: similarity function (SynDrift, %zu points per "
              "level, %zu micro-clusters)\n",
              args.points, args.num_micro_clusters);
  std::printf("%8s %18s %18s\n", "eta", "dim-counting", "expected-dist");
  umicro::util::CsvWriter csv({"eta", "dim_counting", "expected_distance"});
  for (double eta : etas) {
    const umicro::stream::Dataset dataset = MakeSynDrift(args.points, eta);
    const std::size_t interval = std::max<std::size_t>(1, args.points / 10);

    umicro::core::UMicroOptions counting;
    counting.num_micro_clusters = args.num_micro_clusters;
    counting.similarity = umicro::core::SimilarityMode::kDimensionCounting;
    umicro::core::UMicro counting_algo(dataset.dimensions(), counting);
    const double counting_purity =
        umicro::eval::RunPurityExperiment(counting_algo, dataset, interval)
            .MeanPurity();

    umicro::core::UMicroOptions expected = counting;
    expected.similarity = umicro::core::SimilarityMode::kExpectedDistance;
    umicro::core::UMicro expected_algo(dataset.dimensions(), expected);
    const double expected_purity =
        umicro::eval::RunPurityExperiment(expected_algo, dataset, interval)
            .MeanPurity();

    std::printf("%8.2f %18.4f %18.4f\n", eta, counting_purity,
                expected_purity);
    csv.AddRow(std::vector<double>{eta, counting_purity, expected_purity});
  }
  csv.WriteFile("abl_similarity.csv");
  return 0;
}
