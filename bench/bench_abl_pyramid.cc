// Ablation A6: pyramidal time frame -- storage cost and horizon accuracy.
//
// Section II-D claims any horizon is approximable within 1/alpha^l while
// storage grows only logarithmically. This bench measures both on a real
// UMicro run: snapshots are inserted into stores with different (alpha, l)
// and the realized horizon error and retained-snapshot counts reported.

#include <cmath>

#include "bench/bench_common.h"
#include "core/snapshot.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  const umicro::stream::Dataset dataset =
      MakeSynDrift(args.points, args.eta);

  struct Config {
    std::size_t alpha;
    std::size_t l;
  };
  const std::vector<Config> configs = {{2, 1}, {2, 2}, {2, 3}, {3, 2}};
  const std::size_t snapshot_every = 50;

  std::printf("Ablation A6: pyramidal time frame (SynDrift(%.2f), %zu "
              "points, snapshot every %zu points)\n",
              args.eta, args.points, snapshot_every);
  std::printf("%8s %4s %10s %12s %16s %18s\n", "alpha", "l", "stored",
              "theoretical", "max-h-error", "bound 1/alpha^l");
  umicro::util::CsvWriter csv(
      {"alpha", "l", "stored_snapshots", "max_horizon_error", "bound"});

  for (const Config& config : configs) {
    umicro::core::UMicroOptions options;
    options.num_micro_clusters = args.num_micro_clusters;
    umicro::core::UMicro algorithm(dataset.dimensions(), options);
    umicro::core::SnapshotStore store(config.alpha, config.l);

    std::uint64_t tick = 0;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      algorithm.Process(dataset[i]);
      if ((i + 1) % snapshot_every == 0) {
        store.Insert(++tick, algorithm.TakeSnapshot(dataset[i].timestamp));
      }
    }

    // Realized relative horizon error over a geometric horizon sweep
    // (horizons in snapshot-tick units).
    const double now = static_cast<double>(tick);
    double max_error = 0.0;
    for (double h = 2.0; h < now * 0.8; h *= 1.5) {
      const auto nearest = store.FindNearest(
          dataset[dataset.size() - 1].timestamp -
          h * static_cast<double>(snapshot_every));
      if (!nearest.has_value()) continue;
      const double h_prime =
          (dataset[dataset.size() - 1].timestamp - nearest->time) /
          static_cast<double>(snapshot_every);
      max_error = std::max(max_error, std::abs(h - h_prime) / h);
    }
    const double bound =
        1.0 / std::pow(static_cast<double>(config.alpha),
                       static_cast<double>(config.l));
    std::printf("%8zu %4zu %10zu %12s %16.4f %18.4f\n", config.alpha,
                config.l, store.TotalStored(), "O(log t)", max_error,
                bound);
    csv.AddRow(std::vector<double>{
        static_cast<double>(config.alpha), static_cast<double>(config.l),
        static_cast<double>(store.TotalStored()), max_error, bound});
  }
  csv.WriteFile("abl_pyramid.csv");
  return 0;
}
