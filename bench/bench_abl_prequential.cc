// Ablation A10: prequential (test-then-train) accuracy.
//
// Purity inspects clusters after the fact; the prequential protocol
// charges every record against the clustering that existed *before* it
// arrived. This bench contrasts UMicro and CluStream under that sharper
// protocol on the noisy forest-cover stream, where the purity gap is
// largest. (Finding: the two run neck and neck here -- nearest-centroid
// prediction of heavily overlapped classes is limited by the class
// overlap itself, so UMicro's purity advantage reflects cleaner cluster
// composition rather than better point-wise prediction.)

#include "bench/bench_common.h"
#include "eval/prequential.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 40000);
  const umicro::stream::Dataset dataset = MakeForest(args.points, args.eta);
  const std::size_t interval = std::max<std::size_t>(1, args.points / 10);

  std::printf("Ablation A10: prequential accuracy (ForestCover(%.2f), "
              "%zu points, %zu micro-clusters)\n",
              args.eta, args.points, args.num_micro_clusters);

  umicro::core::UMicroOptions uopt;
  uopt.num_micro_clusters = args.num_micro_clusters;
  umicro::core::UMicro umicro_algo(dataset.dimensions(), uopt);
  const auto umicro_series = umicro::eval::RunPrequentialEvaluation(
      umicro_algo, dataset, interval);

  umicro::baseline::CluStreamOptions copt;
  copt.num_micro_clusters = args.num_micro_clusters;
  umicro::baseline::CluStream clustream_algo(dataset.dimensions(), copt);
  const auto clustream_series = umicro::eval::RunPrequentialEvaluation(
      clustream_algo, dataset, interval);

  std::printf("%14s %16s %16s\n", "points", "UMicro win-acc",
              "CluStream win-acc");
  umicro::util::CsvWriter csv(
      {"points", "umicro_window_accuracy", "clustream_window_accuracy"});
  const std::size_t rows = std::min(umicro_series.samples.size(),
                                    clustream_series.samples.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%14zu %16.4f %16.4f\n",
                umicro_series.samples[i].points_processed,
                umicro_series.samples[i].window_accuracy,
                clustream_series.samples[i].window_accuracy);
    csv.AddRow(std::vector<double>{
        static_cast<double>(umicro_series.samples[i].points_processed),
        umicro_series.samples[i].window_accuracy,
        clustream_series.samples[i].window_accuracy});
  }
  std::printf("final cumulative accuracy: UMicro %.4f vs CluStream %.4f\n",
              umicro_series.final_accuracy,
              clustream_series.final_accuracy);
  csv.WriteFile("abl_prequential.csv");
  return 0;
}
