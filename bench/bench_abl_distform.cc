// Ablation A7: paper-literal expected distance vs bias-corrected form.
//
// Lemma 2.2's expected distance contains the cluster-error term EF2/n^2,
// which shrinks as a cluster grows; used verbatim for cross-cluster
// comparison it can favor heavy clusters (rich-get-richer). The library
// defaults to the paper-literal form and offers a bias-corrected
// alternative (EF2/n^2 dropped from comparisons). This bench reports
// both side by side -- paper-metric purity, mass-weighted purity, and
// the weight of the largest cluster -- on the 20-d SynDrift stream and
// on a low-dimensional stream where the forms diverge most.

#include "bench/bench_common.h"
#include "eval/purity.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  const std::vector<double> etas = {0.5, 1.0, 1.5, 2.0};

  std::printf("Ablation A7: distance form (SynDrift, %zu points per level, "
              "%zu micro-clusters)\n",
              args.points, args.num_micro_clusters);
  std::printf("%8s | %10s %10s %10s | %10s %10s %10s\n", "eta",
              "corr-pur", "corr-wpur", "corr-maxw", "lit-pur", "lit-wpur",
              "lit-maxw");
  umicro::util::CsvWriter csv({"eta", "corrected_purity",
                               "corrected_weighted_purity",
                               "corrected_max_weight", "literal_purity",
                               "literal_weighted_purity",
                               "literal_max_weight"});
  const std::size_t interval = std::max<std::size_t>(1, args.points / 10);

  for (double eta : etas) {
    const umicro::stream::Dataset dataset = MakeSynDrift(args.points, eta);
    std::vector<double> row = {eta};
    for (auto form : {umicro::core::DistanceForm::kComparable,
                      umicro::core::DistanceForm::kPaperExpected}) {
      umicro::core::UMicroOptions options;
      options.num_micro_clusters = args.num_micro_clusters;
      options.distance_form = form;
      umicro::core::UMicro algorithm(dataset.dimensions(), options);
      const auto series =
          umicro::eval::RunPurityExperiment(algorithm, dataset, interval);
      double max_weight = 0.0;
      for (const auto& cluster : algorithm.clusters()) {
        max_weight = std::max(max_weight, cluster.ecf.weight());
      }
      const auto histograms = algorithm.ClusterLabelHistograms();
      row.push_back(series.MeanPurity());
      row.push_back(umicro::eval::WeightedClusterPurity(histograms));
      row.push_back(max_weight);
    }
    std::printf("%8.2f | %10.4f %10.4f %10.0f | %10.4f %10.4f %10.0f\n",
                row[0], row[1], row[2], row[3], row[4], row[5], row[6]);
    csv.AddRow(row);
  }
  csv.WriteFile("abl_distform.csv");

  // Low-dimensional section: with few dimensions the two forms diverge
  // most -- the corrected form absorbs more aggressively and
  // concentrates mass, while the literal form's inflated distances keep
  // more (purer) fragments.
  std::printf("\nlow-dimensional stream (4-d, 4 clusters):\n");
  std::printf("%8s | %10s %10s | %10s %10s\n", "eta", "corr-pur",
              "corr-maxw", "lit-pur", "lit-maxw");
  for (double eta : {0.5, 1.0}) {
    umicro::synth::DriftOptions drift;
    drift.dimensions = 4;
    drift.num_clusters = 4;
    drift.max_radius = 0.3;
    drift.seed = 42;
    umicro::synth::DriftingGaussianGenerator generator(drift);
    umicro::stream::Dataset dataset = generator.Generate(args.points / 2);
    PerturbWithEta(dataset, eta, 43);

    std::vector<double> row = {eta};
    for (auto form : {umicro::core::DistanceForm::kComparable,
                      umicro::core::DistanceForm::kPaperExpected}) {
      umicro::core::UMicroOptions options;
      options.num_micro_clusters = args.num_micro_clusters;
      options.distance_form = form;
      umicro::core::UMicro algorithm(dataset.dimensions(), options);
      const auto series = umicro::eval::RunPurityExperiment(
          algorithm, dataset, std::max<std::size_t>(1, dataset.size() / 5));
      double max_weight = 0.0;
      for (const auto& cluster : algorithm.clusters()) {
        max_weight = std::max(max_weight, cluster.ecf.weight());
      }
      row.push_back(series.MeanPurity());
      row.push_back(max_weight);
    }
    std::printf("%8.2f | %10.4f %10.0f | %10.4f %10.0f\n", row[0], row[1],
                row[2], row[3], row[4]);
  }
  return 0;
}
