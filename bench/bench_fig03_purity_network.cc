// Figure 3: accuracy with progression of the stream, Network(0.5).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 200000);
  const umicro::stream::Dataset dataset =
      MakeNetwork(args.points, args.eta);
  RunPurityProgressionFigure("Figure 3", "Network(0.5)", dataset,
                             args.num_micro_clusters, "fig03.csv", args.metrics_out);
  return 0;
}
