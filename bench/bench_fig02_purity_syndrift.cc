// Figure 2: accuracy with progression of the stream, SynDrift(0.5).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 200000);
  const umicro::stream::Dataset dataset =
      MakeSynDrift(args.points, args.eta);
  RunPurityProgressionFigure("Figure 2", "SynDrift(0.5)", dataset,
                             args.num_micro_clusters, "fig02.csv", args.metrics_out);
  return 0;
}
