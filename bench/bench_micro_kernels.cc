// A5: google-benchmark micro-benchmarks of the hot kernels.
//
// The paper stresses that the expected distance costs O(d) -- the same
// asymptotic cost as the deterministic distance -- because it is the most
// repeated operation of the algorithm. These kernels measure exactly
// that, plus ECF maintenance and the end-to-end per-point cost.

#include <benchmark/benchmark.h>

#include <span>

#include "baseline/clustream.h"
#include "core/cluster_feature.h"
#include "core/expected_distance.h"
#include "core/umicro.h"
#include "kernels/cluster_table.h"
#include "kernels/dispatch.h"
#include "kernels/kernels.h"
#include "stream/point.h"
#include "util/random.h"

namespace {

using umicro::core::ErrorClusterFeature;
using umicro::kernels::Backend;
using umicro::kernels::ClusterTable;
using umicro::kernels::PointContext;
using umicro::stream::UncertainPoint;

UncertainPoint MakePoint(umicro::util::Rng& rng, std::size_t dims) {
  std::vector<double> values(dims);
  std::vector<double> errors(dims);
  for (std::size_t j = 0; j < dims; ++j) {
    values[j] = rng.Uniform(-1.0, 1.0);
    errors[j] = rng.Uniform(0.0, 0.3);
  }
  return UncertainPoint(std::move(values), std::move(errors), 0.0);
}

void BM_EcfAddPoint(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  umicro::util::Rng rng(1);
  const UncertainPoint point = MakePoint(rng, dims);
  ErrorClusterFeature ecf(dims);
  for (auto _ : state) {
    ecf.AddPoint(point);
    benchmark::DoNotOptimize(ecf);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EcfAddPoint)->Arg(10)->Arg(20)->Arg(34)->Arg(64);

void BM_EcfMerge(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  umicro::util::Rng rng(2);
  ErrorClusterFeature a(dims);
  ErrorClusterFeature b(dims);
  for (int i = 0; i < 100; ++i) {
    a.AddPoint(MakePoint(rng, dims));
    b.AddPoint(MakePoint(rng, dims));
  }
  for (auto _ : state) {
    ErrorClusterFeature merged = a;
    merged.Merge(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_EcfMerge)->Arg(20)->Arg(64);

void BM_EcfDecayScale(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  umicro::util::Rng rng(3);
  ErrorClusterFeature ecf(dims);
  for (int i = 0; i < 100; ++i) ecf.AddPoint(MakePoint(rng, dims));
  for (auto _ : state) {
    ecf.Scale(0.999999);
    benchmark::DoNotOptimize(ecf);
  }
}
BENCHMARK(BM_EcfDecayScale)->Arg(20)->Arg(64);

void BM_ExpectedDistance(benchmark::State& state) {
  // The paper's O(d) claim: time should scale linearly with d.
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  umicro::util::Rng rng(4);
  ErrorClusterFeature ecf(dims);
  for (int i = 0; i < 50; ++i) ecf.AddPoint(MakePoint(rng, dims));
  const UncertainPoint x = MakePoint(rng, dims);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        umicro::core::ExpectedSquaredDistance(x, ecf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpectedDistance)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_DimensionCountingSimilarity(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  umicro::util::Rng rng(5);
  ErrorClusterFeature ecf(dims);
  for (int i = 0; i < 50; ++i) ecf.AddPoint(MakePoint(rng, dims));
  const UncertainPoint x = MakePoint(rng, dims);
  const std::vector<double> variances(dims, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(umicro::core::DimensionCountingSimilarity(
        x, ecf, variances, 3.0));
  }
}
BENCHMARK(BM_DimensionCountingSimilarity)->Arg(8)->Arg(32)->Arg(128);

void BM_UMicroProcessPoint(benchmark::State& state) {
  // End-to-end per-point cost at the paper's configuration (d=20,
  // q=100 micro-clusters).
  const std::size_t dims = 20;
  umicro::core::UMicroOptions options;
  options.num_micro_clusters = static_cast<std::size_t>(state.range(0));
  umicro::core::UMicro algorithm(dims, options);
  umicro::util::Rng rng(6);
  // Warm up so the cluster set is full.
  for (int i = 0; i < 2000; ++i) {
    UncertainPoint p = MakePoint(rng, dims);
    p.timestamp = i;
    algorithm.Process(p);
  }
  double ts = 2000.0;
  for (auto _ : state) {
    UncertainPoint p = MakePoint(rng, dims);
    p.timestamp = ts;
    ts += 1.0;
    algorithm.Process(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UMicroProcessPoint)->Arg(25)->Arg(100)->Arg(200);

void BM_UMicroProcessPointWithDecay(benchmark::State& state) {
  const std::size_t dims = 20;
  umicro::core::UMicroOptions options;
  options.num_micro_clusters = 100;
  options.decay_lambda = 1.0 / 5000.0;
  umicro::core::UMicro algorithm(dims, options);
  umicro::util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    UncertainPoint p = MakePoint(rng, dims);
    p.timestamp = i;
    algorithm.Process(p);
  }
  double ts = 2000.0;
  for (auto _ : state) {
    UncertainPoint p = MakePoint(rng, dims);
    p.timestamp = ts;
    ts += 1.0;
    algorithm.Process(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UMicroProcessPointWithDecay);

void BM_CluStreamProcessPoint(benchmark::State& state) {
  // The "optimistic baseline" per-point cost, for the UMicro/CluStream
  // relative-throughput claim of Figures 8-10.
  const std::size_t dims = 20;
  umicro::baseline::CluStreamOptions options;
  options.num_micro_clusters = static_cast<std::size_t>(state.range(0));
  umicro::baseline::CluStream algorithm(dims, options);
  umicro::util::Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    UncertainPoint p = MakePoint(rng, dims);
    p.timestamp = i;
    algorithm.Process(p);
  }
  double ts = 2000.0;
  for (auto _ : state) {
    UncertainPoint p = MakePoint(rng, dims);
    p.timestamp = ts;
    ts += 1.0;
    algorithm.Process(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CluStreamProcessPoint)->Arg(25)->Arg(100)->Arg(200);

void BM_UncertainRadius(benchmark::State& state) {
  const std::size_t dims = static_cast<std::size_t>(state.range(0));
  umicro::util::Rng rng(9);
  ErrorClusterFeature ecf(dims);
  for (int i = 0; i < 100; ++i) ecf.AddPoint(MakePoint(rng, dims));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecf.UncertainRadiusSquared());
  }
}
BENCHMARK(BM_UncertainRadius)->Arg(20)->Arg(64);

void BM_SnapshotSubtract(benchmark::State& state) {
  // Horizon extraction cost at the paper's scale (100 micro-clusters).
  const std::size_t dims = 20;
  umicro::util::Rng rng(10);
  umicro::core::Snapshot older;
  umicro::core::Snapshot current;
  older.time = 100.0;
  current.time = 200.0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    umicro::core::MicroClusterState state_a;
    state_a.id = id;
    ErrorClusterFeature ecf(dims);
    for (int p = 0; p < 10; ++p) ecf.AddPoint(MakePoint(rng, dims));
    state_a.ecf = ecf;
    older.clusters.push_back(state_a);
    for (int p = 0; p < 10; ++p) ecf.AddPoint(MakePoint(rng, dims));
    umicro::core::MicroClusterState state_b;
    state_b.id = id;
    state_b.ecf = std::move(ecf);
    current.clusters.push_back(std::move(state_b));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        umicro::core::SubtractSnapshot(current, older));
  }
}
BENCHMARK(BM_SnapshotSubtract);

// ---------------------------------------------------------------------
// Batch kernels over the SoA cluster table (src/kernels). The benchmark
// argument selects the tier: 0 = scalar, 1 = sse2, 2 = avx2. Tiers the
// host CPU cannot run are not registered.
// ---------------------------------------------------------------------

void SupportedBackendArgs(benchmark::internal::Benchmark* bench) {
  const int max_tier =
      static_cast<int>(umicro::kernels::MaxSupportedBackend());
  for (int tier = 0; tier <= max_tier; ++tier) bench->Arg(tier);
}

/// A table of q random clusters (50 points each) at the given dims.
ClusterTable MakeTable(umicro::util::Rng& rng, std::size_t dims,
                       std::size_t q) {
  ClusterTable table(dims);
  table.Reserve(q);
  for (std::size_t i = 0; i < q; ++i) {
    const UncertainPoint seed_point = MakePoint(rng, dims);
    table.PushPointRow(seed_point.values.data(), seed_point.errors.data(),
                       1.0);
    for (int p = 1; p < 50; ++p) {
      const UncertainPoint point = MakePoint(rng, dims);
      table.AddPoint(i, point.values.data(), point.errors.data(), 1.0);
    }
  }
  return table;
}

void BM_KernelBatchVotes(benchmark::State& state) {
  // Dimension-counting similarity of one point against all q=100
  // clusters at the paper's d=20 -- the per-point cost that dominates
  // Figures 8-10.
  const std::size_t dims = 20;
  const std::size_t q = 100;
  const auto backend = static_cast<Backend>(state.range(0));
  umicro::util::Rng rng(11);
  const ClusterTable table = MakeTable(rng, dims, q);
  const UncertainPoint x = MakePoint(rng, dims);
  const std::vector<double> inv_scaled(dims, 1.0 / 1.5);
  PointContext ctx;
  std::vector<double> votes(q);
  for (auto _ : state) {
    ctx.Prepare(table, x.values.data(), x.errors.data(), inv_scaled.data());
    umicro::kernels::BatchDimensionVotes(table, ctx, true, backend,
                                         votes.data());
    benchmark::DoNotOptimize(
        umicro::kernels::ArgMax(votes.data(), votes.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelBatchVotes)->Apply(SupportedBackendArgs);

void BM_KernelBatchDistances(benchmark::State& state) {
  // Expected squared distance (Lemma 2.2) of one point to all q=100
  // clusters at d=20: the assignment fallback scan.
  const std::size_t dims = 20;
  const std::size_t q = 100;
  const auto backend = static_cast<Backend>(state.range(0));
  umicro::util::Rng rng(12);
  const ClusterTable table = MakeTable(rng, dims, q);
  const UncertainPoint x = MakePoint(rng, dims);
  PointContext ctx;
  std::vector<double> distances(q);
  for (auto _ : state) {
    ctx.Prepare(table, x.values.data(), x.errors.data(), nullptr);
    umicro::kernels::BatchSquaredDistances(
        table, ctx, umicro::kernels::DistanceKind::kExpected, backend,
        distances.data());
    benchmark::DoNotOptimize(
        umicro::kernels::ArgMin(distances.data(), distances.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelBatchDistances)->Apply(SupportedBackendArgs);

void BM_KernelClosestPair(benchmark::State& state) {
  // Cache-blocked q*(q-1)/2 centroid scan feeding maintenance merges.
  const std::size_t dims = 20;
  const std::size_t q = 100;
  const auto backend = static_cast<Backend>(state.range(0));
  umicro::util::Rng rng(13);
  const ClusterTable table = MakeTable(rng, dims, q);
  for (auto _ : state) {
    std::size_t a = 0;
    std::size_t b = 0;
    double d2 = 0.0;
    umicro::kernels::ClosestCentroidPair(table, backend, &a, &b, &d2);
    benchmark::DoNotOptimize(a + b);
    benchmark::DoNotOptimize(d2);
  }
}
BENCHMARK(BM_KernelClosestPair)->Apply(SupportedBackendArgs);

void BM_KernelTableAddPoint(benchmark::State& state) {
  // Fused ECF update + derived-row refresh (bit-identical across tiers).
  const std::size_t dims = 20;
  const auto backend = static_cast<Backend>(state.range(0));
  umicro::util::Rng rng(14);
  ClusterTable table = MakeTable(rng, dims, 8);
  table.set_backend(backend);
  const UncertainPoint x = MakePoint(rng, dims);
  std::size_t row = 0;
  for (auto _ : state) {
    table.AddPoint(row, x.values.data(), x.errors.data(), 1.0);
    row = (row + 1) % table.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelTableAddPoint)->Apply(SupportedBackendArgs);

void BM_KernelTableScaleAll(benchmark::State& state) {
  // Fused decay over all q=100 rows (bit-identical across tiers).
  const std::size_t dims = 20;
  const auto backend = static_cast<Backend>(state.range(0));
  umicro::util::Rng rng(15);
  ClusterTable table = MakeTable(rng, dims, 100);
  table.set_backend(backend);
  for (auto _ : state) {
    table.ScaleAll(0.999999);
    benchmark::DoNotOptimize(table.ef2n2_sum(0));
  }
}
BENCHMARK(BM_KernelTableScaleAll)->Apply(SupportedBackendArgs);

void BM_UMicroProcessBatch(benchmark::State& state) {
  // End-to-end batched ingest at the paper's d=20 / q=100, through
  // whatever tier DetectBackend() picked. Compare against
  // BM_UMicroProcessPoint/100 for the batching win.
  const std::size_t dims = 20;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  umicro::core::UMicroOptions options;
  options.num_micro_clusters = 100;
  umicro::core::UMicro algorithm(dims, options);
  umicro::util::Rng rng(16);
  for (int i = 0; i < 2000; ++i) {
    UncertainPoint p = MakePoint(rng, dims);
    p.timestamp = i;
    algorithm.Process(p);
  }
  double ts = 2000.0;
  std::vector<UncertainPoint> points;
  points.reserve(batch);
  for (auto _ : state) {
    state.PauseTiming();
    points.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      UncertainPoint p = MakePoint(rng, dims);
      p.timestamp = ts;
      ts += 1.0;
      points.push_back(std::move(p));
    }
    state.ResumeTiming();
    algorithm.ProcessBatch(std::span<const UncertainPoint>(points));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_UMicroProcessBatch)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
