// Observability overhead: UMicro throughput with the metrics registry
// attached vs detached, on the Figure 8 SynDrift workload.
//
//   bench_obs_overhead [--points=N] [--eta=X] [--nmicro=Q]
//                      [--reps=R] [--csv=PATH]
//
// Each configuration runs `reps` times over the same stream; the best
// rep is reported (the usual least-noise estimator for throughput). The
// detached run pays one null-pointer test per probe site and no clock
// reads; the attached run adds two steady_clock reads per point plus a
// handful of relaxed atomic increments. The acceptance bar for the
// instrumentation is <= 5% overhead.

#include "bench/bench_common.h"

#include "util/stopwatch.h"

namespace {

double BestRate(const umicro::stream::Dataset& dataset, std::size_t nmicro,
                std::size_t reps, umicro::obs::MetricsRegistry* registry) {
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    umicro::core::UMicroOptions options;
    options.num_micro_clusters = nmicro;
    umicro::core::UMicro algo(dataset.dimensions(), options);
    algo.AttachMetrics(registry);
    umicro::util::Stopwatch watch;
    for (const auto& point : dataset.points()) algo.Process(point);
    const double seconds = watch.ElapsedSeconds();
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(dataset.size()) / seconds);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const umicro::util::FlagParser flags(argc, argv);
  const std::size_t points = flags.GetSize("points", 200000);
  const double eta = flags.GetDouble("eta", 0.5);
  const std::size_t nmicro = flags.GetSize("nmicro", 100);
  const std::size_t reps = flags.GetSize("reps", 3);
  const std::string csv_path = flags.GetString("csv", "obs_overhead.csv");

  const umicro::stream::Dataset dataset = MakeSynDrift(points, eta);
  std::printf("observability overhead: SynDrift(%0.2f), %zu points x %zud, "
              "%zu micro-clusters, best of %zu reps\n",
              eta, dataset.size(), dataset.dimensions(), nmicro, reps);

  const double detached_pps = BestRate(dataset, nmicro, reps, nullptr);
  umicro::obs::MetricsRegistry registry;
  const double attached_pps = BestRate(dataset, nmicro, reps, &registry);
  const double overhead =
      detached_pps > 0.0 ? 1.0 - attached_pps / detached_pps : 0.0;

  std::printf("%12s %14s\n", "metrics", "pts/s");
  std::printf("%12s %14.0f\n", "detached", detached_pps);
  std::printf("%12s %14.0f\n", "attached", attached_pps);
  std::printf("overhead: %.2f%% (bar: <= 5%%)\n", 100.0 * overhead);

  umicro::util::CsvWriter csv(
      {"workload", "points", "nmicro", "reps", "detached_pps",
       "attached_pps", "overhead_percent"});
  csv.AddRow({std::string("SynDrift"), std::to_string(points),
              std::to_string(nmicro), std::to_string(reps),
              std::to_string(detached_pps), std::to_string(attached_pps),
              std::to_string(100.0 * overhead)});
  csv.WriteFile(csv_path);
  std::printf("wrote %s\n", csv_path.c_str());
  return 0;
}
