// Figure 8: efficiency of stream clustering, SynDrift data set.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 200000);
  const umicro::stream::Dataset dataset =
      MakeSynDrift(args.points, args.eta);
  RunThroughputFigure("Figure 8", "SynDrift(0.5)", dataset,
                      args.num_micro_clusters, "fig08.csv", args.metrics_out);
  return 0;
}
