// Assignment-index speedup sweep: flat full scan vs kd-tree vs coarse
// candidate index on the expected-distance absorb path.
//
//   bench_index_speedup [--dims=D] [--points=N] [--trials=K]
//                       [--csv=PATH]
//
// For every cluster budget q in {64, 256, 512} the sweep pre-fills a
// UMicro instance to q live micro-clusters from q well-separated
// Gaussian blob centers, then times steady-state ingest of N points
// drawn from the same blobs (absorb-dominated: the regime where the
// closest-cluster scan is the whole cost). Every backend processes the
// identical stream; the parity suite (tests/index_parity_test.cc)
// guarantees the decisions are bit-identical, so this measures pure
// scan cost. prune_ratio is 1 - candidates/scanned_rows from the
// index's own counters (0 for the flat scan by definition).
//
// The CSV (default index_speedup.csv; the checked-in artifact lives at
// results/index_speedup.csv) backs the sub-linear-assignment claim in
// docs/indexing.md: indexed rows must show >= 2x over flat at q >= 256.

#include <cstdio>
#include <string>
#include <vector>

#include "core/umicro.h"
#include "index/centroid_index.h"
#include "stream/point.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"

#include "bench_common.h"

namespace {

using umicro::core::SimilarityMode;
using umicro::core::UMicro;
using umicro::core::UMicroOptions;
using umicro::index::IndexKind;
using umicro::stream::UncertainPoint;

/// q blob centers spread over [0, 100]^d: far apart relative to the
/// sigma = 0.5 blob spread, so clusters stay distinct and the index has
/// real geometry to prune with.
std::vector<std::vector<double>> MakeCenters(umicro::util::Rng& rng,
                                             std::size_t q,
                                             std::size_t dims) {
  std::vector<std::vector<double>> centers(q);
  for (auto& center : centers) {
    center.resize(dims);
    for (auto& c : center) c = rng.Uniform(0.0, 100.0);
  }
  return centers;
}

std::vector<UncertainPoint> MakeStream(
    umicro::util::Rng& rng, const std::vector<std::vector<double>>& centers,
    std::size_t count, double start_time) {
  const std::size_t dims = centers.front().size();
  std::vector<UncertainPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& center = centers[rng.NextBounded(centers.size())];
    std::vector<double> values(dims);
    std::vector<double> errors(dims);
    for (std::size_t j = 0; j < dims; ++j) {
      values[j] = center[j] + rng.Gaussian(0.0, 0.5);
      errors[j] = 0.1 + 0.1 * rng.NextDouble();
    }
    points.emplace_back(std::move(values), std::move(errors),
                        start_time + static_cast<double>(i));
  }
  return points;
}

struct RunResult {
  double points_per_sec = 0.0;
  double prune_ratio = 0.0;
};

RunResult RunBackend(IndexKind kind, std::size_t dims, std::size_t trials,
                     const std::vector<UncertainPoint>& prefill,
                     const std::vector<UncertainPoint>& warmup,
                     const std::vector<UncertainPoint>& timed) {
  // Best of `trials` fresh runs: the figure benches run on shared
  // 1-core hosts, and the minimum is the least noisy location estimate.
  RunResult result;
  for (std::size_t t = 0; t < trials; ++t) {
    UMicroOptions options;
    options.num_micro_clusters = prefill.size();
    options.similarity = SimilarityMode::kExpectedDistance;
    options.assign_index = kind;
    options.eviction_horizon = 1e18;
    UMicro clusterer(dims, options);
    for (const auto& point : prefill) clusterer.Process(point);
    for (const auto& point : warmup) clusterer.Process(point);

    umicro::util::Stopwatch timer;
    for (const auto& point : timed) clusterer.Process(point);
    const double seconds = timer.ElapsedSeconds();
    const double pps =
        seconds > 0.0 ? static_cast<double>(timed.size()) / seconds : 0.0;
    if (pps <= result.points_per_sec) continue;
    result.points_per_sec = pps;
    const umicro::index::CentroidIndex* index = clusterer.assign_index();
    if (index != nullptr && index->stats().scanned_rows > 0) {
      result.prune_ratio =
          1.0 - static_cast<double>(index->stats().candidates) /
                    static_cast<double>(index->stats().scanned_rows);
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const umicro::util::FlagParser flags(argc, argv);
  const std::size_t dims = flags.GetSize("dims", 16);
  const std::size_t timed_points = flags.GetSize("points", 40000);
  const std::size_t trials = flags.GetSize("trials", 3);
  const std::string csv_path = flags.GetString("csv", "index_speedup.csv");

  std::printf("index speedup bench: d=%zu, %zu timed points per run "
              "(%zu hardware threads)\n",
              dims, timed_points, umicro::bench::HostCores());
  std::printf("%8s %8s %14s %10s %12s\n", "nmicro", "backend", "points/s",
              "speedup", "prune_ratio");

  umicro::util::CsvWriter csv({"dims", "nmicro", "backend", "points_per_sec",
                               "speedup_vs_flat", "prune_ratio", "host_cores",
                               "cpu_model"});
  const IndexKind kinds[] = {IndexKind::kFlat, IndexKind::kKdTree,
                             IndexKind::kCoarse};
  for (const std::size_t q : {64u, 256u, 512u}) {
    umicro::util::Rng rng(2008 + q);
    const auto centers = MakeCenters(rng, q, dims);
    // One exact point per center claims all q cluster slots up front.
    std::vector<UncertainPoint> prefill;
    prefill.reserve(q);
    for (std::size_t i = 0; i < q; ++i) {
      prefill.emplace_back(centers[i], static_cast<double>(i));
    }
    const auto warmup =
        MakeStream(rng, centers, 2000, static_cast<double>(q));
    const auto timed = MakeStream(rng, centers, timed_points,
                                  static_cast<double>(q + warmup.size()));

    double flat_pps = 0.0;
    for (const IndexKind kind : kinds) {
      const RunResult result = RunBackend(kind, dims, trials, prefill, warmup, timed);
      if (kind == IndexKind::kFlat) flat_pps = result.points_per_sec;
      const double speedup =
          flat_pps > 0.0 ? result.points_per_sec / flat_pps : 0.0;
      std::printf("%8zu %8s %14.0f %9.2fx %12.3f\n", q,
                  umicro::index::IndexKindName(kind), result.points_per_sec,
                  speedup, result.prune_ratio);
      char pps[64], sp[64], pr[64];
      std::snprintf(pps, sizeof(pps), "%.6g", result.points_per_sec);
      std::snprintf(sp, sizeof(sp), "%.4g", speedup);
      std::snprintf(pr, sizeof(pr), "%.4g", result.prune_ratio);
      csv.AddRow({std::to_string(dims), std::to_string(q),
                  umicro::index::IndexKindName(kind), pps, sp, pr,
                  std::to_string(umicro::bench::HostCores()),
                  umicro::bench::HostCpuModel()});
    }
  }
  if (!csv.WriteFile(csv_path)) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", csv_path.c_str());
  return 0;
}
