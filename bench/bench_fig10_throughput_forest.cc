// Figure 10: efficiency of stream clustering, Forest Cover data set.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 200000);
  const umicro::stream::Dataset dataset = MakeForest(args.points, args.eta);
  RunThroughputFigure("Figure 10", "ForestCover(0.5)", dataset,
                      args.num_micro_clusters, "fig10.csv", args.metrics_out);
  return 0;
}
