// Figure 7: accuracy with increasing error level, Forest Cover.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  RunErrorLevelFigure(
      "Figure 7", "ForestCover",
      [](std::size_t n, double eta) { return MakeForest(n, eta); },
      args.points, args.num_micro_clusters, "fig07.csv", args.metrics_out);
  return 0;
}
