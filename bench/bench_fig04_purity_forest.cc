// Figure 4: accuracy with progression of the stream, ForestCover(0.5).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 200000);
  const umicro::stream::Dataset dataset = MakeForest(args.points, args.eta);
  RunPurityProgressionFigure("Figure 4", "ForestCover(0.5)", dataset,
                             args.num_micro_clusters, "fig04.csv", args.metrics_out);
  return 0;
}
