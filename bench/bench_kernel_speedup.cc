// Kernel-tier speedup sweep: scalar vs sse2 vs avx2 at the paper's
// d=20 / q=100 configuration.
//
//   bench_kernel_speedup [--dims=D] [--nmicro=Q] [--trials=K]
//                        [--csv=PATH]
//
// For every batch kernel of src/kernels and every tier the host CPU
// supports, the sweep times the kernel directly (best of K trials, each
// calibrated to run long enough for a stable clock read) and reports
// nanoseconds per operation plus the speedup over the scalar reference
// tier. One operation = one point scanned against all q clusters (votes
// and distances), one full q*(q-1)/2 closest-pair search, one fused
// point fold, or one whole-table decay pass.
//
// The CSV (default kernel_speedup.csv) is the artifact behind the
// vectorization claim in EXPERIMENTS.md: the avx2 rows of the scan
// kernels must show >= 2x over their scalar rows at d=20 / q=100.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "kernels/cluster_table.h"
#include "kernels/dispatch.h"
#include "kernels/kernels.h"
#include "stream/point.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using umicro::kernels::Backend;
using umicro::kernels::ClusterTable;
using umicro::kernels::PointContext;
using umicro::stream::UncertainPoint;

UncertainPoint MakePoint(umicro::util::Rng& rng, std::size_t dims) {
  std::vector<double> values(dims);
  std::vector<double> errors(dims);
  for (std::size_t j = 0; j < dims; ++j) {
    values[j] = rng.Uniform(-1.0, 1.0);
    errors[j] = rng.Uniform(0.0, 0.3);
  }
  return UncertainPoint(std::move(values), std::move(errors), 0.0);
}

ClusterTable MakeTable(umicro::util::Rng& rng, std::size_t dims,
                       std::size_t q) {
  ClusterTable table(dims);
  table.Reserve(q);
  for (std::size_t i = 0; i < q; ++i) {
    const UncertainPoint seed_point = MakePoint(rng, dims);
    table.PushPointRow(seed_point.values.data(), seed_point.errors.data(),
                       1.0);
    for (int p = 1; p < 50; ++p) {
      const UncertainPoint point = MakePoint(rng, dims);
      table.AddPoint(i, point.values.data(), point.errors.data(), 1.0);
    }
  }
  return table;
}

/// Best-of-`trials` nanoseconds per call of `op`. Each trial first
/// calibrates an iteration count that keeps the timed region above
/// ~20 ms, so the steady_clock read is amortized into the noise.
template <typename Op>
double TimeNanos(std::size_t trials, Op&& op) {
  // Calibrate: grow the batch until one timed run exceeds 20 ms.
  std::size_t batch = 1;
  umicro::util::Stopwatch calibrate;
  for (;;) {
    calibrate.Reset();
    for (std::size_t i = 0; i < batch; ++i) op();
    if (calibrate.ElapsedSeconds() >= 0.02 || batch >= (1u << 24)) break;
    batch *= 4;
  }
  double best = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    umicro::util::Stopwatch timer;
    for (std::size_t i = 0; i < batch; ++i) op();
    const double nanos =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(batch);
    if (t == 0 || nanos < best) best = nanos;
  }
  return best;
}

volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  const umicro::util::FlagParser flags(argc, argv);
  const std::size_t dims = flags.GetSize("dims", 20);
  const std::size_t q = flags.GetSize("nmicro", 100);
  const std::size_t trials = flags.GetSize("trials", 5);
  const std::string csv_path =
      flags.GetString("csv", "kernel_speedup.csv");

  umicro::util::Rng rng(2008);
  const ClusterTable table = MakeTable(rng, dims, q);
  const UncertainPoint x = MakePoint(rng, dims);
  const std::vector<double> inv_scaled(dims, 1.0 / 1.5);

  PointContext ctx;
  ctx.Prepare(table, x.values.data(), x.errors.data(), inv_scaled.data());
  std::vector<double> out(q);

  std::vector<Backend> tiers;
  for (int t = 0;
       t <= static_cast<int>(umicro::kernels::MaxSupportedBackend()); ++t) {
    tiers.push_back(static_cast<Backend>(t));
  }

  struct KernelRow {
    const char* kernel;
    std::vector<double> nanos;  // parallel to `tiers`
  };
  std::vector<KernelRow> table_rows;

  auto sweep = [&](const char* name, auto&& make_op) {
    KernelRow row;
    row.kernel = name;
    for (Backend tier : tiers) {
      row.nanos.push_back(TimeNanos(trials, make_op(tier)));
    }
    table_rows.push_back(std::move(row));
  };

  sweep("batch_votes", [&](Backend tier) {
    return [&, tier] {
      umicro::kernels::BatchDimensionVotes(table, ctx, true, tier,
                                           out.data());
      g_sink = out[q - 1];
    };
  });
  sweep("batch_distances", [&](Backend tier) {
    return [&, tier] {
      umicro::kernels::BatchSquaredDistances(
          table, ctx, umicro::kernels::DistanceKind::kExpected, tier,
          out.data());
      g_sink = out[q - 1];
    };
  });
  sweep("closest_pair", [&](Backend tier) {
    return [&, tier] {
      std::size_t a = 0;
      std::size_t b = 0;
      double d2 = 0.0;
      umicro::kernels::ClosestCentroidPair(table, tier, &a, &b, &d2);
      g_sink = d2;
    };
  });
  // Update kernels mutate, so each tier gets its own working copy.
  std::vector<ClusterTable> add_tables(tiers.size(), table);
  sweep("fused_add_point", [&](Backend tier) {
    ClusterTable& mutable_table = add_tables[static_cast<int>(tier)];
    mutable_table.set_backend(tier);
    return [&mutable_table, &x, q] {
      static std::size_t row = 0;
      mutable_table.AddPoint(row, x.values.data(), x.errors.data(), 1.0);
      row = (row + 1) % q;
    };
  });
  std::vector<ClusterTable> scale_tables(tiers.size(), table);
  sweep("decay_scale_all", [&](Backend tier) {
    ClusterTable& mutable_table = scale_tables[static_cast<int>(tier)];
    mutable_table.set_backend(tier);
    return [&mutable_table] { mutable_table.ScaleAll(0.999999); };
  });

  std::printf("kernel-tier speedups at d=%zu, q=%zu (best of %zu trials; "
              "detected tier: %s)\n",
              dims, q, trials,
              umicro::kernels::BackendName(
                  umicro::kernels::DetectBackend()));
  std::printf("%18s %10s %14s %12s\n", "kernel", "backend", "ns_per_op",
              "vs_scalar");
  umicro::util::CsvWriter csv(
      {"kernel", "dims", "nmicro", "backend", "ns_per_op",
       "speedup_vs_scalar"});
  for (const KernelRow& row : table_rows) {
    const double scalar_nanos = row.nanos[0];
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      const double speedup =
          row.nanos[t] > 0.0 ? scalar_nanos / row.nanos[t] : 0.0;
      const char* tier_name = umicro::kernels::BackendName(tiers[t]);
      std::printf("%18s %10s %14.1f %11.2fx\n", row.kernel, tier_name,
                  row.nanos[t], speedup);
      char nanos_text[32];
      char speedup_text[32];
      std::snprintf(nanos_text, sizeof(nanos_text), "%.1f", row.nanos[t]);
      std::snprintf(speedup_text, sizeof(speedup_text), "%.2f", speedup);
      csv.AddRow({row.kernel, std::to_string(dims), std::to_string(q),
                  tier_name, nanos_text, speedup_text});
    }
  }
  if (!csv.WriteFile(csv_path)) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("csv written to %s\n", csv_path.c_str());
  return 0;
}
