// Figure 6: accuracy with increasing error level, Network Intrusion.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace umicro::bench;
  const BenchArgs args = BenchArgs::Parse(argc, argv, 60000);
  RunErrorLevelFigure(
      "Figure 6", "Network",
      [](std::size_t n, double eta) { return MakeNetwork(n, eta); },
      args.points, args.num_micro_clusters, "fig06.csv", args.metrics_out);
  return 0;
}
