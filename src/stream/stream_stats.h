// Running per-dimension statistics of a stream.

#ifndef UMICRO_STREAM_STREAM_STATS_H_
#define UMICRO_STREAM_STREAM_STATS_H_

#include <cstddef>
#include <vector>

#include "stream/point.h"
#include "util/math_utils.h"

namespace umicro::stream {

/// Tracks per-dimension mean/stddev of the values seen so far.
///
/// The perturbation model needs the whole-data stddev sigma^0_i of each
/// dimension; this class computes it in one pass with Welford updates.
class StreamStats {
 public:
  /// Creates statistics for `dimensions`-dimensional records.
  explicit StreamStats(std::size_t dimensions);

  /// Folds one record's values into the statistics.
  void Add(const UncertainPoint& point);

  /// Folds every point of `dataset`.
  void AddAll(const class Dataset& dataset);

  /// Number of records folded so far.
  std::size_t count() const;

  /// Dimensionality tracked.
  std::size_t dimensions() const { return accumulators_.size(); }

  /// Mean along dimension `j`.
  double Mean(std::size_t j) const;

  /// Population stddev along dimension `j` (the paper's sigma^0_j).
  double Stddev(std::size_t j) const;

  /// All per-dimension stddevs as a vector.
  std::vector<double> Stddevs() const;

 private:
  std::vector<util::WelfordAccumulator> accumulators_;
};

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_STREAM_STATS_H_
