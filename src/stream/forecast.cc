#include "stream/forecast.h"

#include "util/check.h"

namespace umicro::stream {

ExponentialSmoothingForecaster::ExponentialSmoothingForecaster(
    std::size_t dimensions, ForecastOptions options)
    : options_(options), level_(dimensions, 0.0), residuals_(dimensions) {
  UMICRO_CHECK(dimensions > 0);
  UMICRO_CHECK(options_.alpha > 0.0 && options_.alpha <= 1.0);
}

void ExponentialSmoothingForecaster::Observe(const UncertainPoint& point) {
  UMICRO_CHECK(point.dimensions() == level_.size());
  if (observations_ == 0) {
    level_ = point.values;
  } else {
    for (std::size_t j = 0; j < level_.size(); ++j) {
      residuals_[j].Add(point.values[j] - level_[j]);
      level_[j] += options_.alpha * (point.values[j] - level_[j]);
    }
  }
  ++observations_;
}

UncertainPoint ExponentialSmoothingForecaster::Forecast(double timestamp,
                                                        int label) const {
  UMICRO_CHECK_MSG(observations_ > 0,
                   "cannot forecast before any observation");
  UncertainPoint out;
  out.values = level_;
  out.errors.resize(level_.size());
  for (std::size_t j = 0; j < level_.size(); ++j) {
    out.errors[j] = residuals_[j].PopulationStddev();
  }
  out.timestamp = timestamp;
  out.label = label;
  return out;
}

double ExponentialSmoothingForecaster::ResidualStddev(std::size_t j) const {
  UMICRO_CHECK(j < residuals_.size());
  return residuals_[j].PopulationStddev();
}

Dataset MakeForecastStream(const Dataset& input,
                           const ForecastOptions& options) {
  UMICRO_CHECK(!input.empty());
  Dataset output(input.dimensions());
  ExponentialSmoothingForecaster forecaster(input.dimensions(), options);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const UncertainPoint& actual = input[i];
    if (i == 0) {
      output.Add(actual);
    } else {
      output.Add(forecaster.Forecast(actual.timestamp, actual.label));
    }
    forecaster.Observe(actual);
  }
  return output;
}

}  // namespace umicro::stream
