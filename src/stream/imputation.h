// Missing-value imputation producing uncertain records.
//
// The paper's first motivating scenario (Section I): "the values may be
// missing and statistical methods [Little & Rubin] may need to be used
// to impute these values. In such cases, the error of imputation of the
// entries may be known a-priori." This module turns an incomplete
// stream into exactly the (X, psi(X)) input UMicro consumes: missing
// entries (encoded as NaN) are replaced by the running per-dimension
// mean, and the imputation error -- the running stddev of that
// dimension -- is recorded in the error vector. Observed entries keep
// whatever error they already carried.

#ifndef UMICRO_STREAM_IMPUTATION_H_
#define UMICRO_STREAM_IMPUTATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stream/dataset.h"
#include "stream/point.h"
#include "util/math_utils.h"
#include "util/random.h"

namespace umicro::stream {

/// True when any entry of `point` is missing (NaN).
bool HasMissingValues(const UncertainPoint& point);

/// Online mean imputer with known imputation error.
///
/// One pass, O(d) per record: observed entries update the per-dimension
/// running statistics; missing entries are filled with the current mean
/// and their error set to the current stddev (the textbook standard
/// error of mean imputation). The filled record is therefore a valid
/// uncertain stream record even though the source was incomplete.
class OnlineMeanImputer {
 public:
  /// Creates an imputer for `dimensions`-dimensional records.
  explicit OnlineMeanImputer(std::size_t dimensions);

  /// Returns a completed copy of `point`: missing entries imputed with
  /// the running mean and flagged with the running stddev as error;
  /// observed entries folded into the statistics. A missing entry seen
  /// before any observation of its dimension is imputed as 0 with error
  /// 0 (and the caller is told via `imputed_before_data()`).
  UncertainPoint Impute(const UncertainPoint& point);

  /// Number of entries imputed so far.
  std::size_t entries_imputed() const { return entries_imputed_; }

  /// Number of entries imputed before their dimension had any data.
  std::size_t imputed_before_data() const { return imputed_before_data_; }

  /// Running mean of dimension `j` (observed entries only).
  double Mean(std::size_t j) const;

  /// Running stddev of dimension `j` (observed entries only) -- the
  /// error attached to imputations of that dimension.
  double Stddev(std::size_t j) const;

 private:
  std::vector<util::WelfordAccumulator> observed_;
  std::size_t entries_imputed_ = 0;
  std::size_t imputed_before_data_ = 0;
};

/// Configuration for punching missing values into a dataset (testing /
/// benchmarking incomplete-data pipelines).
struct MissingValueOptions {
  /// Per-entry probability of being erased.
  double missing_fraction = 0.1;
  /// RNG seed.
  std::uint64_t seed = 404;
};

/// Replaces entries of `dataset` with NaN independently at the given
/// rate. Returns the number of entries erased.
std::size_t InjectMissingValues(Dataset& dataset,
                                const MissingValueOptions& options);

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_IMPUTATION_H_
