// Replayable stream over an in-memory dataset.

#ifndef UMICRO_STREAM_VECTOR_STREAM_H_
#define UMICRO_STREAM_VECTOR_STREAM_H_

#include <cstddef>
#include <optional>

#include "stream/dataset.h"
#include "stream/stream_source.h"

namespace umicro::stream {

/// Streams the points of a `Dataset` in order.
///
/// Holds a reference to the dataset, which must outlive the stream. This
/// is the workhorse source for experiments: generate (or load) a dataset
/// once, then replay it for each algorithm/parameter setting.
class VectorStream : public StreamSource {
 public:
  /// Wraps `dataset`; does not take ownership.
  explicit VectorStream(const Dataset& dataset) : dataset_(dataset) {}

  std::optional<UncertainPoint> Next() override {
    if (position_ >= dataset_.size()) return std::nullopt;
    return dataset_[position_++];
  }

  std::size_t dimensions() const override { return dataset_.dimensions(); }

  bool Reset() override {
    position_ = 0;
    return true;
  }

  /// Index of the next record to be handed out.
  std::size_t position() const { return position_; }

 private:
  const Dataset& dataset_;
  std::size_t position_ = 0;
};

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_VECTOR_STREAM_H_
