// Common interface implemented by every stream-clustering algorithm in
// this repository (UMicro, CluStream, STREAM k-means).
//
// Lives in the stream layer so that the evaluation harness can drive any
// algorithm without depending on core/baseline internals.

#ifndef UMICRO_STREAM_CLUSTERER_H_
#define UMICRO_STREAM_CLUSTERER_H_

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "stream/point.h"

namespace umicro::stream {

/// Ground-truth label -> accumulated weight of points carrying it.
///
/// Maintained by algorithms purely for evaluation (cluster purity); the
/// clustering decisions themselves never look at labels.
using LabelHistogram = std::map<int, double>;

/// Fraction of `histogram` mass held by its dominant label (0 if empty).
double DominantLabelFraction(const LabelHistogram& histogram);

/// Total weight in `histogram`.
double HistogramWeight(const LabelHistogram& histogram);

/// Abstract one-pass stream clusterer.
class StreamClusterer {
 public:
  virtual ~StreamClusterer() = default;

  /// Folds the next stream record into the clustering.
  virtual void Process(const UncertainPoint& point) = 0;

  /// Folds a contiguous run of records, strictly in order, with the
  /// same semantics as calling Process on each. Algorithms override
  /// this to amortize per-point overhead (staging, timers, metrics)
  /// across the batch; the default simply loops.
  virtual void ProcessBatch(std::span<const UncertainPoint> points) {
    for (const auto& point : points) Process(point);
  }

  /// Human-readable algorithm name for reports.
  virtual std::string name() const = 0;

  /// Number of records processed so far.
  virtual std::size_t points_processed() const = 0;

  /// Per-cluster label histograms (evaluation hook). One entry per live
  /// cluster; empty histograms are permitted for clusters that only held
  /// unlabeled points.
  virtual std::vector<LabelHistogram> ClusterLabelHistograms() const = 0;

  /// Current cluster centroids (one vector per live cluster).
  virtual std::vector<std::vector<double>> ClusterCentroids() const = 0;
};

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_CLUSTERER_H_
