// The fundamental stream record: a multi-dimensional value with a
// per-dimension error estimate.
//
// Matches the paper's input model: the i-th stream element is the pair
// (X_i, psi(X_i)) where psi_j(X_i) is the standard deviation of the error
// of dimension j. Only the standard error is assumed known -- not a full
// probability density -- which is the paper's "modest uncertainty" model.

#ifndef UMICRO_STREAM_POINT_H_
#define UMICRO_STREAM_POINT_H_

#include <cstddef>
#include <vector>

namespace umicro::stream {

/// Sentinel label for points without ground-truth class information.
inline constexpr int kUnlabeled = -1;

/// One uncertain stream record.
///
/// A passive data carrier (struct per style guide): `values` is the
/// instantiation x of the random variable X, `errors` holds the
/// per-dimension standard deviations psi_j(X) (empty means error-free,
/// i.e. a deterministic point), `timestamp` is the arrival time T_i, and
/// `label` is ground truth used only by the evaluation harness -- the
/// clustering algorithms never read it.
struct UncertainPoint {
  std::vector<double> values;
  std::vector<double> errors;
  double timestamp = 0.0;
  int label = kUnlabeled;

  UncertainPoint() = default;

  /// Builds a deterministic (zero-error) point.
  UncertainPoint(std::vector<double> v, double ts, int lbl = kUnlabeled)
      : values(std::move(v)), timestamp(ts), label(lbl) {}

  /// Builds an uncertain point with an explicit error vector.
  UncertainPoint(std::vector<double> v, std::vector<double> e, double ts,
                 int lbl = kUnlabeled)
      : values(std::move(v)),
        errors(std::move(e)),
        timestamp(ts),
        label(lbl) {}

  /// Dimensionality of the record.
  std::size_t dimensions() const { return values.size(); }

  /// True when an error vector is attached (uncertain record).
  bool has_errors() const { return !errors.empty(); }

  /// Error stddev along dimension `j`; 0 for deterministic points.
  double ErrorAt(std::size_t j) const {
    return errors.empty() ? 0.0 : errors[j];
  }

  /// Sum over dimensions of psi_j^2 -- the E[||e||^2] term of Lemma 2.2.
  double SquaredErrorNorm() const {
    double sum = 0.0;
    for (double e : errors) sum += e * e;
    return sum;
  }
};

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_POINT_H_
