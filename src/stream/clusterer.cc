#include "stream/clusterer.h"

namespace umicro::stream {

double DominantLabelFraction(const LabelHistogram& histogram) {
  double total = 0.0;
  double best = 0.0;
  for (const auto& [label, weight] : histogram) {
    total += weight;
    if (weight > best) best = weight;
  }
  if (total <= 0.0) return 0.0;
  return best / total;
}

double HistogramWeight(const LabelHistogram& histogram) {
  double total = 0.0;
  for (const auto& [label, weight] : histogram) total += weight;
  return total;
}

}  // namespace umicro::stream
