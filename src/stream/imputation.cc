#include "stream/imputation.h"

#include <cmath>

#include "util/check.h"

namespace umicro::stream {

bool HasMissingValues(const UncertainPoint& point) {
  for (double v : point.values) {
    if (std::isnan(v)) return true;
  }
  return false;
}

OnlineMeanImputer::OnlineMeanImputer(std::size_t dimensions)
    : observed_(dimensions) {
  UMICRO_CHECK(dimensions > 0);
}

UncertainPoint OnlineMeanImputer::Impute(const UncertainPoint& point) {
  UMICRO_CHECK(point.dimensions() == observed_.size());
  UncertainPoint out = point;
  if (out.errors.empty()) out.errors.assign(point.dimensions(), 0.0);

  for (std::size_t j = 0; j < observed_.size(); ++j) {
    if (std::isnan(out.values[j])) {
      ++entries_imputed_;
      if (observed_[j].count() == 0) {
        ++imputed_before_data_;
        out.values[j] = 0.0;
        out.errors[j] = 0.0;
      } else {
        out.values[j] = observed_[j].Mean();
        // Mean imputation's standard error is the dimension's stddev;
        // keep any pre-existing measurement error on top (in quadrature).
        const double imputation_error = observed_[j].PopulationStddev();
        out.errors[j] = std::sqrt(out.errors[j] * out.errors[j] +
                                  imputation_error * imputation_error);
      }
    } else {
      observed_[j].Add(out.values[j]);
    }
  }
  return out;
}

double OnlineMeanImputer::Mean(std::size_t j) const {
  UMICRO_CHECK(j < observed_.size());
  return observed_[j].Mean();
}

double OnlineMeanImputer::Stddev(std::size_t j) const {
  UMICRO_CHECK(j < observed_.size());
  return observed_[j].PopulationStddev();
}

std::size_t InjectMissingValues(Dataset& dataset,
                                const MissingValueOptions& options) {
  UMICRO_CHECK(options.missing_fraction >= 0.0 &&
               options.missing_fraction < 1.0);
  util::Rng rng(options.seed);
  std::size_t erased = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    UncertainPoint& point = dataset.at(i);
    for (double& value : point.values) {
      if (rng.NextDouble() < options.missing_fraction) {
        value = std::nan("");
        ++erased;
      }
    }
  }
  return erased;
}

}  // namespace umicro::stream
