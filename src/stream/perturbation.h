// The paper's noise / uncertainty injection model.
//
// Section III: "We used a noise parameter eta to determine the amount of
// noise to be added to each dimension. ... we first defined the standard
// deviation sigma_i along dimension i as a uniform random variable drawn
// from the range [0, 2 * eta * sigma^0_i]. Then, for the dimension i, we
// add error from a random distribution with standard deviation sigma_i."
//
// The perturbed point carries psi_i = sigma_i as its error vector, which
// is what UMicro consumes; the deterministic baseline simply ignores it.

#ifndef UMICRO_STREAM_PERTURBATION_H_
#define UMICRO_STREAM_PERTURBATION_H_

#include <cstdint>
#include <vector>

#include "stream/dataset.h"
#include "stream/point.h"
#include "util/random.h"

namespace umicro::stream {

/// How the per-dimension noise stddev sigma_i is chosen.
enum class ErrorModel {
  /// Paper default: sigma_i drawn once per dimension from
  /// U[0, 2*eta*sigma^0_i], shared by every point.
  kPerDimensionFixed,
  /// Extension: sigma drawn independently per point and dimension from
  /// U[0, 2*eta*sigma^0_i] -- heterogeneous record-level uncertainty.
  kPerPoint,
};

/// Configuration of the perturbation process.
struct PerturbationOptions {
  /// The paper's noise parameter eta; eta >= 3 obscures most structure.
  double eta = 0.5;
  /// Error model (see ErrorModel).
  ErrorModel model = ErrorModel::kPerDimensionFixed;
  /// RNG seed for reproducibility.
  std::uint64_t seed = 7;
};

/// Adds Gaussian noise to points and attaches the matching error vectors.
class Perturber {
 public:
  /// `base_stddevs` are the whole-data stddevs sigma^0_i along each
  /// dimension (from StreamStats over the *clean* data).
  Perturber(std::vector<double> base_stddevs, PerturbationOptions options);

  /// Per-dimension sigma_i used under the kPerDimensionFixed model.
  const std::vector<double>& dimension_sigmas() const {
    return dimension_sigmas_;
  }

  /// Returns a perturbed copy of `point`: values have N(0, sigma_i) noise
  /// added, and `errors` is set to the sigma vector used.
  UncertainPoint Perturb(const UncertainPoint& point);

  /// Perturbs every point of `dataset` in place.
  void PerturbDataset(Dataset& dataset);

 private:
  std::vector<double> base_stddevs_;
  PerturbationOptions options_;
  std::vector<double> dimension_sigmas_;
  util::Rng rng_;
};

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_PERTURBATION_H_
