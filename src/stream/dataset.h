// In-memory labeled dataset container.

#ifndef UMICRO_STREAM_DATASET_H_
#define UMICRO_STREAM_DATASET_H_

#include <cstddef>
#include <set>
#include <vector>

#include "stream/point.h"

namespace umicro::stream {

/// An ordered collection of uncertain points with uniform dimensionality.
///
/// Datasets are produced by the synthetic generators (or the CSV loader)
/// and consumed by `VectorStream`. Order matters: the paper converts static
/// data sets into streams by taking input order as arrival order.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with fixed dimensionality.
  explicit Dataset(std::size_t dimensions) : dimensions_(dimensions) {}

  /// Appends a point; its dimensionality must match (first append fixes it
  /// when the dataset was default-constructed).
  void Add(UncertainPoint point);

  /// Number of points.
  std::size_t size() const { return points_.size(); }

  /// True when no points are stored.
  bool empty() const { return points_.empty(); }

  /// Dimensionality shared by all points (0 for an empty default dataset).
  std::size_t dimensions() const { return dimensions_; }

  /// Read access to point `i`.
  const UncertainPoint& operator[](std::size_t i) const { return points_[i]; }

  /// Mutable access to point `i` (used by the perturbation model).
  UncertainPoint& at(std::size_t i) { return points_[i]; }

  /// All points, in arrival order.
  const std::vector<UncertainPoint>& points() const { return points_; }

  /// Set of distinct labels present (excluding kUnlabeled).
  std::set<int> Labels() const;

  /// Reassigns arrival timestamps 0..n-1 in current order (uniform speed,
  /// as the paper does for the Forest Cover conversion).
  void AssignSequentialTimestamps();

 private:
  std::size_t dimensions_ = 0;
  std::vector<UncertainPoint> points_;
};

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_DATASET_H_
