#include "stream/dataset.h"

#include "util/check.h"

namespace umicro::stream {

void Dataset::Add(UncertainPoint point) {
  if (points_.empty() && dimensions_ == 0) {
    dimensions_ = point.dimensions();
  }
  UMICRO_CHECK_MSG(point.dimensions() == dimensions_,
                   "point has %zu dimensions, dataset has %zu",
                   point.dimensions(), dimensions_);
  if (point.has_errors()) {
    UMICRO_CHECK(point.errors.size() == dimensions_);
  }
  points_.push_back(std::move(point));
}

std::set<int> Dataset::Labels() const {
  std::set<int> labels;
  for (const auto& p : points_) {
    if (p.label != kUnlabeled) labels.insert(p.label);
  }
  return labels;
}

void Dataset::AssignSequentialTimestamps() {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    points_[i].timestamp = static_cast<double>(i);
  }
}

}  // namespace umicro::stream
