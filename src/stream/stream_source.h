// Abstract one-pass stream interface.

#ifndef UMICRO_STREAM_STREAM_SOURCE_H_
#define UMICRO_STREAM_STREAM_SOURCE_H_

#include <cstddef>
#include <optional>

#include "stream/point.h"

namespace umicro::stream {

/// A one-pass source of uncertain stream records.
///
/// Implementations hand out records in arrival order; a stream algorithm
/// may read each record at most once. `Next()` returns std::nullopt when
/// the stream is exhausted.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Returns the next record, or std::nullopt at end of stream.
  virtual std::optional<UncertainPoint> Next() = 0;

  /// Dimensionality of the records this source produces.
  virtual std::size_t dimensions() const = 0;

  /// Rewinds to the beginning where supported. Default: no-op returning
  /// false (true streams cannot be replayed).
  virtual bool Reset() { return false; }
};

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_STREAM_SOURCE_H_
