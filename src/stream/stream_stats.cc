#include "stream/stream_stats.h"

#include "stream/dataset.h"
#include "util/check.h"

namespace umicro::stream {

StreamStats::StreamStats(std::size_t dimensions)
    : accumulators_(dimensions) {
  UMICRO_CHECK(dimensions > 0);
}

void StreamStats::Add(const UncertainPoint& point) {
  UMICRO_CHECK(point.dimensions() == accumulators_.size());
  for (std::size_t j = 0; j < accumulators_.size(); ++j) {
    accumulators_[j].Add(point.values[j]);
  }
}

void StreamStats::AddAll(const Dataset& dataset) {
  for (const auto& point : dataset.points()) Add(point);
}

std::size_t StreamStats::count() const { return accumulators_[0].count(); }

double StreamStats::Mean(std::size_t j) const {
  UMICRO_CHECK(j < accumulators_.size());
  return accumulators_[j].Mean();
}

double StreamStats::Stddev(std::size_t j) const {
  UMICRO_CHECK(j < accumulators_.size());
  return accumulators_[j].PopulationStddev();
}

std::vector<double> StreamStats::Stddevs() const {
  std::vector<double> out(accumulators_.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = accumulators_[j].PopulationStddev();
  }
  return out;
}

}  // namespace umicro::stream
