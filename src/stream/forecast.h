// Forecast-based pseudo-streams with known forecast uncertainty.
//
// The paper's second motivating scenario (Section I, citing "On
// Futuristic Query Processing in Data Streams", EDBT 2006): quick
// statistical forecasts of a stream can be mined in place of the
// not-yet-arrived data, and "the statistical uncertainty in the
// forecasts is available". This module provides a per-dimension
// exponential-smoothing forecaster that tracks its own residual
// standard deviation online; the forecasted pseudo-record carries that
// residual stddev as its error vector, forming a valid uncertain stream.

#ifndef UMICRO_STREAM_FORECAST_H_
#define UMICRO_STREAM_FORECAST_H_

#include <cstddef>
#include <vector>

#include "stream/dataset.h"
#include "stream/point.h"
#include "util/math_utils.h"

namespace umicro::stream {

/// Configuration of the forecaster.
struct ForecastOptions {
  /// Exponential smoothing factor in (0, 1]; higher follows the stream
  /// more closely.
  double alpha = 0.2;
};

/// Per-dimension exponential smoothing with online residual tracking.
class ExponentialSmoothingForecaster {
 public:
  ExponentialSmoothingForecaster(std::size_t dimensions,
                                 ForecastOptions options);

  /// Folds the actual next record in: residuals (actual - forecast) are
  /// recorded, then the level is updated.
  void Observe(const UncertainPoint& point);

  /// One-step-ahead forecast as an uncertain record: values are the
  /// current smoothed levels, errors the per-dimension residual stddevs,
  /// `timestamp` and `label` taken from the arguments. Requires at least
  /// one observation.
  UncertainPoint Forecast(double timestamp,
                          int label = kUnlabeled) const;

  /// Number of records observed.
  std::size_t observations() const { return observations_; }

  /// Residual stddev along dimension `j` (0 before two observations).
  double ResidualStddev(std::size_t j) const;

 private:
  ForecastOptions options_;
  std::vector<double> level_;
  std::vector<util::WelfordAccumulator> residuals_;
  std::size_t observations_ = 0;
};

/// Converts a real stream into a forecasted pseudo-stream: record i of
/// the output is the forecaster's prediction of input record i (made
/// from records 0..i-1) with its forecast uncertainty; labels and
/// timestamps are carried over. The first record is passed through
/// as-is (no forecast exists yet).
Dataset MakeForecastStream(const Dataset& input,
                           const ForecastOptions& options);

}  // namespace umicro::stream

#endif  // UMICRO_STREAM_FORECAST_H_
