#include "stream/perturbation.h"

#include "util/check.h"

namespace umicro::stream {

Perturber::Perturber(std::vector<double> base_stddevs,
                     PerturbationOptions options)
    : base_stddevs_(std::move(base_stddevs)),
      options_(options),
      rng_(options.seed) {
  UMICRO_CHECK(!base_stddevs_.empty());
  UMICRO_CHECK(options_.eta >= 0.0);
  dimension_sigmas_.resize(base_stddevs_.size());
  for (std::size_t i = 0; i < base_stddevs_.size(); ++i) {
    UMICRO_CHECK(base_stddevs_[i] >= 0.0);
    dimension_sigmas_[i] =
        rng_.Uniform(0.0, 2.0 * options_.eta * base_stddevs_[i]);
  }
}

UncertainPoint Perturber::Perturb(const UncertainPoint& point) {
  UMICRO_CHECK(point.dimensions() == base_stddevs_.size());
  UncertainPoint out = point;
  out.errors.resize(point.dimensions());
  for (std::size_t i = 0; i < point.dimensions(); ++i) {
    const double sigma =
        options_.model == ErrorModel::kPerDimensionFixed
            ? dimension_sigmas_[i]
            : rng_.Uniform(0.0, 2.0 * options_.eta * base_stddevs_[i]);
    out.values[i] += rng_.Gaussian(0.0, sigma);
    out.errors[i] = sigma;
  }
  return out;
}

void Perturber::PerturbDataset(Dataset& dataset) {
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    dataset.at(i) = Perturb(dataset[i]);
  }
}

}  // namespace umicro::stream
