// Text serialization of running algorithm/engine state
// (checkpoint/restore across process restarts).
//
// Three formats, all versioned, line-oriented, full double precision:
//   "ustate 1"       -- one UMicro instance (algorithm state only).
//   "csstate 1"      -- one CluStream baseline instance.
//   "ucheckpoint 2"  -- a full engine (core::EngineState): algorithm
//                       state(s), merged global view, snapshot store,
//                       stream clock, and counter/gauge metric cells,
//                       protected by an FNV-1a body checksum in the
//                       header line.
//
// All parsers treat their input as hostile: truncation, bit flips,
// huge counts, and non-numeric bytes yield std::nullopt -- never a
// crash, CHECK failure, or unbounded allocation (untrusted counts are
// capped before any reserve/resize).

#ifndef UMICRO_IO_STATE_IO_H_
#define UMICRO_IO_STATE_IO_H_

#include <cstdint>
#include <optional>
#include <string>

#include "baseline/clustream.h"
#include "core/engine.h"
#include "core/umicro.h"

namespace umicro::io {

/// FNV-1a over `text` -- the integrity checksum every versioned format
/// here embeds in its header (and the fleet manifest reuses per tenant
/// record).
std::uint64_t Fnv1a(const std::string& text);

/// Writes `text` to `path` atomically: temp file + fsync + rename, then
/// a best-effort fsync of the containing directory so the rename itself
/// is durable. A crash at any instant leaves either the old file or the
/// new one at `path`, never a torn mix.
bool WriteTextFileAtomic(const std::string& text, const std::string& path);

/// Reads a whole file; std::nullopt when it cannot be opened.
std::optional<std::string> ReadWholeFile(const std::string& path);

/// Serializes a checkpoint (versioned, line-oriented, full double
/// precision; round-trips exactly).
std::string UMicroStateToString(const core::UMicroState& state);

/// Parses text produced by UMicroStateToString. Returns std::nullopt on
/// structural or numeric errors.
std::optional<core::UMicroState> ParseUMicroState(const std::string& text);

/// Writes a checkpoint file. Returns false on I/O failure.
bool WriteUMicroStateFile(const core::UMicroState& state,
                          const std::string& path);

/// Reads a checkpoint file.
std::optional<core::UMicroState> ReadUMicroStateFile(
    const std::string& path);

/// Serializes a CluStream checkpoint (same conventions).
std::string CluStreamStateToString(const baseline::CluStreamState& state);

/// Parses text produced by CluStreamStateToString.
std::optional<baseline::CluStreamState> ParseCluStreamState(
    const std::string& text);

/// Writes / reads a CluStream checkpoint file.
bool WriteCluStreamStateFile(const baseline::CluStreamState& state,
                             const std::string& path);
std::optional<baseline::CluStreamState> ReadCluStreamStateFile(
    const std::string& path);

/// Canonical text dump of a micro-cluster set ("uclusters 1"): one line
/// per cluster in the codec's full-precision format. Two cluster sets
/// are bitwise equal iff their dumps are byte-equal, which is how the
/// distributed tier proves its merged view matches a single-process run.
std::string MicroClustersToString(
    const std::vector<core::MicroCluster>& clusters, std::size_t dimensions);

/// Atomically writes the canonical dump to `path` (tmp + fsync + rename).
bool WriteMicroClustersFile(const std::vector<core::MicroCluster>& clusters,
                            std::size_t dimensions, const std::string& path);

/// Serializes a full-engine checkpoint ("ucheckpoint 2").
std::string EngineStateToString(const core::EngineState& state);

/// Parses text produced by EngineStateToString, verifying the header
/// checksum against the body first (any corruption is rejected up
/// front).
std::optional<core::EngineState> ParseEngineState(const std::string& text);

/// Atomically writes an engine checkpoint: the text lands in `path`.tmp,
/// is fsync'd, and renamed over `path`, so a crash mid-write can never
/// leave a torn file at `path`. Returns false on I/O failure or when the
/// "checkpoint.write_fail" failpoint triggers.
bool WriteEngineStateFile(const core::EngineState& state,
                          const std::string& path);

/// Reads and parses an engine checkpoint file.
std::optional<core::EngineState> ReadEngineStateFile(const std::string& path);

}  // namespace umicro::io

#endif  // UMICRO_IO_STATE_IO_H_
