// Text serialization of a running UMicro instance's state
// (checkpoint/restore across process restarts).

#ifndef UMICRO_IO_STATE_IO_H_
#define UMICRO_IO_STATE_IO_H_

#include <optional>
#include <string>

#include "baseline/clustream.h"
#include "core/umicro.h"

namespace umicro::io {

/// Serializes a checkpoint (versioned, line-oriented, full double
/// precision; round-trips exactly).
std::string UMicroStateToString(const core::UMicroState& state);

/// Parses text produced by UMicroStateToString. Returns std::nullopt on
/// structural or numeric errors.
std::optional<core::UMicroState> ParseUMicroState(const std::string& text);

/// Writes a checkpoint file. Returns false on I/O failure.
bool WriteUMicroStateFile(const core::UMicroState& state,
                          const std::string& path);

/// Reads a checkpoint file.
std::optional<core::UMicroState> ReadUMicroStateFile(
    const std::string& path);

/// Serializes a CluStream checkpoint (same conventions).
std::string CluStreamStateToString(const baseline::CluStreamState& state);

/// Parses text produced by CluStreamStateToString.
std::optional<baseline::CluStreamState> ParseCluStreamState(
    const std::string& text);

/// Writes / reads a CluStream checkpoint file.
bool WriteCluStreamStateFile(const baseline::CluStreamState& state,
                             const std::string& path);
std::optional<baseline::CluStreamState> ReadCluStreamStateFile(
    const std::string& path);

}  // namespace umicro::io

#endif  // UMICRO_IO_STATE_IO_H_
