#include "io/csv_dataset.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/check.h"

namespace umicro::io {

namespace {

/// Splits one CSV line on commas (no quoted-comma support needed for the
/// numeric data this loader targets).
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

/// Column roles derived from the header.
struct ColumnPlan {
  std::vector<std::size_t> value_columns;
  std::vector<std::size_t> error_columns;
  int timestamp_column = -1;
  int label_column = -1;
};

ColumnPlan PlanFromHeader(const std::vector<std::string>& header) {
  ColumnPlan plan;
  for (std::size_t i = 0; i < header.size(); ++i) {
    const std::string& name = header[i];
    if (name.rfind("err_", 0) == 0) {
      plan.error_columns.push_back(i);
    } else if (name == "timestamp") {
      plan.timestamp_column = static_cast<int>(i);
    } else if (name == "label") {
      plan.label_column = static_cast<int>(i);
    } else {
      plan.value_columns.push_back(i);
    }
  }
  return plan;
}

}  // namespace

std::optional<LoadedDataset> ParseCsvDataset(const std::string& text,
                                             const CsvReadOptions& options) {
  std::istringstream input(text);
  std::string line;

  ColumnPlan plan;
  bool plan_ready = false;
  if (options.has_header) {
    if (!std::getline(input, line)) return std::nullopt;
    plan = PlanFromHeader(SplitLine(line));
    if (plan.value_columns.empty()) return std::nullopt;
    if (!plan.error_columns.empty() &&
        plan.error_columns.size() != plan.value_columns.size()) {
      return std::nullopt;
    }
    plan_ready = true;
  }

  LoadedDataset result;
  std::map<std::string, int> label_ids;
  std::size_t expected_cells = 0;
  std::size_t row_index = 0;

  while (std::getline(input, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitLine(line);
    if (!plan_ready) {
      // Headerless: all columns are values, except an optional trailing
      // label column.
      const std::size_t values =
          options.last_column_is_label && cells.size() > 1
              ? cells.size() - 1
              : cells.size();
      for (std::size_t i = 0; i < values; ++i) plan.value_columns.push_back(i);
      if (options.last_column_is_label && cells.size() > 1) {
        plan.label_column = static_cast<int>(cells.size() - 1);
      }
      plan_ready = true;
    }
    if (expected_cells == 0) expected_cells = cells.size();
    if (cells.size() != expected_cells) {
      // Ragged row: skip it and keep loading -- real exports contain
      // the occasional truncated line and one must not kill the file.
      ++result.stats.short_rows;
      continue;
    }

    stream::UncertainPoint point;
    point.values.resize(plan.value_columns.size());
    bool numeric_ok = true;
    for (std::size_t v = 0; numeric_ok && v < plan.value_columns.size();
         ++v) {
      numeric_ok = ParseDouble(cells[plan.value_columns[v]], &point.values[v]);
    }
    if (numeric_ok && !plan.error_columns.empty()) {
      point.errors.resize(plan.error_columns.size());
      for (std::size_t e = 0; numeric_ok && e < plan.error_columns.size();
           ++e) {
        numeric_ok =
            ParseDouble(cells[plan.error_columns[e]], &point.errors[e]);
      }
    }
    if (numeric_ok && plan.timestamp_column >= 0) {
      numeric_ok =
          ParseDouble(cells[static_cast<std::size_t>(plan.timestamp_column)],
                      &point.timestamp);
    } else if (plan.timestamp_column < 0) {
      point.timestamp = static_cast<double>(row_index);
    }
    if (!numeric_ok) {
      ++result.stats.bad_numeric_rows;
      continue;
    }
    if (plan.label_column >= 0) {
      const std::string& raw =
          cells[static_cast<std::size_t>(plan.label_column)];
      auto [it, inserted] =
          label_ids.emplace(raw, static_cast<int>(label_ids.size()));
      if (inserted) result.label_names.push_back(raw);
      point.label = it->second;
    }

    result.dataset.Add(std::move(point));
    ++row_index;
    if (options.max_rows != 0 && row_index >= options.max_rows) break;
  }

  if (result.dataset.empty()) return std::nullopt;
  result.stats.rows_loaded = result.dataset.size();
  return result;
}

std::optional<LoadedDataset> ReadCsvDataset(const std::string& path,
                                            const CsvReadOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvDataset(buffer.str(), options);
}

std::string DatasetToCsv(const stream::Dataset& dataset) {
  bool any_errors = false;
  for (const auto& point : dataset.points()) {
    if (point.has_errors()) {
      any_errors = true;
      break;
    }
  }

  std::ostringstream out;
  for (std::size_t j = 0; j < dataset.dimensions(); ++j) {
    if (j > 0) out << ',';
    out << 'v' << j;
  }
  if (any_errors) {
    for (std::size_t j = 0; j < dataset.dimensions(); ++j) {
      out << ",err_" << j;
    }
  }
  out << ",timestamp,label\n";

  char buffer[64];
  for (const auto& point : dataset.points()) {
    for (std::size_t j = 0; j < dataset.dimensions(); ++j) {
      if (j > 0) out << ',';
      std::snprintf(buffer, sizeof(buffer), "%.17g", point.values[j]);
      out << buffer;
    }
    if (any_errors) {
      for (std::size_t j = 0; j < dataset.dimensions(); ++j) {
        std::snprintf(buffer, sizeof(buffer), "%.17g", point.ErrorAt(j));
        out << ',' << buffer;
      }
    }
    std::snprintf(buffer, sizeof(buffer), "%.17g", point.timestamp);
    out << ',' << buffer << ',' << point.label << '\n';
  }
  return out.str();
}

bool WriteCsvDataset(const stream::Dataset& dataset,
                     const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << DatasetToCsv(dataset);
  return file.good();
}

}  // namespace umicro::io
