// CSV import/export of labeled uncertain datasets.
//
// Lets users substitute the real KDD'99 / Forest CoverType exports for
// the synthetic stand-ins: load the file, optionally perturb it with
// stream::Perturber, and run the identical experiment code path.
//
// Format (with header):
//   v0,v1,...,v{d-1}[,err_0,...,err_{d-1}][,timestamp][,label]
// Columns named `err_*` populate the error vector, `timestamp` the
// arrival time, `label` the ground-truth class (string labels are mapped
// to dense integer ids in first-appearance order). All remaining columns
// are parsed as double-valued attributes. Without a header every column
// is a value except an optional trailing label selected by the options.

#ifndef UMICRO_IO_CSV_DATASET_H_
#define UMICRO_IO_CSV_DATASET_H_

#include <optional>
#include <string>
#include <vector>

#include "io/load_stats.h"
#include "stream/dataset.h"

namespace umicro::io {

/// Options controlling CSV parsing.
struct CsvReadOptions {
  /// Whether the first line is a header naming the columns.
  bool has_header = true;
  /// Without a header: treat the last column as the label when true.
  bool last_column_is_label = true;
  /// Maximum rows to read (0 = unlimited).
  std::size_t max_rows = 0;
};

/// A loaded dataset plus the label-name dictionary (index = label id)
/// and the malformed-row accounting.
struct LoadedDataset {
  stream::Dataset dataset;
  std::vector<std::string> label_names;
  DatasetLoadStats stats;
};

/// Parses CSV text into a dataset. Malformed rows (ragged rows,
/// unparsable numbers in value columns) are skipped and counted in the
/// returned stats; std::nullopt is reserved for a file that yields no
/// usable data at all (unreadable, bad header, zero valid rows).
std::optional<LoadedDataset> ParseCsvDataset(const std::string& text,
                                             const CsvReadOptions& options);

/// Reads and parses a CSV file. Returns std::nullopt when the file
/// cannot be read or parsed.
std::optional<LoadedDataset> ReadCsvDataset(const std::string& path,
                                            const CsvReadOptions& options);

/// Serializes `dataset` as CSV text with header
/// v0..v{d-1},err_0..err_{d-1},timestamp,label (error columns only when
/// any point carries errors).
std::string DatasetToCsv(const stream::Dataset& dataset);

/// Writes `dataset` to `path`. Returns false on I/O failure.
bool WriteCsvDataset(const stream::Dataset& dataset,
                     const std::string& path);

}  // namespace umicro::io

#endif  // UMICRO_IO_CSV_DATASET_H_
