#include "io/snapshot_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "io/state_io.h"

namespace umicro::io {

namespace {
constexpr int kFormatVersion = 1;
constexpr int kSpillFormatVersion = 1;

void AppendDouble(std::ostringstream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}
}  // namespace

std::string SnapshotToString(const core::Snapshot& snapshot) {
  std::ostringstream out;
  out << "usnap " << kFormatVersion << "\n";
  out << "time ";
  AppendDouble(out, snapshot.time);
  out << "\n";
  const std::size_t dims = snapshot.clusters.empty()
                               ? 0
                               : snapshot.clusters[0].ecf.dimensions();
  out << "dims " << dims << " clusters " << snapshot.clusters.size() << "\n";
  for (const auto& state : snapshot.clusters) {
    out << state.id << ' ';
    AppendDouble(out, state.creation_time);
    out << ' ';
    AppendDouble(out, state.ecf.weight());
    out << ' ';
    AppendDouble(out, state.ecf.last_update_time());
    for (double v : state.ecf.cf1()) {
      out << ' ';
      AppendDouble(out, v);
    }
    for (double v : state.ecf.cf2()) {
      out << ' ';
      AppendDouble(out, v);
    }
    for (double v : state.ecf.ef2()) {
      out << ' ';
      AppendDouble(out, v);
    }
    out << '\n';
  }
  return out.str();
}

std::optional<core::Snapshot> ParseSnapshot(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "usnap" ||
      version != kFormatVersion) {
    return std::nullopt;
  }

  core::Snapshot snapshot;
  std::string key;
  if (!(in >> key >> snapshot.time) || key != "time") return std::nullopt;

  std::size_t dims = 0;
  std::size_t count = 0;
  std::string clusters_key;
  if (!(in >> key >> dims >> clusters_key >> count) || key != "dims" ||
      clusters_key != "clusters") {
    return std::nullopt;
  }
  if (count > 0 && dims == 0) return std::nullopt;

  snapshot.clusters.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    core::MicroClusterState state;
    double weight = 0.0;
    double last_update = 0.0;
    if (!(in >> state.id >> state.creation_time >> weight >> last_update)) {
      return std::nullopt;
    }
    std::vector<double> cf1(dims), cf2(dims), ef2(dims);
    for (double& v : cf1) {
      if (!(in >> v)) return std::nullopt;
    }
    for (double& v : cf2) {
      if (!(in >> v)) return std::nullopt;
    }
    for (double& v : ef2) {
      if (!(in >> v)) return std::nullopt;
    }
    state.ecf = core::ErrorClusterFeature::FromRaw(
        std::move(cf1), std::move(cf2), std::move(ef2), weight, last_update);
    snapshot.clusters.push_back(std::move(state));
  }
  return snapshot;
}

bool WriteSnapshotFile(const core::Snapshot& snapshot,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << SnapshotToString(snapshot);
  return file.good();
}

std::optional<core::Snapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseSnapshot(buffer.str());
}

std::string SpillFrameToString(const core::Snapshot& snapshot) {
  const std::string body = SnapshotToString(snapshot);
  char header[64];
  std::snprintf(header, sizeof(header), "usnapf %d %016llx\n",
                kSpillFormatVersion,
                static_cast<unsigned long long>(Fnv1a(body)));
  return std::string(header) + body;
}

std::optional<core::Snapshot> ParseSpillFrame(const std::string& text) {
  const std::size_t newline = text.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  std::istringstream header(text.substr(0, newline));
  std::string magic;
  int version = 0;
  std::string checksum_hex;
  if (!(header >> magic >> version >> checksum_hex) || magic != "usnapf" ||
      version != kSpillFormatVersion) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long checksum =
      std::strtoull(checksum_hex.c_str(), &end, 16);
  if (errno != 0 || end != checksum_hex.c_str() + checksum_hex.size()) {
    return std::nullopt;
  }
  const std::string body = text.substr(newline + 1);
  if (checksum != Fnv1a(body)) return std::nullopt;
  return ParseSnapshot(body);
}

bool WriteSpillFrameFile(const core::Snapshot& snapshot,
                         const std::string& path) {
  return WriteTextFileAtomic(SpillFrameToString(snapshot), path);
}

std::optional<core::Snapshot> ReadSpillFrameFile(const std::string& path) {
  const std::optional<std::string> text = ReadWholeFile(path);
  if (!text.has_value()) return std::nullopt;
  return ParseSpillFrame(*text);
}

core::SnapshotSpillCodec MakeSnapshotSpillCodec() {
  core::SnapshotSpillCodec codec;
  codec.write = [](const core::Snapshot& snapshot, const std::string& path) {
    return WriteSpillFrameFile(snapshot, path);
  };
  codec.read = [](const std::string& path) {
    return ReadSpillFrameFile(path);
  };
  return codec;
}

}  // namespace umicro::io
