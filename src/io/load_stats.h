// Malformed-row accounting shared by the dataset loaders.
//
// Real exports (KDD'99 dumps, sensor logs) contain ragged and
// non-numeric rows; the loaders skip those instead of rejecting the
// whole file, and report exactly how much was skipped here so callers
// (the CLI routes these into its metrics registry) can tell a clean
// load from a degraded one.

#ifndef UMICRO_IO_LOAD_STATS_H_
#define UMICRO_IO_LOAD_STATS_H_

#include <cstddef>

namespace umicro::io {

/// Per-load row accounting of one dataset file.
struct DatasetLoadStats {
  /// Rows successfully converted into points.
  std::size_t rows_loaded = 0;
  /// Rows skipped for a cell-count mismatch (ragged rows).
  std::size_t short_rows = 0;
  /// Rows skipped for an unparsable numeric cell (or, in ARFF, a label
  /// value outside the declared nominal domain).
  std::size_t bad_numeric_rows = 0;

  /// Total rows skipped for any reason.
  std::size_t rows_skipped() const { return short_rows + bad_numeric_rows; }
};

}  // namespace umicro::io

#endif  // UMICRO_IO_LOAD_STATS_H_
