#include "io/state_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace umicro::io {

namespace {
constexpr int kFormatVersion = 1;

void AppendDouble(std::ostringstream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}
}  // namespace

std::string UMicroStateToString(const core::UMicroState& state) {
  std::ostringstream out;
  const std::size_t dims = state.welford.size();
  out << "ustate " << kFormatVersion << "\n";
  out << "dims " << dims << "\n";
  out << "counters " << state.next_cluster_id << ' '
      << state.points_processed << ' ' << state.clusters_created << ' '
      << state.clusters_evicted << ' ' << state.clusters_merged << "\n";
  out << "decay ";
  AppendDouble(out, state.last_decay_time);
  out << ' ' << (state.decay_clock_started ? 1 : 0) << "\n";
  for (const auto& w : state.welford) {
    out << "welford " << w.count << ' ';
    AppendDouble(out, w.mean);
    out << ' ';
    AppendDouble(out, w.m2);
    out << "\n";
  }
  out << "variances";
  for (double v : state.global_variances) {
    out << ' ';
    AppendDouble(out, v);
  }
  out << "\n";
  out << "clusters " << state.clusters.size() << "\n";
  for (const auto& cluster : state.clusters) {
    out << cluster.id << ' ';
    AppendDouble(out, cluster.creation_time);
    out << ' ';
    AppendDouble(out, cluster.ecf.weight());
    out << ' ';
    AppendDouble(out, cluster.ecf.last_update_time());
    for (double v : cluster.ecf.cf1()) {
      out << ' ';
      AppendDouble(out, v);
    }
    for (double v : cluster.ecf.cf2()) {
      out << ' ';
      AppendDouble(out, v);
    }
    for (double v : cluster.ecf.ef2()) {
      out << ' ';
      AppendDouble(out, v);
    }
    out << " labels " << cluster.labels.size();
    for (const auto& [label, weight] : cluster.labels) {
      out << ' ' << label << ' ';
      AppendDouble(out, weight);
    }
    out << "\n";
  }
  return out.str();
}

std::optional<core::UMicroState> ParseUMicroState(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "ustate" ||
      version != kFormatVersion) {
    return std::nullopt;
  }

  core::UMicroState state;
  std::string key;
  std::size_t dims = 0;
  if (!(in >> key >> dims) || key != "dims" || dims == 0) {
    return std::nullopt;
  }
  if (!(in >> key >> state.next_cluster_id >> state.points_processed >>
        state.clusters_created >> state.clusters_evicted >>
        state.clusters_merged) ||
      key != "counters") {
    return std::nullopt;
  }
  int started = 0;
  if (!(in >> key >> state.last_decay_time >> started) || key != "decay") {
    return std::nullopt;
  }
  state.decay_clock_started = started != 0;

  state.welford.resize(dims);
  for (auto& w : state.welford) {
    if (!(in >> key >> w.count >> w.mean >> w.m2) || key != "welford") {
      return std::nullopt;
    }
    if (w.m2 < 0.0) return std::nullopt;
  }
  if (!(in >> key) || key != "variances") return std::nullopt;
  state.global_variances.resize(dims);
  for (double& v : state.global_variances) {
    if (!(in >> v)) return std::nullopt;
  }

  std::size_t cluster_count = 0;
  if (!(in >> key >> cluster_count) || key != "clusters") {
    return std::nullopt;
  }
  state.clusters.reserve(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    core::MicroCluster cluster;
    double weight = 0.0;
    double last_update = 0.0;
    if (!(in >> cluster.id >> cluster.creation_time >> weight >>
          last_update)) {
      return std::nullopt;
    }
    if (weight < 0.0) return std::nullopt;
    std::vector<double> cf1(dims), cf2(dims), ef2(dims);
    for (double& v : cf1) {
      if (!(in >> v)) return std::nullopt;
    }
    for (double& v : cf2) {
      if (!(in >> v)) return std::nullopt;
    }
    for (double& v : ef2) {
      if (!(in >> v)) return std::nullopt;
    }
    cluster.ecf = core::ErrorClusterFeature::FromRaw(
        std::move(cf1), std::move(cf2), std::move(ef2), weight, last_update);
    std::size_t label_count = 0;
    if (!(in >> key >> label_count) || key != "labels") {
      return std::nullopt;
    }
    for (std::size_t l = 0; l < label_count; ++l) {
      int label = 0;
      double label_weight = 0.0;
      if (!(in >> label >> label_weight)) return std::nullopt;
      cluster.labels[label] = label_weight;
    }
    state.clusters.push_back(std::move(cluster));
  }
  return state;
}

bool WriteUMicroStateFile(const core::UMicroState& state,
                          const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << UMicroStateToString(state);
  return file.good();
}

std::optional<core::UMicroState> ReadUMicroStateFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseUMicroState(buffer.str());
}

std::string CluStreamStateToString(const baseline::CluStreamState& state) {
  std::ostringstream out;
  const std::size_t dims =
      state.clusters.empty() ? 0 : state.clusters[0].cf1.size();
  out << "csstate " << kFormatVersion << "\n";
  out << "dims " << dims << "\n";
  out << "counters " << state.next_cluster_id << ' '
      << state.points_processed << ' ' << state.clusters_deleted << ' '
      << state.clusters_merged << "\n";
  out << "clusters " << state.clusters.size() << "\n";
  for (const auto& cluster : state.clusters) {
    out << "ids " << cluster.ids.size();
    for (std::uint64_t id : cluster.ids) out << ' ' << id;
    out << '\n';
    AppendDouble(out, cluster.creation_time);
    out << ' ';
    AppendDouble(out, cluster.cf1_time);
    out << ' ';
    AppendDouble(out, cluster.cf2_time);
    out << ' ';
    AppendDouble(out, cluster.count);
    out << ' ';
    AppendDouble(out, cluster.last_update_time);
    for (double v : cluster.cf1) {
      out << ' ';
      AppendDouble(out, v);
    }
    for (double v : cluster.cf2) {
      out << ' ';
      AppendDouble(out, v);
    }
    out << " labels " << cluster.labels.size();
    for (const auto& [label, weight] : cluster.labels) {
      out << ' ' << label << ' ';
      AppendDouble(out, weight);
    }
    out << '\n';
  }
  return out.str();
}

std::optional<baseline::CluStreamState> ParseCluStreamState(
    const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "csstate" ||
      version != kFormatVersion) {
    return std::nullopt;
  }
  baseline::CluStreamState state;
  std::string key;
  std::size_t dims = 0;
  if (!(in >> key >> dims) || key != "dims") return std::nullopt;
  if (!(in >> key >> state.next_cluster_id >> state.points_processed >>
        state.clusters_deleted >> state.clusters_merged) ||
      key != "counters") {
    return std::nullopt;
  }
  std::size_t cluster_count = 0;
  if (!(in >> key >> cluster_count) || key != "clusters") {
    return std::nullopt;
  }
  if (cluster_count > 0 && dims == 0) return std::nullopt;
  state.clusters.reserve(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    baseline::CluStreamCluster cluster;
    std::size_t id_count = 0;
    if (!(in >> key >> id_count) || key != "ids" || id_count == 0) {
      return std::nullopt;
    }
    cluster.ids.resize(id_count);
    for (std::uint64_t& id : cluster.ids) {
      if (!(in >> id)) return std::nullopt;
    }
    if (!(in >> cluster.creation_time >> cluster.cf1_time >>
          cluster.cf2_time >> cluster.count >>
          cluster.last_update_time)) {
      return std::nullopt;
    }
    if (cluster.count <= 0.0) return std::nullopt;
    cluster.cf1.resize(dims);
    cluster.cf2.resize(dims);
    for (double& v : cluster.cf1) {
      if (!(in >> v)) return std::nullopt;
    }
    for (double& v : cluster.cf2) {
      if (!(in >> v)) return std::nullopt;
    }
    std::size_t label_count = 0;
    if (!(in >> key >> label_count) || key != "labels") {
      return std::nullopt;
    }
    for (std::size_t l = 0; l < label_count; ++l) {
      int label = 0;
      double weight = 0.0;
      if (!(in >> label >> weight)) return std::nullopt;
      cluster.labels[label] = weight;
    }
    state.clusters.push_back(std::move(cluster));
  }
  return state;
}

bool WriteCluStreamStateFile(const baseline::CluStreamState& state,
                             const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << CluStreamStateToString(state);
  return file.good();
}

std::optional<baseline::CluStreamState> ReadCluStreamStateFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCluStreamState(buffer.str());
}

}  // namespace umicro::io
