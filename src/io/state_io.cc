#include "io/state_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/failpoints.h"
#include "util/paths.h"

namespace umicro::io {

namespace {
constexpr int kFormatVersion = 1;
constexpr int kCheckpointVersion = 2;

// Hard caps on counts read from untrusted bytes: large enough for any
// real deployment, small enough that a corrupted count can no longer
// drive reserve/resize into an OOM before the parse fails.
constexpr std::size_t kMaxDims = std::size_t{1} << 16;
constexpr std::size_t kMaxClusters = std::size_t{1} << 20;
constexpr std::size_t kMaxLabels = std::size_t{1} << 20;
constexpr std::size_t kMaxIds = std::size_t{1} << 20;
constexpr std::size_t kMaxShards = std::size_t{1} << 10;
constexpr std::size_t kMaxOrders = 64;
constexpr std::size_t kMaxSnapshotsPerOrder = std::size_t{1} << 20;
constexpr std::size_t kMaxMetricCells = std::size_t{1} << 20;

void AppendDouble(std::ostringstream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

/// Extracts one double, rejecting NaN/Inf (no serialized state
/// legitimately contains them, and downstream math assumes finiteness).
bool ReadFinite(std::istream& in, double* out) {
  double value = 0.0;
  if (!(in >> value) || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

}  // namespace

std::uint64_t Fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

bool WriteTextFileAtomic(const std::string& text, const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  const char* data = text.data();
  std::size_t remaining = text.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  const std::string dir = util::ParentDirectory(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

std::optional<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

namespace {

void AppendMicroCluster(std::ostringstream& out,
                        const core::MicroCluster& cluster) {
  out << cluster.id << ' ';
  AppendDouble(out, cluster.creation_time);
  out << ' ';
  AppendDouble(out, cluster.ecf.weight());
  out << ' ';
  AppendDouble(out, cluster.ecf.last_update_time());
  for (double v : cluster.ecf.cf1()) {
    out << ' ';
    AppendDouble(out, v);
  }
  for (double v : cluster.ecf.cf2()) {
    out << ' ';
    AppendDouble(out, v);
  }
  for (double v : cluster.ecf.ef2()) {
    out << ' ';
    AppendDouble(out, v);
  }
  out << " labels " << cluster.labels.size();
  for (const auto& [label, weight] : cluster.labels) {
    out << ' ' << label << ' ';
    AppendDouble(out, weight);
  }
  out << "\n";
}

bool ParseMicroCluster(std::istream& in, std::size_t dims,
                       core::MicroCluster* out) {
  core::MicroCluster cluster;
  double weight = 0.0;
  double last_update = 0.0;
  if (!(in >> cluster.id) || !ReadFinite(in, &cluster.creation_time) ||
      !ReadFinite(in, &weight) || !ReadFinite(in, &last_update)) {
    return false;
  }
  if (weight < 0.0) return false;
  std::vector<double> cf1(dims), cf2(dims), ef2(dims);
  for (double& v : cf1) {
    if (!ReadFinite(in, &v)) return false;
  }
  for (double& v : cf2) {
    if (!ReadFinite(in, &v)) return false;
  }
  for (double& v : ef2) {
    if (!ReadFinite(in, &v)) return false;
  }
  cluster.ecf = core::ErrorClusterFeature::FromRaw(
      std::move(cf1), std::move(cf2), std::move(ef2), weight, last_update);
  std::string key;
  std::size_t label_count = 0;
  if (!(in >> key >> label_count) || key != "labels" ||
      label_count > kMaxLabels) {
    return false;
  }
  for (std::size_t l = 0; l < label_count; ++l) {
    int label = 0;
    double label_weight = 0.0;
    if (!(in >> label) || !ReadFinite(in, &label_weight)) return false;
    cluster.labels[label] = label_weight;
  }
  *out = std::move(cluster);
  return true;
}

void AppendClusterState(std::ostringstream& out,
                        const core::MicroClusterState& state) {
  out << state.id << ' ';
  AppendDouble(out, state.creation_time);
  out << ' ';
  AppendDouble(out, state.ecf.weight());
  out << ' ';
  AppendDouble(out, state.ecf.last_update_time());
  for (double v : state.ecf.cf1()) {
    out << ' ';
    AppendDouble(out, v);
  }
  for (double v : state.ecf.cf2()) {
    out << ' ';
    AppendDouble(out, v);
  }
  for (double v : state.ecf.ef2()) {
    out << ' ';
    AppendDouble(out, v);
  }
  out << "\n";
}

bool ParseClusterState(std::istream& in, std::size_t dims,
                       core::MicroClusterState* out) {
  core::MicroClusterState state;
  double weight = 0.0;
  double last_update = 0.0;
  if (!(in >> state.id) || !ReadFinite(in, &state.creation_time) ||
      !ReadFinite(in, &weight) || !ReadFinite(in, &last_update)) {
    return false;
  }
  if (weight < 0.0) return false;
  std::vector<double> cf1(dims), cf2(dims), ef2(dims);
  for (double& v : cf1) {
    if (!ReadFinite(in, &v)) return false;
  }
  for (double& v : cf2) {
    if (!ReadFinite(in, &v)) return false;
  }
  for (double& v : ef2) {
    if (!ReadFinite(in, &v)) return false;
  }
  state.ecf = core::ErrorClusterFeature::FromRaw(
      std::move(cf1), std::move(cf2), std::move(ef2), weight, last_update);
  *out = std::move(state);
  return true;
}

void AppendUMicroState(std::ostringstream& out,
                       const core::UMicroState& state) {
  const std::size_t dims = state.welford.size();
  out << "ustate " << kFormatVersion << "\n";
  out << "dims " << dims << "\n";
  out << "counters " << state.next_cluster_id << ' '
      << state.points_processed << ' ' << state.clusters_created << ' '
      << state.clusters_evicted << ' ' << state.clusters_merged << "\n";
  out << "decay ";
  AppendDouble(out, state.last_decay_time);
  out << ' ' << (state.decay_clock_started ? 1 : 0) << "\n";
  for (const auto& w : state.welford) {
    out << "welford " << w.count << ' ';
    AppendDouble(out, w.mean);
    out << ' ';
    AppendDouble(out, w.m2);
    out << "\n";
  }
  out << "variances";
  for (double v : state.global_variances) {
    out << ' ';
    AppendDouble(out, v);
  }
  out << "\n";
  out << "clusters " << state.clusters.size() << "\n";
  for (const auto& cluster : state.clusters) {
    AppendMicroCluster(out, cluster);
  }
}

bool ParseUMicroStateBody(std::istream& in, core::UMicroState* out) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "ustate" ||
      version != kFormatVersion) {
    return false;
  }

  core::UMicroState state;
  std::string key;
  std::size_t dims = 0;
  if (!(in >> key >> dims) || key != "dims" || dims == 0 ||
      dims > kMaxDims) {
    return false;
  }
  if (!(in >> key >> state.next_cluster_id >> state.points_processed >>
        state.clusters_created >> state.clusters_evicted >>
        state.clusters_merged) ||
      key != "counters") {
    return false;
  }
  int started = 0;
  if (!(in >> key) || key != "decay" ||
      !ReadFinite(in, &state.last_decay_time) || !(in >> started)) {
    return false;
  }
  state.decay_clock_started = started != 0;

  state.welford.resize(dims);
  for (auto& w : state.welford) {
    if (!(in >> key >> w.count) || key != "welford" ||
        !ReadFinite(in, &w.mean) || !ReadFinite(in, &w.m2)) {
      return false;
    }
    if (w.m2 < 0.0) return false;
  }
  if (!(in >> key) || key != "variances") return false;
  state.global_variances.resize(dims);
  for (double& v : state.global_variances) {
    if (!ReadFinite(in, &v) || v < 0.0) return false;
  }

  std::size_t cluster_count = 0;
  if (!(in >> key >> cluster_count) || key != "clusters" ||
      cluster_count > kMaxClusters) {
    return false;
  }
  state.clusters.reserve(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    core::MicroCluster cluster;
    if (!ParseMicroCluster(in, dims, &cluster)) return false;
    state.clusters.push_back(std::move(cluster));
  }
  *out = std::move(state);
  return true;
}

const char* FrameEncodingTag(core::FrameEncoding encoding) {
  switch (encoding) {
    case core::FrameEncoding::kFull: return "full";
    case core::FrameEncoding::kDelta: return "delta";
    case core::FrameEncoding::kQuantized: return "quant";
    case core::FrameEncoding::kSpilled: return "spill";
  }
  return "full";
}

/// Floats are printed with 9 significant digits, which round-trips
/// float32 exactly through the double-typed text parse.
void AppendFloat(std::ostringstream& out, float value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", static_cast<double>(value));
  out << buffer;
}

/// Serializes the tiered store: per-frame lines carrying the frame's
/// tick, time, encoding, cluster count, and dimensionality, with an
/// encoding-specific payload. Delta frames ship only their changed
/// clusters, which is what shrinks per-tenant checkpoint bytes.
void AppendSnapshotStoreState(std::ostringstream& out,
                              const core::SnapshotStoreState& store) {
  out << "store " << store.last_tick << ' ' << store.alpha << ' ' << store.l
      << ' ' << store.orders.size() << "\n";
  for (const auto& order : store.orders) {
    out << "order " << order.size() << "\n";
    for (const auto& frame : order) {
      out << "frame " << frame.tick << ' ';
      AppendDouble(out, frame.time);
      out << ' ' << FrameEncodingTag(frame.encoding) << ' '
          << frame.cluster_count << ' ' << frame.dims << "\n";
      switch (frame.encoding) {
        case core::FrameEncoding::kFull:
          for (const auto& cluster : frame.full) {
            AppendClusterState(out, cluster);
          }
          break;
        case core::FrameEncoding::kDelta: {
          out << "ids";
          for (std::uint64_t id : frame.ids) out << ' ' << id;
          out << "\n";
          out << "changed " << frame.changed.size() << "\n";
          for (const auto& cluster : frame.changed) {
            AppendClusterState(out, cluster);
          }
          break;
        }
        case core::FrameEncoding::kQuantized: {
          const auto& q = frame.quant;
          for (std::size_t i = 0; i < q.ids.size(); ++i) {
            out << q.ids[i] << ' ';
            AppendDouble(out, q.creation_times[i]);
            out << ' ';
            AppendFloat(out, q.weights[i]);
            out << ' ';
            AppendFloat(out, q.last_updates[i]);
            for (std::size_t v = 0; v < 3 * q.dims; ++v) {
              out << ' ';
              AppendFloat(out, q.values[i * 3 * q.dims + v]);
            }
            out << "\n";
          }
          break;
        }
        case core::FrameEncoding::kSpilled:
          out << "path " << frame.spill_path << "\n";
          break;
      }
    }
  }
}

/// Parses one encoded frame (after the "frame" keyword was consumed).
bool ParseEncodedFrame(std::istream& in, std::size_t engine_dims,
                       core::EncodedFrame* out) {
  core::EncodedFrame frame;
  std::string tag;
  if (!(in >> frame.tick) || frame.tick == 0 ||
      !ReadFinite(in, &frame.time) || !(in >> tag) ||
      !(in >> frame.cluster_count) || frame.cluster_count > kMaxClusters ||
      !(in >> frame.dims) || frame.dims > kMaxDims) {
    return false;
  }
  // A frame's clusters share the engine's dimensionality (empty frames
  // carry dims 0); anything else cannot have come from our writer.
  if (frame.cluster_count > 0 && frame.dims != engine_dims) return false;
  if (frame.cluster_count == 0 && frame.dims != 0 &&
      frame.dims != engine_dims) {
    return false;
  }
  if (tag == "full") {
    frame.encoding = core::FrameEncoding::kFull;
    frame.full.reserve(frame.cluster_count);
    for (std::size_t c = 0; c < frame.cluster_count; ++c) {
      core::MicroClusterState cluster;
      if (!ParseClusterState(in, frame.dims, &cluster)) return false;
      frame.full.push_back(std::move(cluster));
    }
  } else if (tag == "delta") {
    frame.encoding = core::FrameEncoding::kDelta;
    std::string key;
    if (!(in >> key) || key != "ids") return false;
    frame.ids.resize(frame.cluster_count);
    for (std::uint64_t& id : frame.ids) {
      if (!(in >> id)) return false;
    }
    std::size_t changed_count = 0;
    if (!(in >> key >> changed_count) || key != "changed" ||
        changed_count > frame.cluster_count) {
      return false;
    }
    frame.changed.reserve(changed_count);
    for (std::size_t c = 0; c < changed_count; ++c) {
      core::MicroClusterState cluster;
      if (!ParseClusterState(in, frame.dims, &cluster)) return false;
      frame.changed.push_back(std::move(cluster));
    }
  } else if (tag == "quant") {
    frame.encoding = core::FrameEncoding::kQuantized;
    auto& q = frame.quant;
    q.dims = frame.dims;
    q.ids.resize(frame.cluster_count);
    q.creation_times.resize(frame.cluster_count);
    q.weights.resize(frame.cluster_count);
    q.last_updates.resize(frame.cluster_count);
    q.values.resize(frame.cluster_count * 3 * q.dims);
    for (std::size_t i = 0; i < frame.cluster_count; ++i) {
      double weight = 0.0;
      double last_update = 0.0;
      if (!(in >> q.ids[i]) || !ReadFinite(in, &q.creation_times[i]) ||
          !ReadFinite(in, &weight) || weight < 0.0 ||
          !ReadFinite(in, &last_update)) {
        return false;
      }
      q.weights[i] = static_cast<float>(weight);
      q.last_updates[i] = static_cast<float>(last_update);
      for (std::size_t v = 0; v < 3 * q.dims; ++v) {
        double value = 0.0;
        if (!ReadFinite(in, &value)) return false;
        q.values[i * 3 * q.dims + v] = static_cast<float>(value);
      }
    }
  } else if (tag == "spill") {
    frame.encoding = core::FrameEncoding::kSpilled;
    std::string key;
    if (!(in >> key) || key != "path") return false;
    std::string path;
    std::getline(in, path);
    if (!path.empty() && path.front() == ' ') path.erase(0, 1);
    if (path.empty()) return false;
    frame.spill_path = std::move(path);
  } else {
    return false;
  }
  *out = std::move(frame);
  return true;
}

/// Parses the store section written by AppendSnapshotStoreState.
bool ParseSnapshotStoreState(std::istream& in, std::size_t engine_dims,
                             core::SnapshotStoreState* out) {
  std::string key;
  std::size_t order_count = 0;
  if (!(in >> key >> out->last_tick >> out->alpha >> out->l >> order_count) ||
      key != "store" || order_count > kMaxOrders) {
    return false;
  }
  out->orders.resize(order_count);
  for (auto& order : out->orders) {
    std::size_t frame_count = 0;
    if (!(in >> key >> frame_count) || key != "order" ||
        frame_count > kMaxSnapshotsPerOrder) {
      return false;
    }
    order.reserve(frame_count);
    for (std::size_t f = 0; f < frame_count; ++f) {
      if (!(in >> key) || key != "frame") return false;
      core::EncodedFrame frame;
      if (!ParseEncodedFrame(in, engine_dims, &frame)) return false;
      order.push_back(std::move(frame));
    }
  }
  return true;
}

/// Everything after the checkpoint header line.
std::string EngineCheckpointBody(const core::EngineState& state) {
  std::ostringstream out;
  out << "kind " << state.engine_kind << "\n";
  out << "dims " << state.dimensions << "\n";
  out << "ingest " << state.points_ingested << ' ' << state.next_round_robin
      << "\n";
  out << "clock " << state.next_tick << ' ' << state.since_snapshot << ' ';
  AppendDouble(out, state.last_timestamp);
  out << "\n";
  out << "shards " << state.shard_states.size() << "\n";
  for (const auto& shard : state.shard_states) {
    AppendUMicroState(out, shard);
  }
  out << "global " << state.global_clusters.size() << "\n";
  for (const auto& cluster : state.global_clusters) {
    AppendMicroCluster(out, cluster);
  }
  AppendSnapshotStoreState(out, state.store);
  out << "counters " << state.counters.size() << "\n";
  for (const auto& [name, value] : state.counters) {
    out << name << ' ';
    AppendDouble(out, value);
    out << "\n";
  }
  out << "gauges " << state.gauges.size() << "\n";
  for (const auto& [name, value] : state.gauges) {
    out << name << ' ';
    AppendDouble(out, value);
    out << "\n";
  }
  return out.str();
}

bool ParseMetricCells(std::istream& in, const std::string& expected_key,
                      std::vector<std::pair<std::string, double>>* out) {
  std::string key;
  std::size_t count = 0;
  if (!(in >> key >> count) || key != expected_key ||
      count > kMaxMetricCells) {
    return false;
  }
  out->reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    double value = 0.0;
    if (!(in >> name) || !ReadFinite(in, &value)) return false;
    out->emplace_back(std::move(name), value);
  }
  return true;
}

}  // namespace

std::string UMicroStateToString(const core::UMicroState& state) {
  std::ostringstream out;
  AppendUMicroState(out, state);
  return out.str();
}

std::optional<core::UMicroState> ParseUMicroState(const std::string& text) {
  std::istringstream in(text);
  core::UMicroState state;
  if (!ParseUMicroStateBody(in, &state)) return std::nullopt;
  return state;
}

bool WriteUMicroStateFile(const core::UMicroState& state,
                          const std::string& path) {
  return WriteTextFileAtomic(UMicroStateToString(state), path);
}

std::optional<core::UMicroState> ReadUMicroStateFile(
    const std::string& path) {
  const std::optional<std::string> text = ReadWholeFile(path);
  if (!text.has_value()) return std::nullopt;
  return ParseUMicroState(*text);
}

std::string CluStreamStateToString(const baseline::CluStreamState& state) {
  std::ostringstream out;
  const std::size_t dims =
      state.clusters.empty() ? 0 : state.clusters[0].cf1.size();
  out << "csstate " << kFormatVersion << "\n";
  out << "dims " << dims << "\n";
  out << "counters " << state.next_cluster_id << ' '
      << state.points_processed << ' ' << state.clusters_deleted << ' '
      << state.clusters_merged << "\n";
  out << "clusters " << state.clusters.size() << "\n";
  for (const auto& cluster : state.clusters) {
    out << "ids " << cluster.ids.size();
    for (std::uint64_t id : cluster.ids) out << ' ' << id;
    out << '\n';
    AppendDouble(out, cluster.creation_time);
    out << ' ';
    AppendDouble(out, cluster.cf1_time);
    out << ' ';
    AppendDouble(out, cluster.cf2_time);
    out << ' ';
    AppendDouble(out, cluster.count);
    out << ' ';
    AppendDouble(out, cluster.last_update_time);
    for (double v : cluster.cf1) {
      out << ' ';
      AppendDouble(out, v);
    }
    for (double v : cluster.cf2) {
      out << ' ';
      AppendDouble(out, v);
    }
    out << " labels " << cluster.labels.size();
    for (const auto& [label, weight] : cluster.labels) {
      out << ' ' << label << ' ';
      AppendDouble(out, weight);
    }
    out << '\n';
  }
  return out.str();
}

std::optional<baseline::CluStreamState> ParseCluStreamState(
    const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "csstate" ||
      version != kFormatVersion) {
    return std::nullopt;
  }
  baseline::CluStreamState state;
  std::string key;
  std::size_t dims = 0;
  if (!(in >> key >> dims) || key != "dims" || dims > kMaxDims) {
    return std::nullopt;
  }
  if (!(in >> key >> state.next_cluster_id >> state.points_processed >>
        state.clusters_deleted >> state.clusters_merged) ||
      key != "counters") {
    return std::nullopt;
  }
  std::size_t cluster_count = 0;
  if (!(in >> key >> cluster_count) || key != "clusters" ||
      cluster_count > kMaxClusters) {
    return std::nullopt;
  }
  if (cluster_count > 0 && dims == 0) return std::nullopt;
  state.clusters.reserve(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    baseline::CluStreamCluster cluster;
    std::size_t id_count = 0;
    if (!(in >> key >> id_count) || key != "ids" || id_count == 0 ||
        id_count > kMaxIds) {
      return std::nullopt;
    }
    cluster.ids.resize(id_count);
    for (std::uint64_t& id : cluster.ids) {
      if (!(in >> id)) return std::nullopt;
    }
    if (!ReadFinite(in, &cluster.creation_time) ||
        !ReadFinite(in, &cluster.cf1_time) ||
        !ReadFinite(in, &cluster.cf2_time) ||
        !ReadFinite(in, &cluster.count) ||
        !ReadFinite(in, &cluster.last_update_time)) {
      return std::nullopt;
    }
    if (cluster.count <= 0.0) return std::nullopt;
    cluster.cf1.resize(dims);
    cluster.cf2.resize(dims);
    for (double& v : cluster.cf1) {
      if (!ReadFinite(in, &v)) return std::nullopt;
    }
    for (double& v : cluster.cf2) {
      if (!ReadFinite(in, &v)) return std::nullopt;
    }
    std::size_t label_count = 0;
    if (!(in >> key >> label_count) || key != "labels" ||
        label_count > kMaxLabels) {
      return std::nullopt;
    }
    for (std::size_t l = 0; l < label_count; ++l) {
      int label = 0;
      double weight = 0.0;
      if (!(in >> label) || !ReadFinite(in, &weight)) return std::nullopt;
      cluster.labels[label] = weight;
    }
    state.clusters.push_back(std::move(cluster));
  }
  return state;
}

bool WriteCluStreamStateFile(const baseline::CluStreamState& state,
                             const std::string& path) {
  return WriteTextFileAtomic(CluStreamStateToString(state), path);
}

std::optional<baseline::CluStreamState> ReadCluStreamStateFile(
    const std::string& path) {
  const std::optional<std::string> text = ReadWholeFile(path);
  if (!text.has_value()) return std::nullopt;
  return ParseCluStreamState(*text);
}

std::string MicroClustersToString(
    const std::vector<core::MicroCluster>& clusters, std::size_t dimensions) {
  std::ostringstream out;
  out << "uclusters 1 " << dimensions << ' ' << clusters.size() << "\n";
  for (const core::MicroCluster& cluster : clusters) {
    AppendMicroCluster(out, cluster);
  }
  return out.str();
}

bool WriteMicroClustersFile(const std::vector<core::MicroCluster>& clusters,
                            std::size_t dimensions, const std::string& path) {
  return WriteTextFileAtomic(MicroClustersToString(clusters, dimensions),
                             path);
}

std::string EngineStateToString(const core::EngineState& state) {
  const std::string body = EngineCheckpointBody(state);
  char header[64];
  std::snprintf(header, sizeof(header), "ucheckpoint %d %016llx\n",
                kCheckpointVersion,
                static_cast<unsigned long long>(Fnv1a(body)));
  return std::string(header) + body;
}

std::optional<core::EngineState> ParseEngineState(const std::string& text) {
  const std::size_t newline = text.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  {
    std::istringstream header(text.substr(0, newline));
    std::string magic;
    int version = 0;
    std::string checksum_hex;
    if (!(header >> magic >> version >> checksum_hex) ||
        magic != "ucheckpoint" || version != kCheckpointVersion) {
      return std::nullopt;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long checksum =
        std::strtoull(checksum_hex.c_str(), &end, 16);
    if (errno != 0 || end != checksum_hex.c_str() + checksum_hex.size()) {
      return std::nullopt;
    }
    if (checksum != Fnv1a(text.substr(newline + 1))) return std::nullopt;
  }

  std::istringstream in(text.substr(newline + 1));
  core::EngineState state;
  std::string key;
  if (!(in >> key >> state.engine_kind) || key != "kind" ||
      state.engine_kind.empty()) {
    return std::nullopt;
  }
  if (!(in >> key >> state.dimensions) || key != "dims" ||
      state.dimensions == 0 || state.dimensions > kMaxDims) {
    return std::nullopt;
  }
  if (!(in >> key >> state.points_ingested >> state.next_round_robin) ||
      key != "ingest") {
    return std::nullopt;
  }
  if (!(in >> key >> state.next_tick >> state.since_snapshot) ||
      key != "clock" || !ReadFinite(in, &state.last_timestamp)) {
    return std::nullopt;
  }

  std::size_t shard_count = 0;
  if (!(in >> key >> shard_count) || key != "shards" || shard_count == 0 ||
      shard_count > kMaxShards) {
    return std::nullopt;
  }
  state.shard_states.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    core::UMicroState shard;
    if (!ParseUMicroStateBody(in, &shard)) return std::nullopt;
    if (shard.welford.size() != state.dimensions) return std::nullopt;
    state.shard_states.push_back(std::move(shard));
  }

  std::size_t global_count = 0;
  if (!(in >> key >> global_count) || key != "global" ||
      global_count > kMaxClusters) {
    return std::nullopt;
  }
  state.global_clusters.reserve(global_count);
  for (std::size_t c = 0; c < global_count; ++c) {
    core::MicroCluster cluster;
    if (!ParseMicroCluster(in, state.dimensions, &cluster)) {
      return std::nullopt;
    }
    state.global_clusters.push_back(std::move(cluster));
  }

  if (!ParseSnapshotStoreState(in, state.dimensions, &state.store)) {
    return std::nullopt;
  }

  if (!ParseMetricCells(in, "counters", &state.counters)) return std::nullopt;
  if (!ParseMetricCells(in, "gauges", &state.gauges)) return std::nullopt;
  return state;
}

bool WriteEngineStateFile(const core::EngineState& state,
                          const std::string& path) {
  if (UMICRO_FAILPOINT("checkpoint.write_fail")) return false;
  return WriteTextFileAtomic(EngineStateToString(state), path);
}

std::optional<core::EngineState> ReadEngineStateFile(const std::string& path) {
  const std::optional<std::string> text = ReadWholeFile(path);
  if (!text.has_value()) return std::nullopt;
  return ParseEngineState(*text);
}

}  // namespace umicro::io
