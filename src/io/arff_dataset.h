// ARFF import (the format used by the MOA/WEKA stream-mining tools,
// where CluStream reference implementations live).
//
// Supported subset: numeric/real/integer attributes become value
// dimensions; nominal attributes (enumerated "{a,b,c}" domains) become
// the label -- at most one nominal attribute is allowed; '?' entries are
// missing values (NaN, see stream/imputation.h); '%' comment lines and
// blank lines are skipped. Sparse ARFF and string/date attributes are
// not supported.

#ifndef UMICRO_IO_ARFF_DATASET_H_
#define UMICRO_IO_ARFF_DATASET_H_

#include <optional>
#include <string>
#include <vector>

#include "io/load_stats.h"
#include "stream/dataset.h"

namespace umicro::io {

/// A loaded ARFF dataset: points plus attribute/label metadata.
struct LoadedArff {
  stream::Dataset dataset;
  /// Names of the numeric attributes, in dimension order.
  std::vector<std::string> attribute_names;
  /// Nominal values of the label attribute (index == label id); empty
  /// when the file had no nominal attribute.
  std::vector<std::string> label_names;
  /// Relation name from @relation.
  std::string relation;
  /// Malformed-row accounting.
  DatasetLoadStats stats;
};

/// Parses ARFF text. Returns std::nullopt on header-level errors
/// (missing @data, unsupported attribute types, more than one nominal
/// attribute) or when no data row is usable; ragged or unparsable data
/// rows are skipped and counted in the returned stats.
std::optional<LoadedArff> ParseArffDataset(const std::string& text);

/// Reads and parses an ARFF file.
std::optional<LoadedArff> ReadArffDataset(const std::string& path);

/// Serializes `dataset` as ARFF: one numeric attribute per dimension, a
/// nominal `class` attribute when any point is labeled (named
/// `label_names[i]` when provided, else `c<i>`), and `?` for missing
/// (NaN) entries. Error vectors are NOT representable in standard ARFF
/// and are dropped -- use the CSV format for uncertain data.
std::string DatasetToArff(const stream::Dataset& dataset,
                          const std::string& relation = "umicro",
                          const std::vector<std::string>& label_names = {});

/// Writes `dataset` to `path` as ARFF. Returns false on I/O failure.
bool WriteArffDataset(const stream::Dataset& dataset,
                      const std::string& path,
                      const std::string& relation = "umicro",
                      const std::vector<std::string>& label_names = {});

}  // namespace umicro::io

#endif  // UMICRO_IO_ARFF_DATASET_H_
