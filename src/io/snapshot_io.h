// Text serialization of micro-cluster snapshots.
//
// Snapshots are what the pyramidal time frame persists; in a production
// deployment they go to disk so historical horizons survive restarts.
// The format is a line-oriented, versioned text encoding with full
// double precision (round-trips exactly via %.17g).

#ifndef UMICRO_IO_SNAPSHOT_IO_H_
#define UMICRO_IO_SNAPSHOT_IO_H_

#include <optional>
#include <string>

#include "core/snapshot.h"

namespace umicro::io {

/// Serializes a snapshot:
///   usnap 1
///   time <t>
///   dims <d> clusters <k>
///   <id> <creation_time> <weight> <last_update> <cf1 x d> <cf2 x d> <ef2 x d>
std::string SnapshotToString(const core::Snapshot& snapshot);

/// Parses text produced by SnapshotToString. Returns std::nullopt on any
/// structural or numeric error.
std::optional<core::Snapshot> ParseSnapshot(const std::string& text);

/// Writes a snapshot to `path`. Returns false on I/O failure.
bool WriteSnapshotFile(const core::Snapshot& snapshot,
                       const std::string& path);

/// Reads a snapshot from `path`.
std::optional<core::Snapshot> ReadSnapshotFile(const std::string& path);

/// Serializes a cold-frame spill: a checksummed wrapper around the
/// "usnap 1" body,
///   usnapf 1 <fnv1a-of-body-hex>
///   <usnap 1 body>
/// so a truncated or bit-flipped spill file is detected at load time
/// (the tiered store then skips the frame instead of serving garbage).
std::string SpillFrameToString(const core::Snapshot& snapshot);

/// Parses text produced by SpillFrameToString; nullopt on any structural
/// error or checksum mismatch.
std::optional<core::Snapshot> ParseSpillFrame(const std::string& text);

/// Writes a spill frame atomically (temp + fsync + rename, the
/// checkpoint discipline: a crash mid-spill leaves no torn file).
bool WriteSpillFrameFile(const core::Snapshot& snapshot,
                         const std::string& path);

/// Reads and verifies a spill frame.
std::optional<core::Snapshot> ReadSpillFrameFile(const std::string& path);

/// The spill codec handed to core::SnapshotStore (core cannot depend on
/// io; the engine wiring injects this through SnapshotTiering::codec).
core::SnapshotSpillCodec MakeSnapshotSpillCodec();

}  // namespace umicro::io

#endif  // UMICRO_IO_SNAPSHOT_IO_H_
