#include "io/arff_dataset.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace umicro::io {

namespace {

std::string Trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Strips optional single or double quotes around a token.
std::string Unquote(const std::string& text) {
  if (text.size() >= 2 &&
      ((text.front() == '\'' && text.back() == '\'') ||
       (text.front() == '"' && text.back() == '"'))) {
    return text.substr(1, text.size() - 2);
  }
  return text;
}

std::vector<std::string> SplitCommas(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(Trim(cell));
      cell.clear();
    } else {
      cell += ch;
    }
  }
  cells.push_back(Trim(cell));
  return cells;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

struct AttributeSpec {
  std::string name;
  bool is_label = false;
};

}  // namespace

std::optional<LoadedArff> ParseArffDataset(const std::string& text) {
  std::istringstream input(text);
  std::string line;

  LoadedArff result;
  std::vector<AttributeSpec> attributes;
  std::map<std::string, int> label_ids;
  int label_attribute = -1;
  bool in_data = false;
  std::size_t row_index = 0;

  while (std::getline(input, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '%') continue;

    if (!in_data) {
      const std::string lower = ToLower(line);
      if (lower.rfind("@relation", 0) == 0) {
        result.relation = Unquote(Trim(line.substr(9)));
        continue;
      }
      if (lower.rfind("@attribute", 0) == 0) {
        const std::string rest = Trim(line.substr(10));
        // Name is either quoted or the first whitespace-delimited token.
        std::string name;
        std::string type_part;
        if (!rest.empty() && (rest[0] == '\'' || rest[0] == '"')) {
          const char quote = rest[0];
          const std::size_t close = rest.find(quote, 1);
          if (close == std::string::npos) return std::nullopt;
          name = rest.substr(1, close - 1);
          type_part = Trim(rest.substr(close + 1));
        } else {
          const std::size_t space = rest.find_first_of(" \t");
          if (space == std::string::npos) return std::nullopt;
          name = rest.substr(0, space);
          type_part = Trim(rest.substr(space));
        }

        AttributeSpec spec;
        spec.name = name;
        const std::string type_lower = ToLower(type_part);
        if (type_lower == "numeric" || type_lower == "real" ||
            type_lower == "integer") {
          spec.is_label = false;
          result.attribute_names.push_back(name);
        } else if (!type_part.empty() && type_part[0] == '{') {
          if (label_attribute >= 0) return std::nullopt;  // one nominal max
          const std::size_t close = type_part.find('}');
          if (close == std::string::npos) return std::nullopt;
          spec.is_label = true;
          label_attribute = static_cast<int>(attributes.size());
          for (const std::string& value :
               SplitCommas(type_part.substr(1, close - 1))) {
            const std::string unquoted = Unquote(value);
            label_ids.emplace(unquoted,
                              static_cast<int>(result.label_names.size()));
            result.label_names.push_back(unquoted);
          }
        } else {
          return std::nullopt;  // string/date/unsupported
        }
        attributes.push_back(std::move(spec));
        continue;
      }
      if (lower.rfind("@data", 0) == 0) {
        if (result.attribute_names.empty()) return std::nullopt;
        in_data = true;
        continue;
      }
      return std::nullopt;  // unknown header directive
    }

    // Data row. Malformed rows are skipped and counted, not fatal --
    // header-level problems are what reject the file.
    const std::vector<std::string> cells = SplitCommas(line);
    if (cells.size() != attributes.size()) {
      ++result.stats.short_rows;
      continue;
    }
    stream::UncertainPoint point;
    point.values.reserve(result.attribute_names.size());
    point.timestamp = static_cast<double>(row_index);
    bool row_ok = true;
    for (std::size_t a = 0; row_ok && a < attributes.size(); ++a) {
      if (attributes[a].is_label) {
        if (cells[a] == "?") {
          point.label = stream::kUnlabeled;
          continue;
        }
        auto it = label_ids.find(Unquote(cells[a]));
        if (it == label_ids.end()) {
          row_ok = false;
          break;
        }
        point.label = it->second;
      } else {
        if (cells[a] == "?") {
          point.values.push_back(std::nan(""));
          continue;
        }
        double value = 0.0;
        if (!ParseDouble(cells[a], &value)) {
          row_ok = false;
          break;
        }
        point.values.push_back(value);
      }
    }
    if (!row_ok) {
      ++result.stats.bad_numeric_rows;
      continue;
    }
    result.dataset.Add(std::move(point));
    ++row_index;
  }

  if (!in_data || result.dataset.empty()) return std::nullopt;
  result.stats.rows_loaded = result.dataset.size();
  return result;
}

std::optional<LoadedArff> ReadArffDataset(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseArffDataset(buffer.str());
}

std::string DatasetToArff(const stream::Dataset& dataset,
                          const std::string& relation,
                          const std::vector<std::string>& label_names) {
  // Collect the label set; names default to c<label-id>.
  std::map<int, std::string> names;
  for (const auto& point : dataset.points()) {
    if (point.label == stream::kUnlabeled) continue;
    if (names.count(point.label)) continue;
    if (point.label >= 0 &&
        static_cast<std::size_t>(point.label) < label_names.size()) {
      names[point.label] = label_names[static_cast<std::size_t>(point.label)];
    } else {
      names[point.label] = "c" + std::to_string(point.label);
    }
  }

  std::ostringstream out;
  out << "@relation " << relation << "\n\n";
  for (std::size_t j = 0; j < dataset.dimensions(); ++j) {
    out << "@attribute v" << j << " numeric\n";
  }
  if (!names.empty()) {
    out << "@attribute class {";
    bool first = true;
    for (const auto& [label, name] : names) {
      if (!first) out << ',';
      out << name;
      first = false;
    }
    out << "}\n";
  }
  out << "\n@data\n";

  char buffer[64];
  for (const auto& point : dataset.points()) {
    for (std::size_t j = 0; j < dataset.dimensions(); ++j) {
      if (j > 0) out << ',';
      if (std::isnan(point.values[j])) {
        out << '?';
      } else {
        std::snprintf(buffer, sizeof(buffer), "%.17g", point.values[j]);
        out << buffer;
      }
    }
    if (!names.empty()) {
      out << ',';
      if (point.label == stream::kUnlabeled) {
        out << '?';
      } else {
        out << names.at(point.label);
      }
    }
    out << '\n';
  }
  return out.str();
}

bool WriteArffDataset(const stream::Dataset& dataset,
                      const std::string& path, const std::string& relation,
                      const std::vector<std::string>& label_names) {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << DatasetToArff(dataset, relation, label_names);
  return file.good();
}

}  // namespace umicro::io
