#include "synth/drift_generator.h"

#include "util/check.h"

namespace umicro::synth {

DriftingGaussianGenerator::DriftingGaussianGenerator(DriftOptions options)
    : options_(options), rng_(options.seed) {
  UMICRO_CHECK(options_.dimensions > 0);
  UMICRO_CHECK(options_.num_clusters > 0);
  UMICRO_CHECK(options_.max_radius > 0.0);
  UMICRO_CHECK(options_.drift_epsilon >= 0.0);

  centroids_.resize(options_.num_clusters);
  radii_.resize(options_.num_clusters);
  fractions_.resize(options_.num_clusters);
  double fraction_sum = 0.0;
  for (std::size_t c = 0; c < options_.num_clusters; ++c) {
    centroids_[c].resize(options_.dimensions);
    radii_[c].resize(options_.dimensions);
    for (std::size_t j = 0; j < options_.dimensions; ++j) {
      centroids_[c][j] = rng_.NextDouble();
      radii_[c][j] = rng_.Uniform(0.0, options_.max_radius);
    }
    // f_i ~ U[0,1]; floor at 0.05 so every ground-truth cluster is
    // populated enough for purity to be meaningful.
    fractions_[c] = 0.05 + rng_.NextDouble();
    fraction_sum += fractions_[c];
  }
  for (double& f : fractions_) f /= fraction_sum;
}

void DriftingGaussianGenerator::GenerateInto(std::size_t num_points,
                                             stream::Dataset& dataset) {
  if (!dataset.empty()) {
    UMICRO_CHECK(dataset.dimensions() == options_.dimensions);
  }
  for (std::size_t i = 0; i < num_points; ++i) {
    const std::size_t c = rng_.Categorical(fractions_);
    std::vector<double> values(options_.dimensions);
    for (std::size_t j = 0; j < options_.dimensions; ++j) {
      values[j] = rng_.Gaussian(centroids_[c][j], radii_[c][j]);
    }
    dataset.Add(stream::UncertainPoint(std::move(values), next_timestamp_,
                                       static_cast<int>(c)));
    next_timestamp_ += 1.0;

    // Drift every centroid after each emission (continuous evolution).
    for (auto& centroid : centroids_) {
      for (double& coord : centroid) {
        coord += rng_.Uniform(-options_.drift_epsilon,
                              options_.drift_epsilon);
      }
    }
  }
}

stream::Dataset DriftingGaussianGenerator::Generate(std::size_t num_points) {
  stream::Dataset dataset(options_.dimensions);
  GenerateInto(num_points, dataset);
  return dataset;
}

}  // namespace umicro::synth
