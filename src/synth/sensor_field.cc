#include "synth/sensor_field.h"

#include <cmath>

#include "util/check.h"

namespace umicro::synth {

SensorFieldGenerator::SensorFieldGenerator(SensorFieldOptions options)
    : options_(options), rng_(options.seed) {
  UMICRO_CHECK(options_.channels > 0);
  UMICRO_CHECK(options_.num_zones > 0);
  UMICRO_CHECK(options_.sensors_per_zone > 0);
  UMICRO_CHECK(options_.min_noise_floor >= 0.0);
  UMICRO_CHECK(options_.max_noise_floor >= options_.min_noise_floor);
  UMICRO_CHECK(options_.dropout_probability >= 0.0 &&
               options_.dropout_probability < 1.0);

  zone_means_.resize(options_.num_zones);
  for (auto& mean : zone_means_) {
    mean.resize(options_.channels);
    for (double& value : mean) value = rng_.Uniform(-10.0, 10.0);
  }

  const std::size_t total = options_.num_zones * options_.sensors_per_zone;
  sensor_zone_.resize(total);
  noise_floor_.resize(total);
  sensor_age_.assign(total, 0);
  for (std::size_t s = 0; s < total; ++s) {
    sensor_zone_[s] = s / options_.sensors_per_zone;
    noise_floor_[s] =
        rng_.Uniform(options_.min_noise_floor, options_.max_noise_floor);
  }
}

double SensorFieldGenerator::SensorNoise(std::size_t s) const {
  UMICRO_CHECK(s < noise_floor_.size());
  const double age_factor =
      1.0 + options_.aging_rate *
                static_cast<double>(sensor_age_[s]) / 10000.0;
  return noise_floor_[s] * age_factor;
}

void SensorFieldGenerator::GenerateInto(std::size_t num_readings,
                                        stream::Dataset& dataset) {
  if (!dataset.empty()) {
    UMICRO_CHECK(dataset.dimensions() == options_.channels);
  }
  for (std::size_t i = 0; i < num_readings; ++i) {
    const std::size_t s = next_sensor_;
    next_sensor_ = (next_sensor_ + 1) % sensor_zone_.size();
    const std::size_t zone = sensor_zone_[s];
    const double sigma = SensorNoise(s);
    ++sensor_age_[s];

    std::vector<double> values(options_.channels);
    std::vector<double> errors(options_.channels, sigma);
    for (std::size_t j = 0; j < options_.channels; ++j) {
      values[j] = zone_means_[zone][j] +
                  rng_.Gaussian(0.0, options_.process_noise) +
                  rng_.Gaussian(0.0, sigma);
      if (options_.dropout_probability > 0.0 &&
          rng_.NextDouble() < options_.dropout_probability) {
        values[j] = std::nan("");
      }
    }
    dataset.Add(stream::UncertainPoint(std::move(values), std::move(errors),
                                       next_timestamp_,
                                       static_cast<int>(zone)));
    next_timestamp_ += 1.0;
  }
}

stream::Dataset SensorFieldGenerator::Generate(std::size_t num_readings) {
  stream::Dataset dataset(options_.channels);
  GenerateInto(num_readings, dataset);
  return dataset;
}

}  // namespace umicro::synth
