// Synthetic stand-in for the KDD'99 Network Intrusion stream.
//
// The real data set (MIT Lincoln Labs LAN traces) is not redistributable
// here, so this generator reproduces the statistical properties the paper's
// observations depend on:
//   * 34 continuous attributes with widely varying scales (byte counts,
//     durations, rates) -- modeled with log-normally distributed
//     per-attribute scale factors;
//   * 5 classes: `normal` plus DOS / R2L / U2R / PROBING attacks;
//   * heavy class imbalance -- most connections are normal;
//   * attacks arriving in temporal bursts ("occasionally there could be a
//     burst of attacks at certain times").
// Real KDD'99 CSV exports load through umicro::io::ReadCsvDataset and run
// through exactly the same code path.

#ifndef UMICRO_SYNTH_INTRUSION_GENERATOR_H_
#define UMICRO_SYNTH_INTRUSION_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "stream/dataset.h"
#include "util/random.h"

namespace umicro::synth {

/// Class labels emitted by the intrusion generator.
enum IntrusionClass : int {
  kNormal = 0,
  kDos = 1,
  kR2l = 2,
  kU2r = 3,
  kProbing = 4,
};

/// Configuration for the intrusion stream.
struct IntrusionOptions {
  /// Number of continuous attributes (paper uses the 34 continuous ones).
  std::size_t dimensions = 34;
  /// Probability that a steady-state point starts an attack burst.
  double burst_start_probability = 0.0005;
  /// Mean burst length in points (geometric).
  double mean_burst_length = 300.0;
  /// Fraction of in-burst traffic that is still normal background.
  double background_during_burst = 0.15;
  /// RNG seed.
  std::uint64_t seed = 1999;
};

/// Bursty, imbalanced 5-class mixture over 34 continuous attributes.
class IntrusionStreamGenerator {
 public:
  explicit IntrusionStreamGenerator(IntrusionOptions options);

  /// Appends `num_points` points to `dataset`; burst state carries across
  /// calls so long streams can be produced in chunks.
  void GenerateInto(std::size_t num_points, stream::Dataset& dataset);

  /// Convenience: returns a new dataset of `num_points` points.
  stream::Dataset Generate(std::size_t num_points);

  /// Number of classes (5).
  static constexpr int kNumClasses = 5;

 private:
  /// Draws one record of class `cls`.
  std::vector<double> DrawValues(int cls);

  IntrusionOptions options_;
  util::Rng rng_;
  /// Per-attribute global scale factors (heavy-tailed).
  std::vector<double> attribute_scales_;
  /// Per-class per-attribute offsets (units of attribute scale).
  std::vector<std::vector<double>> class_offsets_;
  /// Per-class per-attribute spreads (units of attribute scale).
  std::vector<std::vector<double>> class_spreads_;
  /// Current burst: kNormal when in steady state, else the attack class.
  int active_burst_class_ = kNormal;
  std::size_t burst_remaining_ = 0;
  double next_timestamp_ = 0.0;
};

}  // namespace umicro::synth

#endif  // UMICRO_SYNTH_INTRUSION_GENERATOR_H_
