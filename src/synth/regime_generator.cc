#include "synth/regime_generator.h"

#include "util/check.h"

namespace umicro::synth {

RegimeShiftGenerator::RegimeShiftGenerator(RegimeOptions options)
    : options_(options), rng_(options.seed) {
  UMICRO_CHECK(options_.dimensions > 0);
  UMICRO_CHECK(options_.num_clusters > 0);
  UMICRO_CHECK(options_.regime_length > 0);
  RedrawLayout();
}

void RegimeShiftGenerator::RedrawLayout() {
  centroids_.assign(options_.num_clusters,
                    std::vector<double>(options_.dimensions));
  radii_.assign(options_.num_clusters,
                std::vector<double>(options_.dimensions));
  fractions_.assign(options_.num_clusters, 0.0);
  double sum = 0.0;
  for (std::size_t c = 0; c < options_.num_clusters; ++c) {
    for (std::size_t j = 0; j < options_.dimensions; ++j) {
      centroids_[c][j] = rng_.NextDouble();
      radii_[c][j] = rng_.Uniform(0.02, options_.max_radius);
    }
    fractions_[c] = 0.2 + rng_.NextDouble();
    sum += fractions_[c];
  }
  for (double& f : fractions_) f /= sum;
}

void RegimeShiftGenerator::GenerateInto(std::size_t num_points,
                                        stream::Dataset& dataset) {
  if (!dataset.empty()) {
    UMICRO_CHECK(dataset.dimensions() == options_.dimensions);
  }
  for (std::size_t i = 0; i < num_points; ++i) {
    if (points_in_regime_ == options_.regime_length) {
      RedrawLayout();
      points_in_regime_ = 0;
      ++regime_index_;
    }
    const std::size_t c = rng_.Categorical(fractions_);
    std::vector<double> values(options_.dimensions);
    for (std::size_t j = 0; j < options_.dimensions; ++j) {
      values[j] = rng_.Gaussian(centroids_[c][j], radii_[c][j]);
    }
    // Labels are globally unique across regimes: a regime shift replaces
    // the ground truth entirely, so stale micro-cluster mass from the
    // previous regime genuinely counts as impurity.
    const int label =
        static_cast<int>(regime_index_ * options_.num_clusters + c);
    dataset.Add(
        stream::UncertainPoint(std::move(values), next_timestamp_, label));
    next_timestamp_ += 1.0;
    ++points_in_regime_;
  }
}

stream::Dataset RegimeShiftGenerator::Generate(std::size_t num_points) {
  stream::Dataset dataset(options_.dimensions);
  GenerateInto(num_points, dataset);
  return dataset;
}

}  // namespace umicro::synth
