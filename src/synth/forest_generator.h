// Synthetic stand-in for the UCI Forest CoverType data set.
//
// The paper uses the 10 quantitative attributes of CoverType (elevation,
// aspect, slope, distances to hydrology/roadways/fire points, hillshade
// indices) across 7 cover-type classes. This generator reproduces the
// relevant structure: 10 attributes on very different physical scales,
// 7 classes with the real data's strong imbalance (two classes dominate),
// and substantial between-class overlap along most attributes. Real
// CoverType CSV files load through umicro::io::ReadCsvDataset instead.

#ifndef UMICRO_SYNTH_FOREST_GENERATOR_H_
#define UMICRO_SYNTH_FOREST_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "stream/dataset.h"
#include "util/random.h"

namespace umicro::synth {

/// Configuration for the forest-cover stream.
struct ForestOptions {
  /// RNG seed.
  std::uint64_t seed = 54;
  /// Spatial auto-correlation: consecutive records come from nearby
  /// terrain, so class identity persists with this probability (the real
  /// file is ordered by survey location, giving it exactly this flavor).
  double persistence = 0.6;
};

/// 10-attribute, 7-class Gaussian mixture shaped like Forest CoverType.
class ForestCoverGenerator {
 public:
  explicit ForestCoverGenerator(ForestOptions options);

  /// Appends `num_points` points to `dataset`.
  void GenerateInto(std::size_t num_points, stream::Dataset& dataset);

  /// Convenience: returns a new dataset of `num_points` points.
  stream::Dataset Generate(std::size_t num_points);

  /// Number of quantitative attributes (10).
  static constexpr std::size_t kDimensions = 10;
  /// Number of cover-type classes (7).
  static constexpr int kNumClasses = 7;

 private:
  ForestOptions options_;
  util::Rng rng_;
  /// Mixing fractions mirroring the real class distribution.
  std::vector<double> class_fractions_;
  /// Per-class attribute means.
  std::vector<std::vector<double>> class_means_;
  /// Per-class attribute stddevs.
  std::vector<std::vector<double>> class_stddevs_;
  int previous_class_ = -1;
  double next_timestamp_ = 0.0;
};

}  // namespace umicro::synth

#endif  // UMICRO_SYNTH_FOREST_GENERATOR_H_
