#include "synth/forest_generator.h"

#include "util/check.h"

namespace umicro::synth {

namespace {

// Base scales of the 10 quantitative CoverType attributes:
// elevation(m), aspect(deg), slope(deg), horiz/vert dist to hydrology,
// horiz dist to roadways, hillshade 9am/noon/3pm, dist to fire points.
constexpr double kAttributeCenters[ForestCoverGenerator::kDimensions] = {
    2800.0, 155.0, 14.0, 270.0, 45.0, 2350.0, 212.0, 223.0, 142.0, 1980.0};
constexpr double kAttributeSpans[ForestCoverGenerator::kDimensions] = {
    400.0, 110.0, 8.0, 210.0, 60.0, 1550.0, 27.0, 20.0, 38.0, 1320.0};

}  // namespace

ForestCoverGenerator::ForestCoverGenerator(ForestOptions options)
    : options_(options), rng_(options.seed) {
  UMICRO_CHECK(options_.persistence >= 0.0 && options_.persistence < 1.0);

  // Real CoverType class shares (approximate): Spruce/Fir 36.5%,
  // Lodgepole 48.8%, Ponderosa 6.2%, Cottonwood 0.5%, Aspen 1.6%,
  // Douglas-fir 3.0%, Krummholz 3.5%.
  class_fractions_ = {0.365, 0.488, 0.062, 0.005, 0.016, 0.030, 0.035};
  UMICRO_CHECK(class_fractions_.size() == kNumClasses);

  class_means_.resize(kNumClasses);
  class_stddevs_.resize(kNumClasses);
  for (int cls = 0; cls < kNumClasses; ++cls) {
    class_means_[cls].resize(kDimensions);
    class_stddevs_[cls].resize(kDimensions);
    for (std::size_t j = 0; j < kDimensions; ++j) {
      // Classes occupy overlapping slices of each attribute's range:
      // offset up to +-0.9 spans, spread 0.25..0.6 spans. This yields the
      // moderate separability the real data shows (elevation separates
      // Krummholz from Cottonwood well; hillshades barely separate).
      const double offset = rng_.Uniform(-0.9, 0.9) * kAttributeSpans[j];
      class_means_[cls][j] = kAttributeCenters[j] + offset;
      class_stddevs_[cls][j] =
          rng_.Uniform(0.25, 0.6) * kAttributeSpans[j];
    }
  }
}

void ForestCoverGenerator::GenerateInto(std::size_t num_points,
                                        stream::Dataset& dataset) {
  if (!dataset.empty()) {
    UMICRO_CHECK(dataset.dimensions() == kDimensions);
  }
  for (std::size_t i = 0; i < num_points; ++i) {
    int cls;
    if (previous_class_ >= 0 && rng_.NextDouble() < options_.persistence) {
      cls = previous_class_;
    } else {
      cls = static_cast<int>(rng_.Categorical(class_fractions_));
    }
    previous_class_ = cls;

    std::vector<double> values(kDimensions);
    for (std::size_t j = 0; j < kDimensions; ++j) {
      values[j] = rng_.Gaussian(class_means_[cls][j],
                                class_stddevs_[cls][j]);
    }
    dataset.Add(
        stream::UncertainPoint(std::move(values), next_timestamp_, cls));
    next_timestamp_ += 1.0;
  }
}

stream::Dataset ForestCoverGenerator::Generate(std::size_t num_points) {
  stream::Dataset dataset(kDimensions);
  GenerateInto(num_points, dataset);
  return dataset;
}

}  // namespace umicro::synth
