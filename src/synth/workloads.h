// The paper's evaluation workloads as one-call presets.
//
// Every figure bench, example, and test that wants "SynDrift(eta)" or
// one of the real-data stand-ins perturbed with the paper's noise model
// builds it through these helpers, so the workload definition lives in
// exactly one place.

#ifndef UMICRO_SYNTH_WORKLOADS_H_
#define UMICRO_SYNTH_WORKLOADS_H_

#include <cstdint>

#include "stream/dataset.h"

namespace umicro::synth {

/// Applies the paper's eta perturbation (Section III) to a clean
/// dataset in place: per-dimension sigma_i ~ U[0, 2*eta*sigma0_i] with
/// sigma0_i measured from the data, Gaussian noise added, psi attached.
/// No-op when eta <= 0.
void ApplyPaperNoise(stream::Dataset& dataset, double eta,
                     std::uint64_t seed);

/// SynDrift(eta): the paper's 20-dimensional drifting synthetic stream,
/// perturbed at the given noise level.
stream::Dataset MakeSynDriftWorkload(std::size_t points, double eta,
                                     std::uint64_t seed = 42);

/// Network(eta): the synthetic stand-in for the KDD'99 Network
/// Intrusion stream (34 continuous attributes, bursty attacks).
stream::Dataset MakeNetworkWorkload(std::size_t points, double eta,
                                    std::uint64_t seed = 1999);

/// ForestCover(eta): the synthetic stand-in for UCI CoverType
/// (10 quantitative attributes, 7 imbalanced classes).
stream::Dataset MakeForestWorkload(std::size_t points, double eta,
                                   std::uint64_t seed = 54);

}  // namespace umicro::synth

#endif  // UMICRO_SYNTH_WORKLOADS_H_
