// Regime-shift stream used by the time-decay ablation.
//
// The paper motivates its exponential-decay variant with "evolving data
// streams in which the underlying patterns may change over time". This
// generator produces the sharpest version of that: the cluster layout is
// re-drawn from scratch every `regime_length` points while class labels
// keep their identity within a regime, so an algorithm that forgets old
// data (decay) recovers quickly after each shift while one that does not
// drags stale centroids along.

#ifndef UMICRO_SYNTH_REGIME_GENERATOR_H_
#define UMICRO_SYNTH_REGIME_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "stream/dataset.h"
#include "util/random.h"

namespace umicro::synth {

/// Configuration for the regime-shift stream.
struct RegimeOptions {
  /// Dimensionality.
  std::size_t dimensions = 12;
  /// Clusters per regime.
  std::size_t num_clusters = 6;
  /// Points between full layout re-draws.
  std::size_t regime_length = 20000;
  /// Per-dimension Gaussian radius range.
  double max_radius = 0.15;
  /// RNG seed.
  std::uint64_t seed = 77;
};

/// Piecewise-stationary Gaussian mixture with abrupt regime shifts.
class RegimeShiftGenerator {
 public:
  explicit RegimeShiftGenerator(RegimeOptions options);

  /// Appends `num_points` points to `dataset`; regime phase carries over.
  void GenerateInto(std::size_t num_points, stream::Dataset& dataset);

  /// Convenience: returns a new dataset of `num_points` points.
  stream::Dataset Generate(std::size_t num_points);

  /// Index of the regime currently being emitted.
  std::size_t current_regime() const { return regime_index_; }

 private:
  void RedrawLayout();

  RegimeOptions options_;
  util::Rng rng_;
  std::vector<std::vector<double>> centroids_;
  std::vector<std::vector<double>> radii_;
  std::vector<double> fractions_;
  std::size_t points_in_regime_ = 0;
  std::size_t regime_index_ = 0;
  double next_timestamp_ = 0.0;
};

}  // namespace umicro::synth

#endif  // UMICRO_SYNTH_REGIME_GENERATOR_H_
