// Sensor-field simulator: the paper's primary motivating deployment.
//
// "Sensors are typically expected to have considerable noise in their
// readings because of inaccuracies in data retrieval, transmission, and
// power failures. In many cases, the estimated error of the underlying
// data stream is available." This generator models a field of sensors
// grouped into physical zones: every reading is a multi-channel
// measurement whose noise level is *sensor-specific and known* (from the
// sensor's calibration record), grows as the sensor ages, and whose
// channels can drop out entirely (transmission/power failures -> NaN,
// feeding the imputation substrate). The zone is the ground-truth label.

#ifndef UMICRO_SYNTH_SENSOR_FIELD_H_
#define UMICRO_SYNTH_SENSOR_FIELD_H_

#include <cstdint>
#include <vector>

#include "stream/dataset.h"
#include "util/random.h"

namespace umicro::synth {

/// Configuration of the sensor field.
struct SensorFieldOptions {
  /// Channels per reading (temperature, humidity, vibration, ...).
  std::size_t channels = 6;
  /// Number of physical zones (ground-truth clusters).
  std::size_t num_zones = 5;
  /// Sensors per zone; readings round-robin over all sensors.
  std::size_t sensors_per_zone = 8;
  /// Zone signal spread per channel (process noise, not sensor noise).
  double process_noise = 0.5;
  /// Range of per-sensor baseline noise floors (calibration quality).
  double min_noise_floor = 0.05;
  double max_noise_floor = 1.5;
  /// Fractional noise growth per 10,000 readings of sensor age.
  double aging_rate = 0.5;
  /// Probability that a channel of a reading drops out (NaN).
  double dropout_probability = 0.0;
  /// RNG seed.
  std::uint64_t seed = 1234;
};

/// Simulates a field of aging, zone-grouped sensors.
class SensorFieldGenerator {
 public:
  explicit SensorFieldGenerator(SensorFieldOptions options);

  /// Appends `num_readings` readings to `dataset`; sensor age and the
  /// round-robin position carry across calls.
  void GenerateInto(std::size_t num_readings, stream::Dataset& dataset);

  /// Convenience: returns a new dataset of `num_readings` readings.
  stream::Dataset Generate(std::size_t num_readings);

  /// Total number of sensors simulated.
  std::size_t num_sensors() const { return sensor_zone_.size(); }

  /// Current (age-grown) noise level of sensor `s`.
  double SensorNoise(std::size_t s) const;

  /// Zone of sensor `s`.
  std::size_t SensorZone(std::size_t s) const { return sensor_zone_[s]; }

 private:
  SensorFieldOptions options_;
  util::Rng rng_;
  /// Per-zone per-channel base signal.
  std::vector<std::vector<double>> zone_means_;
  /// Per-sensor zone assignment.
  std::vector<std::size_t> sensor_zone_;
  /// Per-sensor baseline noise floor.
  std::vector<double> noise_floor_;
  /// Per-sensor number of readings taken (age).
  std::vector<std::size_t> sensor_age_;
  std::size_t next_sensor_ = 0;
  double next_timestamp_ = 0.0;
};

}  // namespace umicro::synth

#endif  // UMICRO_SYNTH_SENSOR_FIELD_H_
