// The paper's SynDrift synthetic stream.
//
// Section III: clusters with relative fractions f_i ~ U[0,1] (normalized),
// per-dimension radii drawn from [0, 0.3], centroids initially uniform in
// the unit cube, and each centroid drifting along every dimension by a
// per-step amount drawn from U[-eps, +eps]. The default configuration
// matches the paper's 20-dimensional, 600,000-point stream.

#ifndef UMICRO_SYNTH_DRIFT_GENERATOR_H_
#define UMICRO_SYNTH_DRIFT_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "stream/dataset.h"
#include "util/random.h"

namespace umicro::synth {

/// Configuration for the SynDrift generator.
struct DriftOptions {
  /// Dimensionality of the stream (paper: 20).
  std::size_t dimensions = 20;
  /// Number of ground-truth clusters; the paper does not fix this, we
  /// default to 10 well-populated drifting clusters.
  std::size_t num_clusters = 10;
  /// Maximum per-dimension Gaussian radius of a cluster. The paper's
  /// text gives both "(0, 1)" and "[0, 0.3]" for this range; 0.6 keeps
  /// the clusters overlapped enough that accuracy does not saturate at
  /// low noise (with 0.3 both algorithms sit at ~1.0 purity for eta <=
  /// 0.5 and the comparison is uninformative).
  double max_radius = 0.6;
  /// Per-point drift magnitude: each centroid coordinate moves by
  /// U[-drift_epsilon, +drift_epsilon] per generated point.
  double drift_epsilon = 0.001;
  /// RNG seed.
  std::uint64_t seed = 42;
};

/// Generates continuously drifting Gaussian clusters in the unit cube.
///
/// The generator is stateful: centroids keep drifting across successive
/// `Generate` calls, so one instance can produce an arbitrarily long
/// evolving stream in chunks.
class DriftingGaussianGenerator {
 public:
  explicit DriftingGaussianGenerator(DriftOptions options);

  /// Appends `num_points` freshly generated points to `dataset` (which
  /// must be empty or have matching dimensionality). Timestamps continue
  /// from the last generated point.
  void GenerateInto(std::size_t num_points, stream::Dataset& dataset);

  /// Convenience: returns a new dataset of `num_points` points.
  stream::Dataset Generate(std::size_t num_points);

  /// Current centroid of cluster `c` (test/inspection hook).
  const std::vector<double>& centroid(std::size_t c) const {
    return centroids_[c];
  }

  /// Per-dimension radius (Gaussian stddev) of cluster `c`.
  const std::vector<double>& radius(std::size_t c) const {
    return radii_[c];
  }

  /// Normalized cluster fractions f_i.
  const std::vector<double>& fractions() const { return fractions_; }

 private:
  DriftOptions options_;
  util::Rng rng_;
  std::vector<std::vector<double>> centroids_;
  std::vector<std::vector<double>> radii_;
  std::vector<double> fractions_;
  double next_timestamp_ = 0.0;
};

}  // namespace umicro::synth

#endif  // UMICRO_SYNTH_DRIFT_GENERATOR_H_
