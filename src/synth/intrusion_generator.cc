#include "synth/intrusion_generator.h"

#include <cmath>

#include "util/check.h"

namespace umicro::synth {

IntrusionStreamGenerator::IntrusionStreamGenerator(IntrusionOptions options)
    : options_(options), rng_(options.seed) {
  UMICRO_CHECK(options_.dimensions > 0);
  UMICRO_CHECK(options_.burst_start_probability >= 0.0 &&
               options_.burst_start_probability < 1.0);
  UMICRO_CHECK(options_.mean_burst_length >= 1.0);

  // Heavy-tailed attribute scales: exp(N(0, 1.5)) spans ~3 orders of
  // magnitude, mimicking byte counts vs. rates vs. percentages.
  attribute_scales_.resize(options_.dimensions);
  for (double& s : attribute_scales_) {
    s = std::exp(rng_.Gaussian(0.0, 1.5));
  }

  class_offsets_.resize(kNumClasses);
  class_spreads_.resize(kNumClasses);
  for (int cls = 0; cls < kNumClasses; ++cls) {
    class_offsets_[cls].resize(options_.dimensions);
    class_spreads_[cls].resize(options_.dimensions);
    for (std::size_t j = 0; j < options_.dimensions; ++j) {
      if (cls == kNormal) {
        class_offsets_[cls][j] = 0.0;
        class_spreads_[cls][j] = 1.0;
      } else {
        // Attacks shift a random subset of attributes strongly (e.g. SYN
        // error rate for DOS, root accesses for U2R) and leave the rest
        // near the normal profile.
        const bool distinctive = rng_.NextDouble() < 0.35;
        class_offsets_[cls][j] =
            distinctive ? rng_.Uniform(2.0, 6.0) *
                              (rng_.NextDouble() < 0.5 ? -1.0 : 1.0)
                        : rng_.Uniform(-0.3, 0.3);
        class_spreads_[cls][j] = rng_.Uniform(0.5, 1.5);
      }
    }
  }
}

std::vector<double> IntrusionStreamGenerator::DrawValues(int cls) {
  std::vector<double> values(options_.dimensions);
  for (std::size_t j = 0; j < options_.dimensions; ++j) {
    values[j] = attribute_scales_[j] *
                rng_.Gaussian(class_offsets_[cls][j], class_spreads_[cls][j]);
  }
  return values;
}

void IntrusionStreamGenerator::GenerateInto(std::size_t num_points,
                                            stream::Dataset& dataset) {
  if (!dataset.empty()) {
    UMICRO_CHECK(dataset.dimensions() == options_.dimensions);
  }
  for (std::size_t i = 0; i < num_points; ++i) {
    int cls = kNormal;
    if (burst_remaining_ > 0) {
      // Inside a burst: mostly the attack class, some background.
      cls = rng_.NextDouble() < options_.background_during_burst
                ? kNormal
                : active_burst_class_;
      --burst_remaining_;
    } else if (rng_.NextDouble() < options_.burst_start_probability) {
      // Start a new burst of a random attack type.
      active_burst_class_ =
          1 + static_cast<int>(rng_.NextBounded(kNumClasses - 1));
      burst_remaining_ = 1 + static_cast<std::size_t>(
                                 rng_.Exponential(1.0 /
                                                  options_.mean_burst_length));
      cls = active_burst_class_;
    }
    dataset.Add(stream::UncertainPoint(DrawValues(cls), next_timestamp_,
                                       cls));
    next_timestamp_ += 1.0;
  }
}

stream::Dataset IntrusionStreamGenerator::Generate(std::size_t num_points) {
  stream::Dataset dataset(options_.dimensions);
  GenerateInto(num_points, dataset);
  return dataset;
}

}  // namespace umicro::synth
