#include "synth/workloads.h"

#include "stream/perturbation.h"
#include "stream/stream_stats.h"
#include "synth/drift_generator.h"
#include "synth/forest_generator.h"
#include "synth/intrusion_generator.h"
#include "util/check.h"

namespace umicro::synth {

void ApplyPaperNoise(stream::Dataset& dataset, double eta,
                     std::uint64_t seed) {
  UMICRO_CHECK(eta >= 0.0);
  if (eta <= 0.0 || dataset.empty()) return;
  stream::StreamStats stats(dataset.dimensions());
  stats.AddAll(dataset);
  stream::PerturbationOptions options;
  options.eta = eta;
  options.seed = seed;
  stream::Perturber perturber(stats.Stddevs(), options);
  perturber.PerturbDataset(dataset);
}

stream::Dataset MakeSynDriftWorkload(std::size_t points, double eta,
                                     std::uint64_t seed) {
  DriftOptions options;
  options.seed = seed;
  DriftingGaussianGenerator generator(options);
  stream::Dataset dataset = generator.Generate(points);
  ApplyPaperNoise(dataset, eta, seed + 1);
  return dataset;
}

stream::Dataset MakeNetworkWorkload(std::size_t points, double eta,
                                    std::uint64_t seed) {
  IntrusionOptions options;
  options.seed = seed;
  IntrusionStreamGenerator generator(options);
  stream::Dataset dataset = generator.Generate(points);
  ApplyPaperNoise(dataset, eta, seed + 1);
  return dataset;
}

stream::Dataset MakeForestWorkload(std::size_t points, double eta,
                                   std::uint64_t seed) {
  ForestOptions options;
  options.seed = seed;
  ForestCoverGenerator generator(options);
  stream::Dataset dataset = generator.Generate(points);
  ApplyPaperNoise(dataset, eta, seed + 1);
  return dataset;
}

}  // namespace umicro::synth
