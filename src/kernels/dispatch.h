// Runtime selection of the vectorized kernel backend.
//
// Every kernel in this layer exists in three functionally equivalent
// tiers: a scalar reference (the semantics contract), an SSE2 variant
// (x86-64 baseline, 2 doubles per vector), and an AVX2+FMA variant
// (4 doubles per vector). The tier is chosen once per process by CPUID
// probing; the `UMICRO_KERNEL` environment variable (scalar | sse2 |
// avx2) clamps the choice downward for parity testing and benchmarking.
//
// Exactness contract (docs/kernels.md): element-wise update kernels
// (fused ECF add, decay scale, merge) are bit-identical across tiers --
// vector lanes perform the same multiply-then-add per element as the
// scalar loop. Reduction kernels (batch distances, similarity votes,
// closest-pair) reassociate the per-dimension sum, so tiers agree only
// to floating-point tolerance; callers must not depend on which side of
// an exact tie a reduction lands.

#ifndef UMICRO_KERNELS_DISPATCH_H_
#define UMICRO_KERNELS_DISPATCH_H_

namespace umicro::kernels {

/// Kernel implementation tiers, ordered by capability.
enum class Backend {
  /// Portable reference implementation; the semantics contract.
  kScalar = 0,
  /// SSE2 intrinsics (always available on x86-64).
  kSse2 = 1,
  /// AVX2 + FMA intrinsics.
  kAvx2 = 2,
};

/// The best tier this CPU supports, clamped by the `UMICRO_KERNEL`
/// environment variable if set. Probed once; subsequent calls are free.
Backend DetectBackend();

/// Highest tier the hardware supports, ignoring the environment
/// override (used by parity tests to enumerate testable tiers).
Backend MaxSupportedBackend();

/// Human-readable tier name ("scalar", "sse2", "avx2").
const char* BackendName(Backend backend);

}  // namespace umicro::kernels

#endif  // UMICRO_KERNELS_DISPATCH_H_
