#include "kernels/kernels.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define UMICRO_KERNELS_X64 1
#else
#define UMICRO_KERNELS_X64 0
#endif

namespace umicro::kernels {

namespace {

// ---- Row reductions, scalar tier ------------------------------------
// Exact left-to-right accumulation: the semantics reference, and the
// same numbers the pre-kernel loops in core::UMicro produced.

double VotesRowScalar(const double* x, const double* base,
                      const double* inv_scaled, const double* centroid,
                      const double* ef2n2, std::size_t stride) {
  double s = 0.0;
  if (ef2n2 != nullptr) {
    for (std::size_t j = 0; j < stride; ++j) {
      const double diff = x[j] - centroid[j];
      const double dist2 = diff * diff + ef2n2[j];
      s += std::max(0.0, base[j] - dist2 * inv_scaled[j]);
    }
  } else {
    for (std::size_t j = 0; j < stride; ++j) {
      const double diff = x[j] - centroid[j];
      s += std::max(0.0, base[j] - diff * diff * inv_scaled[j]);
    }
  }
  return s;
}

double BoxDist2RowScalar(const double* x, const double* lo, const double* hi,
                         std::size_t stride) {
  double d2 = 0.0;
  for (std::size_t j = 0; j < stride; ++j) {
    double e = 0.0;
    if (x[j] < lo[j]) {
      e = lo[j] - x[j];
    } else if (x[j] > hi[j]) {
      e = x[j] - hi[j];
    }
    d2 += e * e;
  }
  return d2;
}

double Dist2RowScalar(const double* a, const double* b, std::size_t stride) {
  double d2 = 0.0;
  for (std::size_t j = 0; j < stride; ++j) {
    const double diff = a[j] - b[j];
    d2 += diff * diff;
  }
  return d2;
}

#if UMICRO_KERNELS_X64

// ---- Row reductions, SSE2 tier (2 doubles/lane) ---------------------

__attribute__((target("sse2"))) double HorizontalSum(__m128d v) {
  const __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_add_sd(v, hi));
}

__attribute__((target("sse2"))) double VotesRowSse2(
    const double* x, const double* base, const double* inv_scaled,
    const double* centroid, const double* ef2n2, std::size_t stride) {
  const __m128d zero = _mm_setzero_pd();
  __m128d acc = zero;
  if (ef2n2 != nullptr) {
    for (std::size_t j = 0; j < stride; j += 2) {
      const __m128d diff =
          _mm_sub_pd(_mm_loadu_pd(x + j), _mm_loadu_pd(centroid + j));
      const __m128d dist2 =
          _mm_add_pd(_mm_mul_pd(diff, diff), _mm_loadu_pd(ef2n2 + j));
      const __m128d vote =
          _mm_sub_pd(_mm_loadu_pd(base + j),
                     _mm_mul_pd(dist2, _mm_loadu_pd(inv_scaled + j)));
      acc = _mm_add_pd(acc, _mm_max_pd(vote, zero));
    }
  } else {
    for (std::size_t j = 0; j < stride; j += 2) {
      const __m128d diff =
          _mm_sub_pd(_mm_loadu_pd(x + j), _mm_loadu_pd(centroid + j));
      const __m128d vote =
          _mm_sub_pd(_mm_loadu_pd(base + j),
                     _mm_mul_pd(_mm_mul_pd(diff, diff),
                                _mm_loadu_pd(inv_scaled + j)));
      acc = _mm_add_pd(acc, _mm_max_pd(vote, zero));
    }
  }
  return HorizontalSum(acc);
}

__attribute__((target("sse2"))) double BoxDist2RowSse2(const double* x,
                                                       const double* lo,
                                                       const double* hi,
                                                       std::size_t stride) {
  const __m128d zero = _mm_setzero_pd();
  __m128d acc = zero;
  for (std::size_t j = 0; j < stride; j += 2) {
    const __m128d xv = _mm_loadu_pd(x + j);
    const __m128d below = _mm_sub_pd(_mm_loadu_pd(lo + j), xv);
    const __m128d above = _mm_sub_pd(xv, _mm_loadu_pd(hi + j));
    const __m128d e = _mm_max_pd(_mm_max_pd(below, above), zero);
    acc = _mm_add_pd(acc, _mm_mul_pd(e, e));
  }
  return HorizontalSum(acc);
}

__attribute__((target("sse2"))) double Dist2RowSse2(const double* a,
                                                    const double* b,
                                                    std::size_t stride) {
  __m128d acc = _mm_setzero_pd();
  for (std::size_t j = 0; j < stride; j += 2) {
    const __m128d diff = _mm_sub_pd(_mm_loadu_pd(a + j), _mm_loadu_pd(b + j));
    acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
  }
  return HorizontalSum(acc);
}

// ---- Row reductions, AVX2+FMA tier (4 doubles/lane) -----------------

__attribute__((target("avx2,fma"))) double HorizontalSum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

__attribute__((target("avx2,fma"))) double VotesRowAvx2(
    const double* x, const double* base, const double* inv_scaled,
    const double* centroid, const double* ef2n2, std::size_t stride) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  if (ef2n2 != nullptr) {
    for (std::size_t j = 0; j < stride; j += 4) {
      const __m256d diff =
          _mm256_sub_pd(_mm256_loadu_pd(x + j), _mm256_loadu_pd(centroid + j));
      const __m256d dist2 =
          _mm256_fmadd_pd(diff, diff, _mm256_loadu_pd(ef2n2 + j));
      const __m256d vote = _mm256_fnmadd_pd(
          dist2, _mm256_loadu_pd(inv_scaled + j), _mm256_loadu_pd(base + j));
      acc = _mm256_add_pd(acc, _mm256_max_pd(vote, zero));
    }
  } else {
    for (std::size_t j = 0; j < stride; j += 4) {
      const __m256d diff =
          _mm256_sub_pd(_mm256_loadu_pd(x + j), _mm256_loadu_pd(centroid + j));
      const __m256d dist2 = _mm256_mul_pd(diff, diff);
      const __m256d vote = _mm256_fnmadd_pd(
          dist2, _mm256_loadu_pd(inv_scaled + j), _mm256_loadu_pd(base + j));
      acc = _mm256_add_pd(acc, _mm256_max_pd(vote, zero));
    }
  }
  return HorizontalSum256(acc);
}

__attribute__((target("avx2,fma"))) double BoxDist2RowAvx2(
    const double* x, const double* lo, const double* hi, std::size_t stride) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  for (std::size_t j = 0; j < stride; j += 4) {
    const __m256d xv = _mm256_loadu_pd(x + j);
    const __m256d below = _mm256_sub_pd(_mm256_loadu_pd(lo + j), xv);
    const __m256d above = _mm256_sub_pd(xv, _mm256_loadu_pd(hi + j));
    const __m256d e = _mm256_max_pd(_mm256_max_pd(below, above), zero);
    acc = _mm256_fmadd_pd(e, e, acc);
  }
  return HorizontalSum256(acc);
}

__attribute__((target("avx2,fma"))) double Dist2RowAvx2(const double* a,
                                                        const double* b,
                                                        std::size_t stride) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t j = 0; j < stride; j += 4) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc = _mm256_fmadd_pd(diff, diff, acc);
  }
  return HorizontalSum256(acc);
}

#endif  // UMICRO_KERNELS_X64

double VotesRow(Backend backend, const double* x, const double* base,
                const double* inv_scaled, const double* centroid,
                const double* ef2n2, std::size_t stride) {
  switch (backend) {
#if UMICRO_KERNELS_X64
    case Backend::kAvx2:
      return VotesRowAvx2(x, base, inv_scaled, centroid, ef2n2, stride);
    case Backend::kSse2:
      return VotesRowSse2(x, base, inv_scaled, centroid, ef2n2, stride);
#endif
    default:
      return VotesRowScalar(x, base, inv_scaled, centroid, ef2n2, stride);
  }
}

double Dist2Row(Backend backend, const double* a, const double* b,
                std::size_t stride) {
  switch (backend) {
#if UMICRO_KERNELS_X64
    case Backend::kAvx2:
      return Dist2RowAvx2(a, b, stride);
    case Backend::kSse2:
      return Dist2RowSse2(a, b, stride);
#endif
    default:
      return Dist2RowScalar(a, b, stride);
  }
}

}  // namespace

void PointContext::Prepare(const ClusterTable& table, const double* values,
                           const double* errors,
                           const double* inv_scaled_variances) {
  dims = table.dims();
  stride = table.stride();
  x.assign(stride, 0.0);
  base.assign(stride, 0.0);
  inv_scaled.assign(stride, 0.0);
  psi2_sum = 0.0;
  for (std::size_t j = 0; j < dims; ++j) {
    x[j] = values[j];
    const double psi = errors == nullptr ? 0.0 : errors[j];
    psi2_sum += psi * psi;
    if (inv_scaled_variances != nullptr) {
      const double inv = inv_scaled_variances[j];
      inv_scaled[j] = inv;
      const double mask = inv > 0.0 ? 1.0 : 0.0;
      base[j] = mask - psi * psi * inv;
    }
  }
}

void BatchDimensionVotes(const ClusterTable& table, const PointContext& ctx,
                         bool include_cluster_error, Backend backend,
                         double* out) {
  UMICRO_DCHECK(ctx.stride == table.stride());
  const std::size_t rows = table.rows();
  for (std::size_t i = 0; i < rows; ++i) {
    out[i] = VotesRow(backend, ctx.x.data(), ctx.base.data(),
                      ctx.inv_scaled.data(), table.centroid_row(i),
                      include_cluster_error ? table.ef2n2_row(i) : nullptr,
                      ctx.stride);
  }
}

void BatchSquaredDistances(const ClusterTable& table, const PointContext& ctx,
                           DistanceKind kind, Backend backend, double* out) {
  UMICRO_DCHECK(ctx.stride == table.stride());
  const std::size_t rows = table.rows();
  for (std::size_t i = 0; i < rows; ++i) {
    const double geometric =
        Dist2Row(backend, ctx.x.data(), table.centroid_row(i), ctx.stride);
    out[i] = kind == DistanceKind::kExpected
                 ? std::max(0.0, geometric + table.ef2n2_sum(i) + ctx.psi2_sum)
                 : geometric;
  }
}

void GatherSquaredDistances(const ClusterTable& table, const PointContext& ctx,
                            DistanceKind kind, Backend backend,
                            const std::uint32_t* rows, std::size_t count,
                            double* out) {
  UMICRO_DCHECK(ctx.stride == table.stride());
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t i = rows[k];
    UMICRO_DCHECK(i < table.rows());
    const double geometric =
        Dist2Row(backend, ctx.x.data(), table.centroid_row(i), ctx.stride);
    out[k] = kind == DistanceKind::kExpected
                 ? std::max(0.0, geometric + table.ef2n2_sum(i) + ctx.psi2_sum)
                 : geometric;
  }
}

double RowSquaredDistance(Backend backend, const double* a, const double* b,
                          std::size_t stride) {
  return Dist2Row(backend, a, b, stride);
}

double BoxSquaredDistance(Backend backend, const double* x, const double* lo,
                          const double* hi, std::size_t stride) {
  switch (backend) {
#if UMICRO_KERNELS_X64
    case Backend::kAvx2:
      return BoxDist2RowAvx2(x, lo, hi, stride);
    case Backend::kSse2:
      return BoxDist2RowSse2(x, lo, hi, stride);
#endif
    default:
      return BoxDist2RowScalar(x, lo, hi, stride);
  }
}

void ClosestCentroidPair(const ClusterTable& table, Backend backend,
                         std::size_t* out_a, std::size_t* out_b,
                         double* out_d2) {
  const std::size_t q = table.rows();
  UMICRO_CHECK(q >= 2);
  const std::size_t stride = table.stride();
  const double* centroids = table.centroid_data();

  // Block the q x q upper triangle so each pass keeps one tile of
  // centroid rows hot in L1/L2; 16 rows of up-to-64 padded dims are
  // 8 KiB per tile, two tiles per pass.
  constexpr std::size_t kBlock = 16;
  std::size_t best_a = 0;
  std::size_t best_b = 1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t a0 = 0; a0 < q; a0 += kBlock) {
    const std::size_t a1 = std::min(a0 + kBlock, q);
    for (std::size_t b0 = a0; b0 < q; b0 += kBlock) {
      const std::size_t b1 = std::min(b0 + kBlock, q);
      for (std::size_t a = a0; a < a1; ++a) {
        const double* row_a = centroids + a * stride;
        const std::size_t b_begin = std::max(b0, a + 1);
        for (std::size_t b = b_begin; b < b1; ++b) {
          const double d2 = Dist2Row(backend, row_a, centroids + b * stride,
                                     stride);
          if (d2 < best_d2) {
            best_d2 = d2;
            best_a = a;
            best_b = b;
          }
        }
      }
    }
  }
  *out_a = best_a;
  *out_b = best_b;
  *out_d2 = best_d2;
}

std::size_t ArgMax(const double* values, std::size_t n) {
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] > best_value) {
      best_value = values[i];
      best = i;
    }
  }
  return best;
}

std::size_t ArgMin(const double* values, std::size_t n) {
  std::size_t best = 0;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] < best_value) {
      best_value = values[i];
      best = i;
    }
  }
  return best;
}

}  // namespace umicro::kernels
