// Batched scan kernels over the SoA micro-cluster table.
//
// These are the read-side kernels of the layer: each evaluates one point
// (or the table against itself) across all q rows in a single pass.
// They are reduction kernels under the exactness contract of
// dispatch.h -- the SSE2/AVX2 tiers reassociate the per-dimension sums
// (and use FMA), so tiers agree with the scalar reference only to
// floating-point tolerance. The scalar tier reproduces the exact
// left-to-right accumulation of the pre-kernel loops in core::UMicro.
//
// All kernels consume the zero-padded stride layout of ClusterTable:
// padded lanes contribute exactly 0 to every sum and vote, so no scalar
// remainder loops exist in any tier.

#ifndef UMICRO_KERNELS_KERNELS_H_
#define UMICRO_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/cluster_table.h"
#include "kernels/dispatch.h"

namespace umicro::kernels {

/// Per-point precomputation staged into padded buffers, built once per
/// point (O(d)) and reused by every batch kernel call for that point
/// (O(q*d) work amortized over it).
struct PointContext {
  /// Stages point (values, errors) for a scan against `table`.
  /// `errors` may be null (deterministic point). `inv_scaled_variances`
  /// is the cached 1/(thresh*sigma_j^2) vector (zero entries mark
  /// pruned, zero-variance dimensions); it may be null when only
  /// distance kernels will run.
  void Prepare(const ClusterTable& table, const double* values,
               const double* errors, const double* inv_scaled_variances);

  std::size_t dims = 0;
  std::size_t stride = 0;

  /// Point instantiation, padded with zeros.
  std::vector<double> x;
  /// base[j] = mask[j] - psi_j^2 * inv_scaled[j]: the vote an exact
  /// centroid match earns on dimension j (mask is 1 where the dimension
  /// counts, 0 where pruned). Zero-filled when inv_scaled was null.
  std::vector<double> base;
  /// Padded copy of 1/(thresh*sigma_j^2); zeros beyond dims and on
  /// pruned dimensions.
  std::vector<double> inv_scaled;
  /// sum_j psi_j^2 -- the point's own error constant of Lemma 2.2.
  double psi2_sum = 0.0;
};

/// Which squared distance BatchSquaredDistances evaluates.
enum class DistanceKind {
  /// Lemma 2.2: geometric-to-centroid + EF2/n^2 + psi^2, clamped at 0.
  kExpected,
  /// Instantiation to expected centroid only.
  kGeometric,
};

/// Dimension-counting similarity (Section II-B) of the staged point
/// against every row: out[i] = sum_j max{0, base[j] - dist2_j *
/// inv_scaled[j]} with dist2_j = (x_j - centroid_ij)^2, plus the row's
/// EF2_j/n^2 when `include_cluster_error` (the paper-literal form).
/// `out` must hold table.rows() doubles.
void BatchDimensionVotes(const ClusterTable& table, const PointContext& ctx,
                         bool include_cluster_error, Backend backend,
                         double* out);

/// Squared distance of the staged point to every row; `out` must hold
/// table.rows() doubles.
void BatchSquaredDistances(const ClusterTable& table, const PointContext& ctx,
                           DistanceKind kind, Backend backend, double* out);

/// Squared distance of the staged point to each of the `count` listed
/// rows (an index shortlist; see index/centroid_index.h): out[k] is the
/// value BatchSquaredDistances would write for row rows[k], computed by
/// the identical per-row reduction -- bit-identical, so ArgMin over a
/// strictly ascending shortlist that contains the full scan's winner
/// reproduces the full scan's first-wins choice exactly.
void GatherSquaredDistances(const ClusterTable& table, const PointContext& ctx,
                            DistanceKind kind, Backend backend,
                            const std::uint32_t* rows, std::size_t count,
                            double* out);

/// Squared Euclidean distance between two stride-length padded rows on
/// the requested tier (the single-row reduction behind the batch scans;
/// exported for the index layer's snapshot geometry).
double RowSquaredDistance(Backend backend, const double* a, const double* b,
                          std::size_t stride);

/// Squared Euclidean distance from point `x` to the axis-aligned box
/// [lo, hi] (0 inside), over stride-length padded rows; padded lanes
/// must carry lo = hi = 0 so a zero-padded point contributes nothing.
double BoxSquaredDistance(Backend backend, const double* x, const double* lo,
                          const double* hi, std::size_t stride);

/// Cache-blocked search for the pair of rows with minimal squared
/// centroid distance (the maintenance-merge candidate). Requires at
/// least two rows; writes the winning indices (a < b; exact-distance
/// ties resolve to whichever pair the blocked traversal visits first)
/// and their squared distance.
void ClosestCentroidPair(const ClusterTable& table, Backend backend,
                         std::size_t* out_a, std::size_t* out_b,
                         double* out_d2);

/// Index of the strictly greatest value (first index wins ties) --
/// matches the `>`-comparison scan of the pre-kernel similarity loop.
std::size_t ArgMax(const double* values, std::size_t n);

/// Index of the strictly smallest value (first index wins ties).
std::size_t ArgMin(const double* values, std::size_t n);

}  // namespace umicro::kernels

#endif  // UMICRO_KERNELS_KERNELS_H_
