// Structure-of-arrays mirror of the live micro-cluster set.
//
// The UMicro hot path evaluates every arriving point against all q
// micro-clusters (expected distance / dimension-counting similarity,
// Lemmas 2.1/2.2). With the clusters stored as an array of
// ErrorClusterFeature structs that scan chases q heap-allocated vectors
// per point; this table keeps the same statistics as q contiguous,
// zero-padded rows so the scan kernels stream through memory and
// vectorize.
//
// Per cluster row i (stride-padded, zeros beyond `dims`):
//   cf1[i][j]       first moments          (authoritative mirror)
//   cf2[i][j]       second moments         (authoritative mirror)
//   ef2[i][j]       squared-error sums     (authoritative mirror)
//   centroid[i][j]  cf1[j] / n             (derived, scan input)
//   ef2n2[i][j]     ef2[j] / n^2           (derived, scan input)
// plus per-cluster scalars: weight n, 1/n, and sum_j ef2n2[j] (the
// cluster-error constant of the expected distance).
//
// Synchronization contract: the owner (core::UMicro) applies every
// mutation of a cluster's ECF to the same row here, through the fused
// update entry points below. Those updates perform the identical IEEE
// multiply-then-add sequence as ErrorClusterFeature, so mirror and
// struct stay bit-identical -- checkpoints keep serializing the structs
// and remain byte-compatible ("ucheckpoint 2"). The derived rows are
// refreshed by shared (tier-independent) code so every backend sees the
// same scan inputs.

#ifndef UMICRO_KERNELS_CLUSTER_TABLE_H_
#define UMICRO_KERNELS_CLUSTER_TABLE_H_

#include <cstddef>
#include <vector>

#include "kernels/dispatch.h"

namespace umicro::kernels {

/// Contiguous SoA view of q micro-clusters' ECF statistics.
class ClusterTable {
 public:
  ClusterTable() = default;

  /// Creates an empty table for `dimensions`-dimensional clusters.
  explicit ClusterTable(std::size_t dimensions);

  /// Re-initializes for `dimensions`, dropping all rows.
  void Reset(std::size_t dimensions);

  /// Pre-allocates storage for `rows` clusters.
  void Reserve(std::size_t rows);

  /// Appends a row from raw ECF statistics (arrays of length `dims()`).
  /// `weight` must be positive.
  void PushRow(const double* cf1, const double* cf2, const double* ef2,
               double weight);

  /// Appends a singleton row for one point: cf1 = w*x, cf2 = w*x^2,
  /// ef2 = w*psi^2 (`errors` may be null for deterministic points).
  void PushPointRow(const double* values, const double* errors,
                    double weight);

  /// Overwrites row `i` from raw ECF statistics.
  void SetRow(std::size_t i, const double* cf1, const double* cf2,
              const double* ef2, double weight);

  /// Fused ECF update: folds one weighted point into row `i` (CF1 += w*x,
  /// CF2 += w*x^2, EF2 += w*psi^2, n += w) and refreshes the derived
  /// rows, in one pass. Bit-identical to ErrorClusterFeature::AddPoint.
  void AddPoint(std::size_t i, const double* values, const double* errors,
                double weight);

  /// Fused decay: multiplies every additive statistic of every row by
  /// `factor` (> 0) and refreshes the derived rows. Bit-identical to
  /// calling ErrorClusterFeature::Scale on each cluster.
  void ScaleAll(double factor);

  /// Merges row `from` into row `into` (component-wise ECF addition,
  /// Property 2.1) and refreshes `into`'s derived rows. `from` is left
  /// untouched; remove it separately.
  void MergeRows(std::size_t into, std::size_t from);

  /// Removes row `i`, shifting later rows down (order-preserving, so row
  /// indices keep matching the owner's cluster vector).
  void RemoveRow(std::size_t i);

  /// Number of live rows q.
  std::size_t rows() const { return rows_; }

  /// Dimensionality d.
  std::size_t dims() const { return dims_; }

  /// Padded row length (multiple of 8 doubles; zeros beyond dims()).
  std::size_t stride() const { return stride_; }

  /// Backend used by the update kernels (bit-identical across tiers;
  /// settable for parity tests and benchmarks).
  Backend backend() const { return backend_; }
  void set_backend(Backend backend) { backend_ = backend; }

  // Row accessors (pointers into the contiguous arrays, stride() long).
  const double* cf1_row(std::size_t i) const { return &cf1_[i * stride_]; }
  const double* cf2_row(std::size_t i) const { return &cf2_[i * stride_]; }
  const double* ef2_row(std::size_t i) const { return &ef2_[i * stride_]; }
  const double* centroid_row(std::size_t i) const {
    return &centroid_[i * stride_];
  }
  const double* ef2n2_row(std::size_t i) const {
    return &ef2n2_[i * stride_];
  }

  /// Cluster weight n(C) of row `i`.
  double weight(std::size_t i) const { return weight_[i]; }

  /// Cached 1/n of row `i`.
  double inv_weight(std::size_t i) const { return inv_weight_[i]; }

  /// Cached sum_j EF2_j/n^2 of row `i` (Lemma 2.1's cluster-error term).
  double ef2n2_sum(std::size_t i) const { return ef2n2_sum_[i]; }

  /// The whole centroid array (rows() * stride() doubles) -- input of
  /// the closest-pair kernel.
  const double* centroid_data() const { return centroid_.data(); }

 private:
  /// Recomputes the derived rows (centroid, ef2n2, ef2n2_sum, 1/n) of
  /// row `i`. Shared scalar code so every backend derives identical
  /// scan inputs.
  void RefreshDerived(std::size_t i);

  std::size_t dims_ = 0;
  std::size_t stride_ = 0;
  std::size_t rows_ = 0;
  Backend backend_ = DetectBackend();

  std::vector<double> cf1_;
  std::vector<double> cf2_;
  std::vector<double> ef2_;
  std::vector<double> centroid_;
  std::vector<double> ef2n2_;
  std::vector<double> weight_;
  std::vector<double> inv_weight_;
  std::vector<double> ef2n2_sum_;

  // Padded staging buffers for AddPoint (point values and pre-weighted
  // squared errors), reused across calls to avoid allocation.
  std::vector<double> x_stage_;
  std::vector<double> psi2w_stage_;
};

}  // namespace umicro::kernels

#endif  // UMICRO_KERNELS_CLUSTER_TABLE_H_
