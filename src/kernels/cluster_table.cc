#include "kernels/cluster_table.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define UMICRO_KERNELS_X64 1
#else
#define UMICRO_KERNELS_X64 0
#endif

namespace umicro::kernels {

namespace {

/// Rows are padded to a multiple of 8 doubles (one cache line) so both
/// the 2-wide and 4-wide tiers run without scalar remainders and the
/// padding lanes (all zeros) contribute nothing to any kernel.
constexpr std::size_t kStrideQuantum = 8;

std::size_t PaddedStride(std::size_t dims) {
  return (dims + kStrideQuantum - 1) / kStrideQuantum * kStrideQuantum;
}

// ---- Element-wise update tiers --------------------------------------
// Each tier performs the identical per-element IEEE operation sequence
// (multiply, then add -- deliberately no FMA), so results are
// bit-identical across tiers and match ErrorClusterFeature's loops.

void AddPointRowScalar(double* cf1, double* cf2, double* ef2,
                       const double* x, const double* psi2w,
                       double weight, std::size_t stride) {
  for (std::size_t j = 0; j < stride; ++j) {
    const double wx = weight * x[j];
    cf1[j] += wx;
    cf2[j] += wx * x[j];
    ef2[j] += psi2w[j];
  }
}

void ScaleRowScalar(double* cf1, double* cf2, double* ef2, double factor,
                    std::size_t stride) {
  for (std::size_t j = 0; j < stride; ++j) {
    cf1[j] *= factor;
    cf2[j] *= factor;
    ef2[j] *= factor;
  }
}

void MergeRowScalar(double* into_cf1, double* into_cf2, double* into_ef2,
                    const double* from_cf1, const double* from_cf2,
                    const double* from_ef2, std::size_t stride) {
  for (std::size_t j = 0; j < stride; ++j) {
    into_cf1[j] += from_cf1[j];
    into_cf2[j] += from_cf2[j];
    into_ef2[j] += from_ef2[j];
  }
}

#if UMICRO_KERNELS_X64

__attribute__((target("sse2"))) void AddPointRowSse2(
    double* cf1, double* cf2, double* ef2, const double* x,
    const double* psi2w, double weight, std::size_t stride) {
  const __m128d w = _mm_set1_pd(weight);
  for (std::size_t j = 0; j < stride; j += 2) {
    const __m128d xv = _mm_loadu_pd(x + j);
    const __m128d wx = _mm_mul_pd(w, xv);
    _mm_storeu_pd(cf1 + j, _mm_add_pd(_mm_loadu_pd(cf1 + j), wx));
    _mm_storeu_pd(cf2 + j,
                  _mm_add_pd(_mm_loadu_pd(cf2 + j), _mm_mul_pd(wx, xv)));
    _mm_storeu_pd(ef2 + j,
                  _mm_add_pd(_mm_loadu_pd(ef2 + j), _mm_loadu_pd(psi2w + j)));
  }
}

__attribute__((target("sse2"))) void ScaleRowSse2(double* cf1, double* cf2,
                                                  double* ef2, double factor,
                                                  std::size_t stride) {
  const __m128d f = _mm_set1_pd(factor);
  for (std::size_t j = 0; j < stride; j += 2) {
    _mm_storeu_pd(cf1 + j, _mm_mul_pd(_mm_loadu_pd(cf1 + j), f));
    _mm_storeu_pd(cf2 + j, _mm_mul_pd(_mm_loadu_pd(cf2 + j), f));
    _mm_storeu_pd(ef2 + j, _mm_mul_pd(_mm_loadu_pd(ef2 + j), f));
  }
}

__attribute__((target("avx2"))) void AddPointRowAvx2(
    double* cf1, double* cf2, double* ef2, const double* x,
    const double* psi2w, double weight, std::size_t stride) {
  const __m256d w = _mm256_set1_pd(weight);
  for (std::size_t j = 0; j < stride; j += 4) {
    const __m256d xv = _mm256_loadu_pd(x + j);
    const __m256d wx = _mm256_mul_pd(w, xv);
    _mm256_storeu_pd(cf1 + j, _mm256_add_pd(_mm256_loadu_pd(cf1 + j), wx));
    _mm256_storeu_pd(
        cf2 + j, _mm256_add_pd(_mm256_loadu_pd(cf2 + j), _mm256_mul_pd(wx, xv)));
    _mm256_storeu_pd(ef2 + j, _mm256_add_pd(_mm256_loadu_pd(ef2 + j),
                                            _mm256_loadu_pd(psi2w + j)));
  }
}

__attribute__((target("avx2"))) void ScaleRowAvx2(double* cf1, double* cf2,
                                                  double* ef2, double factor,
                                                  std::size_t stride) {
  const __m256d f = _mm256_set1_pd(factor);
  for (std::size_t j = 0; j < stride; j += 4) {
    _mm256_storeu_pd(cf1 + j, _mm256_mul_pd(_mm256_loadu_pd(cf1 + j), f));
    _mm256_storeu_pd(cf2 + j, _mm256_mul_pd(_mm256_loadu_pd(cf2 + j), f));
    _mm256_storeu_pd(ef2 + j, _mm256_mul_pd(_mm256_loadu_pd(ef2 + j), f));
  }
}

#endif  // UMICRO_KERNELS_X64

}  // namespace

ClusterTable::ClusterTable(std::size_t dimensions) { Reset(dimensions); }

void ClusterTable::Reset(std::size_t dimensions) {
  UMICRO_CHECK(dimensions > 0);
  dims_ = dimensions;
  stride_ = PaddedStride(dimensions);
  rows_ = 0;
  cf1_.clear();
  cf2_.clear();
  ef2_.clear();
  centroid_.clear();
  ef2n2_.clear();
  weight_.clear();
  inv_weight_.clear();
  ef2n2_sum_.clear();
}

void ClusterTable::Reserve(std::size_t rows) {
  cf1_.reserve(rows * stride_);
  cf2_.reserve(rows * stride_);
  ef2_.reserve(rows * stride_);
  centroid_.reserve(rows * stride_);
  ef2n2_.reserve(rows * stride_);
  weight_.reserve(rows);
  inv_weight_.reserve(rows);
  ef2n2_sum_.reserve(rows);
}

void ClusterTable::PushRow(const double* cf1, const double* cf2,
                           const double* ef2, double weight) {
  UMICRO_CHECK(weight > 0.0);
  cf1_.resize((rows_ + 1) * stride_, 0.0);
  cf2_.resize((rows_ + 1) * stride_, 0.0);
  ef2_.resize((rows_ + 1) * stride_, 0.0);
  centroid_.resize((rows_ + 1) * stride_, 0.0);
  ef2n2_.resize((rows_ + 1) * stride_, 0.0);
  weight_.push_back(weight);
  inv_weight_.push_back(0.0);
  ef2n2_sum_.push_back(0.0);
  double* c1 = &cf1_[rows_ * stride_];
  double* c2 = &cf2_[rows_ * stride_];
  double* e2 = &ef2_[rows_ * stride_];
  std::memcpy(c1, cf1, dims_ * sizeof(double));
  std::memcpy(c2, cf2, dims_ * sizeof(double));
  std::memcpy(e2, ef2, dims_ * sizeof(double));
  std::fill(c1 + dims_, c1 + stride_, 0.0);
  std::fill(c2 + dims_, c2 + stride_, 0.0);
  std::fill(e2 + dims_, e2 + stride_, 0.0);
  ++rows_;
  RefreshDerived(rows_ - 1);
}

void ClusterTable::PushPointRow(const double* values, const double* errors,
                                double weight) {
  UMICRO_CHECK(weight > 0.0);
  cf1_.resize((rows_ + 1) * stride_, 0.0);
  cf2_.resize((rows_ + 1) * stride_, 0.0);
  ef2_.resize((rows_ + 1) * stride_, 0.0);
  centroid_.resize((rows_ + 1) * stride_, 0.0);
  ef2n2_.resize((rows_ + 1) * stride_, 0.0);
  weight_.push_back(0.0);
  inv_weight_.push_back(0.0);
  ef2n2_sum_.push_back(0.0);
  ++rows_;
  // Zero row + fused add reproduces the exact operation sequence a
  // fresh ErrorClusterFeature sees when absorbing its first point.
  AddPoint(rows_ - 1, values, errors, weight);
}

void ClusterTable::SetRow(std::size_t i, const double* cf1,
                          const double* cf2, const double* ef2,
                          double weight) {
  UMICRO_DCHECK(i < rows_);
  UMICRO_CHECK(weight > 0.0);
  double* c1 = &cf1_[i * stride_];
  double* c2 = &cf2_[i * stride_];
  double* e2 = &ef2_[i * stride_];
  std::memcpy(c1, cf1, dims_ * sizeof(double));
  std::memcpy(c2, cf2, dims_ * sizeof(double));
  std::memcpy(e2, ef2, dims_ * sizeof(double));
  std::fill(c1 + dims_, c1 + stride_, 0.0);
  std::fill(c2 + dims_, c2 + stride_, 0.0);
  std::fill(e2 + dims_, e2 + stride_, 0.0);
  weight_[i] = weight;
  RefreshDerived(i);
}

void ClusterTable::AddPoint(std::size_t i, const double* values,
                            const double* errors, double weight) {
  UMICRO_DCHECK(i < rows_);
  UMICRO_CHECK(weight > 0.0);
  // Padded stage buffers for the point: x (zeros beyond dims) and the
  // pre-weighted squared errors w*psi^2 (matching ErrorClusterFeature's
  // `weight * psi * psi` with psi = 0 when no error vector is attached).
  x_stage_.resize(stride_);
  psi2w_stage_.resize(stride_);
  for (std::size_t j = 0; j < dims_; ++j) {
    x_stage_[j] = values[j];
    const double psi = errors == nullptr ? 0.0 : errors[j];
    psi2w_stage_[j] = weight * psi * psi;
  }
  std::fill(x_stage_.begin() + static_cast<std::ptrdiff_t>(dims_),
            x_stage_.end(), 0.0);
  std::fill(psi2w_stage_.begin() + static_cast<std::ptrdiff_t>(dims_),
            psi2w_stage_.end(), 0.0);

  double* c1 = &cf1_[i * stride_];
  double* c2 = &cf2_[i * stride_];
  double* e2 = &ef2_[i * stride_];
  switch (backend_) {
#if UMICRO_KERNELS_X64
    case Backend::kAvx2:
      AddPointRowAvx2(c1, c2, e2, x_stage_.data(), psi2w_stage_.data(),
                      weight, stride_);
      break;
    case Backend::kSse2:
      AddPointRowSse2(c1, c2, e2, x_stage_.data(), psi2w_stage_.data(),
                      weight, stride_);
      break;
#endif
    default:
      AddPointRowScalar(c1, c2, e2, x_stage_.data(), psi2w_stage_.data(),
                        weight, stride_);
      break;
  }
  weight_[i] += weight;
  RefreshDerived(i);
}

void ClusterTable::ScaleAll(double factor) {
  UMICRO_CHECK(factor > 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double* c1 = &cf1_[i * stride_];
    double* c2 = &cf2_[i * stride_];
    double* e2 = &ef2_[i * stride_];
    switch (backend_) {
#if UMICRO_KERNELS_X64
      case Backend::kAvx2:
        ScaleRowAvx2(c1, c2, e2, factor, stride_);
        break;
      case Backend::kSse2:
        ScaleRowSse2(c1, c2, e2, factor, stride_);
        break;
#endif
      default:
        ScaleRowScalar(c1, c2, e2, factor, stride_);
        break;
    }
    weight_[i] *= factor;
    RefreshDerived(i);
  }
}

void ClusterTable::MergeRows(std::size_t into, std::size_t from) {
  UMICRO_DCHECK(into < rows_ && from < rows_ && into != from);
  MergeRowScalar(&cf1_[into * stride_], &cf2_[into * stride_],
                 &ef2_[into * stride_], &cf1_[from * stride_],
                 &cf2_[from * stride_], &ef2_[from * stride_], stride_);
  weight_[into] += weight_[from];
  RefreshDerived(into);
}

void ClusterTable::RemoveRow(std::size_t i) {
  UMICRO_DCHECK(i < rows_);
  const std::size_t tail_rows = rows_ - i - 1;
  if (tail_rows > 0) {
    const std::size_t tail = tail_rows * stride_;
    std::memmove(&cf1_[i * stride_], &cf1_[(i + 1) * stride_],
                 tail * sizeof(double));
    std::memmove(&cf2_[i * stride_], &cf2_[(i + 1) * stride_],
                 tail * sizeof(double));
    std::memmove(&ef2_[i * stride_], &ef2_[(i + 1) * stride_],
                 tail * sizeof(double));
    std::memmove(&centroid_[i * stride_], &centroid_[(i + 1) * stride_],
                 tail * sizeof(double));
    std::memmove(&ef2n2_[i * stride_], &ef2n2_[(i + 1) * stride_],
                 tail * sizeof(double));
    std::memmove(&weight_[i], &weight_[i + 1], tail_rows * sizeof(double));
    std::memmove(&inv_weight_[i], &inv_weight_[i + 1],
                 tail_rows * sizeof(double));
    std::memmove(&ef2n2_sum_[i], &ef2n2_sum_[i + 1],
                 tail_rows * sizeof(double));
  }
  --rows_;
  cf1_.resize(rows_ * stride_);
  cf2_.resize(rows_ * stride_);
  ef2_.resize(rows_ * stride_);
  centroid_.resize(rows_ * stride_);
  ef2n2_.resize(rows_ * stride_);
  weight_.resize(rows_);
  inv_weight_.resize(rows_);
  ef2n2_sum_.resize(rows_);
}

void ClusterTable::RefreshDerived(std::size_t i) {
  const double inv_n = 1.0 / weight_[i];
  const double inv_n2 = inv_n * inv_n;
  inv_weight_[i] = inv_n;
  const double* c1 = &cf1_[i * stride_];
  const double* e2 = &ef2_[i * stride_];
  double* centroid = &centroid_[i * stride_];
  double* ef2n2 = &ef2n2_[i * stride_];
  double sum = 0.0;
  for (std::size_t j = 0; j < stride_; ++j) {
    centroid[j] = c1[j] * inv_n;
    ef2n2[j] = e2[j] * inv_n2;
    sum += ef2n2[j];
  }
  ef2n2_sum_[i] = sum;
}

}  // namespace umicro::kernels
