#include "kernels/dispatch.h"

#include <cstdlib>
#include <cstring>

namespace umicro::kernels {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
constexpr bool kIsX64 = true;
#else
constexpr bool kIsX64 = false;
#endif

Backend ProbeHardware() {
  if (!kIsX64) return Backend::kScalar;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(_M_X64))
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Backend::kAvx2;
  }
  return Backend::kSse2;  // SSE2 is the x86-64 baseline.
#else
  return Backend::kScalar;
#endif
}

Backend ResolveBackend() {
  const Backend hardware = ProbeHardware();
  const char* override_name = std::getenv("UMICRO_KERNEL");
  if (override_name == nullptr || override_name[0] == '\0') return hardware;
  Backend requested = hardware;
  if (std::strcmp(override_name, "scalar") == 0) {
    requested = Backend::kScalar;
  } else if (std::strcmp(override_name, "sse2") == 0) {
    requested = Backend::kSse2;
  } else if (std::strcmp(override_name, "avx2") == 0) {
    requested = Backend::kAvx2;
  }
  // The override can only clamp downward: requesting a tier the CPU
  // cannot execute would trap on the first vector instruction.
  return requested <= hardware ? requested : hardware;
}

}  // namespace

Backend DetectBackend() {
  static const Backend backend = ResolveBackend();
  return backend;
}

Backend MaxSupportedBackend() {
  static const Backend backend = ProbeHardware();
  return backend;
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace umicro::kernels
