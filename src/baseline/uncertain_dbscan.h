// Density-based clustering of uncertain data (after Kriegel & Pfeifle,
// "Density-Based Clustering of Uncertain Data", KDD 2005 -- reference
// [16] of the paper).
//
// The paper's related work cites fuzzy-distance density clustering as
// the other major static approach to uncertain data, and argues that it
// too "cannot be easily extended to the case of data streams". This
// implementation provides that comparison point for window-at-a-time
// use: DBSCAN where the binary eps-neighborhood predicate is replaced by
// the *probability* that two uncertain points lie within eps, and core
// points are those whose expected number of eps-neighbors reaches
// min_points (fuzzy core condition).
//
// Distance-probability model: with independent Gaussian errors, the
// squared distance D2 between X and Y has
//   E[D2]   = g2 + s2,            g2 = ||x - y||^2,
//   s2      = sum_j (psi_j(X)^2 + psi_j(Y)^2),
//   Var[D2] = 4 sum_j d_j^2 v_j + 2 sum_j v_j^2,  v_j = psi_x_j^2+psi_y_j^2.
// P(D2 <= eps^2) is evaluated with the Patnaik two-moment chi-square
// approximation of D2 (exact in the deterministic limit; respects the
// non-negativity of D2, unlike a plain normal approximation).

#ifndef UMICRO_BASELINE_UNCERTAIN_DBSCAN_H_
#define UMICRO_BASELINE_UNCERTAIN_DBSCAN_H_

#include <cstddef>
#include <vector>

#include "stream/dataset.h"
#include "stream/point.h"

namespace umicro::baseline {

/// Label given to points not assigned to any cluster.
inline constexpr int kDbscanNoise = -1;

/// Tunables of uncertain DBSCAN.
struct UncertainDbscanOptions {
  /// Neighborhood radius.
  double eps = 1.0;
  /// Fuzzy core condition: sum over points of P(dist <= eps) >= this.
  double min_points = 5.0;
  /// Edge threshold: Y is reachable from core X when
  /// P(dist(X,Y) <= eps) >= reachability_probability.
  double reachability_probability = 0.5;
};

/// Result of a clustering run.
struct UncertainDbscanResult {
  /// Per-point cluster index, or kDbscanNoise.
  std::vector<int> assignment;
  /// Number of clusters found.
  std::size_t num_clusters = 0;
  /// Number of noise points.
  std::size_t num_noise = 0;
  /// Number of core points.
  std::size_t num_core = 0;
};

/// Probability that the (uncertain) distance between `a` and `b` is at
/// most `eps`, under the normal approximation documented above. Exact
/// 0/1 answer in the fully deterministic case.
double NeighborProbability(const stream::UncertainPoint& a,
                           const stream::UncertainPoint& b, double eps);

/// Runs uncertain DBSCAN over all points of `dataset`. O(n^2 d) -- a
/// static-window algorithm, which is precisely the paper's point about
/// why it does not extend to streams.
UncertainDbscanResult UncertainDbscan(const stream::Dataset& dataset,
                                      const UncertainDbscanOptions& options);

}  // namespace umicro::baseline

#endif  // UMICRO_BASELINE_UNCERTAIN_DBSCAN_H_
