// STREAM-style chunked k-means baseline (O'Callaghan, Meyerson, Motwani,
// Mishra, Guha -- "Streaming-Data Algorithms for High-Quality Clustering",
// ICDE 2002; reference [6] of the paper).
//
// The stream is consumed in fixed-size chunks. Each chunk is reduced to k
// weighted centers by (weighted) k-means; the retained centers accumulate
// across chunks and are themselves re-clustered to k weighted centers
// whenever their number exceeds the chunk size, yielding the classic
// hierarchical divide-and-conquer guarantee structure. This is a second,
// purely deterministic baseline: it also ignores error vectors, and
// unlike CluStream it has no recency bias at all.

#ifndef UMICRO_BASELINE_STREAM_KMEANS_H_
#define UMICRO_BASELINE_STREAM_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/clusterer.h"
#include "stream/point.h"

namespace umicro::baseline {

/// Tunables of the STREAM baseline.
struct StreamKMeansOptions {
  /// Number of centers retained per reduction.
  std::size_t k = 20;
  /// Points per chunk.
  std::size_t chunk_size = 2000;
  /// RNG seed for the k-means++ seeding inside reductions.
  std::uint64_t seed = 5;
};

/// One weighted center retained by the STREAM baseline.
struct WeightedCenter {
  std::vector<double> position;
  double weight = 0.0;
  stream::LabelHistogram labels;  ///< evaluation-only
};

/// The STREAM chunked k-means algorithm.
class StreamKMeans : public stream::StreamClusterer {
 public:
  StreamKMeans(std::size_t dimensions, StreamKMeansOptions options);

  // StreamClusterer interface.
  void Process(const stream::UncertainPoint& point) override;
  std::string name() const override { return "STREAM-kmeans"; }
  std::size_t points_processed() const override { return points_processed_; }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms() const override;
  std::vector<std::vector<double>> ClusterCentroids() const override;

  /// Flushes a partially filled chunk (call at end of stream).
  void Flush();

  /// Currently retained weighted centers.
  const std::vector<WeightedCenter>& centers() const { return centers_; }

 private:
  /// Reduces `input` to at most k weighted centers via weighted k-means.
  std::vector<WeightedCenter> Reduce(
      const std::vector<WeightedCenter>& input);

  const std::size_t dimensions_;
  const StreamKMeansOptions options_;
  std::vector<stream::UncertainPoint> chunk_;
  std::vector<WeightedCenter> centers_;
  std::size_t points_processed_ = 0;
  std::uint64_t reduction_seed_;
};

}  // namespace umicro::baseline

#endif  // UMICRO_BASELINE_STREAM_KMEANS_H_
