#include "baseline/stream_kmeans.h"

#include <limits>

#include "core/macro_cluster.h"
#include "util/check.h"
#include "util/math_utils.h"

namespace umicro::baseline {

StreamKMeans::StreamKMeans(std::size_t dimensions,
                           StreamKMeansOptions options)
    : dimensions_(dimensions),
      options_(options),
      reduction_seed_(options.seed) {
  UMICRO_CHECK(dimensions > 0);
  UMICRO_CHECK(options_.k > 0);
  UMICRO_CHECK(options_.chunk_size > options_.k);
  chunk_.reserve(options_.chunk_size);
}

std::vector<WeightedCenter> StreamKMeans::Reduce(
    const std::vector<WeightedCenter>& input) {
  std::vector<std::vector<double>> points;
  std::vector<double> weights;
  points.reserve(input.size());
  weights.reserve(input.size());
  for (const auto& center : input) {
    points.push_back(center.position);
    weights.push_back(center.weight);
  }
  core::MacroClusteringOptions kmeans;
  kmeans.k = options_.k;
  kmeans.seed = reduction_seed_++;
  const core::MacroClustering clustering =
      core::WeightedKMeans(points, weights, kmeans);

  std::vector<WeightedCenter> reduced(clustering.centroids.size());
  for (std::size_t c = 0; c < reduced.size(); ++c) {
    reduced[c].position = clustering.centroids[c];
  }
  for (std::size_t i = 0; i < input.size(); ++i) {
    WeightedCenter& target =
        reduced[static_cast<std::size_t>(clustering.assignment[i])];
    target.weight += input[i].weight;
    for (const auto& [label, weight] : input[i].labels) {
      target.labels[label] += weight;
    }
  }
  // Drop centers that attracted no mass (k-means re-seeding edge case).
  std::vector<WeightedCenter> alive;
  alive.reserve(reduced.size());
  for (auto& center : reduced) {
    if (center.weight > 0.0) alive.push_back(std::move(center));
  }
  return alive;
}

void StreamKMeans::Flush() {
  if (chunk_.empty()) return;
  std::vector<WeightedCenter> chunk_points;
  chunk_points.reserve(chunk_.size());
  for (const auto& point : chunk_) {
    WeightedCenter center;
    center.position = point.values;
    center.weight = 1.0;
    if (point.label != stream::kUnlabeled) {
      center.labels[point.label] = 1.0;
    }
    chunk_points.push_back(std::move(center));
  }
  chunk_.clear();

  std::vector<WeightedCenter> reduced = Reduce(chunk_points);
  centers_.insert(centers_.end(),
                  std::make_move_iterator(reduced.begin()),
                  std::make_move_iterator(reduced.end()));
  if (centers_.size() > options_.chunk_size) {
    centers_ = Reduce(centers_);
  }
}

void StreamKMeans::Process(const stream::UncertainPoint& point) {
  UMICRO_CHECK(point.dimensions() == dimensions_);
  ++points_processed_;
  chunk_.push_back(point);
  if (chunk_.size() >= options_.chunk_size) Flush();
}

std::vector<stream::LabelHistogram> StreamKMeans::ClusterLabelHistograms()
    const {
  std::vector<stream::LabelHistogram> histograms;
  histograms.reserve(centers_.size());
  for (const auto& center : centers_) histograms.push_back(center.labels);
  return histograms;
}

std::vector<std::vector<double>> StreamKMeans::ClusterCentroids() const {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(centers_.size());
  for (const auto& center : centers_) centroids.push_back(center.position);
  return centroids;
}

}  // namespace umicro::baseline
