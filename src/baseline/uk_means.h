// UK-means: expected-distance k-means over static uncertain data
// (Ngai, Kao, Chui, Cheng, Chau, Yip -- "Efficient Clustering of
// Uncertain Data", ICDM 2006; reference [22] of the paper).
//
// The paper cites this family of methods as the static counterpart of
// its streaming problem ("neither of the two methods can be easily
// extended to the case of data streams"). It is included both as a
// quality reference for window-at-a-time clustering and to demonstrate
// why a one-pass algorithm is needed: UK-means stores the whole window
// and iterates over it.
//
// Under the paper's uncertainty model (independent zero-mean errors with
// known per-dimension stddev psi), the expected squared distance between
// uncertain point X and a fixed centroid c is
//     E[||X - c||^2] = ||x - c||^2 + sum_j psi_j(X)^2,
// so the assignment step of UK-means coincides with assigning the
// instantiations -- but the *objective* and the reported expected SSQ
// include the error mass, and centroid updates can weight points by
// reliability (inverse total error), which is where UK-means differs
// from plain k-means on noisy data.

#ifndef UMICRO_BASELINE_UK_MEANS_H_
#define UMICRO_BASELINE_UK_MEANS_H_

#include <cstdint>
#include <vector>

#include "stream/dataset.h"
#include "stream/point.h"

namespace umicro::baseline {

/// Tunables of UK-means.
struct UkMeansOptions {
  /// Number of clusters.
  std::size_t k = 5;
  /// Lloyd iteration cap.
  std::size_t max_iterations = 100;
  /// Relative expected-SSQ improvement below which iteration stops.
  double tolerance = 1e-7;
  /// Independent restarts; best run (lowest expected SSQ) wins.
  std::size_t num_restarts = 3;
  /// When true, centroid updates weight each point by 1/(1 + sum psi^2)
  /// so unreliable records pull centroids less. When false, plain means
  /// (the original UK-means update).
  bool reliability_weighting = false;
  /// RNG seed.
  std::uint64_t seed = 17;
};

/// Result of a UK-means run.
struct UkMeansResult {
  /// Cluster centroids.
  std::vector<std::vector<double>> centroids;
  /// Per-point cluster index.
  std::vector<int> assignment;
  /// Expected SSQ: sum over points of E[||X - c(X)||^2].
  double expected_ssq = 0.0;
  /// Lloyd iterations executed by the winning restart.
  std::size_t iterations = 0;
};

/// Runs UK-means over all points of `dataset`.
UkMeansResult UkMeans(const stream::Dataset& dataset,
                      const UkMeansOptions& options);

/// Expected squared distance between an uncertain point and a fixed
/// (deterministic) centroid: ||x - c||^2 + sum_j psi_j^2.
double ExpectedSquaredDistanceToCentroid(const stream::UncertainPoint& point,
                                         const std::vector<double>& centroid);

}  // namespace umicro::baseline

#endif  // UMICRO_BASELINE_UK_MEANS_H_
