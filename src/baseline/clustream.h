// CluStream: the deterministic micro-clustering baseline (Aggarwal, Han,
// Wang, Yu -- "A Framework for Clustering Evolving Data Streams",
// VLDB 2003). This is the algorithm the paper compares UMicro against;
// it ignores the error vectors entirely.
//
// Micro-clusters store (CF2x, CF1x, CF2t, CF1t, n): value moments plus
// timestamp moments. Maintenance per arriving point:
//   * assign to the closest centroid if the point falls within the
//     maximal boundary (a factor of the cluster's RMS deviation; for
//     singletons, the distance to the closest other cluster);
//   * otherwise create a new micro-cluster, making room by deleting the
//     least relevant cluster (relevance stamp older than delta) or, if
//     none qualifies, merging the two closest micro-clusters.
// The relevance stamp approximates the average arrival time of the last
// m points under a normal model of the timestamp distribution.

#ifndef UMICRO_BASELINE_CLUSTREAM_H_
#define UMICRO_BASELINE_CLUSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "stream/clusterer.h"
#include "stream/point.h"

namespace umicro::baseline {

/// Tunables of the CluStream baseline.
struct CluStreamOptions {
  /// Number of micro-clusters (paper experiments: 100).
  std::size_t num_micro_clusters = 100;
  /// Maximal-boundary width in RMS deviations (kept equal to UMicro's
  /// t = 3 so the comparison is apples-to-apples).
  double boundary_factor = 3.0;
  /// Recency threshold delta: clusters whose relevance stamp falls more
  /// than delta behind the current time may be deleted.
  double recency_threshold_delta = 5000.0;
  /// The `m` of the relevance stamp: we care about the average arrival
  /// time of a cluster's last m points.
  std::size_t recency_sample_m = 100;
};

/// One deterministic micro-cluster.
struct CluStreamCluster {
  /// Ids of all micro-clusters merged into this one (first is primary).
  std::vector<std::uint64_t> ids;
  double creation_time = 0.0;
  std::vector<double> cf1;   ///< per-dimension sum of values
  std::vector<double> cf2;   ///< per-dimension sum of squared values
  double cf1_time = 0.0;     ///< sum of timestamps
  double cf2_time = 0.0;     ///< sum of squared timestamps
  double count = 0.0;        ///< number of points n
  double last_update_time = 0.0;
  stream::LabelHistogram labels;  ///< evaluation-only

  /// Centroid along dimension j.
  double CentroidAt(std::size_t j) const { return cf1[j] / count; }

  /// Full centroid vector.
  std::vector<double> Centroid() const;

  /// RMS deviation of the member points about the centroid.
  double RmsDeviation() const;

  /// Mean of the member timestamps.
  double MeanTime() const { return cf1_time / count; }

  /// Stddev of the member timestamps.
  double TimeStddev() const;
};

/// Complete serializable state of a running CluStream instance.
struct CluStreamState {
  std::vector<CluStreamCluster> clusters;
  std::uint64_t next_cluster_id = 0;
  std::size_t points_processed = 0;
  std::size_t clusters_deleted = 0;
  std::size_t clusters_merged = 0;
};

/// The CluStream algorithm.
class CluStream : public stream::StreamClusterer {
 public:
  CluStream(std::size_t dimensions, CluStreamOptions options);

  // StreamClusterer interface.
  void Process(const stream::UncertainPoint& point) override;
  std::string name() const override { return "CluStream"; }
  std::size_t points_processed() const override { return points_processed_; }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms() const override;
  std::vector<std::vector<double>> ClusterCentroids() const override;

  /// Live micro-clusters (inspection hook).
  const std::vector<CluStreamCluster>& clusters() const { return clusters_; }

  /// Relevance stamp of cluster `index` (approximate mean arrival time of
  /// its last m points); exposed for tests.
  double RelevanceStamp(std::size_t index) const;

  /// Materializes the current micro-cluster set as a snapshot (EF2 = 0:
  /// CluStream carries no error statistics). A merged cluster appears
  /// under its primary (first) id, as in the CluStream framework's own
  /// pyramidal storage.
  core::Snapshot TakeSnapshot(double time) const;

  /// Maintenance counters (diagnostics).
  std::size_t clusters_deleted() const { return clusters_deleted_; }
  std::size_t clusters_merged() const { return clusters_merged_; }

  /// Captures the complete mutable state (checkpointing); restoring it
  /// into a same-configured instance resumes the stream exactly.
  CluStreamState ExportState() const;

  /// Restores a previously exported state; dimensionality must match.
  void RestoreState(const CluStreamState& state);

 private:
  std::size_t FindClosest(const stream::UncertainPoint& point) const;
  double MaximalBoundary(std::size_t index) const;
  /// Makes room for a new cluster: delete-stale or merge-closest.
  void RetireOneCluster(double now);

  const std::size_t dimensions_;
  const CluStreamOptions options_;
  std::vector<CluStreamCluster> clusters_;
  /// Scratch buffer for the closest-pair merge search.
  std::vector<double> centroid_scratch_;
  std::size_t points_processed_ = 0;
  std::uint64_t next_cluster_id_ = 0;
  std::size_t clusters_deleted_ = 0;
  std::size_t clusters_merged_ = 0;
};

}  // namespace umicro::baseline

#endif  // UMICRO_BASELINE_CLUSTREAM_H_
