// Sliding-window UK-means: the static uncertain clusterer (ICDM'06)
// retrofitted with a window so it can run in the paper's streaming
// experiments.
//
// The paper argues that static uncertain clustering "cannot be easily
// extended to the case of data streams"; this adapter is the honest
// attempt -- keep the last `window_size` records and re-run UK-means
// every `recluster_every` arrivals -- and exists to quantify that claim:
// it matches UMicro's quality on slow streams but pays O(window * k *
// iterations) per re-clustering and forgets nothing inside the window.

#ifndef UMICRO_BASELINE_WINDOWED_UK_MEANS_H_
#define UMICRO_BASELINE_WINDOWED_UK_MEANS_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "baseline/uk_means.h"
#include "stream/clusterer.h"
#include "stream/point.h"

namespace umicro::baseline {

/// Tunables of the windowed adapter.
struct WindowedUkMeansOptions {
  /// UK-means configuration used for each re-clustering.
  UkMeansOptions uk_means;
  /// Number of most recent records retained.
  std::size_t window_size = 5000;
  /// Re-cluster cadence in arrivals.
  std::size_t recluster_every = 1000;
};

/// StreamClusterer adapter around UK-means.
class WindowedUkMeans : public stream::StreamClusterer {
 public:
  WindowedUkMeans(std::size_t dimensions, WindowedUkMeansOptions options);

  // StreamClusterer interface.
  void Process(const stream::UncertainPoint& point) override;
  std::string name() const override { return "Windowed-UKmeans"; }
  std::size_t points_processed() const override { return points_processed_; }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms() const override;
  std::vector<std::vector<double>> ClusterCentroids() const override;

  /// Forces a re-clustering of the current window (e.g. at stream end).
  void Recluster();

  /// Number of UK-means runs performed.
  std::size_t reclusterings() const { return reclusterings_; }

 private:
  const std::size_t dimensions_;
  WindowedUkMeansOptions options_;
  std::deque<stream::UncertainPoint> window_;
  UkMeansResult current_;
  std::vector<stream::LabelHistogram> current_histograms_;
  std::size_t points_processed_ = 0;
  std::size_t since_recluster_ = 0;
  std::size_t reclusterings_ = 0;
};

}  // namespace umicro::baseline

#endif  // UMICRO_BASELINE_WINDOWED_UK_MEANS_H_
