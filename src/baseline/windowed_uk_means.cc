#include "baseline/windowed_uk_means.h"

#include "stream/dataset.h"
#include "util/check.h"

namespace umicro::baseline {

WindowedUkMeans::WindowedUkMeans(std::size_t dimensions,
                                 WindowedUkMeansOptions options)
    : dimensions_(dimensions), options_(options) {
  UMICRO_CHECK(dimensions > 0);
  UMICRO_CHECK(options_.window_size > 0);
  UMICRO_CHECK(options_.recluster_every > 0);
}

void WindowedUkMeans::Recluster() {
  if (window_.empty()) return;
  stream::Dataset dataset(dimensions_);
  for (const auto& point : window_) dataset.Add(point);
  // Vary the seed across re-clusterings for independent restarts while
  // keeping the whole run reproducible.
  UkMeansOptions uk = options_.uk_means;
  uk.seed = options_.uk_means.seed + reclusterings_;
  current_ = UkMeans(dataset, uk);
  ++reclusterings_;

  current_histograms_.assign(current_.centroids.size(),
                             stream::LabelHistogram{});
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (window_[i].label == stream::kUnlabeled) continue;
    current_histograms_[static_cast<std::size_t>(current_.assignment[i])]
                       [window_[i].label] += 1.0;
  }
}

void WindowedUkMeans::Process(const stream::UncertainPoint& point) {
  UMICRO_CHECK(point.dimensions() == dimensions_);
  ++points_processed_;
  window_.push_back(point);
  if (window_.size() > options_.window_size) window_.pop_front();
  if (++since_recluster_ >= options_.recluster_every) {
    Recluster();
    since_recluster_ = 0;
  }
}

std::vector<stream::LabelHistogram> WindowedUkMeans::ClusterLabelHistograms()
    const {
  return current_histograms_;
}

std::vector<std::vector<double>> WindowedUkMeans::ClusterCentroids() const {
  return current_.centroids;
}

}  // namespace umicro::baseline
