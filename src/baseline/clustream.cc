#include "baseline/clustream.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math_utils.h"

namespace umicro::baseline {

std::vector<double> CluStreamCluster::Centroid() const {
  UMICRO_CHECK(count > 0.0);
  std::vector<double> centroid(cf1.size());
  for (std::size_t j = 0; j < cf1.size(); ++j) centroid[j] = cf1[j] / count;
  return centroid;
}

double CluStreamCluster::RmsDeviation() const {
  UMICRO_CHECK(count > 0.0);
  double sum = 0.0;
  for (std::size_t j = 0; j < cf1.size(); ++j) {
    const double mean = cf1[j] / count;
    sum += std::max(0.0, cf2[j] / count - mean * mean);
  }
  return std::sqrt(sum);
}

double CluStreamCluster::TimeStddev() const {
  UMICRO_CHECK(count > 0.0);
  const double mean = cf1_time / count;
  return std::sqrt(std::max(0.0, cf2_time / count - mean * mean));
}

CluStream::CluStream(std::size_t dimensions, CluStreamOptions options)
    : dimensions_(dimensions), options_(options) {
  UMICRO_CHECK(dimensions > 0);
  UMICRO_CHECK(options_.num_micro_clusters > 1);
  UMICRO_CHECK(options_.boundary_factor > 0.0);
  UMICRO_CHECK(options_.recency_sample_m > 0);
  clusters_.reserve(options_.num_micro_clusters + 1);
}

std::size_t CluStream::FindClosest(
    const stream::UncertainPoint& point) const {
  UMICRO_DCHECK(!clusters_.empty());
  const double* x = point.values.data();
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const CluStreamCluster& cluster = clusters_[i];
    const double inv_n = 1.0 / cluster.count;
    const double* cf1 = cluster.cf1.data();
    double d2 = 0.0;
    for (std::size_t j = 0; j < dimensions_; ++j) {
      const double diff = x[j] - cf1[j] * inv_n;
      d2 += diff * diff;
    }
    if (d2 < best) {
      best = d2;
      best_index = i;
    }
  }
  return best_index;
}

double CluStream::MaximalBoundary(std::size_t index) const {
  const CluStreamCluster& cluster = clusters_[index];
  if (cluster.count >= 2.0) {
    const double rms = cluster.RmsDeviation();
    if (rms > 0.0) return options_.boundary_factor * rms;
  }
  // Singleton (or zero-variance) cluster: half the distance to the
  // closest other micro-cluster's centroid (half keeps the boundary
  // inside this cluster's Voronoi cell). With no other cluster the
  // boundary is 0, so a lone singleton absorbs only exact duplicates.
  if (clusters_.size() <= 1) return 0.0;
  double nearest = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (i == index) continue;
    double d2 = 0.0;
    for (std::size_t j = 0; j < dimensions_; ++j) {
      const double diff =
          clusters_[index].cf1[j] / clusters_[index].count -
          clusters_[i].cf1[j] / clusters_[i].count;
      d2 += diff * diff;
    }
    nearest = std::min(nearest, std::sqrt(d2));
  }
  return 0.5 * nearest;
}

double CluStream::RelevanceStamp(std::size_t index) const {
  const CluStreamCluster& cluster = clusters_[index];
  const double n = cluster.count;
  const double m = static_cast<double>(options_.recency_sample_m);
  if (n < 2.0 * m) return cluster.MeanTime();
  // Approximate the average timestamp of the last m points: under the
  // normal model it sits at the (1 - m/(2n)) percentile of the cluster's
  // timestamp distribution.
  const double p = 1.0 - m / (2.0 * n);
  return cluster.MeanTime() +
         cluster.TimeStddev() * util::InverseNormalCdf(p);
}

void CluStream::RetireOneCluster(double now) {
  // Prefer deleting the cluster with the oldest relevance stamp if it has
  // fallen behind the recency threshold.
  std::size_t stalest = 0;
  double stalest_stamp = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const double stamp = RelevanceStamp(i);
    if (stamp < stalest_stamp) {
      stalest_stamp = stamp;
      stalest = i;
    }
  }
  if (stalest_stamp < now - options_.recency_threshold_delta) {
    clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(stalest));
    ++clusters_deleted_;
    return;
  }

  // Otherwise merge the two closest micro-clusters. Centroids are
  // materialized once so the pair search is pure multiply-adds.
  const std::size_t q = clusters_.size();
  centroid_scratch_.resize(q * dimensions_);
  for (std::size_t i = 0; i < q; ++i) {
    const double inv_n = 1.0 / clusters_[i].count;
    const double* cf1 = clusters_[i].cf1.data();
    double* row = &centroid_scratch_[i * dimensions_];
    for (std::size_t j = 0; j < dimensions_; ++j) row[j] = cf1[j] * inv_n;
  }
  std::size_t best_a = 0;
  std::size_t best_b = 1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a + 1 < q; ++a) {
    const double* row_a = &centroid_scratch_[a * dimensions_];
    for (std::size_t b = a + 1; b < q; ++b) {
      const double* row_b = &centroid_scratch_[b * dimensions_];
      double d2 = 0.0;
      for (std::size_t j = 0; j < dimensions_; ++j) {
        const double diff = row_a[j] - row_b[j];
        d2 += diff * diff;
      }
      if (d2 < best_d2) {
        best_d2 = d2;
        best_a = a;
        best_b = b;
      }
    }
  }
  CluStreamCluster& into = clusters_[best_a];
  CluStreamCluster& from = clusters_[best_b];
  for (std::size_t j = 0; j < dimensions_; ++j) {
    into.cf1[j] += from.cf1[j];
    into.cf2[j] += from.cf2[j];
  }
  into.cf1_time += from.cf1_time;
  into.cf2_time += from.cf2_time;
  into.count += from.count;
  into.creation_time = std::min(into.creation_time, from.creation_time);
  into.last_update_time = std::max(into.last_update_time,
                                   from.last_update_time);
  into.ids.insert(into.ids.end(), from.ids.begin(), from.ids.end());
  for (const auto& [label, weight] : from.labels) {
    into.labels[label] += weight;
  }
  clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(best_b));
  ++clusters_merged_;
}

void CluStream::Process(const stream::UncertainPoint& point) {
  UMICRO_CHECK_MSG(point.dimensions() == dimensions_,
                   "point has %zu dimensions, algorithm expects %zu",
                   point.dimensions(), dimensions_);
  ++points_processed_;

  if (!clusters_.empty()) {
    const std::size_t closest = FindClosest(point);
    CluStreamCluster& cluster = clusters_[closest];
    double d2 = 0.0;
    for (std::size_t j = 0; j < dimensions_; ++j) {
      const double diff = point.values[j] - cluster.cf1[j] / cluster.count;
      d2 += diff * diff;
    }
    if (std::sqrt(d2) <= MaximalBoundary(closest)) {
      for (std::size_t j = 0; j < dimensions_; ++j) {
        cluster.cf1[j] += point.values[j];
        cluster.cf2[j] += point.values[j] * point.values[j];
      }
      cluster.cf1_time += point.timestamp;
      cluster.cf2_time += point.timestamp * point.timestamp;
      cluster.count += 1.0;
      cluster.last_update_time = point.timestamp;
      if (point.label != stream::kUnlabeled) {
        cluster.labels[point.label] += 1.0;
      }
      return;
    }
  }

  // Create a new singleton micro-cluster.
  CluStreamCluster fresh;
  fresh.ids.push_back(next_cluster_id_++);
  fresh.creation_time = point.timestamp;
  fresh.cf1.resize(dimensions_);
  fresh.cf2.resize(dimensions_);
  for (std::size_t j = 0; j < dimensions_; ++j) {
    fresh.cf1[j] = point.values[j];
    fresh.cf2[j] = point.values[j] * point.values[j];
  }
  fresh.cf1_time = point.timestamp;
  fresh.cf2_time = point.timestamp * point.timestamp;
  fresh.count = 1.0;
  fresh.last_update_time = point.timestamp;
  if (point.label != stream::kUnlabeled) fresh.labels[point.label] = 1.0;
  clusters_.push_back(std::move(fresh));

  if (clusters_.size() > options_.num_micro_clusters) {
    RetireOneCluster(point.timestamp);
  }
}

CluStreamState CluStream::ExportState() const {
  CluStreamState state;
  state.clusters = clusters_;
  state.next_cluster_id = next_cluster_id_;
  state.points_processed = points_processed_;
  state.clusters_deleted = clusters_deleted_;
  state.clusters_merged = clusters_merged_;
  return state;
}

void CluStream::RestoreState(const CluStreamState& state) {
  for (const auto& cluster : state.clusters) {
    UMICRO_CHECK_MSG(cluster.cf1.size() == dimensions_,
                     "state cluster has %zu dimensions, algorithm "
                     "expects %zu",
                     cluster.cf1.size(), dimensions_);
    UMICRO_CHECK(cluster.cf2.size() == dimensions_);
    UMICRO_CHECK(cluster.count > 0.0);
    UMICRO_CHECK(!cluster.ids.empty());
  }
  clusters_ = state.clusters;
  next_cluster_id_ = state.next_cluster_id;
  points_processed_ = state.points_processed;
  clusters_deleted_ = state.clusters_deleted;
  clusters_merged_ = state.clusters_merged;
}

core::Snapshot CluStream::TakeSnapshot(double time) const {
  core::Snapshot snapshot;
  snapshot.time = time;
  snapshot.clusters.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    core::MicroClusterState state;
    state.id = cluster.ids.front();
    state.creation_time = cluster.creation_time;
    state.ecf = core::ErrorClusterFeature::FromRaw(
        cluster.cf1, cluster.cf2,
        std::vector<double>(cluster.cf1.size(), 0.0), cluster.count,
        cluster.last_update_time);
    snapshot.clusters.push_back(std::move(state));
  }
  return snapshot;
}

std::vector<stream::LabelHistogram> CluStream::ClusterLabelHistograms()
    const {
  std::vector<stream::LabelHistogram> histograms;
  histograms.reserve(clusters_.size());
  for (const auto& cluster : clusters_) histograms.push_back(cluster.labels);
  return histograms;
}

std::vector<std::vector<double>> CluStream::ClusterCentroids() const {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(clusters_.size());
  for (const auto& cluster : clusters_) centroids.push_back(cluster.Centroid());
  return centroids;
}

}  // namespace umicro::baseline
