#include "baseline/uncertain_dbscan.h"

#include <cmath>
#include <queue>

#include "util/check.h"
#include "util/math_utils.h"

namespace umicro::baseline {

double NeighborProbability(const stream::UncertainPoint& a,
                           const stream::UncertainPoint& b, double eps) {
  UMICRO_DCHECK(a.dimensions() == b.dimensions());
  UMICRO_DCHECK(eps > 0.0);
  double g2 = 0.0;        // squared geometric distance
  double mean_extra = 0.0;  // sum of error variances
  double var_d2 = 0.0;    // variance of the squared distance
  for (std::size_t j = 0; j < a.dimensions(); ++j) {
    const double d = a.values[j] - b.values[j];
    const double pa = a.ErrorAt(j);
    const double pb = b.ErrorAt(j);
    const double v = pa * pa + pb * pb;
    g2 += d * d;
    mean_extra += v;
    var_d2 += 4.0 * d * d * v + 2.0 * v * v;
  }
  const double eps2 = eps * eps;
  if (var_d2 <= 0.0) {
    return g2 <= eps2 ? 1.0 : 0.0;  // deterministic limit
  }
  // Patnaik two-moment approximation: D2 ~ c * chi^2_nu with c and nu
  // matched to the mean and variance. Unlike a plain normal
  // approximation it respects D2 >= 0, which matters in the left tail
  // (small eps with large errors).
  const double mean = g2 + mean_extra;
  const double c = var_d2 / (2.0 * mean);
  const double nu = 2.0 * mean * mean / var_d2;
  return umicro::util::RegularizedGammaP(nu / 2.0, eps2 / (2.0 * c));
}

UncertainDbscanResult UncertainDbscan(
    const stream::Dataset& dataset, const UncertainDbscanOptions& options) {
  UMICRO_CHECK(!dataset.empty());
  UMICRO_CHECK(options.eps > 0.0);
  UMICRO_CHECK(options.min_points > 0.0);
  UMICRO_CHECK(options.reachability_probability > 0.0 &&
               options.reachability_probability <= 1.0);

  const std::size_t n = dataset.size();

  // Precompute neighbor probabilities above the reachability threshold
  // (sparse adjacency) and the fuzzy core mass of every point.
  std::vector<std::vector<std::size_t>> reachable(n);
  std::vector<double> core_mass(n, 1.0);  // each point eps-reaches itself
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double p = NeighborProbability(dataset[i], dataset[j],
                                           options.eps);
      core_mass[i] += p;
      core_mass[j] += p;
      if (p >= options.reachability_probability) {
        reachable[i].push_back(j);
        reachable[j].push_back(i);
      }
    }
  }

  UncertainDbscanResult result;
  result.assignment.assign(n, kDbscanNoise);
  std::vector<bool> is_core(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (core_mass[i] >= options.min_points) {
      is_core[i] = true;
      ++result.num_core;
    }
  }

  // BFS expansion from unassigned core points, DBSCAN-style: border
  // points join a cluster but do not expand it.
  int next_cluster = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (!is_core[seed] || result.assignment[seed] != kDbscanNoise) {
      continue;
    }
    const int cluster = next_cluster++;
    std::queue<std::size_t> frontier;
    result.assignment[seed] = cluster;
    frontier.push(seed);
    while (!frontier.empty()) {
      const std::size_t current = frontier.front();
      frontier.pop();
      for (std::size_t neighbor : reachable[current]) {
        if (result.assignment[neighbor] != kDbscanNoise) continue;
        result.assignment[neighbor] = cluster;
        if (is_core[neighbor]) frontier.push(neighbor);
      }
    }
  }
  result.num_clusters = static_cast<std::size_t>(next_cluster);
  for (int label : result.assignment) {
    if (label == kDbscanNoise) ++result.num_noise;
  }
  return result;
}

}  // namespace umicro::baseline
