#include "baseline/uk_means.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math_utils.h"
#include "util/random.h"

namespace umicro::baseline {

double ExpectedSquaredDistanceToCentroid(
    const stream::UncertainPoint& point,
    const std::vector<double>& centroid) {
  UMICRO_DCHECK(point.dimensions() == centroid.size());
  double d2 = 0.0;
  for (std::size_t j = 0; j < centroid.size(); ++j) {
    const double diff = point.values[j] - centroid[j];
    d2 += diff * diff;
  }
  return d2 + point.SquaredErrorNorm();
}

namespace {

UkMeansResult RunOnce(const stream::Dataset& dataset,
                      const UkMeansOptions& options, util::Rng& rng) {
  const std::size_t n = dataset.size();
  const std::size_t dims = dataset.dimensions();
  const std::size_t k = std::min(options.k, n);

  // k-means++ seeding on the instantiations.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(dataset[rng.NextBounded(n)].values);
  std::vector<double> min_dist2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    std::vector<double> sampling(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_dist2[i] = std::min(
          min_dist2[i],
          util::SquaredDistance(dataset[i].values, centroids.back()));
      sampling[i] = min_dist2[i];
      total += sampling[i];
    }
    if (total <= 0.0) {
      centroids.push_back(dataset[rng.NextBounded(n)].values);
    } else {
      centroids.push_back(dataset[rng.Categorical(sampling)].values);
    }
  }

  UkMeansResult result;
  result.assignment.assign(n, 0);
  double previous = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  for (; iterations < options.max_iterations; ++iterations) {
    // Assignment by minimum expected squared distance.
    double essq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d2 =
            ExpectedSquaredDistanceToCentroid(dataset[i], centroids[c]);
        if (d2 < best) {
          best = d2;
          best_c = static_cast<int>(c);
        }
      }
      result.assignment[i] = best_c;
      essq += best;
    }
    result.expected_ssq = essq;

    // Update step (optionally reliability-weighted).
    std::vector<std::vector<double>> sums(centroids.size(),
                                          std::vector<double>(dims, 0.0));
    std::vector<double> mass(centroids.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double w =
          options.reliability_weighting
              ? 1.0 / (1.0 + dataset[i].SquaredErrorNorm())
              : 1.0;
      const int c = result.assignment[i];
      mass[c] += w;
      for (std::size_t j = 0; j < dims; ++j) {
        sums[c][j] += w * dataset[i].values[j];
      }
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (mass[c] <= 0.0) {
        centroids[c] = dataset[rng.NextBounded(n)].values;
        continue;
      }
      for (std::size_t j = 0; j < dims; ++j) {
        centroids[c][j] = sums[c][j] / mass[c];
      }
    }

    if (previous - essq <= options.tolerance * std::max(1.0, previous)) {
      break;
    }
    previous = essq;
  }

  // Final assignment against the final centroids.
  double final_essq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      const double d2 =
          ExpectedSquaredDistanceToCentroid(dataset[i], centroids[c]);
      if (d2 < best) {
        best = d2;
        best_c = static_cast<int>(c);
      }
    }
    result.assignment[i] = best_c;
    final_essq += best;
  }
  result.expected_ssq = final_essq;
  result.iterations = iterations + 1;
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace

UkMeansResult UkMeans(const stream::Dataset& dataset,
                      const UkMeansOptions& options) {
  UMICRO_CHECK(!dataset.empty());
  UMICRO_CHECK(options.k > 0);
  util::Rng rng(options.seed);
  UkMeansResult best;
  best.expected_ssq = std::numeric_limits<double>::infinity();
  const std::size_t restarts = std::max<std::size_t>(1, options.num_restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    UkMeansResult run = RunOnce(dataset, options, rng);
    if (run.expected_ssq < best.expected_ssq) best = std::move(run);
  }
  return best;
}

}  // namespace umicro::baseline
