// Assembles bench CSV outputs into a single self-contained HTML report.

#ifndef UMICRO_REPORT_FIGURE_REPORT_H_
#define UMICRO_REPORT_FIGURE_REPORT_H_

#include <optional>
#include <string>
#include <vector>

#include "report/svg_chart.h"

namespace umicro::report {

/// One figure of the report.
struct Figure {
  /// Heading shown above the chart ("Figure 5 -- ...").
  std::string heading;
  /// Free-text commentary under the heading.
  std::string commentary;
  /// The chart itself.
  std::vector<Series> series;
  ChartOptions chart;
};

/// Parses a bench CSV (first column = x, every further column = one
/// series named by its header cell) into chart series. Returns
/// std::nullopt when the file is missing or malformed.
std::optional<std::vector<Series>> SeriesFromCsvFile(
    const std::string& path);

/// Renders all figures into one standalone HTML document.
std::string RenderHtmlReport(const std::string& title,
                             const std::vector<Figure>& figures);

/// Writes the report to `path`. Returns false on I/O failure.
bool WriteHtmlReport(const std::string& title,
                     const std::vector<Figure>& figures,
                     const std::string& path);

}  // namespace umicro::report

#endif  // UMICRO_REPORT_FIGURE_REPORT_H_
