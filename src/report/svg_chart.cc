#include "report/svg_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace umicro::report {

namespace {

/// Colorblind-safe categorical palette (Okabe-Ito).
constexpr const char* kPalette[] = {"#0072B2", "#D55E00", "#009E73",
                                    "#CC79A7", "#E69F00", "#56B4E9",
                                    "#000000", "#F0E442"};
constexpr int kPaletteSize = 8;

constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 20;
constexpr int kMarginTop = 40;
constexpr int kMarginBottom = 55;

std::string Escape(const std::string& text) {
  std::string out;
  for (char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += ch;
    }
  }
  return out;
}

/// Chooses ~n "nice" tick positions covering [lo, hi].
std::vector<double> NiceTicks(double lo, double hi, int n) {
  if (hi <= lo) return {lo};
  const double raw_step = (hi - lo) / std::max(1, n - 1);
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = magnitude;
  for (double mult : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (magnitude * mult >= raw_step) {
      step = magnitude * mult;
      break;
    }
  }
  std::vector<double> ticks;
  const double start = std::ceil(lo / step) * step;
  for (double t = start; t <= hi + step * 1e-9; t += step) {
    // Snap tiny floating-point residue to zero.
    ticks.push_back(std::abs(t) < step * 1e-9 ? 0.0 : t);
  }
  if (ticks.empty()) ticks.push_back(lo);
  return ticks;
}

}  // namespace

std::string FormatTick(double value) {
  char buffer[32];
  const double magnitude = std::abs(value);
  if (value == 0.0) {
    return "0";
  } else if (magnitude >= 1e5 || magnitude < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1e", value);
  } else if (magnitude >= 100.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  }
  return buffer;
}

std::string RenderLineChartSvg(const std::vector<Series>& series,
                               const ChartOptions& options) {
  // Data bounds.
  double x_lo = 0.0, x_hi = 0.0, y_lo = 0.0, y_hi = 0.0;
  bool any = false;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      if (!any) {
        x_lo = x_hi = x;
        y_lo = y_hi = y;
        any = true;
      } else {
        x_lo = std::min(x_lo, x);
        x_hi = std::max(x_hi, x);
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
      }
    }
  }
  UMICRO_CHECK_MSG(any, "no data to chart");
  if (options.y_from_zero) y_lo = std::min(y_lo, 0.0);
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) {
    y_hi = y_lo + (y_lo == 0.0 ? 1.0 : std::abs(y_lo) * 0.1);
  }
  // 5% headroom on y.
  const double y_pad = (y_hi - y_lo) * 0.05;
  y_hi += y_pad;
  if (!options.y_from_zero) y_lo -= y_pad;

  const double plot_w =
      static_cast<double>(options.width - kMarginLeft - kMarginRight);
  const double plot_h =
      static_cast<double>(options.height - kMarginTop - kMarginBottom);
  auto x_px = [&](double x) {
    return kMarginLeft + (x - x_lo) / (x_hi - x_lo) * plot_w;
  };
  auto y_px = [&](double y) {
    return kMarginTop + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width << "\" height=\"" << options.height
      << "\" font-family=\"sans-serif\" font-size=\"12\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Title.
  svg << "<text x=\"" << options.width / 2 << "\" y=\"20\" "
      << "text-anchor=\"middle\" font-size=\"15\" font-weight=\"bold\">"
      << Escape(options.title) << "</text>\n";

  // Gridlines + ticks.
  for (double t : NiceTicks(y_lo, y_hi, 6)) {
    const double py = y_px(t);
    svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << py << "\" x2=\""
        << options.width - kMarginRight << "\" y2=\"" << py
        << "\" stroke=\"#dddddd\"/>\n";
    svg << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << py + 4
        << "\" text-anchor=\"end\">" << FormatTick(t) << "</text>\n";
  }
  for (double t : NiceTicks(x_lo, x_hi, 7)) {
    const double px = x_px(t);
    svg << "<line x1=\"" << px << "\" y1=\"" << kMarginTop << "\" x2=\""
        << px << "\" y2=\"" << options.height - kMarginBottom
        << "\" stroke=\"#eeeeee\"/>\n";
    svg << "<text x=\"" << px << "\" y=\""
        << options.height - kMarginBottom + 16
        << "\" text-anchor=\"middle\">" << FormatTick(t) << "</text>\n";
  }

  // Axes.
  svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << kMarginTop
      << "\" x2=\"" << kMarginLeft << "\" y2=\""
      << options.height - kMarginBottom << "\" stroke=\"black\"/>\n";
  svg << "<line x1=\"" << kMarginLeft << "\" y1=\""
      << options.height - kMarginBottom << "\" x2=\""
      << options.width - kMarginRight << "\" y2=\""
      << options.height - kMarginBottom << "\" stroke=\"black\"/>\n";

  // Axis labels.
  svg << "<text x=\"" << kMarginLeft + plot_w / 2 << "\" y=\""
      << options.height - 14 << "\" text-anchor=\"middle\">"
      << Escape(options.x_label) << "</text>\n";
  svg << "<text x=\"16\" y=\"" << kMarginTop + plot_h / 2
      << "\" text-anchor=\"middle\" transform=\"rotate(-90 16 "
      << kMarginTop + plot_h / 2 << ")\">" << Escape(options.y_label)
      << "</text>\n";

  // Series.
  int color = 0;
  for (const auto& s : series) {
    if (s.points.empty()) continue;
    const char* stroke = kPalette[color % kPaletteSize];
    ++color;
    svg << "<polyline fill=\"none\" stroke=\"" << stroke
        << "\" stroke-width=\"2\" points=\"";
    for (const auto& [x, y] : s.points) {
      svg << x_px(x) << ',' << y_px(y) << ' ';
    }
    svg << "\"/>\n";
    for (const auto& [x, y] : s.points) {
      svg << "<circle cx=\"" << x_px(x) << "\" cy=\"" << y_px(y)
          << "\" r=\"2.5\" fill=\"" << stroke << "\"/>\n";
    }
  }

  // Legend (top-right inside the plot).
  int legend_y = kMarginTop + 8;
  color = 0;
  for (const auto& s : series) {
    if (s.points.empty()) continue;
    const char* stroke = kPalette[color % kPaletteSize];
    ++color;
    const int lx = options.width - kMarginRight - 150;
    svg << "<line x1=\"" << lx << "\" y1=\"" << legend_y << "\" x2=\""
        << lx + 22 << "\" y2=\"" << legend_y << "\" stroke=\"" << stroke
        << "\" stroke-width=\"2\"/>\n";
    svg << "<text x=\"" << lx + 28 << "\" y=\"" << legend_y + 4 << "\">"
        << Escape(s.name) << "</text>\n";
    legend_y += 18;
  }

  svg << "</svg>\n";
  return svg.str();
}

}  // namespace umicro::report
