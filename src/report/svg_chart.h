// Dependency-free SVG line charts for the figure-reproduction reports.
//
// The bench binaries dump CSV series; this module renders them as
// self-contained SVG (and report.html via figure_report.h) so a
// reproduction run ends with viewable figures without any plotting
// toolchain installed.

#ifndef UMICRO_REPORT_SVG_CHART_H_
#define UMICRO_REPORT_SVG_CHART_H_

#include <string>
#include <utility>
#include <vector>

namespace umicro::report {

/// One line of a chart.
struct Series {
  /// Legend label.
  std::string name;
  /// (x, y) samples in drawing order.
  std::vector<std::pair<double, double>> points;
};

/// Chart configuration.
struct ChartOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  int width = 720;
  int height = 420;
  /// Force the y axis to start at 0 (otherwise snug to the data).
  bool y_from_zero = false;
};

/// Renders series as a standalone SVG document with axes, tick labels,
/// one polyline per series, point markers, and a legend. Series with
/// fewer than one point are skipped; at least one series must have data.
std::string RenderLineChartSvg(const std::vector<Series>& series,
                               const ChartOptions& options);

/// Formats a tick value compactly ("0.95", "1.2e+05", "60000").
std::string FormatTick(double value);

}  // namespace umicro::report

#endif  // UMICRO_REPORT_SVG_CHART_H_
