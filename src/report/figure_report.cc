#include "report/figure_report.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace umicro::report {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

std::string EscapeHtml(const std::string& text) {
  std::string out;
  for (char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += ch;
    }
  }
  return out;
}

}  // namespace

std::optional<std::vector<Series>> SeriesFromCsvFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;
  std::string line;
  if (!std::getline(file, line)) return std::nullopt;
  const std::vector<std::string> header = SplitLine(line);
  if (header.size() < 2) return std::nullopt;

  std::vector<Series> series(header.size() - 1);
  for (std::size_t c = 1; c < header.size(); ++c) {
    series[c - 1].name = header[c];
  }
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitLine(line);
    if (cells.size() != header.size()) return std::nullopt;
    double x = 0.0;
    if (!ParseDouble(cells[0], &x)) return std::nullopt;
    for (std::size_t c = 1; c < cells.size(); ++c) {
      double y = 0.0;
      if (!ParseDouble(cells[c], &y)) return std::nullopt;
      series[c - 1].points.emplace_back(x, y);
    }
  }
  if (series[0].points.empty()) return std::nullopt;
  return series;
}

std::string RenderHtmlReport(const std::string& title,
                             const std::vector<Figure>& figures) {
  std::ostringstream html;
  html << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
       << "<title>" << EscapeHtml(title) << "</title>\n"
       << "<style>body{font-family:sans-serif;max-width:900px;"
       << "margin:2em auto;color:#222}h2{margin-top:2em}"
       << "p.note{color:#555}</style>\n</head>\n<body>\n"
       << "<h1>" << EscapeHtml(title) << "</h1>\n";
  for (const auto& figure : figures) {
    html << "<h2>" << EscapeHtml(figure.heading) << "</h2>\n";
    if (!figure.commentary.empty()) {
      html << "<p class=\"note\">" << EscapeHtml(figure.commentary)
           << "</p>\n";
    }
    html << RenderLineChartSvg(figure.series, figure.chart);
  }
  html << "</body>\n</html>\n";
  return html.str();
}

bool WriteHtmlReport(const std::string& title,
                     const std::vector<Figure>& figures,
                     const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << RenderHtmlReport(title, figures);
  return file.good();
}

}  // namespace umicro::report
