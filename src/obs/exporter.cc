#include "obs/exporter.h"

#include <cstdio>
#include <fstream>

#include "util/csv_writer.h"

namespace umicro::obs {

namespace {

/// Shortest-faithful default numeric rendering (matches the CSV writer's
/// 6-significant-digit convention).
std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

const char* TypeName(MetricSnapshot::Type type) {
  switch (type) {
    case MetricSnapshot::Type::kCounter:
      return "counter";
    case MetricSnapshot::Type::kGauge:
      return "gauge";
    case MetricSnapshot::Type::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string StripKnownExtension(std::string path) {
  for (const char* ext : {".json", ".csv"}) {
    const std::string suffix(ext);
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      path.resize(path.size() - suffix.size());
      break;
    }
  }
  return path;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  out << text;
  return out.good();
}

}  // namespace

MetricsExporter::MetricsExporter(const MetricsRegistry* registry,
                                 std::string base_path,
                                 std::size_t every_points)
    : registry_(registry),
      base_path_(StripKnownExtension(std::move(base_path))),
      every_points_(every_points) {}

std::string MetricsExporter::ToJson(const MetricsRegistry& registry) {
  std::string json = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& metric : registry.Collect()) {
    if (!first) json += ",";
    first = false;
    json += "\n  {\"name\":\"" + metric.name + "\",\"type\":\"" +
            TypeName(metric.type) + "\"";
    if (metric.type == MetricSnapshot::Type::kHistogram) {
      const HistogramSummary& h = metric.histogram;
      json += ",\"count\":" + FormatNumber(static_cast<double>(h.count));
      json += ",\"sum\":" + FormatNumber(h.sum);
      json += ",\"min\":" + FormatNumber(h.min);
      json += ",\"max\":" + FormatNumber(h.max);
      json += ",\"p50\":" + FormatNumber(h.p50);
      json += ",\"p95\":" + FormatNumber(h.p95);
      json += ",\"p99\":" + FormatNumber(h.p99);
    } else {
      json += ",\"value\":" + FormatNumber(metric.value);
    }
    json += "}";
  }
  json += "\n]}\n";
  return json;
}

std::string MetricsExporter::ToCsv(const MetricsRegistry& registry) {
  util::CsvWriter csv({"name", "type", "count", "value", "sum", "min", "max",
                       "p50", "p95", "p99"});
  for (const MetricSnapshot& metric : registry.Collect()) {
    if (metric.type == MetricSnapshot::Type::kHistogram) {
      const HistogramSummary& h = metric.histogram;
      csv.AddRow(std::vector<std::string>{
          metric.name, TypeName(metric.type),
          FormatNumber(static_cast<double>(h.count)), "", FormatNumber(h.sum),
          FormatNumber(h.min), FormatNumber(h.max), FormatNumber(h.p50),
          FormatNumber(h.p95), FormatNumber(h.p99)});
    } else {
      csv.AddRow(std::vector<std::string>{
          metric.name, TypeName(metric.type), "", FormatNumber(metric.value),
          "", "", "", "", "", ""});
    }
  }
  return csv.ToString();
}

bool MetricsExporter::ExportNow() {
  const bool json_ok =
      WriteTextFile(base_path_ + ".json", ToJson(*registry_));
  const bool csv_ok = WriteTextFile(base_path_ + ".csv", ToCsv(*registry_));
  exports_written_ += 1;
  return json_ok && csv_ok;
}

void MetricsExporter::TickPoints(std::size_t total_points) {
  if (every_points_ == 0) return;
  if (total_points - last_export_points_ < every_points_) return;
  last_export_points_ = total_points;
  ExportNow();
}

}  // namespace umicro::obs
