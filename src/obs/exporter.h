// MetricsExporter: renders a MetricsRegistry as JSON or CSV and writes
// both next to each other, on demand or periodically (every N stream
// points).
//
// Formats (one row/object per metric, sorted by name):
//   JSON  {"metrics":[{"name":...,"type":"counter","value":...}, ...]}
//   CSV   name,type,count,value,sum,min,max,p50,p95,p99
// Histogram rows fill count/sum/min/max/p50/p95/p99; counter and gauge
// rows fill value. Times are microseconds unless the metric name says
// otherwise.

#ifndef UMICRO_OBS_EXPORTER_H_
#define UMICRO_OBS_EXPORTER_H_

#include <cstddef>
#include <string>

#include "obs/metrics.h"

namespace umicro::obs {

/// Dumps a registry as JSON + CSV files.
class MetricsExporter {
 public:
  /// `base_path` is the output stem: ExportNow writes `<stem>.json` and
  /// `<stem>.csv` (a trailing ".json" or ".csv" on `base_path` is
  /// stripped first). `every_points` > 0 arms periodic export via
  /// TickPoints.
  MetricsExporter(const MetricsRegistry* registry, std::string base_path,
                  std::size_t every_points = 0);

  /// JSON rendering of the registry's current content.
  static std::string ToJson(const MetricsRegistry& registry);

  /// CSV rendering of the registry's current content.
  static std::string ToCsv(const MetricsRegistry& registry);

  /// Writes `<stem>.json` and `<stem>.csv` now. False on I/O failure.
  bool ExportNow();

  /// Periodic hook: call with the running stream position; re-exports
  /// whenever another `every_points` points have passed. No-op when
  /// `every_points` is 0.
  void TickPoints(std::size_t total_points);

  /// Output stem (after extension stripping).
  const std::string& base_path() const { return base_path_; }

  /// Exports performed so far (periodic + on-demand).
  std::size_t exports_written() const { return exports_written_; }

 private:
  const MetricsRegistry* registry_;
  std::string base_path_;
  std::size_t every_points_;
  std::size_t last_export_points_ = 0;
  std::size_t exports_written_ = 0;
};

}  // namespace umicro::obs

#endif  // UMICRO_OBS_EXPORTER_H_
