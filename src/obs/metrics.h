// umicro_obs: a low-overhead metrics surface for the clustering engines.
//
// The registry hands out three metric kinds:
//   Counter   -- monotonically increasing event tally (atomic, relaxed);
//   Gauge     -- last-written level (atomic double; SetMax for high-water
//                marks);
//   Histogram -- fixed-bucket value distribution with count/sum/min/max
//                and bucket-interpolated p50/p95/p99 quantiles.
//
// Everything is thread-safe: metric cells are plain atomics (one cache
// line's worth of relaxed operations per update, no locks on the hot
// path), and the registry mutex is only taken when a metric is first
// created or when the registry is collected for export. Handles returned
// by Get* are stable for the registry's lifetime, so call sites resolve
// their metrics once and keep the pointer.
//
// Metric names use dotted lowercase paths ("parallel.merge_micros"); the
// catalog of names emitted by the engines lives in docs/observability.md.

#ifndef UMICRO_OBS_METRICS_H_
#define UMICRO_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace umicro::obs {

/// Lock-free add for pre-C++20-atomic-float toolchains: CAS loop with
/// relaxed ordering (counters tolerate reordering; totals stay exact).
inline void AtomicAdd(std::atomic<double>& cell, double delta) {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

/// Lock-free maximum update (high-water marks).
inline void AtomicMax(std::atomic<double>& cell, double value) {
  double current = cell.load(std::memory_order_relaxed);
  while (current < value &&
         !cell.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

/// Lock-free minimum update.
inline void AtomicMin(std::atomic<double>& cell, double value) {
  double current = cell.load(std::memory_order_relaxed);
  while (current > value &&
         !cell.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

/// Monotonic event counter.
class Counter {
 public:
  /// Adds `n` (default 1) to the tally.
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Current tally.
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level.
class Gauge {
 public:
  /// Overwrites the level.
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Raises the level to `value` if it is higher (high-water tracking).
  void SetMax(double value) { AtomicMax(value_, value); }

  /// Adds `delta` to the level.
  void Add(double delta) { AtomicAdd(value_, delta); }

  /// Current level.
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time summary of one histogram (see Histogram::Summarize).
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper bounds of the
/// finite buckets, strictly increasing; one implicit overflow bucket
/// catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Folds one observation into the distribution.
  void Record(double value);

  /// Observations recorded so far.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of all recorded values.
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Smallest recorded value (0 before any record).
  double min() const;

  /// Largest recorded value (0 before any record).
  double max() const;

  /// Quantile estimate for q in [0, 1], linearly interpolated inside the
  /// bucket that holds the q-th observation; values in the overflow
  /// bucket report the observed maximum. 0 before any record.
  double Quantile(double q) const;

  /// count/sum/min/max/p50/p95/p99 in one consistent-enough pass (the
  /// histogram may keep moving underneath; each cell read is atomic).
  HistogramSummary Summarize() const;

  /// Bucket upper bounds (as configured).
  const std::vector<double>& bounds() const { return bounds_; }

  /// `count` strictly increasing bounds starting at `start`, each
  /// `factor` times the previous (start > 0, factor > 1).
  static std::vector<double> ExponentialBuckets(double start, double factor,
                                                std::size_t count);

  /// Default latency buckets in microseconds: 0.25us .. ~4.2s in
  /// 24 x2 steps -- wide enough for a sub-microsecond kernel and a
  /// multi-second global merge in one histogram.
  static std::vector<double> DefaultLatencyBucketsMicros();

 private:
  const std::vector<double> bounds_;
  /// bounds_.size() + 1 cells; the last is the overflow bucket.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// One exported metric (see MetricsRegistry::Collect).
struct MetricSnapshot {
  enum class Type { kCounter, kGauge, kHistogram };

  std::string name;
  Type type = Type::kCounter;
  /// Counter tally or gauge level (unused for histograms).
  double value = 0.0;
  /// Histogram summary (zeroed for counters/gauges).
  HistogramSummary histogram;
};

/// Named metric store. Creation is idempotent: the first Get* for a name
/// creates the metric, later calls return the same object. A name is
/// bound to one kind forever; requesting it as another kind aborts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Counter registered under `name`.
  Counter& GetCounter(const std::string& name);

  /// Gauge registered under `name`.
  Gauge& GetGauge(const std::string& name);

  /// Histogram registered under `name`; `bounds` applies only on first
  /// creation (empty = DefaultLatencyBucketsMicros()).
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Point-in-time view of every metric, sorted by name.
  std::vector<MetricSnapshot> Collect() const;

  /// Counter cells as (name, value) pairs, sorted by name
  /// (checkpointing).
  std::vector<std::pair<std::string, double>> CounterCells() const;

  /// Gauge cells as (name, value) pairs, sorted by name (checkpointing).
  std::vector<std::pair<std::string, double>> GaugeCells() const;

  /// Restores checkpointed cells: each named counter is raised to at
  /// least the stored tally (counters are monotone, so cells that
  /// already moved past the checkpoint are left alone) and each gauge is
  /// set to the stored level. Missing cells are created. Histograms are
  /// not restorable and restart empty.
  void RestoreCells(
      const std::vector<std::pair<std::string, double>>& counters,
      const std::vector<std::pair<std::string, double>>& gauges);

  /// Number of registered metrics.
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace umicro::obs

#endif  // UMICRO_OBS_METRICS_H_
