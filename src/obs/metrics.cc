#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace umicro::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  UMICRO_CHECK(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    UMICRO_CHECK(bounds_[i] > bounds_[i - 1]);
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(),
                                                bounds_.end(), value) -
                               bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<double>::infinity() ? 0.0 : m;
}

double Histogram::max() const {
  const double m = max_.load(std::memory_order_relaxed);
  return m == -std::numeric_limits<double>::infinity() ? 0.0 : m;
}

double Histogram::Quantile(double q) const {
  UMICRO_CHECK(q >= 0.0 && q <= 1.0);
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  // Rank of the target observation, 1-based, clamped into [1, total].
  const std::uint64_t rank = std::min<std::uint64_t>(
      total, std::max<std::uint64_t>(
                 1, static_cast<std::uint64_t>(q * static_cast<double>(total) +
                                               0.5)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (i == bounds_.size()) {
      // Overflow bucket: no upper bound to interpolate against; the
      // observed maximum is the least-wrong answer.
      return max();
    }
    const double lo = i == 0 ? std::min(min(), bounds_[0]) : bounds_[i - 1];
    const double hi = bounds_[i];
    const double fraction =
        static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
    // Interpolation works off bucket bounds; the observed extremes are
    // tighter, so clamp to them.
    return std::clamp(lo + (hi - lo) * fraction, min(), max());
  }
  return max();
}

HistogramSummary Histogram::Summarize() const {
  HistogramSummary summary;
  summary.count = count();
  summary.sum = sum();
  summary.min = min();
  summary.max = max();
  summary.p50 = Quantile(0.50);
  summary.p95 = Quantile(0.95);
  summary.p99 = Quantile(0.99);
  return summary;
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor,
                                                  std::size_t count) {
  UMICRO_CHECK(start > 0.0);
  UMICRO_CHECK(factor > 1.0);
  UMICRO_CHECK(count >= 1);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::DefaultLatencyBucketsMicros() {
  // 0.25us, 0.5us, 1us, ... ~4.2s: covers the expected-distance kernel
  // (sub-microsecond) through a full sharded drain+merge (seconds).
  return ExponentialBuckets(0.25, 2.0, 25);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  UMICRO_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                       histograms_.find(name) == histograms_.end(),
                   "metric '%s' already registered with another type",
                   name.c_str());
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  UMICRO_CHECK_MSG(counters_.find(name) == counters_.end() &&
                       histograms_.find(name) == histograms_.end(),
                   "metric '%s' already registered with another type",
                   name.c_str());
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  UMICRO_CHECK_MSG(counters_.find(name) == counters_.end() &&
                       gauges_.find(name) == gauges_.end(),
                   "metric '%s' already registered with another type",
                   name.c_str());
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBucketsMicros();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

std::vector<MetricSnapshot> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> snapshots;
  snapshots.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snapshot;
    snapshot.name = name;
    snapshot.type = MetricSnapshot::Type::kCounter;
    snapshot.value = static_cast<double>(counter->value());
    snapshots.push_back(std::move(snapshot));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snapshot;
    snapshot.name = name;
    snapshot.type = MetricSnapshot::Type::kGauge;
    snapshot.value = gauge->value();
    snapshots.push_back(std::move(snapshot));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot snapshot;
    snapshot.name = name;
    snapshot.type = MetricSnapshot::Type::kHistogram;
    snapshot.histogram = histogram->Summarize();
    snapshots.push_back(std::move(snapshot));
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snapshots;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::CounterCells()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> cells;
  cells.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    cells.emplace_back(name, static_cast<double>(counter->value()));
  }
  return cells;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeCells()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> cells;
  cells.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    cells.emplace_back(name, gauge->value());
  }
  return cells;
}

void MetricsRegistry::RestoreCells(
    const std::vector<std::pair<std::string, double>>& counters,
    const std::vector<std::pair<std::string, double>>& gauges) {
  for (const auto& [name, value] : counters) {
    Counter& cell = GetCounter(name);
    const auto target = static_cast<std::uint64_t>(value);
    const std::uint64_t current = cell.value();
    if (target > current) cell.Increment(target - current);
  }
  for (const auto& [name, value] : gauges) {
    GetGauge(name).Set(value);
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace umicro::obs
