// RAII latency probe: records the scope's wall-clock duration (in
// microseconds) into a Histogram on destruction.
//
// A null histogram disables the probe entirely -- no clock reads -- so
// instrumented code paths pay nothing when metrics are not attached.

#ifndef UMICRO_OBS_SCOPED_TIMER_H_
#define UMICRO_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace umicro::obs {

/// Times its own lifetime into a latency histogram (microseconds).
class ScopedTimer {
 public:
  /// Starts timing; `histogram` may be null (probe disabled).
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = Clock::now();
  }

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMicros());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Microseconds since construction (0 when disabled).
  double ElapsedMicros() const {
    if (histogram_ == nullptr) return 0.0;
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace umicro::obs

#endif  // UMICRO_OBS_SCOPED_TIMER_H_
