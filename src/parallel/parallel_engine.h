// ParallelUMicroEngine: the sharded counterpart of UMicroEngine.
//
// Mirrors the sequential engine's facade -- feed points, get automatic
// pyramidal snapshots and horizon queries -- but ingests through the
// ShardedUMicro pipeline. Snapshots are taken on the merged global state
// (a snapshot cadence point forces a global merge first), so the
// pyramidal store and ClusterOverHorizon work exactly as in the
// sequential engine; ECF additivity makes the merged statistics exact.
//
// Like ShardedUMicro, the public API is single-coordinator: call it from
// one thread.

#ifndef UMICRO_PARALLEL_PARALLEL_ENGINE_H_
#define UMICRO_PARALLEL_PARALLEL_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "core/horizon.h"
#include "core/snapshot.h"
#include "parallel/sharded_umicro.h"
#include "stream/point.h"

namespace umicro::parallel {

/// Configuration of the sharded engine.
struct ParallelEngineOptions {
  /// Ingest pipeline configuration.
  ShardedUMicroOptions sharded;
  /// Stream points between automatic global snapshots. Each snapshot
  /// forces a drain + merge, so this should stay well above the
  /// per-point cost you are willing to amortize (default trades ~one
  /// merge per 8192 points).
  std::size_t snapshot_every = 8192;
  /// Pyramidal geometric base alpha (>= 2).
  std::size_t pyramid_alpha = 2;
  /// Pyramidal precision l (>= 1): alpha^l + 1 snapshots kept per order.
  std::size_t pyramid_l = 3;
};

/// Sharded online clustering with historical horizon queries.
class ParallelUMicroEngine {
 public:
  /// Creates an engine for `dimensions`-dimensional streams.
  ParallelUMicroEngine(std::size_t dimensions, ParallelEngineOptions options);

  /// Feeds the next stream record; merges + snapshots automatically
  /// every `snapshot_every` points.
  void Process(const stream::UncertainPoint& point);

  /// Drains the pipeline and refreshes the merged global view.
  void Flush();

  /// Clusters the most recent `horizon` time units into `options.k`
  /// macro-clusters (on a freshly merged view). Returns std::nullopt
  /// before any data.
  std::optional<core::HorizonClustering> ClusterRecent(
      double horizon, const core::MacroClusteringOptions& options);

  /// Ingest pipeline (merged clusters, parallel stats).
  const ShardedUMicro& sharded() const { return sharded_; }

  /// Snapshot store (inspection / persistence).
  const core::SnapshotStore& store() const { return store_; }

  /// Pipeline counters.
  ParallelStats Stats() const { return sharded_.Stats(); }

  /// Total records ingested.
  std::size_t points_processed() const {
    return sharded_.points_processed();
  }

 private:
  ParallelEngineOptions options_;
  ShardedUMicro sharded_;
  core::SnapshotStore store_;
  std::uint64_t next_tick_ = 1;
  std::size_t since_snapshot_ = 0;
  double last_timestamp_ = 0.0;
};

}  // namespace umicro::parallel

#endif  // UMICRO_PARALLEL_PARALLEL_ENGINE_H_
