// ParallelUMicroEngine: the sharded implementation of ClusteringEngine.
//
// Mirrors the sequential engine's facade -- feed points, get automatic
// pyramidal snapshots and horizon queries -- but ingests through the
// ShardedUMicro pipeline. Snapshots are taken on the merged global state
// (a snapshot cadence point forces a global merge first), so the
// pyramidal store and ClusterOverHorizon work exactly as in the
// sequential engine; ECF additivity makes the merged statistics exact.
//
// Like ShardedUMicro, the public API is single-coordinator: call it from
// one thread.

#ifndef UMICRO_PARALLEL_PARALLEL_ENGINE_H_
#define UMICRO_PARALLEL_PARALLEL_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/horizon.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "parallel/sharded_umicro.h"
#include "stream/point.h"

namespace umicro::parallel {

/// Configuration of the sharded engine.
struct ParallelEngineOptions {
  /// Ingest pipeline configuration.
  ShardedUMicroOptions sharded;
  /// Snapshot cadence and pyramidal retention. Each snapshot forces a
  /// drain + merge, so the cadence default (8192, vs the sequential
  /// engine's 100) stays well above the per-point cost you are willing
  /// to amortize.
  core::SnapshotPolicy snapshot = [] {
    core::SnapshotPolicy policy;
    policy.snapshot_every = 8192;
    policy.pyramid_alpha = 2;
    policy.pyramid_l = 3;
    return policy;
  }();
};

/// Sharded online clustering with historical horizon queries.
class ParallelUMicroEngine : public core::ClusteringEngine {
 public:
  /// Creates an engine for `dimensions`-dimensional streams.
  ParallelUMicroEngine(std::size_t dimensions, ParallelEngineOptions options);

  ParallelUMicroEngine(const ParallelUMicroEngine&) = delete;
  ParallelUMicroEngine& operator=(const ParallelUMicroEngine&) = delete;

  // StreamClusterer interface (delegating to the pipeline; the two read
  // accessors force a fresh merge inside ShardedUMicro).
  void Process(const stream::UncertainPoint& point) override;
  /// Batched ingest. Partitioning, shedding, and merge cadence stay
  /// per-point coordinator decisions; the throughput win comes from the
  /// workers draining each enqueued batch through the batch kernels.
  void ProcessBatch(std::span<const stream::UncertainPoint> points) override;
  std::string name() const override { return sharded_.name(); }
  std::size_t points_processed() const override {
    return sharded_.points_processed();
  }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms()
      const override {
    return sharded_.ClusterLabelHistograms();
  }
  std::vector<std::vector<double>> ClusterCentroids() const override {
    return sharded_.ClusterCentroids();
  }

  // ClusteringEngine interface.
  std::optional<core::HorizonClustering> ClusterRecent(
      double horizon, const core::MacroClusteringOptions& options) override;
  /// Drains the pipeline, refreshes the merged global view, and
  /// publishes it to an attached snapshot sink.
  void Flush() override;
  void AttachSnapshotSink(core::SnapshotSink* sink) override;
  core::EngineState ExportEngineState() override;
  bool RestoreEngineState(const core::EngineState& state) override;
  const core::SnapshotStore& store() const override { return store_; }
  /// The pipeline's registry (engine-level snapshot metrics land in the
  /// same registry, so one export covers the whole stack).
  obs::MetricsRegistry& metrics() override { return sharded_.metrics(); }

  /// Ingest pipeline (merged clusters, parallel metrics).
  const ShardedUMicro& sharded() const { return sharded_; }

 private:
  ParallelEngineOptions options_;
  ShardedUMicro sharded_;
  core::SnapshotStore store_;
  core::SnapshotSink* sink_ = nullptr;
  /// Refreshes the snapshot.{bytes,frames,delta_ratio} gauges and feeds
  /// the store's cumulative counters into the registry as deltas.
  void PublishStoreMetrics();

  obs::Histogram* snapshot_micros_;
  obs::Counter* snapshots_taken_;
  obs::Gauge* snapshots_stored_;
  obs::Gauge* snapshot_bytes_;
  obs::Gauge* snapshot_frames_;
  obs::Gauge* snapshot_delta_ratio_;
  obs::Counter* snapshot_reconstructions_;
  obs::Counter* snapshot_spills_;
  std::uint64_t published_reconstructions_ = 0;
  std::uint64_t published_spills_ = 0;
  std::uint64_t next_tick_ = 1;
  std::size_t since_snapshot_ = 0;
  double last_timestamp_ = 0.0;
};

}  // namespace umicro::parallel

#endif  // UMICRO_PARALLEL_PARALLEL_ENGINE_H_
