// Bounded ring-buffer queue for the sharded ingest pipeline.
//
// A fixed-capacity FIFO with a configurable reaction to overflow
// (backpressure policy): block the producer until space frees up, shed
// the oldest queued item, or reject the incoming one. Drops are counted
// so load-shedding is observable, and on drop-oldest the displaced item
// is handed back to the producer so upstream accounting (in-flight point
// counts) stays exact.
//
// Safe for multiple producers and multiple consumers (mutex + condition
// variables); the sharded engine uses it SPSC — one coordinator thread
// feeding one worker per shard.

#ifndef UMICRO_PARALLEL_BOUNDED_QUEUE_H_
#define UMICRO_PARALLEL_BOUNDED_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "util/check.h"

namespace umicro::parallel {

/// What Push does when the queue is full.
enum class BackpressurePolicy {
  /// Block the producer until a consumer frees a slot (lossless).
  kBlock,
  /// Evict the oldest queued item to make room (bounded staleness).
  kDropOldest,
  /// Reject the incoming item (bounded latency for what is queued).
  kDropNewest,
};

/// Optional registry-backed observability hooks of one queue. All
/// pointers may be null (that probe is then skipped); the queue keeps its
/// internal counters either way.
struct QueueMetricsHooks {
  /// Incremented per accepted Push.
  obs::Counter* enqueued = nullptr;
  /// Incremented per shed item (both drop policies).
  obs::Counter* dropped = nullptr;
  /// Raised to the highest occupancy observed (in queued items).
  obs::Gauge* high_water = nullptr;
  /// Full Push latency, including any kBlock backpressure stall --
  /// the queue-pressure signal.
  obs::Histogram* enqueue_micros = nullptr;
};

/// Point-in-time counters of one queue.
struct QueueStats {
  /// Items accepted into the queue so far.
  std::size_t pushed = 0;
  /// Items handed to consumers so far.
  std::size_t popped = 0;
  /// Items evicted under kDropOldest.
  std::size_t dropped_oldest = 0;
  /// Items rejected under kDropNewest.
  std::size_t dropped_newest = 0;
  /// Items rejected because the queue was (or became) closed -- including
  /// kBlock producers woken mid-wait by Close(). Each rejected Push is
  /// counted exactly once, here and in the `dropped` metric hook.
  std::size_t rejected_closed = 0;
  /// Maximum occupancy ever observed.
  std::size_t high_water = 0;
  /// Current occupancy.
  std::size_t size = 0;
};

/// Bounded FIFO over a pre-allocated ring buffer.
template <typename T>
class BoundedQueue {
 public:
  /// Creates a queue holding at most `capacity` items (>= 1).
  BoundedQueue(std::size_t capacity, BackpressurePolicy policy)
      : capacity_(capacity), policy_(policy), slots_(capacity) {
    UMICRO_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `value`. Returns false when the item was not accepted
  /// (kDropNewest overflow, or the queue is closed). When `displaced` is
  /// non-null and kDropOldest evicted an item, the evicted item is moved
  /// into it; otherwise it is reset.
  bool Push(T value, std::optional<T>* displaced = nullptr) {
    const obs::ScopedTimer timer(hooks_.enqueue_micros);
    std::unique_lock<std::mutex> lock(mu_);
    if (displaced != nullptr) displaced->reset();
    if (closed_) return RejectClosedLocked();
    if (count_ == capacity_) {
      switch (policy_) {
        case BackpressurePolicy::kBlock:
          not_full_.wait(lock,
                         [this] { return count_ < capacity_ || closed_; });
          if (closed_) return RejectClosedLocked();
          break;
        case BackpressurePolicy::kDropOldest: {
          T oldest = std::move(slots_[head_]);
          head_ = (head_ + 1) % capacity_;
          --count_;
          ++dropped_oldest_;
          if (hooks_.dropped != nullptr) hooks_.dropped->Increment();
          if (displaced != nullptr) *displaced = std::move(oldest);
          break;
        }
        case BackpressurePolicy::kDropNewest:
          ++dropped_newest_;
          if (hooks_.dropped != nullptr) hooks_.dropped->Increment();
          return false;
      }
    }
    slots_[(head_ + count_) % capacity_] = std::move(value);
    ++count_;
    ++pushed_;
    high_water_ = std::max(high_water_, count_);
    if (hooks_.enqueued != nullptr) hooks_.enqueued->Increment();
    if (hooks_.high_water != nullptr) {
      hooks_.high_water->SetMax(static_cast<double>(count_));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues into `*out`, blocking while the queue is empty and open.
  /// Returns false only when the queue is closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return count_ > 0 || closed_; });
    if (count_ == 0) return false;
    PopLocked(out);
    return true;
  }

  /// Non-blocking dequeue; false when the queue is currently empty.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) return false;
    PopLocked(out);
    return true;
  }

  /// Closes the queue: pending Push/Pop calls wake up, further pushes are
  /// rejected, queued items remain poppable until drained.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// True once Close() has been called.
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Current occupancy.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  /// Fixed capacity.
  std::size_t capacity() const { return capacity_; }

  /// Configured overflow policy.
  BackpressurePolicy policy() const { return policy_; }

  /// Attaches registry-backed probes. Call before any concurrent use
  /// (the hooks are copied without synchronization); pass {} to detach.
  void SetMetricsHooks(const QueueMetricsHooks& hooks) { hooks_ = hooks; }

  /// Consistent snapshot of the counters.
  QueueStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    QueueStats stats;
    stats.pushed = pushed_;
    stats.popped = popped_;
    stats.dropped_oldest = dropped_oldest_;
    stats.dropped_newest = dropped_newest_;
    stats.rejected_closed = rejected_closed_;
    stats.high_water = high_water_;
    stats.size = count_;
    return stats;
  }

 private:
  /// Accounts one Push rejected by a closed queue (mu_ held). A producer
  /// that was blocked when Close() arrived and one that pushed after the
  /// close both land here -- and only here -- so every rejected item is
  /// counted exactly once.
  bool RejectClosedLocked() {
    ++rejected_closed_;
    if (hooks_.dropped != nullptr) hooks_.dropped->Increment();
    return false;
  }

  void PopLocked(T* out) {
    *out = std::move(slots_[head_]);
    head_ = (head_ + 1) % capacity_;
    --count_;
    ++popped_;
    not_full_.notify_one();
  }

  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  QueueMetricsHooks hooks_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
  std::size_t pushed_ = 0;
  std::size_t popped_ = 0;
  std::size_t dropped_oldest_ = 0;
  std::size_t dropped_newest_ = 0;
  std::size_t rejected_closed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace umicro::parallel

#endif  // UMICRO_PARALLEL_BOUNDED_QUEUE_H_
