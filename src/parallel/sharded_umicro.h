// ShardedUMicro: multi-threaded UMicro ingest with exact ECF merge.
//
// The error-based cluster features are additive (Property 2.1), so shard-
// local micro-clusterings can be combined into a global clustering without
// any approximation of the statistics: every point's contribution to
// (CF2, EF2, CF1, n) survives the merge bit-for-bit no matter which shard
// absorbed it. That observation -- the basis of communication-efficient
// distributed stream clustering -- turns the sequential algorithm into a
// sharded pipeline:
//
//   Process() --partition--> per-shard bounded queue --> worker thread
//                                                         (private UMicro)
//   every merge_every points / on Flush(): drain, collect shard clusters,
//   merge them into the global view, reconciling near-duplicate clusters
//   with the paper's dimension-counting similarity.
//
// Threading contract: the public API is single-coordinator -- all calls
// must come from one thread (the stream driver). Concurrency lives in the
// worker threads behind the queues. The merged global view is only
// recomputed at merge points, so reads between merges see the last merge.

#ifndef UMICRO_PARALLEL_SHARDED_UMICRO_H_
#define UMICRO_PARALLEL_SHARDED_UMICRO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "core/microcluster.h"
#include "core/snapshot.h"
#include "core/umicro.h"
#include "obs/metrics.h"
#include "parallel/bounded_queue.h"
#include "stream/clusterer.h"
#include "stream/point.h"
#include "util/random.h"

namespace umicro::parallel {

/// How incoming points are assigned to shards.
enum class PartitionMode {
  /// Cycle through the shards (best load balance).
  kRoundRobin,
  /// Hash of the point's coordinates (stable point->shard mapping, so
  /// identical records always meet the same shard state).
  kHash,
};

/// Graceful overload degradation (resilience pillar 4). When enabled,
/// the coordinator watches queue occupancy at every enqueue; after
/// `trigger_after` consecutive pressured enqueues it enters degraded
/// mode: pending batches are shed with probability `shed_probability`
/// before they enter the queue (so a kBlock pipeline stays live instead
/// of stalling the producer) and the global merge cadence is stretched
/// by `merge_stretch`. After `recover_after` consecutive calm enqueues
/// the pipeline returns to normal. Every shed point is counted in
/// "parallel.degrade.points_shed"; docs/resilience.md has the catalog.
struct DegradationOptions {
  /// Master switch; off preserves the exact lossless (kBlock) behavior.
  bool enabled = false;
  /// Queue-occupancy fraction (of capacity) that counts as pressured.
  double occupancy_trigger = 0.75;
  /// Consecutive pressured enqueues before degraded mode activates.
  std::size_t trigger_after = 8;
  /// Consecutive calm enqueues before degraded mode deactivates.
  std::size_t recover_after = 32;
  /// Probability a pending batch is shed while degraded.
  double shed_probability = 0.5;
  /// Multiplier on merge_every while degraded (merges are the costliest
  /// coordinator work, so stretching them sheds coordination load too).
  double merge_stretch = 4.0;
  /// Seed of the deterministic shed decisions.
  std::uint64_t seed = 0x5eedu;
};

/// Worker supervision (resilience pillar 4). A supervisor thread polls
/// worker liveness; a worker that died (only possible via the
/// "parallel.worker*.death" failpoints -- the code has no exceptions) is
/// joined, its in-flight batch applied by the supervisor itself, and a
/// replacement spawned, so a dead shard can no longer wedge
/// WaitDrained() forever.
struct SupervisorOptions {
  /// Master switch; off means no extra thread.
  bool enabled = false;
  /// Liveness poll interval.
  std::size_t poll_millis = 20;
};

/// Configuration of the sharded ingest pipeline.
struct ShardedUMicroOptions {
  /// Per-shard algorithm configuration (every shard runs this verbatim).
  core::UMicroOptions umicro;
  /// Number of worker threads / private UMicro instances (>= 1).
  std::size_t num_shards = 4;
  /// Per-shard queue capacity, counted in batches of `producer_batch`
  /// points each.
  std::size_t queue_capacity = 1024;
  /// Reaction to a full shard queue. kBlock keeps ingest lossless (the
  /// exactness guarantees assume it); the drop policies shed load, with
  /// whole batches dropped at a time and every shed point counted.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Shard assignment of incoming points.
  PartitionMode partition = PartitionMode::kRoundRobin;
  /// Global merge cadence in ingested points; 0 merges only on Flush()
  /// and on-demand reads (centroids / label histograms).
  std::size_t merge_every = 8192;
  /// Points buffered per shard before an enqueue (amortizes queue
  /// synchronization; 1 = unbatched).
  std::size_t producer_batch = 64;
  /// Micro-cluster budget of the merged global view; 0 means
  /// umicro.num_micro_clusters. When the concatenated shard clusters
  /// exceed it, near-duplicates are reconciled pairwise (most similar
  /// first) until the budget holds.
  std::size_t global_budget = 0;
  /// Adaptive load shedding under sustained backpressure.
  DegradationOptions degrade;
  /// Worker liveness supervision.
  SupervisorOptions supervisor;
};

/// Complete serializable state of the sharded pipeline as of a flushed
/// instant (all queues drained): per-shard algorithm residuals, the
/// merged global view, and the coordinator's partitioning cursor. The
/// checkpoint unit of ParallelUMicroEngine.
struct ShardedPipelineState {
  /// One private-UMicro state per shard, in shard order.
  std::vector<core::UMicroState> shard_states;
  /// The merged global view at the flushed instant.
  std::vector<core::MicroCluster> global_clusters;
  /// Total points ingested so far.
  std::uint64_t points_ingested = 0;
  /// Round-robin cursor so partitioning resumes exactly.
  std::uint64_t next_round_robin = 0;
};

/// Sharded parallel front-end over N private UMicro instances.
///
/// All pipeline observability lives in the embedded metrics registry
/// (metrics()): per-shard ingest/queue counters under
/// "parallel.shard<i>.", merge/reconcile counters and latency histograms
/// under "parallel.", and the shard algorithms' own "umicro." metrics
/// (shared cells, updated by every worker). See docs/observability.md
/// for the catalog.
class ShardedUMicro : public stream::StreamClusterer {
 public:
  /// Starts `options.num_shards` worker threads for `dimensions`-d
  /// streams.
  ShardedUMicro(std::size_t dimensions, ShardedUMicroOptions options);

  /// Stops and joins the workers; queued points are dropped.
  ~ShardedUMicro() override;

  ShardedUMicro(const ShardedUMicro&) = delete;
  ShardedUMicro& operator=(const ShardedUMicro&) = delete;

  // StreamClusterer interface. The two read accessors force a fresh
  // global merge so evaluation always sees current state.
  void Process(const stream::UncertainPoint& point) override;
  std::string name() const override;
  std::size_t points_processed() const override { return points_ingested_; }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms() const override;
  std::vector<std::vector<double>> ClusterCentroids() const override;

  /// Flushes producer batches, waits until every queue is drained and
  /// every worker idle, then recomputes the merged global view.
  void Flush();

  /// Merged global micro-clusters as of the last merge (call Flush()
  /// first for an up-to-date view).
  const std::vector<core::MicroCluster>& GlobalClusters() const {
    return global_clusters_;
  }

  /// The merged view as a Snapshot at `time` (pyramidal-store input).
  core::Snapshot GlobalSnapshot(double time) const;

  /// Captures the pipeline's complete durable state (drains + merges
  /// first, so there are no in-flight points to lose).
  ShardedPipelineState ExportPipelineState();

  /// Restores a previously exported state into this freshly constructed,
  /// identically configured pipeline. Returns false (pipeline untouched)
  /// when the shard count does not match.
  bool RestorePipelineState(const ShardedPipelineState& state);

  /// True while the adaptive load-shed controller is degrading service.
  bool degraded() const { return degraded_; }

  /// Worker restarts performed by the supervisor so far.
  std::size_t worker_restarts() const;

  /// The pipeline's metrics registry (live; collect at any time).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Dimensionality of the stream.
  std::size_t dimensions() const { return dimensions_; }

  /// Configured options (with defaults resolved).
  const ShardedUMicroOptions& options() const { return options_; }

 private:
  /// One worker: queue, private algorithm, and the mutex that hands the
  /// algorithm state between the worker (processing) and the coordinator
  /// (collection after a drain). The counters are registry cells
  /// ("parallel.shard<i>." prefix), safe for worker-side updates.
  struct Shard {
    Shard(std::size_t dimensions, const ShardedUMicroOptions& options)
        : queue(options.queue_capacity, options.backpressure),
          algo(dimensions, options.umicro) {}

    BoundedQueue<std::vector<stream::UncertainPoint>> queue;
    std::mutex state_mu;
    core::UMicro algo;  // guarded by state_mu
    obs::Counter* points_processed = nullptr;  // worker increments
    obs::Counter* batches_processed = nullptr;  // worker increments
    obs::Counter* points_dropped = nullptr;  // coordinator increments
    obs::Gauge* clusters_at_merge = nullptr;  // coordinator sets
    /// True from just before the worker thread is spawned until its loop
    /// exits; the supervisor restarts a shard whose flag dropped while
    /// the pipeline is live.
    std::atomic<bool> worker_alive{false};
    /// The batch the worker is currently processing. Written by the
    /// worker, read by the supervisor only after joining the dead thread
    /// (join orders the accesses), so no lock is needed.
    std::vector<stream::UncertainPoint> in_progress_batch;
    std::thread worker;
  };

  /// Worker thread body for shard `index`.
  void WorkerLoop(std::size_t index);

  /// Supervisor thread body: polls worker liveness, restarts the dead.
  void SupervisorLoop();

  /// Joins a dead worker, applies its in-flight batch, and spawns a
  /// replacement (supervisor thread only).
  void RestartShard(std::size_t index);

  /// Load-shed decision for shard `index`'s pending batch: updates the
  /// pressure streaks, flips degraded mode, and returns true when the
  /// batch should be shed before entering the queue (coordinator only).
  bool ShouldShedBatch(std::size_t index);

  /// Shard assignment for one point.
  std::size_t PickShard(const stream::UncertainPoint& point);

  /// Enqueues shard `index`'s pending producer batch (no-op if empty).
  void EnqueueBatch(std::size_t index);

  /// Blocks until every shard's queue is empty and its worker idle.
  void WaitDrained();

  /// Collects shard clusters and rebuilds the merged global view; must
  /// only run with all queues drained.
  void RebuildGlobalView();

  /// Drain + rebuild + merge-stat bookkeeping.
  void MergeNow();

  const std::size_t dimensions_;
  const ShardedUMicroOptions options_;
  const std::size_t global_budget_;

  /// Declared before the shards: shard construction resolves metric
  /// handles out of this registry, and the shard algorithms keep writing
  /// into it until their workers join.
  obs::MetricsRegistry metrics_;
  // Pipeline-wide metric handles (resolved once in the constructor).
  obs::Counter* points_ingested_metric_;
  obs::Counter* points_dropped_metric_;
  obs::Counter* merges_metric_;
  obs::Counter* reconcile_metric_;
  obs::Histogram* merge_micros_;
  obs::Gauge* global_clusters_metric_;
  // Degradation / supervision metric handles.
  obs::Counter* degrade_activations_metric_;
  obs::Counter* points_shed_metric_;
  obs::Counter* batches_shed_metric_;
  obs::Gauge* degrade_active_gauge_;
  obs::Counter* worker_restarts_metric_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Producer-side point buffers, one per shard (coordinator thread only).
  std::vector<std::vector<stream::UncertainPoint>> pending_batches_;

  /// In-flight points per shard (enqueued, not yet processed); guarded by
  /// done_mu_, signalled via done_cv_ when a shard reaches zero.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::vector<std::size_t> in_flight_;

  // Coordinator-thread state.
  std::size_t points_ingested_ = 0;
  std::size_t points_since_merge_ = 0;
  std::size_t next_round_robin_ = 0;
  std::vector<core::MicroCluster> global_clusters_;
  /// Set by the destructor before tearing anything down; read by the
  /// supervisor to suppress restarts during shutdown.
  std::atomic<bool> stopped_{false};

  // Load-shed controller state (coordinator thread only).
  bool degraded_ = false;
  std::size_t pressured_streak_ = 0;
  std::size_t calm_streak_ = 0;
  util::Rng shed_rng_;

  // Supervisor thread (started only when options.supervisor.enabled).
  std::atomic<bool> supervisor_stop_{false};
  std::thread supervisor_;
};

}  // namespace umicro::parallel

#endif  // UMICRO_PARALLEL_SHARDED_UMICRO_H_
