#include "parallel/parallel_engine.h"

#include <algorithm>

#include "util/check.h"

namespace umicro::parallel {

ParallelUMicroEngine::ParallelUMicroEngine(std::size_t dimensions,
                                           ParallelEngineOptions options)
    : options_(options),
      sharded_(dimensions, options.sharded),
      store_(options.pyramid_alpha, options.pyramid_l) {
  UMICRO_CHECK(options_.snapshot_every > 0);
}

void ParallelUMicroEngine::Process(const stream::UncertainPoint& point) {
  // Sharded replay can deliver out-of-order arrivals; the engine clock
  // must never rewind (snapshot times are inserted in increasing tick
  // order and decay is anchored to the newest time seen).
  last_timestamp_ = std::max(last_timestamp_, point.timestamp);
  sharded_.Process(point);
  if (++since_snapshot_ >= options_.snapshot_every) {
    sharded_.Flush();
    store_.Insert(next_tick_++, sharded_.GlobalSnapshot(last_timestamp_));
    since_snapshot_ = 0;
  }
}

void ParallelUMicroEngine::Flush() { sharded_.Flush(); }

std::optional<core::HorizonClustering> ParallelUMicroEngine::ClusterRecent(
    double horizon, const core::MacroClusteringOptions& options) {
  if (sharded_.points_processed() == 0) return std::nullopt;
  sharded_.Flush();
  const core::Snapshot current = sharded_.GlobalSnapshot(last_timestamp_);
  return core::ClusterOverHorizon(store_, current, horizon, options);
}

}  // namespace umicro::parallel
