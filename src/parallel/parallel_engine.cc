#include "parallel/parallel_engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/scoped_timer.h"
#include "util/check.h"

namespace umicro::parallel {

ParallelUMicroEngine::ParallelUMicroEngine(std::size_t dimensions,
                                           ParallelEngineOptions options)
    : options_(options),
      sharded_(dimensions, options.sharded),
      store_(options.snapshot.pyramid_alpha, options.snapshot.pyramid_l,
             options.snapshot.tiering),
      snapshot_micros_(
          &sharded_.metrics().GetHistogram("snapshot.take_micros")),
      snapshots_taken_(&sharded_.metrics().GetCounter("snapshot.taken")),
      snapshots_stored_(&sharded_.metrics().GetGauge("snapshot.stored")),
      snapshot_bytes_(&sharded_.metrics().GetGauge("snapshot.bytes")),
      snapshot_frames_(&sharded_.metrics().GetGauge("snapshot.frames")),
      snapshot_delta_ratio_(
          &sharded_.metrics().GetGauge("snapshot.delta_ratio")),
      snapshot_reconstructions_(
          &sharded_.metrics().GetCounter("snapshot.reconstructions")),
      snapshot_spills_(&sharded_.metrics().GetCounter("snapshot.spills")) {}

void ParallelUMicroEngine::PublishStoreMetrics() {
  const core::SnapshotTierStats stats = store_.TierStats();
  snapshot_bytes_->Set(static_cast<double>(stats.approx_bytes));
  snapshot_frames_->Set(static_cast<double>(stats.frames));
  snapshot_delta_ratio_->Set(stats.delta_ratio);
  if (stats.reconstructions > published_reconstructions_) {
    snapshot_reconstructions_->Increment(stats.reconstructions -
                                         published_reconstructions_);
    published_reconstructions_ = stats.reconstructions;
  }
  if (stats.spills > published_spills_) {
    snapshot_spills_->Increment(stats.spills - published_spills_);
    published_spills_ = stats.spills;
  }
}

void ParallelUMicroEngine::Process(const stream::UncertainPoint& point) {
  // Sharded replay can deliver out-of-order arrivals; the engine clock
  // must never rewind (snapshot times are inserted in increasing tick
  // order and decay is anchored to the newest time seen).
  last_timestamp_ = std::max(last_timestamp_, point.timestamp);
  sharded_.Process(point);
  if (options_.snapshot.snapshot_every > 0 &&
      ++since_snapshot_ >= options_.snapshot.snapshot_every) {
    const obs::ScopedTimer timer(snapshot_micros_);
    sharded_.Flush();
    const std::uint64_t tick = next_tick_++;
    core::Snapshot snapshot = sharded_.GlobalSnapshot(last_timestamp_);
    if (sink_ != nullptr) {
      sink_->PublishSnapshot(store_.OrderOf(tick), snapshot);
    }
    store_.Insert(tick, std::move(snapshot));
    since_snapshot_ = 0;
    snapshots_taken_->Increment();
    snapshots_stored_->Set(static_cast<double>(store_.TotalStored()));
    PublishStoreMetrics();
  }
}

void ParallelUMicroEngine::Flush() {
  sharded_.Flush();
  if (sink_ != nullptr && sharded_.points_processed() > 0) {
    sink_->PublishCurrent(sharded_.GlobalSnapshot(last_timestamp_));
  }
}

void ParallelUMicroEngine::AttachSnapshotSink(core::SnapshotSink* sink) {
  sink_ = sink;
  if (sink_ == nullptr) return;
  store_.ForEach([this](std::size_t order, const core::Snapshot& snapshot) {
    sink_->PublishSnapshot(order, snapshot);
  });
  if (sharded_.points_processed() > 0) {
    sharded_.Flush();
    sink_->PublishCurrent(sharded_.GlobalSnapshot(last_timestamp_));
  }
}

void ParallelUMicroEngine::ProcessBatch(
    std::span<const stream::UncertainPoint> points) {
  for (const auto& point : points) Process(point);
}

core::EngineState ParallelUMicroEngine::ExportEngineState() {
  core::EngineState state;
  state.engine_kind = "sharded";
  state.dimensions = sharded_.dimensions();
  // ExportPipelineState drains + merges, so the shard residuals and the
  // global view are consistent with the stream clock captured below.
  ShardedPipelineState pipeline = sharded_.ExportPipelineState();
  state.shard_states = std::move(pipeline.shard_states);
  state.global_clusters = std::move(pipeline.global_clusters);
  state.points_ingested = pipeline.points_ingested;
  state.next_round_robin = pipeline.next_round_robin;
  state.store = store_.ExportState();
  state.next_tick = next_tick_;
  state.since_snapshot = since_snapshot_;
  state.last_timestamp = last_timestamp_;
  state.counters = sharded_.metrics().CounterCells();
  state.gauges = sharded_.metrics().GaugeCells();
  return state;
}

bool ParallelUMicroEngine::RestoreEngineState(const core::EngineState& state) {
  if (state.engine_kind != "sharded") return false;
  if (state.dimensions != sharded_.dimensions()) return false;
  ShardedPipelineState pipeline;
  pipeline.shard_states = state.shard_states;
  pipeline.global_clusters = state.global_clusters;
  pipeline.points_ingested = state.points_ingested;
  pipeline.next_round_robin = state.next_round_robin;
  // Validate the store first: a retention-geometry mismatch must reject
  // the whole restore before any pipeline state is overwritten.
  std::string store_error;
  if (!store_.RestoreState(state.store, &store_error)) {
    std::fprintf(stderr, "engine restore rejected: %s\n",
                 store_error.c_str());
    return false;
  }
  if (!sharded_.RestorePipelineState(pipeline)) return false;
  next_tick_ = state.next_tick;
  since_snapshot_ = static_cast<std::size_t>(state.since_snapshot);
  last_timestamp_ = state.last_timestamp;
  sharded_.metrics().RestoreCells(state.counters, state.gauges);
  return true;
}

std::optional<core::HorizonClustering> ParallelUMicroEngine::ClusterRecent(
    double horizon, const core::MacroClusteringOptions& options) {
  if (sharded_.points_processed() == 0) return std::nullopt;
  sharded_.Flush();
  const core::Snapshot current = sharded_.GlobalSnapshot(last_timestamp_);
  auto result = core::ClusterOverHorizon(store_, current, horizon, options,
                                         &sharded_.metrics(),
                                         options_.sharded.umicro.decay_lambda);
  PublishStoreMetrics();
  return result;
}

}  // namespace umicro::parallel
