#include "parallel/parallel_engine.h"

#include <algorithm>

#include "obs/scoped_timer.h"
#include "util/check.h"

namespace umicro::parallel {

ParallelUMicroEngine::ParallelUMicroEngine(std::size_t dimensions,
                                           ParallelEngineOptions options)
    : options_(options),
      sharded_(dimensions, options.sharded),
      store_(options.snapshot.pyramid_alpha, options.snapshot.pyramid_l),
      snapshot_micros_(
          &sharded_.metrics().GetHistogram("snapshot.take_micros")),
      snapshots_taken_(&sharded_.metrics().GetCounter("snapshot.taken")),
      snapshots_stored_(&sharded_.metrics().GetGauge("snapshot.stored")) {}

void ParallelUMicroEngine::Process(const stream::UncertainPoint& point) {
  // Sharded replay can deliver out-of-order arrivals; the engine clock
  // must never rewind (snapshot times are inserted in increasing tick
  // order and decay is anchored to the newest time seen).
  last_timestamp_ = std::max(last_timestamp_, point.timestamp);
  sharded_.Process(point);
  if (options_.snapshot.snapshot_every > 0 &&
      ++since_snapshot_ >= options_.snapshot.snapshot_every) {
    const obs::ScopedTimer timer(snapshot_micros_);
    sharded_.Flush();
    store_.Insert(next_tick_++, sharded_.GlobalSnapshot(last_timestamp_));
    since_snapshot_ = 0;
    snapshots_taken_->Increment();
    snapshots_stored_->Set(static_cast<double>(store_.TotalStored()));
  }
}

std::optional<core::HorizonClustering> ParallelUMicroEngine::ClusterRecent(
    double horizon, const core::MacroClusteringOptions& options) {
  if (sharded_.points_processed() == 0) return std::nullopt;
  sharded_.Flush();
  const core::Snapshot current = sharded_.GlobalSnapshot(last_timestamp_);
  return core::ClusterOverHorizon(store_, current, horizon, options,
                                  &sharded_.metrics());
}

}  // namespace umicro::parallel
