#include "parallel/shard_merge.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/check.h"

namespace umicro::parallel {

namespace {

/// Path-compressing union-find root lookup.
std::size_t FindRoot(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

}  // namespace

double ClusterSimilarity(const core::ErrorClusterFeature& a,
                         const core::ErrorClusterFeature& b,
                         const std::vector<double>& inv_scaled,
                         double* centroid_dist2) {
  const double inv_na = 1.0 / a.weight();
  const double inv_nb = 1.0 / b.weight();
  const double inv_na2 = inv_na * inv_na;
  const double inv_nb2 = inv_nb * inv_nb;
  double vote = 0.0;
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.dimensions(); ++j) {
    const double diff = a.cf1()[j] * inv_na - b.cf1()[j] * inv_nb;
    const double geometric = diff * diff;
    d2 += geometric;
    if (inv_scaled[j] > 0.0) {
      const double expected =
          geometric + a.ef2()[j] * inv_na2 + b.ef2()[j] * inv_nb2;
      vote += std::max(0.0, 1.0 - expected * inv_scaled[j]);
    }
  }
  *centroid_dist2 = d2;
  return vote;
}

std::vector<core::MicroCluster> MergeShardClusterSets(
    std::vector<std::vector<core::MicroCluster>> shard_sets,
    const ShardMergeOptions& options, std::size_t* reconciliations) {
  if (reconciliations != nullptr) *reconciliations = 0;
  std::vector<core::MicroCluster> merged;
  for (std::size_t i = 0; i < shard_sets.size(); ++i) {
    for (core::MicroCluster& cluster : shard_sets[i]) {
      merged.push_back(std::move(cluster));
      UMICRO_DCHECK(merged.back().id < (1ull << kShardIdShift));
      merged.back().id =
          (static_cast<std::uint64_t>(i) << kShardIdShift) | merged.back().id;
    }
  }

  const std::size_t q = merged.size();
  if (q <= options.global_budget) {
    // Under budget (always the case with one shard): the shard view IS
    // the global view, untouched -- no reconciliation, exact statistics.
    return merged;
  }

  // Over budget: near-duplicate clusters -- the same stream region
  // discovered independently by several shards -- are reconciled by
  // greedily uniting the most similar pairs (dimension-counting vote,
  // centroid distance as tie-break) until the budget holds. The ECF
  // additions below are exact, so reconciliation changes granularity,
  // never statistics.
  core::ErrorClusterFeature aggregate(options.dimensions);
  for (const auto& cluster : merged) aggregate.Merge(cluster.ecf);
  std::vector<double> inv_scaled(options.dimensions, 0.0);
  for (std::size_t j = 0; j < options.dimensions; ++j) {
    const double scaled =
        options.dimension_threshold * aggregate.VarianceAt(j);
    inv_scaled[j] = scaled > 0.0 ? 1.0 / scaled : 0.0;
  }

  struct CandidatePair {
    double similarity;
    double dist2;
    std::size_t a;
    std::size_t b;
  };
  std::vector<CandidatePair> pairs;
  pairs.reserve(q * (q - 1) / 2);
  for (std::size_t a = 0; a + 1 < q; ++a) {
    for (std::size_t b = a + 1; b < q; ++b) {
      double d2 = 0.0;
      const double sim =
          ClusterSimilarity(merged[a].ecf, merged[b].ecf, inv_scaled, &d2);
      pairs.push_back({sim, d2, a, b});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const CandidatePair& x, const CandidatePair& y) {
              if (x.similarity != y.similarity)
                return x.similarity > y.similarity;
              return x.dist2 < y.dist2;
            });

  std::vector<std::size_t> parent(q);
  std::iota(parent.begin(), parent.end(), 0);
  std::size_t components = q;
  std::size_t unions = 0;
  for (const CandidatePair& pair : pairs) {
    if (components <= options.global_budget) break;
    const std::size_t ra = FindRoot(parent, pair.a);
    const std::size_t rb = FindRoot(parent, pair.b);
    if (ra == rb) continue;
    parent[rb] = ra;
    --components;
    ++unions;
  }
  if (reconciliations != nullptr) *reconciliations = unions;

  // Materialize one cluster per union-find component; the heaviest
  // member donates identity and the earliest member the creation time
  // (mirroring the sequential closest-pair merge rule).
  std::vector<core::MicroCluster> reconciled;
  reconciled.reserve(components);
  std::vector<std::size_t> root_slot(q, q);
  for (std::size_t i = 0; i < q; ++i) {
    const std::size_t root = FindRoot(parent, i);
    if (root_slot[root] == q) {
      root_slot[root] = reconciled.size();
      reconciled.push_back(std::move(merged[i]));
      continue;
    }
    core::MicroCluster& into = reconciled[root_slot[root]];
    core::MicroCluster& from = merged[i];
    if (from.ecf.weight() > into.ecf.weight()) {
      std::swap(into.id, from.id);
    }
    into.creation_time = std::min(into.creation_time, from.creation_time);
    into.ecf.Merge(from.ecf);
    for (const auto& [label, weight] : from.labels) {
      into.labels[label] += weight;
    }
  }
  return reconciled;
}

}  // namespace umicro::parallel
