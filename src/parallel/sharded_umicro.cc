#include "parallel/sharded_umicro.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <optional>
#include <utility>

#include "obs/scoped_timer.h"
#include "util/check.h"
#include "util/failpoints.h"

namespace umicro::parallel {

namespace {

/// Shard index is tagged into the high bits of the global cluster id so
/// ids stay unique and stable across shards (shard 0 keeps its local ids
/// verbatim, which is what makes the 1-shard pipeline bit-identical to
/// the sequential algorithm).
constexpr unsigned kShardIdShift = 48;

/// FNV-1a over the coordinate bytes: a stable point->shard mapping.
std::uint64_t HashPointValues(const stream::UncertainPoint& point) {
  std::uint64_t h = 1469598103934665603ull;
  for (double v : point.values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits;
    h *= 1099511628211ull;
  }
  return h;
}

/// Dimension-counting similarity between two micro-clusters (the paper's
/// Section II-B vote, lifted from point-vs-cluster to cluster-vs-cluster):
/// each cluster's centroid is an uncertain observation whose per-dimension
/// error mass is EF2_j/n^2 (Lemma 2.1), so the expected squared centroid
/// gap along dimension j is (mu_a - mu_b)^2 + EF2a_j/na^2 + EF2b_j/nb^2,
/// and dimension j votes max{0, 1 - gap_j/(thresh*sigma_j^2)}.
/// `inv_scaled[j]` caches 1/(thresh*sigma_j^2) (0 for dead dimensions).
/// Also reports the plain squared centroid distance for tie-breaking.
double ClusterSimilarity(const core::ErrorClusterFeature& a,
                         const core::ErrorClusterFeature& b,
                         const std::vector<double>& inv_scaled,
                         double* centroid_dist2) {
  const double inv_na = 1.0 / a.weight();
  const double inv_nb = 1.0 / b.weight();
  const double inv_na2 = inv_na * inv_na;
  const double inv_nb2 = inv_nb * inv_nb;
  double vote = 0.0;
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.dimensions(); ++j) {
    const double diff = a.cf1()[j] * inv_na - b.cf1()[j] * inv_nb;
    const double geometric = diff * diff;
    d2 += geometric;
    if (inv_scaled[j] > 0.0) {
      const double expected =
          geometric + a.ef2()[j] * inv_na2 + b.ef2()[j] * inv_nb2;
      vote += std::max(0.0, 1.0 - expected * inv_scaled[j]);
    }
  }
  *centroid_dist2 = d2;
  return vote;
}

/// Path-compressing union-find root lookup.
std::size_t FindRoot(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

}  // namespace

ShardedUMicro::ShardedUMicro(std::size_t dimensions,
                             ShardedUMicroOptions options)
    : dimensions_(dimensions),
      options_(options),
      global_budget_(options.global_budget > 0
                         ? options.global_budget
                         : options.umicro.num_micro_clusters),
      points_ingested_metric_(
          &metrics_.GetCounter("parallel.points_ingested")),
      points_dropped_metric_(&metrics_.GetCounter("parallel.points_dropped")),
      merges_metric_(&metrics_.GetCounter("parallel.merges")),
      reconcile_metric_(&metrics_.GetCounter("parallel.reconcile_merges")),
      merge_micros_(&metrics_.GetHistogram("parallel.merge_micros")),
      global_clusters_metric_(&metrics_.GetGauge("parallel.global_clusters")),
      degrade_activations_metric_(
          &metrics_.GetCounter("parallel.degrade.activations")),
      points_shed_metric_(
          &metrics_.GetCounter("parallel.degrade.points_shed")),
      batches_shed_metric_(
          &metrics_.GetCounter("parallel.degrade.batches_shed")),
      degrade_active_gauge_(&metrics_.GetGauge("parallel.degrade.active")),
      worker_restarts_metric_(
          &metrics_.GetCounter("parallel.worker_restarts")),
      shed_rng_(options.degrade.seed) {
  UMICRO_CHECK(options_.num_shards >= 1);
  UMICRO_CHECK(options_.producer_batch >= 1);
  UMICRO_CHECK(options_.queue_capacity >= 1);
  shards_.reserve(options_.num_shards);
  pending_batches_.resize(options_.num_shards);
  in_flight_.assign(options_.num_shards, 0);
  // One shared enqueue-pressure histogram: only the coordinator pushes,
  // so shard attribution adds nothing the per-shard counters don't give.
  obs::Histogram& enqueue_micros =
      metrics_.GetHistogram("parallel.queue.enqueue_micros");
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(dimensions_, options_));
    pending_batches_[i].reserve(options_.producer_batch);
    Shard& shard = *shards_.back();
    const std::string prefix = "parallel.shard" + std::to_string(i) + ".";
    shard.points_processed = &metrics_.GetCounter(prefix + "points");
    shard.batches_processed = &metrics_.GetCounter(prefix + "batches");
    shard.points_dropped = &metrics_.GetCounter(prefix + "dropped");
    shard.clusters_at_merge = &metrics_.GetGauge(prefix + "clusters");
    QueueMetricsHooks hooks;
    hooks.enqueued = &metrics_.GetCounter(prefix + "queue_batches");
    hooks.high_water = &metrics_.GetGauge(prefix + "queue_high_water");
    hooks.enqueue_micros = &enqueue_micros;
    shard.queue.SetMetricsHooks(hooks);
    // The shard algorithms share the pipeline registry: their "umicro."
    // cells aggregate across workers (atomics, so TSan stays clean).
    shard.algo.AttachMetrics(&metrics_);
  }
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_[i]->worker_alive.store(true, std::memory_order_release);
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
  if (options_.supervisor.enabled) {
    supervisor_ = std::thread([this] { SupervisorLoop(); });
  }
}

ShardedUMicro::~ShardedUMicro() {
  // Silence the supervisor before closing anything so a worker exiting
  // on queue-close is never mistaken for a death and "restarted".
  stopped_.store(true, std::memory_order_release);
  supervisor_stop_.store(true, std::memory_order_release);
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::string ShardedUMicro::name() const {
  return "ShardedUMicro(" + std::to_string(options_.num_shards) + ")";
}

void ShardedUMicro::WorkerLoop(std::size_t index) {
  Shard& shard = *shards_[index];
  const std::string death_name =
      "parallel.worker" + std::to_string(index) + ".death";
  while (shard.queue.Pop(&shard.in_progress_batch)) {
    if (UMICRO_FAILPOINT(death_name) ||
        UMICRO_FAILPOINT("parallel.worker.death")) {
      // Simulated death: exit with the popped batch still sitting in
      // in_progress_batch and its points still counted in in_flight_,
      // exactly the state a real crash would leave. The supervisor
      // applies the batch itself, so no point is lost or double-counted.
      shard.worker_alive.store(false, std::memory_order_release);
      return;
    }
    if (util::FailpointRegistry::Instance().AnyArmed()) {
      const std::size_t stall = util::FailpointRegistry::Instance()
                                    .StallMillis("parallel.worker.stall");
      if (stall > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
      }
    }
    const std::size_t n = shard.in_progress_batch.size();
    {
      std::lock_guard<std::mutex> lock(shard.state_mu);
      // One amortized batch-kernel ingest per popped batch (the batch
      // vector is contiguous, so it views directly as a span).
      shard.algo.ProcessBatch(shard.in_progress_batch);
    }
    shard.points_processed->Increment(n);
    shard.batches_processed->Increment();
    shard.in_progress_batch.clear();
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      in_flight_[index] -= n;
      if (in_flight_[index] == 0) done_cv_.notify_all();
    }
  }
  shard.worker_alive.store(false, std::memory_order_release);
}

void ShardedUMicro::SupervisorLoop() {
  const auto poll = std::chrono::milliseconds(
      std::max<std::size_t>(std::size_t{1}, options_.supervisor.poll_millis));
  while (!supervisor_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll);
    if (stopped_.load(std::memory_order_acquire)) continue;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (supervisor_stop_.load(std::memory_order_acquire)) return;
      if (!shards_[i]->worker_alive.load(std::memory_order_acquire)) {
        RestartShard(i);
      }
    }
  }
}

void ShardedUMicro::RestartShard(std::size_t index) {
  Shard& shard = *shards_[index];
  if (shard.worker.joinable()) shard.worker.join();
  // The join ordered the dead worker's writes: its orphaned batch (if
  // any) is safe to take before the replacement starts popping into the
  // same slot.
  std::vector<stream::UncertainPoint> orphaned =
      std::move(shard.in_progress_batch);
  shard.in_progress_batch.clear();
  worker_restarts_metric_->Increment();
  // Apply the orphaned batch here, on the supervisor thread, BEFORE the
  // replacement starts. Re-enqueueing instead can deadlock: if the
  // queue filled while the shard was dead and the replacement dies on
  // its very next pop, the supervisor is stuck in a kBlock Push with no
  // consumer left and can never run another restart. Processing in
  // place never touches the queue, and since the orphan was popped
  // before everything still queued, shard-local order is preserved.
  // The points stay counted in in_flight_ (the dead worker never
  // decremented them), so they are only decremented, never re-added.
  if (!orphaned.empty()) {
    const std::size_t n = orphaned.size();
    {
      std::lock_guard<std::mutex> lock(shard.state_mu);
      shard.algo.ProcessBatch(orphaned);
    }
    shard.points_processed->Increment(n);
    shard.batches_processed->Increment();
    std::lock_guard<std::mutex> lock(done_mu_);
    in_flight_[index] -= n;
    if (in_flight_[index] == 0) done_cv_.notify_all();
  }
  shard.worker_alive.store(true, std::memory_order_release);
  shard.worker = std::thread([this, index] { WorkerLoop(index); });
}

bool ShardedUMicro::ShouldShedBatch(std::size_t index) {
  const DegradationOptions& degrade = options_.degrade;
  if (!degrade.enabled) return false;
  const double occupancy =
      static_cast<double>(shards_[index]->queue.size()) /
      static_cast<double>(shards_[index]->queue.capacity());
  if (occupancy >= degrade.occupancy_trigger) {
    ++pressured_streak_;
    calm_streak_ = 0;
  } else {
    ++calm_streak_;
    pressured_streak_ = 0;
  }
  if (!degraded_ && pressured_streak_ >= degrade.trigger_after) {
    degraded_ = true;
    degrade_activations_metric_->Increment();
    degrade_active_gauge_->Set(1.0);
  } else if (degraded_ && calm_streak_ >= degrade.recover_after) {
    degraded_ = false;
    degrade_active_gauge_->Set(0.0);
  }
  if (!degraded_) return false;
  return shed_rng_.NextDouble() < degrade.shed_probability;
}

std::size_t ShardedUMicro::PickShard(const stream::UncertainPoint& point) {
  switch (options_.partition) {
    case PartitionMode::kRoundRobin: {
      const std::size_t shard = next_round_robin_;
      next_round_robin_ = (next_round_robin_ + 1) % options_.num_shards;
      return shard;
    }
    case PartitionMode::kHash:
      return static_cast<std::size_t>(HashPointValues(point) %
                                      options_.num_shards);
  }
  return 0;
}

void ShardedUMicro::EnqueueBatch(std::size_t index) {
  std::vector<stream::UncertainPoint>& batch = pending_batches_[index];
  if (batch.empty()) return;
  const std::size_t n = batch.size();
  if (ShouldShedBatch(index)) {
    // Shed before the in-flight accounting: a shed batch never enters
    // the pipeline, so drain/exactness bookkeeping is untouched.
    batches_shed_metric_->Increment();
    points_shed_metric_->Increment(n);
    shards_[index]->points_dropped->Increment(n);
    points_dropped_metric_->Increment(n);
    batch.clear();
    batch.reserve(options_.producer_batch);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    in_flight_[index] += n;
  }
  std::optional<std::vector<stream::UncertainPoint>> displaced;
  const bool accepted = shards_[index]->queue.Push(std::move(batch),
                                                   &displaced);
  batch.clear();
  batch.reserve(options_.producer_batch);

  std::size_t dropped = 0;
  if (!accepted) {
    dropped = n;
  } else if (displaced.has_value()) {
    dropped = displaced->size();
  }
  if (dropped > 0) {
    shards_[index]->points_dropped->Increment(dropped);
    points_dropped_metric_->Increment(dropped);
    std::lock_guard<std::mutex> lock(done_mu_);
    in_flight_[index] -= dropped;
    if (in_flight_[index] == 0) done_cv_.notify_all();
  }
}

void ShardedUMicro::Process(const stream::UncertainPoint& point) {
  UMICRO_CHECK_MSG(point.dimensions() == dimensions_,
                   "point has %zu dimensions, pipeline expects %zu",
                   point.dimensions(), dimensions_);
  const std::size_t shard = PickShard(point);
  pending_batches_[shard].push_back(point);
  ++points_ingested_;
  points_ingested_metric_->Increment();
  ++points_since_merge_;
  if (pending_batches_[shard].size() >= options_.producer_batch) {
    EnqueueBatch(shard);
  }
  // While degraded, merges (the costliest coordinator work) run at a
  // stretched cadence so the coordinator sheds load too.
  std::size_t effective_merge_every = options_.merge_every;
  if (degraded_) {
    const double stretch = std::max(1.0, options_.degrade.merge_stretch);
    effective_merge_every = static_cast<std::size_t>(
        static_cast<double>(options_.merge_every) * stretch);
  }
  if (effective_merge_every > 0 &&
      points_since_merge_ >= effective_merge_every) {
    MergeNow();
  }
}

void ShardedUMicro::WaitDrained() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return std::all_of(in_flight_.begin(), in_flight_.end(),
                       [](std::size_t n) { return n == 0; });
  });
}

void ShardedUMicro::RebuildGlobalView() {
  std::vector<core::MicroCluster> merged;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.state_mu);
    shard.clusters_at_merge->Set(
        static_cast<double>(shard.algo.clusters().size()));
    for (const core::MicroCluster& cluster : shard.algo.clusters()) {
      merged.push_back(cluster);
      UMICRO_DCHECK(cluster.id < (1ull << kShardIdShift));
      merged.back().id =
          (static_cast<std::uint64_t>(i) << kShardIdShift) | cluster.id;
    }
  }

  const std::size_t q = merged.size();
  if (q <= global_budget_) {
    // Under budget (always the case with one shard): the shard view IS
    // the global view, untouched -- no reconciliation, exact statistics.
    global_clusters_ = std::move(merged);
    return;
  }

  // Over budget: near-duplicate clusters -- the same stream region
  // discovered independently by several shards -- are reconciled by
  // greedily uniting the most similar pairs (dimension-counting vote,
  // centroid distance as tie-break) until the budget holds. The ECF
  // additions below are exact, so reconciliation changes granularity,
  // never statistics.
  core::ErrorClusterFeature aggregate(dimensions_);
  for (const auto& cluster : merged) aggregate.Merge(cluster.ecf);
  std::vector<double> inv_scaled(dimensions_, 0.0);
  for (std::size_t j = 0; j < dimensions_; ++j) {
    const double scaled =
        options_.umicro.dimension_threshold * aggregate.VarianceAt(j);
    inv_scaled[j] = scaled > 0.0 ? 1.0 / scaled : 0.0;
  }

  struct CandidatePair {
    double similarity;
    double dist2;
    std::size_t a;
    std::size_t b;
  };
  std::vector<CandidatePair> pairs;
  pairs.reserve(q * (q - 1) / 2);
  for (std::size_t a = 0; a + 1 < q; ++a) {
    for (std::size_t b = a + 1; b < q; ++b) {
      double d2 = 0.0;
      const double sim =
          ClusterSimilarity(merged[a].ecf, merged[b].ecf, inv_scaled, &d2);
      pairs.push_back({sim, d2, a, b});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const CandidatePair& x, const CandidatePair& y) {
              if (x.similarity != y.similarity)
                return x.similarity > y.similarity;
              return x.dist2 < y.dist2;
            });

  std::vector<std::size_t> parent(q);
  std::iota(parent.begin(), parent.end(), 0);
  std::size_t components = q;
  for (const CandidatePair& pair : pairs) {
    if (components <= global_budget_) break;
    const std::size_t ra = FindRoot(parent, pair.a);
    const std::size_t rb = FindRoot(parent, pair.b);
    if (ra == rb) continue;
    parent[rb] = ra;
    --components;
    reconcile_metric_->Increment();
  }

  // Materialize one cluster per union-find component; the heaviest
  // member donates identity and the earliest member the creation time
  // (mirroring the sequential closest-pair merge rule).
  std::vector<core::MicroCluster> reconciled;
  reconciled.reserve(components);
  std::vector<std::size_t> root_slot(q, q);
  for (std::size_t i = 0; i < q; ++i) {
    const std::size_t root = FindRoot(parent, i);
    if (root_slot[root] == q) {
      root_slot[root] = reconciled.size();
      reconciled.push_back(std::move(merged[i]));
      continue;
    }
    core::MicroCluster& into = reconciled[root_slot[root]];
    core::MicroCluster& from = merged[i];
    if (from.ecf.weight() > into.ecf.weight()) {
      std::swap(into.id, from.id);
    }
    into.creation_time = std::min(into.creation_time, from.creation_time);
    into.ecf.Merge(from.ecf);
    for (const auto& [label, weight] : from.labels) {
      into.labels[label] += weight;
    }
  }
  global_clusters_ = std::move(reconciled);
}

void ShardedUMicro::MergeNow() {
  const obs::ScopedTimer timer(merge_micros_);
  if (util::FailpointRegistry::Instance().AnyArmed()) {
    const std::size_t stall = util::FailpointRegistry::Instance()
                                  .StallMillis("parallel.merge.stall");
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) EnqueueBatch(i);
  WaitDrained();
  RebuildGlobalView();
  merges_metric_->Increment();
  global_clusters_metric_->Set(static_cast<double>(global_clusters_.size()));
  points_since_merge_ = 0;
}

void ShardedUMicro::Flush() { MergeNow(); }

std::vector<stream::LabelHistogram> ShardedUMicro::ClusterLabelHistograms()
    const {
  // Logically read-only (the stream content is untouched) but the merged
  // view must be refreshed; the coordinator-thread contract makes the
  // cast safe.
  const_cast<ShardedUMicro*>(this)->MergeNow();
  std::vector<stream::LabelHistogram> histograms;
  histograms.reserve(global_clusters_.size());
  for (const auto& cluster : global_clusters_) {
    histograms.push_back(cluster.labels);
  }
  return histograms;
}

std::vector<std::vector<double>> ShardedUMicro::ClusterCentroids() const {
  const_cast<ShardedUMicro*>(this)->MergeNow();
  std::vector<std::vector<double>> centroids;
  centroids.reserve(global_clusters_.size());
  for (const auto& cluster : global_clusters_) {
    if (!cluster.ecf.empty()) centroids.push_back(cluster.ecf.Centroid());
  }
  return centroids;
}

core::Snapshot ShardedUMicro::GlobalSnapshot(double time) const {
  core::Snapshot snapshot;
  snapshot.time = time;
  snapshot.clusters.reserve(global_clusters_.size());
  for (const auto& cluster : global_clusters_) {
    core::MicroClusterState state;
    state.id = cluster.id;
    state.creation_time = cluster.creation_time;
    state.ecf = cluster.ecf;
    snapshot.clusters.push_back(std::move(state));
  }
  return snapshot;
}

ShardedPipelineState ShardedUMicro::ExportPipelineState() {
  // Drain + merge first: afterwards no point is in a queue or a worker,
  // so shard residuals + merged view + the partition cursor determine
  // all future behavior exactly.
  Flush();
  ShardedPipelineState state;
  state.shard_states.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->state_mu);
    state.shard_states.push_back(shard->algo.ExportState());
  }
  state.global_clusters = global_clusters_;
  state.points_ingested = points_ingested_;
  state.next_round_robin = next_round_robin_;
  return state;
}

bool ShardedUMicro::RestorePipelineState(const ShardedPipelineState& state) {
  if (state.shard_states.size() != shards_.size()) return false;
  for (const auto& shard_state : state.shard_states) {
    if (shard_state.welford.size() != dimensions_) return false;
    for (const auto& cluster : shard_state.clusters) {
      if (cluster.ecf.dimensions() != dimensions_) return false;
    }
  }
  for (const auto& cluster : state.global_clusters) {
    if (cluster.ecf.dimensions() != dimensions_) return false;
  }
  Flush();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->state_mu);
    shards_[i]->algo.RestoreState(state.shard_states[i]);
  }
  global_clusters_ = state.global_clusters;
  points_ingested_ = static_cast<std::size_t>(state.points_ingested);
  next_round_robin_ =
      static_cast<std::size_t>(state.next_round_robin) % options_.num_shards;
  points_since_merge_ = 0;
  global_clusters_metric_->Set(static_cast<double>(global_clusters_.size()));
  return true;
}

std::size_t ShardedUMicro::worker_restarts() const {
  return static_cast<std::size_t>(worker_restarts_metric_->value());
}

}  // namespace umicro::parallel
