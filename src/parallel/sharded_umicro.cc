#include "parallel/sharded_umicro.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <optional>
#include <utility>

#include "obs/scoped_timer.h"
#include "parallel/shard_merge.h"
#include "util/check.h"
#include "util/failpoints.h"

namespace umicro::parallel {

namespace {

/// FNV-1a over the coordinate bytes: a stable point->shard mapping.
std::uint64_t HashPointValues(const stream::UncertainPoint& point) {
  std::uint64_t h = 1469598103934665603ull;
  for (double v : point.values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ShardedUMicro::ShardedUMicro(std::size_t dimensions,
                             ShardedUMicroOptions options)
    : dimensions_(dimensions),
      options_(options),
      global_budget_(options.global_budget > 0
                         ? options.global_budget
                         : options.umicro.num_micro_clusters),
      points_ingested_metric_(
          &metrics_.GetCounter("parallel.points_ingested")),
      points_dropped_metric_(&metrics_.GetCounter("parallel.points_dropped")),
      merges_metric_(&metrics_.GetCounter("parallel.merges")),
      reconcile_metric_(&metrics_.GetCounter("parallel.reconcile_merges")),
      merge_micros_(&metrics_.GetHistogram("parallel.merge_micros")),
      global_clusters_metric_(&metrics_.GetGauge("parallel.global_clusters")),
      degrade_activations_metric_(
          &metrics_.GetCounter("parallel.degrade.activations")),
      points_shed_metric_(
          &metrics_.GetCounter("parallel.degrade.points_shed")),
      batches_shed_metric_(
          &metrics_.GetCounter("parallel.degrade.batches_shed")),
      degrade_active_gauge_(&metrics_.GetGauge("parallel.degrade.active")),
      worker_restarts_metric_(
          &metrics_.GetCounter("parallel.worker_restarts")),
      shed_rng_(options.degrade.seed) {
  UMICRO_CHECK(options_.num_shards >= 1);
  UMICRO_CHECK(options_.producer_batch >= 1);
  UMICRO_CHECK(options_.queue_capacity >= 1);
  shards_.reserve(options_.num_shards);
  pending_batches_.resize(options_.num_shards);
  in_flight_.assign(options_.num_shards, 0);
  // One shared enqueue-pressure histogram: only the coordinator pushes,
  // so shard attribution adds nothing the per-shard counters don't give.
  obs::Histogram& enqueue_micros =
      metrics_.GetHistogram("parallel.queue.enqueue_micros");
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(dimensions_, options_));
    pending_batches_[i].reserve(options_.producer_batch);
    Shard& shard = *shards_.back();
    const std::string prefix = "parallel.shard" + std::to_string(i) + ".";
    shard.points_processed = &metrics_.GetCounter(prefix + "points");
    shard.batches_processed = &metrics_.GetCounter(prefix + "batches");
    shard.points_dropped = &metrics_.GetCounter(prefix + "dropped");
    shard.clusters_at_merge = &metrics_.GetGauge(prefix + "clusters");
    QueueMetricsHooks hooks;
    hooks.enqueued = &metrics_.GetCounter(prefix + "queue_batches");
    hooks.high_water = &metrics_.GetGauge(prefix + "queue_high_water");
    hooks.enqueue_micros = &enqueue_micros;
    shard.queue.SetMetricsHooks(hooks);
    // The shard algorithms share the pipeline registry: their "umicro."
    // cells aggregate across workers (atomics, so TSan stays clean).
    shard.algo.AttachMetrics(&metrics_);
  }
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_[i]->worker_alive.store(true, std::memory_order_release);
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
  if (options_.supervisor.enabled) {
    supervisor_ = std::thread([this] { SupervisorLoop(); });
  }
}

ShardedUMicro::~ShardedUMicro() {
  // Silence the supervisor before closing anything so a worker exiting
  // on queue-close is never mistaken for a death and "restarted".
  stopped_.store(true, std::memory_order_release);
  supervisor_stop_.store(true, std::memory_order_release);
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::string ShardedUMicro::name() const {
  return "ShardedUMicro(" + std::to_string(options_.num_shards) + ")";
}

void ShardedUMicro::WorkerLoop(std::size_t index) {
  Shard& shard = *shards_[index];
  const std::string death_name =
      "parallel.worker" + std::to_string(index) + ".death";
  while (shard.queue.Pop(&shard.in_progress_batch)) {
    if (UMICRO_FAILPOINT(death_name) ||
        UMICRO_FAILPOINT("parallel.worker.death")) {
      // Simulated death: exit with the popped batch still sitting in
      // in_progress_batch and its points still counted in in_flight_,
      // exactly the state a real crash would leave. The supervisor
      // applies the batch itself, so no point is lost or double-counted.
      shard.worker_alive.store(false, std::memory_order_release);
      return;
    }
    if (util::FailpointRegistry::Instance().AnyArmed()) {
      const std::size_t stall = util::FailpointRegistry::Instance()
                                    .StallMillis("parallel.worker.stall");
      if (stall > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
      }
    }
    const std::size_t n = shard.in_progress_batch.size();
    {
      std::lock_guard<std::mutex> lock(shard.state_mu);
      // One amortized batch-kernel ingest per popped batch (the batch
      // vector is contiguous, so it views directly as a span).
      shard.algo.ProcessBatch(shard.in_progress_batch);
    }
    shard.points_processed->Increment(n);
    shard.batches_processed->Increment();
    shard.in_progress_batch.clear();
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      in_flight_[index] -= n;
      if (in_flight_[index] == 0) done_cv_.notify_all();
    }
  }
  shard.worker_alive.store(false, std::memory_order_release);
}

void ShardedUMicro::SupervisorLoop() {
  const auto poll = std::chrono::milliseconds(
      std::max<std::size_t>(std::size_t{1}, options_.supervisor.poll_millis));
  while (!supervisor_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll);
    if (stopped_.load(std::memory_order_acquire)) continue;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (supervisor_stop_.load(std::memory_order_acquire)) return;
      if (!shards_[i]->worker_alive.load(std::memory_order_acquire)) {
        RestartShard(i);
      }
    }
  }
}

void ShardedUMicro::RestartShard(std::size_t index) {
  Shard& shard = *shards_[index];
  if (shard.worker.joinable()) shard.worker.join();
  // The join ordered the dead worker's writes: its orphaned batch (if
  // any) is safe to take before the replacement starts popping into the
  // same slot.
  std::vector<stream::UncertainPoint> orphaned =
      std::move(shard.in_progress_batch);
  shard.in_progress_batch.clear();
  worker_restarts_metric_->Increment();
  // Apply the orphaned batch here, on the supervisor thread, BEFORE the
  // replacement starts. Re-enqueueing instead can deadlock: if the
  // queue filled while the shard was dead and the replacement dies on
  // its very next pop, the supervisor is stuck in a kBlock Push with no
  // consumer left and can never run another restart. Processing in
  // place never touches the queue, and since the orphan was popped
  // before everything still queued, shard-local order is preserved.
  // The points stay counted in in_flight_ (the dead worker never
  // decremented them), so they are only decremented, never re-added.
  if (!orphaned.empty()) {
    const std::size_t n = orphaned.size();
    {
      std::lock_guard<std::mutex> lock(shard.state_mu);
      shard.algo.ProcessBatch(orphaned);
    }
    shard.points_processed->Increment(n);
    shard.batches_processed->Increment();
    std::lock_guard<std::mutex> lock(done_mu_);
    in_flight_[index] -= n;
    if (in_flight_[index] == 0) done_cv_.notify_all();
  }
  shard.worker_alive.store(true, std::memory_order_release);
  shard.worker = std::thread([this, index] { WorkerLoop(index); });
}

bool ShardedUMicro::ShouldShedBatch(std::size_t index) {
  const DegradationOptions& degrade = options_.degrade;
  if (!degrade.enabled) return false;
  const double occupancy =
      static_cast<double>(shards_[index]->queue.size()) /
      static_cast<double>(shards_[index]->queue.capacity());
  if (occupancy >= degrade.occupancy_trigger) {
    ++pressured_streak_;
    calm_streak_ = 0;
  } else {
    ++calm_streak_;
    pressured_streak_ = 0;
  }
  if (!degraded_ && pressured_streak_ >= degrade.trigger_after) {
    degraded_ = true;
    degrade_activations_metric_->Increment();
    degrade_active_gauge_->Set(1.0);
  } else if (degraded_ && calm_streak_ >= degrade.recover_after) {
    degraded_ = false;
    degrade_active_gauge_->Set(0.0);
  }
  if (!degraded_) return false;
  return shed_rng_.NextDouble() < degrade.shed_probability;
}

std::size_t ShardedUMicro::PickShard(const stream::UncertainPoint& point) {
  switch (options_.partition) {
    case PartitionMode::kRoundRobin: {
      const std::size_t shard = next_round_robin_;
      next_round_robin_ = (next_round_robin_ + 1) % options_.num_shards;
      return shard;
    }
    case PartitionMode::kHash:
      return static_cast<std::size_t>(HashPointValues(point) %
                                      options_.num_shards);
  }
  return 0;
}

void ShardedUMicro::EnqueueBatch(std::size_t index) {
  std::vector<stream::UncertainPoint>& batch = pending_batches_[index];
  if (batch.empty()) return;
  const std::size_t n = batch.size();
  if (ShouldShedBatch(index)) {
    // Shed before the in-flight accounting: a shed batch never enters
    // the pipeline, so drain/exactness bookkeeping is untouched.
    batches_shed_metric_->Increment();
    points_shed_metric_->Increment(n);
    shards_[index]->points_dropped->Increment(n);
    points_dropped_metric_->Increment(n);
    batch.clear();
    batch.reserve(options_.producer_batch);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    in_flight_[index] += n;
  }
  std::optional<std::vector<stream::UncertainPoint>> displaced;
  const bool accepted = shards_[index]->queue.Push(std::move(batch),
                                                   &displaced);
  batch.clear();
  batch.reserve(options_.producer_batch);

  std::size_t dropped = 0;
  if (!accepted) {
    dropped = n;
  } else if (displaced.has_value()) {
    dropped = displaced->size();
  }
  if (dropped > 0) {
    shards_[index]->points_dropped->Increment(dropped);
    points_dropped_metric_->Increment(dropped);
    std::lock_guard<std::mutex> lock(done_mu_);
    in_flight_[index] -= dropped;
    if (in_flight_[index] == 0) done_cv_.notify_all();
  }
}

void ShardedUMicro::Process(const stream::UncertainPoint& point) {
  UMICRO_CHECK_MSG(point.dimensions() == dimensions_,
                   "point has %zu dimensions, pipeline expects %zu",
                   point.dimensions(), dimensions_);
  const std::size_t shard = PickShard(point);
  pending_batches_[shard].push_back(point);
  ++points_ingested_;
  points_ingested_metric_->Increment();
  ++points_since_merge_;
  if (pending_batches_[shard].size() >= options_.producer_batch) {
    EnqueueBatch(shard);
  }
  // While degraded, merges (the costliest coordinator work) run at a
  // stretched cadence so the coordinator sheds load too.
  std::size_t effective_merge_every = options_.merge_every;
  if (degraded_) {
    const double stretch = std::max(1.0, options_.degrade.merge_stretch);
    effective_merge_every = static_cast<std::size_t>(
        static_cast<double>(options_.merge_every) * stretch);
  }
  if (effective_merge_every > 0 &&
      points_since_merge_ >= effective_merge_every) {
    MergeNow();
  }
}

void ShardedUMicro::WaitDrained() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return std::all_of(in_flight_.begin(), in_flight_.end(),
                       [](std::size_t n) { return n == 0; });
  });
}

void ShardedUMicro::RebuildGlobalView() {
  std::vector<std::vector<core::MicroCluster>> shard_sets(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.state_mu);
    shard.clusters_at_merge->Set(
        static_cast<double>(shard.algo.clusters().size()));
    shard_sets[i] = shard.algo.clusters();
  }
  ShardMergeOptions merge_options;
  merge_options.dimensions = dimensions_;
  merge_options.dimension_threshold = options_.umicro.dimension_threshold;
  merge_options.global_budget = global_budget_;
  std::size_t reconciliations = 0;
  global_clusters_ = MergeShardClusterSets(std::move(shard_sets),
                                           merge_options, &reconciliations);
  for (std::size_t n = 0; n < reconciliations; ++n) {
    reconcile_metric_->Increment();
  }
}

void ShardedUMicro::MergeNow() {
  const obs::ScopedTimer timer(merge_micros_);
  if (util::FailpointRegistry::Instance().AnyArmed()) {
    const std::size_t stall = util::FailpointRegistry::Instance()
                                  .StallMillis("parallel.merge.stall");
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) EnqueueBatch(i);
  WaitDrained();
  RebuildGlobalView();
  merges_metric_->Increment();
  global_clusters_metric_->Set(static_cast<double>(global_clusters_.size()));
  points_since_merge_ = 0;
}

void ShardedUMicro::Flush() { MergeNow(); }

std::vector<stream::LabelHistogram> ShardedUMicro::ClusterLabelHistograms()
    const {
  // Logically read-only (the stream content is untouched) but the merged
  // view must be refreshed; the coordinator-thread contract makes the
  // cast safe.
  const_cast<ShardedUMicro*>(this)->MergeNow();
  std::vector<stream::LabelHistogram> histograms;
  histograms.reserve(global_clusters_.size());
  for (const auto& cluster : global_clusters_) {
    histograms.push_back(cluster.labels);
  }
  return histograms;
}

std::vector<std::vector<double>> ShardedUMicro::ClusterCentroids() const {
  const_cast<ShardedUMicro*>(this)->MergeNow();
  std::vector<std::vector<double>> centroids;
  centroids.reserve(global_clusters_.size());
  for (const auto& cluster : global_clusters_) {
    if (!cluster.ecf.empty()) centroids.push_back(cluster.ecf.Centroid());
  }
  return centroids;
}

core::Snapshot ShardedUMicro::GlobalSnapshot(double time) const {
  core::Snapshot snapshot;
  snapshot.time = time;
  snapshot.clusters.reserve(global_clusters_.size());
  for (const auto& cluster : global_clusters_) {
    core::MicroClusterState state;
    state.id = cluster.id;
    state.creation_time = cluster.creation_time;
    state.ecf = cluster.ecf;
    snapshot.clusters.push_back(std::move(state));
  }
  return snapshot;
}

ShardedPipelineState ShardedUMicro::ExportPipelineState() {
  // Drain + merge first: afterwards no point is in a queue or a worker,
  // so shard residuals + merged view + the partition cursor determine
  // all future behavior exactly.
  Flush();
  ShardedPipelineState state;
  state.shard_states.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->state_mu);
    state.shard_states.push_back(shard->algo.ExportState());
  }
  state.global_clusters = global_clusters_;
  state.points_ingested = points_ingested_;
  state.next_round_robin = next_round_robin_;
  return state;
}

bool ShardedUMicro::RestorePipelineState(const ShardedPipelineState& state) {
  if (state.shard_states.size() != shards_.size()) return false;
  for (const auto& shard_state : state.shard_states) {
    if (shard_state.welford.size() != dimensions_) return false;
    for (const auto& cluster : shard_state.clusters) {
      if (cluster.ecf.dimensions() != dimensions_) return false;
    }
  }
  for (const auto& cluster : state.global_clusters) {
    if (cluster.ecf.dimensions() != dimensions_) return false;
  }
  Flush();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->state_mu);
    shards_[i]->algo.RestoreState(state.shard_states[i]);
  }
  global_clusters_ = state.global_clusters;
  points_ingested_ = static_cast<std::size_t>(state.points_ingested);
  next_round_robin_ =
      static_cast<std::size_t>(state.next_round_robin) % options_.num_shards;
  points_since_merge_ = 0;
  global_clusters_metric_->Set(static_cast<double>(global_clusters_.size()));
  return true;
}

std::size_t ShardedUMicro::worker_restarts() const {
  return static_cast<std::size_t>(worker_restarts_metric_->value());
}

}  // namespace umicro::parallel
