// Exact additive merge of per-shard micro-cluster sets.
//
// The error-based cluster features are additive (Property 2.1), so any
// partition of a stream across shard-local UMicro instances can be
// combined into one global clustering without approximating the
// statistics. This is the single merge routine behind both
// consumers:
//
//   - ShardedUMicro::RebuildGlobalView (threads of one process), and
//   - dist::Aggregator (leaf processes of a merge tree, shipping their
//     summaries over sockets);
//
// which is what makes the distributed topology *bit-identical* to the
// in-process sharded run on the same partitioned input -- the two tiers
// cannot drift because they share this code.
//
// Shard-local cluster ids are tagged with the shard index in the high
// bits (shard 0 keeps its ids verbatim); when the concatenated sets
// exceed the global budget, near-duplicate clusters are reconciled by
// greedily uniting the most similar pairs under the paper's
// dimension-counting vote until the budget holds. Reconciliation merges
// are exact ECF additions: granularity changes, statistics never do.

#ifndef UMICRO_PARALLEL_SHARD_MERGE_H_
#define UMICRO_PARALLEL_SHARD_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cluster_feature.h"
#include "core/microcluster.h"

namespace umicro::parallel {

/// Shard index is tagged into the high bits of the global cluster id so
/// ids stay unique and stable across shards (shard 0 keeps its local ids
/// verbatim, which is what makes the 1-shard pipeline bit-identical to
/// the sequential algorithm).
inline constexpr unsigned kShardIdShift = 48;

/// Merge configuration (mirrors the ShardedUMicro knobs that feed it).
struct ShardMergeOptions {
  /// Stream dimensionality.
  std::size_t dimensions = 0;
  /// The `thresh` knob of the dimension-counting similarity used for
  /// reconciliation.
  double dimension_threshold = 3.0;
  /// Micro-cluster budget of the merged view (> 0).
  std::size_t global_budget = 100;
};

/// Dimension-counting similarity between two micro-clusters (the paper's
/// Section II-B vote, lifted from point-vs-cluster to cluster-vs-cluster):
/// each cluster's centroid is an uncertain observation whose per-dimension
/// error mass is EF2_j/n^2 (Lemma 2.1), so the expected squared centroid
/// gap along dimension j is (mu_a - mu_b)^2 + EF2a_j/na^2 + EF2b_j/nb^2,
/// and dimension j votes max{0, 1 - gap_j/(thresh*sigma_j^2)}.
/// `inv_scaled[j]` caches 1/(thresh*sigma_j^2) (0 for dead dimensions).
/// Also reports the plain squared centroid distance for tie-breaking.
double ClusterSimilarity(const core::ErrorClusterFeature& a,
                         const core::ErrorClusterFeature& b,
                         const std::vector<double>& inv_scaled,
                         double* centroid_dist2);

/// Merges `shard_sets` (one cluster list per shard, shard order) into a
/// single global view: tags ids by shard index, then reconciles
/// near-duplicates down to `options.global_budget` when over budget.
/// `reconciliations` (optional) receives the number of pairwise unions
/// performed.
std::vector<core::MicroCluster> MergeShardClusterSets(
    std::vector<std::vector<core::MicroCluster>> shard_sets,
    const ShardMergeOptions& options,
    std::size_t* reconciliations = nullptr);

}  // namespace umicro::parallel

#endif  // UMICRO_PARALLEL_SHARD_MERGE_H_
