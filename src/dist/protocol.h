// Payload schemas of the distributed merge tree's framed peer plane.
//
// net/frame.h moves opaque payloads; this header gives the three control
// payloads their (versioned, line-oriented, text) shape:
//
//   HELLO  "uhello 1 <leaf_id> <dimensions>"
//   DELTA  "udelta 1 <leaf_id> <seq> <points> [<primary>]\n"
//          + "ucheckpoint 2" text
//   ACK    "uack 1 <leaf_id> <seq>"
//
// A delta carries the leaf's complete engine state (state-replacement
// semantics): the aggregator keeps only the newest state per leaf and
// rebuilds its merged view from scratch, so applying the same delta
// twice -- or skipping straight to a newer one after a reconnect -- is
// idempotent by construction. `seq` is a per-leaf monotone counter; the
// aggregator ignores (but still acks) anything at or below the last
// applied sequence, which is what makes crash/replay re-sends harmless.
//
// All parsers treat input as hostile and return std::nullopt on any
// structural error (the codec caps inside io/state_io.h bound the
// embedded checkpoint itself).

#ifndef UMICRO_DIST_PROTOCOL_H_
#define UMICRO_DIST_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

namespace umicro::dist {

/// Version of the payload schemas below.
inline constexpr int kDistProtocolVersion = 1;

/// Leaf ids tag shard slots in the merged view, so they must be dense
/// [0, leaves); this cap just bounds hostile input.
inline constexpr std::uint64_t kMaxLeafId = 4096;

/// First frame of a leaf session: identity + stream dimensionality (the
/// aggregator refuses a dimension mismatch up front).
struct HelloMessage {
  std::uint64_t leaf_id = 0;
  std::uint64_t dimensions = 0;
};

/// One state-replacement delta.
struct DeltaMessage {
  std::uint64_t leaf_id = 0;
  /// Per-leaf monotone sequence number (1-based).
  std::uint64_t seq = 0;
  /// Points the leaf had ingested when the state was captured (drives
  /// the aggregator's progress accounting and merge-lag gauge).
  std::uint64_t points = 0;
  /// True when the leaf shipped this delta down its primary path (the
  /// endpoint it awaits an ACK from). A standby aggregator that sees a
  /// primary delta promotes itself: the leaves have failed over to it.
  /// Encoded as an optional trailing header field, so version-1 parsers
  /// (which ignore trailing tokens) interoperate; absent means primary.
  bool primary = true;
  /// The leaf's full engine state, in the "ucheckpoint 2" codec.
  std::string state_text;
};

/// Aggregator's receipt for one delta (applied or deduplicated).
struct AckMessage {
  std::uint64_t leaf_id = 0;
  std::uint64_t seq = 0;
};

std::string EncodeHello(const HelloMessage& hello);
std::optional<HelloMessage> ParseHello(const std::string& payload);

std::string EncodeDelta(const DeltaMessage& delta);
std::optional<DeltaMessage> ParseDelta(const std::string& payload);

std::string EncodeAck(const AckMessage& ack);
std::optional<AckMessage> ParseAck(const std::string& payload);

}  // namespace umicro::dist

#endif  // UMICRO_DIST_PROTOCOL_H_
