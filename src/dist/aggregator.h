// Aggregator: root of the distributed merge tree.
//
// One TCP listener serves both planes of the tier on a single port,
// sniffed by the first byte of each accepted connection:
//
//   0xD7 (frame magic)  -> framed leaf session: HELLO, then
//                          sequence-numbered state-replacement DELTAs,
//                          each answered with an ACK;
//   anything else       -> text query session: the connection is wrapped
//                          in a net::SocketStream and handed to the
//                          PR 5 serve::ServeLineProtocol loop unchanged.
//
// Delta application is state replacement keyed by leaf id: the newest
// state per leaf is kept, the merged global view is rebuilt through
// parallel::MergeShardClusterSets -- the *same* routine the in-process
// sharded engine uses -- and published to the SnapshotReadReplica the
// query broker reads. Because the merge is stateless over the current
// leaf states, re-applied or re-ordered deltas cannot corrupt anything:
// a delta with seq <= the last applied one is acked and ignored, and
// the final view depends only on each leaf's final state (which is what
// makes the multi-process topology bit-identical to a single-process
// sharded run over the same round-robin partitioning).
//
// Failover (docs/distributed.md): an aggregator started with
// `start_as_standby` merges warm-shipped deltas exactly like a primary
// (so its replica stays current) but reports role "standby" until a
// delta arrives with the primary flag set -- the leaves' signal that
// they have failed over to it -- at which point it promotes itself.
// With `stale_after_ms` > 0 the accept loop tracks per-leaf delta
// staleness and rebuilds the merged view *without* stale leaves: a
// degraded answer from the live part of the fleet, surfaced through
// the HEALTH verb and the STATS stale/degraded fields.
//
// Metrics: dist.agg.deltas_applied, dist.agg.deltas_duplicate,
// dist.agg.bytes, dist.agg.merges, dist.agg.merge_micros,
// dist.agg.merge_lag_points (max-min leaf progress), dist.agg.leaves,
// dist.agg.sessions, dist.agg.query_sessions, dist.agg.protocol_errors,
// dist.agg.promotions, dist.agg.leaf_stale.

#ifndef UMICRO_DIST_AGGREGATOR_H_
#define UMICRO_DIST_AGGREGATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/microcluster.h"
#include "core/snapshot.h"
#include "dist/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/query_broker.h"
#include "serve/replica.h"
#include "serve/server.h"

namespace umicro::dist {

/// Aggregator configuration.
struct AggregatorOptions {
  /// Bind address; port 0 picks an ephemeral port (re-read via port()).
  net::SocketAddress listen{"127.0.0.1", 0};
  /// Stream dimensionality (leaf HELLOs must match).
  std::size_t dimensions = 0;
  /// Reconciliation knob of the shard merge (must equal the leaves' /
  /// reference run's dimension_threshold for bit-identity).
  double dimension_threshold = 3.0;
  /// Micro-cluster budget of the merged view (must equal the reference
  /// sharded run's global budget).
  std::size_t global_budget = 100;
  /// Replica retention mirror + decay rate for horizon queries.
  core::SnapshotPolicy snapshot;
  double decay_lambda = 0.0;
  /// Query broker sizing.
  serve::QueryBrokerOptions broker;
  /// Per-read timeout of leaf sessions' poll slices and of query
  /// sessions' blocking reads (a silent query peer is hung up on after
  /// this long, and counted in dist.agg.protocol_errors).
  int io_timeout_ms = 60000;
  /// Start in the standby role: merge warm deltas, serve queries, but
  /// report "standby" until a primary-flagged delta promotes this node.
  bool start_as_standby = false;
  /// When > 0, a leaf whose newest delta is older than this (and that
  /// has not sent BYE) is considered stale and excluded from the merged
  /// view until it reports again. 0 disables liveness tracking.
  int stale_after_ms = 0;
};

/// Multi-leaf delta merge + query serving behind one listener.
class Aggregator {
 public:
  /// `metrics` (optional) receives the dist.agg.* instruments.
  explicit Aggregator(AggregatorOptions options,
                      obs::MetricsRegistry* metrics = nullptr);
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Binds, listens, and starts the accept loop. False on bind failure.
  bool Start();

  /// Closes the listener and every live session, then joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (after Start()).
  std::uint16_t port() const { return port_; }

  /// Sum of the newest `points` figure over all known leaves.
  std::uint64_t total_points() const;

  /// Blocks until total_points() >= n; false on timeout or Stop().
  bool WaitForPoints(std::uint64_t n, int timeout_ms);

  /// Copy of the current merged global view.
  std::vector<core::MicroCluster> MergedClusters() const;

  /// Newest stream timestamp across leaf states (the merged view's
  /// publication time).
  double merged_time() const;

  /// Leaves that have applied at least one delta.
  std::size_t leaves_known() const;

  /// Deltas applied (non-duplicate) so far.
  std::uint64_t deltas_applied() const;

  /// "primary" or "standby" (promotion is one-way).
  std::string role() const {
    return primary_.load(std::memory_order_relaxed) ? "primary" : "standby";
  }

  /// True once this node is (or was promoted to) the primary.
  bool is_primary() const {
    return primary_.load(std::memory_order_relaxed);
  }

  /// Leaves currently excluded from the merged view as stale.
  std::size_t stale_leaves() const;

  /// True when the merged view omits at least one stale leaf.
  bool degraded() const;

  /// Control-plane snapshot behind the ROLE/HEALTH serve verbs.
  serve::ServeStatus StatusSnapshot() const;

  /// The query broker (same answers in-process callers would get).
  serve::QueryBroker& broker() { return *broker_; }

 private:
  /// One accepted connection's lifetime, owned by the session table so
  /// Stop() can shut the socket down under a live session thread.
  struct Session {
    net::Socket socket;
    std::thread thread;
    /// Set by the session thread on exit; the accept loop joins and
    /// frees finished sessions so long-lived aggregators don't
    /// accumulate dead sockets across leaf reconnects.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  /// Joins and frees sessions whose threads have finished.
  void ReapFinishedSessions();
  void RunSession(Session* session);
  /// Framed leaf plane (first byte was the frame magic).
  void LeafSession(net::Socket& socket);
  /// Text query plane.
  void QuerySession(net::Socket& socket);
  /// Applies one delta (or dedups it); true when an ACK should be sent.
  bool ApplyDelta(const DeltaMessage& delta);
  /// Records a leaf's orderly BYE (an exhausted leaf is never stale).
  void MarkLeafFinished(std::uint64_t leaf_id);
  /// Re-evaluates per-leaf staleness from the accept loop; rebuilds the
  /// merged view when membership changed. No-op unless stale_after_ms.
  void RefreshLiveness();
  /// Rebuilds merged view + replica publication. Caller holds state_mu_.
  void RebuildMergedViewLocked();

  const AggregatorOptions options_;

  obs::Counter* deltas_applied_metric_ = nullptr;
  obs::Counter* deltas_duplicate_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Counter* merges_metric_ = nullptr;
  obs::Histogram* merge_micros_ = nullptr;
  obs::Gauge* merge_lag_gauge_ = nullptr;
  obs::Gauge* leaves_gauge_ = nullptr;
  obs::Counter* sessions_metric_ = nullptr;
  obs::Counter* query_sessions_metric_ = nullptr;
  obs::Counter* protocol_errors_metric_ = nullptr;
  obs::Counter* promotions_metric_ = nullptr;
  obs::Gauge* stale_gauge_ = nullptr;

  serve::SnapshotReadReplica replica_;
  std::unique_ptr<serve::QueryBroker> broker_;

  std::optional<net::TcpListener> listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  /// Guards the session table (accept thread inserts, Stop() walks).
  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;

  /// Newest state of one leaf.
  struct LeafEntry {
    std::uint64_t seq = 0;
    std::uint64_t points = 0;
    double last_timestamp = 0.0;
    std::vector<core::MicroCluster> clusters;
    /// When the newest delta arrived (drives staleness).
    std::chrono::steady_clock::time_point last_delta{};
    /// Leaf sent BYE: its stream is complete, never stale.
    bool finished = false;
    /// Currently excluded from the merged view as stale.
    bool stale = false;
  };

  /// Promotion flag: standby -> primary, one-way.
  std::atomic<bool> primary_{true};

  /// Guards everything below; also serializes replica publications
  /// (SnapshotSink requires a single logical publisher).
  mutable std::mutex state_mu_;
  std::condition_variable points_cv_;
  std::map<std::uint64_t, LeafEntry> leaves_;
  std::vector<core::MicroCluster> merged_;
  double merged_time_ = 0.0;
  std::uint64_t deltas_applied_ = 0;
  std::size_t stale_count_ = 0;
};

}  // namespace umicro::dist

#endif  // UMICRO_DIST_AGGREGATOR_H_
