#include "dist/leaf.h"

#include <algorithm>
#include <utility>

#include "dist/protocol.h"
#include "net/frame.h"
#include "obs/scoped_timer.h"

namespace umicro::dist {

LeafShipper::LeafShipper(net::SocketAddress aggregator,
                         LeafShipperOptions options,
                         obs::MetricsRegistry* metrics)
    : options_(std::move(options)) {
  endpoints_.push_back(
      std::make_unique<Endpoint>(std::move(aggregator), options_.backoff));
  for (const net::SocketAddress& standby : options_.standbys) {
    endpoints_.push_back(
        std::make_unique<Endpoint>(standby, options_.backoff));
  }
  order_.resize(endpoints_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (metrics != nullptr) {
    deltas_metric_ = &metrics->GetCounter("dist.leaf.deltas");
    bytes_metric_ = &metrics->GetCounter("dist.leaf.bytes");
    acks_metric_ = &metrics->GetCounter("dist.leaf.acks");
    resends_metric_ = &metrics->GetCounter("dist.leaf.resends");
    reconnects_metric_ = &metrics->GetCounter("dist.leaf.reconnects");
    ship_micros_ = &metrics->GetHistogram("dist.leaf.ship_micros");
    backoff_gauge_ = &metrics->GetGauge("dist.leaf.backoff_ms");
    exhausted_metric_ =
        &metrics->GetCounter("dist.leaf.attempts_exhausted");
    promotions_metric_ = &metrics->GetCounter("dist.leaf.promotions");
  }
}

LeafShipper::~LeafShipper() { Stop(); }

net::SocketAddress LeafShipper::current_primary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_[order_.front()]->address;
}

bool LeafShipper::InterruptibleSleep(int ms) {
  std::unique_lock<std::mutex> lock(sleep_mu_);
  sleep_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                     [this] { return stop_.load(); });
  return !stop_.load();
}

void LeafShipper::TeardownEndpoint(Endpoint& endpoint, bool gate) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    endpoint.socket.ShutdownBoth();  // unblocks a writer stuck in send
    if (endpoint.sender != nullptr) endpoint.sender->Stop();
    endpoint.sender.reset();
    endpoint.socket.Close();
  }
  if (gate) {
    const int delay = endpoint.backoff.NextDelayMs();
    endpoint.retry_after = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(delay);
    if (backoff_gauge_ != nullptr) {
      backoff_gauge_->Set(static_cast<double>(delay));
    }
  }
}

bool LeafShipper::EndpointReady(Endpoint& endpoint) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (endpoint.socket.valid()) return true;
  }
  if (std::chrono::steady_clock::now() < endpoint.retry_after) return false;
  std::optional<net::Socket> socket =
      net::TcpConnect(endpoint.address, options_.connect_timeout_ms);
  if (socket.has_value()) {
    HelloMessage hello;
    hello.leaf_id = options_.leaf_id;
    hello.dimensions = options_.dimensions;
    const std::string frame =
        net::EncodeFrame(net::FrameType::kHello, EncodeHello(hello));
    {
      std::lock_guard<std::mutex> lock(mu_);
      endpoint.socket = std::move(*socket);
      endpoint.sender =
          std::make_unique<net::PeerSender>(&endpoint.socket,
                                            options_.sender);
    }
    if (endpoint.sender->Enqueue(frame) && endpoint.sender->Drain()) {
      endpoint.backoff.Reset();
      endpoint.retry_after = {};
      connects_.fetch_add(1, std::memory_order_relaxed);
      if (reconnects_metric_ != nullptr &&
          connects_.load(std::memory_order_relaxed) > 1) {
        reconnects_metric_->Increment();
      }
      return true;
    }
  }
  TeardownEndpoint(endpoint, /*gate=*/true);
  return false;
}

bool LeafShipper::AwaitAck(Endpoint& endpoint, std::uint64_t seq) {
  // Any hiccup (timeout, corruption, EOF) fails the wait; the caller
  // drops the link and re-sends. A stale ACK from a previous attempt of
  // an *earlier* delta is skipped, not fatal: acks arrive in order, so
  // the matching one is still behind it.
  net::FrameDecoder decoder;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.ack_timeout_ms);
  while (!stop_.load()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;  // straggler
    const int remaining_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    char buffer[4096];
    bool timed_out = false;
    const long n = endpoint.socket.RecvSome(buffer, sizeof(buffer),
                                            std::min(remaining_ms, 200),
                                            &timed_out);
    if (n < 0 || (n == 0 && !timed_out)) return false;
    if (n > 0) decoder.Feed(buffer, static_cast<std::size_t>(n));
    if (decoder.corrupted()) return false;
    while (std::optional<net::Frame> reply = decoder.Next()) {
      if (reply->type != net::FrameType::kAck) continue;
      const std::optional<AckMessage> ack = ParseAck(reply->payload);
      if (ack.has_value() && ack->leaf_id == options_.leaf_id &&
          ack->seq == seq) {
        return true;
      }
    }
  }
  return false;
}

void LeafShipper::PromoteToFront(std::size_t pos) {
  if (pos == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t index = order_[pos];
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
    order_.insert(order_.begin(), index);
  }
  promotions_.fetch_add(1, std::memory_order_relaxed);
  if (promotions_metric_ != nullptr) promotions_metric_->Increment();
}

void LeafShipper::WarmShipStandbys(const std::string& frame) {
  std::vector<std::size_t> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    order = order_;
  }
  for (std::size_t pos = 1; pos < order.size() && !stop_.load(); ++pos) {
    Endpoint& endpoint = *endpoints_[order[pos]];
    if (!EndpointReady(endpoint)) continue;
    // Fire-and-forget: the standby's ACKs sit unread until a promotion
    // makes it the primary path (AwaitAck then skips the stale ones).
    if (!endpoint.sender->Enqueue(frame) || !endpoint.sender->Drain()) {
      TeardownEndpoint(endpoint, /*gate=*/true);
      continue;
    }
    if (bytes_metric_ != nullptr) bytes_metric_->Increment(frame.size());
  }
}

int LeafShipper::NextRetryDelayMs() const {
  const auto now = std::chrono::steady_clock::now();
  long long earliest = options_.backoff.max_ms;
  for (const auto& endpoint : endpoints_) {
    const long long remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            endpoint->retry_after - now)
            .count();
    earliest = std::min(earliest, std::max(1ll, remaining));
  }
  return static_cast<int>(std::max(1ll, earliest));
}

bool LeafShipper::ShipState(std::uint64_t seq, std::uint64_t points,
                            const std::string& state_text) {
  DeltaMessage delta;
  delta.leaf_id = options_.leaf_id;
  delta.seq = seq;
  delta.points = points;
  delta.primary = true;
  delta.state_text = state_text;
  const std::string primary_frame =
      net::EncodeFrame(net::FrameType::kDelta, EncodeDelta(delta));
  if (primary_frame.empty()) return false;  // state larger than a frame
  delta.primary = false;
  const std::string standby_frame =
      net::EncodeFrame(net::FrameType::kDelta, EncodeDelta(delta));

  const obs::ScopedTimer timer(ship_micros_);
  std::size_t send_attempts = 0;
  while (!stop_.load()) {
    if (options_.max_attempts > 0 &&
        send_attempts >= options_.max_attempts) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      if (exhausted_metric_ != nullptr) exhausted_metric_->Increment();
      return false;
    }
    std::vector<std::size_t> order;
    {
      std::lock_guard<std::mutex> lock(mu_);
      order = order_;
    }
    bool sent = false;
    for (std::size_t pos = 0; pos < order.size() && !stop_.load(); ++pos) {
      if (options_.max_attempts > 0 &&
          send_attempts >= options_.max_attempts) {
        break;
      }
      Endpoint& endpoint = *endpoints_[order[pos]];
      if (!EndpointReady(endpoint)) continue;
      ++send_attempts;
      sent = true;
      if (send_attempts > 1) {
        resends_.fetch_add(1, std::memory_order_relaxed);
        if (resends_metric_ != nullptr) resends_metric_->Increment();
      }
      if (!endpoint.sender->Enqueue(primary_frame) ||
          !endpoint.sender->Drain()) {
        TeardownEndpoint(endpoint, /*gate=*/false);
        continue;
      }
      if (deltas_metric_ != nullptr) deltas_metric_->Increment();
      if (bytes_metric_ != nullptr) {
        bytes_metric_->Increment(primary_frame.size());
      }
      if (AwaitAck(endpoint, seq)) {
        acked_.fetch_add(1, std::memory_order_relaxed);
        if (acks_metric_ != nullptr) acks_metric_->Increment();
        PromoteToFront(pos);
        WarmShipStandbys(standby_frame);
        return true;
      }
      // Straggler or broken link: fail over to the next endpoint in
      // order right away (the promotion happens when one acks).
      TeardownEndpoint(endpoint, /*gate=*/false);
    }
    if (!sent) {
      // Every endpoint is down and gated: sleep until the earliest
      // backoff gate opens (the single-endpoint reconnect cadence).
      if (!InterruptibleSleep(NextRetryDelayMs())) return false;
    }
  }
  return false;
}

void LeafShipper::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& endpoint : endpoints_) {
    if (endpoint->sender != nullptr && endpoint->socket.valid()) {
      endpoint->sender->Enqueue(
          net::EncodeFrame(net::FrameType::kBye, ""));
      endpoint->sender->Drain();
      endpoint->sender->Stop();
    }
    endpoint->sender.reset();
    endpoint->socket.Close();
  }
}

void LeafShipper::Stop() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  // Shutdown (not close) unblocks the shipping thread's recv/send
  // without yanking the fd out from under it; the shipping thread then
  // observes stop_ and closes the sockets itself via TeardownEndpoint.
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& endpoint : endpoints_) endpoint->socket.ShutdownBoth();
}

}  // namespace umicro::dist
