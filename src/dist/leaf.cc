#include "dist/leaf.h"

#include <chrono>
#include <utility>

#include "dist/protocol.h"
#include "net/frame.h"
#include "obs/scoped_timer.h"

namespace umicro::dist {

LeafShipper::LeafShipper(net::SocketAddress aggregator,
                         LeafShipperOptions options,
                         obs::MetricsRegistry* metrics)
    : aggregator_(std::move(aggregator)),
      options_(options),
      backoff_(options.backoff) {
  if (metrics != nullptr) {
    deltas_metric_ = &metrics->GetCounter("dist.leaf.deltas");
    bytes_metric_ = &metrics->GetCounter("dist.leaf.bytes");
    acks_metric_ = &metrics->GetCounter("dist.leaf.acks");
    resends_metric_ = &metrics->GetCounter("dist.leaf.resends");
    reconnects_metric_ = &metrics->GetCounter("dist.leaf.reconnects");
    ship_micros_ = &metrics->GetHistogram("dist.leaf.ship_micros");
  }
}

LeafShipper::~LeafShipper() { Stop(); }

bool LeafShipper::InterruptibleSleep(int ms) {
  std::unique_lock<std::mutex> lock(sleep_mu_);
  sleep_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                     [this] { return stop_.load(); });
  return !stop_.load();
}

bool LeafShipper::EnsureConnected() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (socket_.valid()) return true;
  }
  while (!stop_.load()) {
    std::optional<net::Socket> socket =
        net::TcpConnect(aggregator_, options_.connect_timeout_ms);
    if (!socket.has_value()) {
      if (!InterruptibleSleep(backoff_.NextDelayMs())) return false;
      continue;
    }
    HelloMessage hello;
    hello.leaf_id = options_.leaf_id;
    hello.dimensions = options_.dimensions;
    const std::string frame =
        net::EncodeFrame(net::FrameType::kHello, EncodeHello(hello));
    {
      std::lock_guard<std::mutex> lock(mu_);
      socket_ = std::move(*socket);
      sender_ = std::make_unique<net::PeerSender>(&socket_, options_.sender);
    }
    if (!sender_->Enqueue(frame) || !sender_->Drain()) {
      DropConnection();
      if (!InterruptibleSleep(backoff_.NextDelayMs())) return false;
      continue;
    }
    backoff_.Reset();
    connects_.fetch_add(1, std::memory_order_relaxed);
    if (reconnects_metric_ != nullptr &&
        connects_.load(std::memory_order_relaxed) > 1) {
      reconnects_metric_->Increment();
    }
    return true;
  }
  return false;
}

void LeafShipper::DropConnection() {
  std::lock_guard<std::mutex> lock(mu_);
  socket_.ShutdownBoth();  // unblocks a writer stuck in send first
  if (sender_ != nullptr) sender_->Stop();
  sender_.reset();
  socket_.Close();
}

bool LeafShipper::ShipState(std::uint64_t seq, std::uint64_t points,
                            const std::string& state_text) {
  DeltaMessage delta;
  delta.leaf_id = options_.leaf_id;
  delta.seq = seq;
  delta.points = points;
  delta.state_text = state_text;
  const std::string frame =
      net::EncodeFrame(net::FrameType::kDelta, EncodeDelta(delta));
  if (frame.empty()) return false;  // state larger than a frame allows

  const obs::ScopedTimer timer(ship_micros_);
  std::size_t attempts = 0;
  bool first_attempt = true;
  while (!stop_.load()) {
    if (options_.max_attempts > 0 && attempts >= options_.max_attempts) {
      return false;
    }
    ++attempts;
    if (!first_attempt) {
      resends_.fetch_add(1, std::memory_order_relaxed);
      if (resends_metric_ != nullptr) resends_metric_->Increment();
    }
    first_attempt = false;
    if (!EnsureConnected()) return false;
    if (!sender_->Enqueue(frame) || !sender_->Drain()) {
      DropConnection();
      continue;
    }
    if (deltas_metric_ != nullptr) deltas_metric_->Increment();
    if (bytes_metric_ != nullptr) bytes_metric_->Increment(frame.size());

    // Wait for the matching ACK; any hiccup (timeout, corruption, EOF)
    // drops the link and re-sends. A stale ACK from a previous attempt
    // of an *earlier* delta is skipped, not fatal: acks arrive in
    // order, so the matching one is still behind it.
    net::FrameDecoder decoder;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.ack_timeout_ms);
    bool acked = false;
    bool link_ok = true;
    while (!acked && link_ok && !stop_.load()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        link_ok = false;  // straggler: re-send over a fresh connection
        break;
      }
      const int remaining_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count());
      char buffer[4096];
      bool timed_out = false;
      const long n = socket_.RecvSome(buffer, sizeof(buffer),
                                      std::min(remaining_ms, 200),
                                      &timed_out);
      if (n < 0 || (n == 0 && !timed_out)) {
        link_ok = false;
        break;
      }
      if (n > 0) decoder.Feed(buffer, static_cast<std::size_t>(n));
      if (decoder.corrupted()) {
        link_ok = false;
        break;
      }
      while (std::optional<net::Frame> reply = decoder.Next()) {
        if (reply->type != net::FrameType::kAck) continue;
        const std::optional<AckMessage> ack = ParseAck(reply->payload);
        if (ack.has_value() && ack->leaf_id == options_.leaf_id &&
            ack->seq == seq) {
          acked = true;
          break;
        }
      }
    }
    if (acked) {
      acked_.fetch_add(1, std::memory_order_relaxed);
      if (acks_metric_ != nullptr) acks_metric_->Increment();
      return true;
    }
    DropConnection();
  }
  return false;
}

void LeafShipper::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sender_ != nullptr && socket_.valid()) {
    sender_->Enqueue(net::EncodeFrame(net::FrameType::kBye, ""));
    sender_->Drain();
    sender_->Stop();
  }
  sender_.reset();
  socket_.Close();
}

void LeafShipper::Stop() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  // Shutdown (not close) unblocks the shipping thread's recv/send
  // without yanking the fd out from under it; the shipping thread then
  // observes stop_ and closes the socket itself via DropConnection().
  std::lock_guard<std::mutex> lock(mu_);
  socket_.ShutdownBoth();
}

}  // namespace umicro::dist
