// LeafShipper: the leaf side of the merge tree's delta plane.
//
// A leaf ingester runs an ordinary engine on its substream and, every
// `--delta-every` points, hands the engine's exported state here.
// ShipState() is synchronous and at-least-once: it (re)connects to the
// aggregator with capped exponential backoff, sends HELLO + the framed
// delta through a net::PeerSender, and waits for the matching ACK. A
// straggling aggregator (no ACK within `ack_timeout_ms`) or a dead link
// triggers a reconnect and a re-send of the same delta; replacement
// semantics plus the sequence number make every re-send idempotent on
// the aggregator, so at-least-once delivery yields exactly-once
// application.
//
// Metrics (in the registry passed at construction): dist.leaf.deltas,
// dist.leaf.bytes, dist.leaf.acks, dist.leaf.resends,
// dist.leaf.reconnects, dist.leaf.ship_micros.

#ifndef UMICRO_DIST_LEAF_H_
#define UMICRO_DIST_LEAF_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/peer.h"
#include "net/reconnect.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace umicro::dist {

/// Shipper configuration.
struct LeafShipperOptions {
  /// This leaf's identity = its shard slot in the merged view (dense,
  /// starting at 0).
  std::uint64_t leaf_id = 0;
  /// Stream dimensionality (announced in HELLO; the aggregator refuses
  /// a mismatch).
  std::size_t dimensions = 0;
  /// Straggler timeout: no ACK within this window tears the link down
  /// and re-sends the delta over a fresh connection.
  int ack_timeout_ms = 5000;
  /// Per-connect timeout.
  int connect_timeout_ms = 2000;
  /// Send attempts per delta; 0 retries until Stop().
  std::size_t max_attempts = 0;
  /// Reconnect backoff ladder.
  net::BackoffOptions backoff;
  /// Outgoing queue bounds.
  net::PeerSenderOptions sender;
};

/// Synchronous, at-least-once delta shipper over one aggregator link.
class LeafShipper {
 public:
  /// `metrics` (optional) receives the dist.leaf.* instruments.
  LeafShipper(net::SocketAddress aggregator, LeafShipperOptions options,
              obs::MetricsRegistry* metrics = nullptr);
  ~LeafShipper();

  LeafShipper(const LeafShipper&) = delete;
  LeafShipper& operator=(const LeafShipper&) = delete;

  /// Ships the state as delta `seq` (per-leaf monotone, 1-based) and
  /// blocks until the aggregator acks it. Returns false only when
  /// stopped or `max_attempts` is exhausted.
  bool ShipState(std::uint64_t seq, std::uint64_t points,
                 const std::string& state_text);

  /// Sends an orderly BYE (best effort) and closes the link.
  void Finish();

  /// Aborts any in-flight ShipState (it returns false) and closes.
  void Stop();

  /// Deltas acked so far.
  std::uint64_t deltas_acked() const {
    return acked_.load(std::memory_order_relaxed);
  }
  /// Successful (re)connections so far.
  std::uint64_t connects() const {
    return connects_.load(std::memory_order_relaxed);
  }
  /// Straggler-timeout re-sends so far.
  std::uint64_t resends() const {
    return resends_.load(std::memory_order_relaxed);
  }

 private:
  /// Connects (with backoff sleeps between failures) and sends HELLO.
  /// False when stopped.
  bool EnsureConnected();
  /// Tears the current link down (next ShipState reconnects).
  void DropConnection();
  /// Sleeps `ms`, waking early on Stop(); false when stopped.
  bool InterruptibleSleep(int ms);

  const net::SocketAddress aggregator_;
  const LeafShipperOptions options_;

  obs::Counter* deltas_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Counter* acks_metric_ = nullptr;
  obs::Counter* resends_metric_ = nullptr;
  obs::Counter* reconnects_metric_ = nullptr;
  obs::Histogram* ship_micros_ = nullptr;

  std::mutex mu_;  // guards socket_/sender_ teardown vs Stop()
  net::Socket socket_;
  std::unique_ptr<net::PeerSender> sender_;
  net::Backoff backoff_;

  std::atomic<bool> stop_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> resends_{0};
};

}  // namespace umicro::dist

#endif  // UMICRO_DIST_LEAF_H_
