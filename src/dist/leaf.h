// LeafShipper: the leaf side of the merge tree's delta plane.
//
// A leaf ingester runs an ordinary engine on its substream and, every
// `--delta-every` points, hands the engine's exported state here.
// ShipState() is synchronous and at-least-once: it (re)connects to an
// aggregator with capped exponential backoff, sends HELLO + the framed
// delta through a net::PeerSender, and waits for the matching ACK. A
// straggling aggregator (no ACK within `ack_timeout_ms`) or a dead link
// triggers a reconnect and a re-send of the same delta; replacement
// semantics plus the sequence number make every re-send idempotent on
// the aggregator, so at-least-once delivery yields exactly-once
// application.
//
// Failover (docs/distributed.md): the shipper holds an ordered endpoint
// list -- the primary aggregator first, then `standbys`. Each delta is
// acked by the first endpoint that answers (tried in order), and after
// the ack it is warm-shipped best-effort to the remaining endpoints so
// a standby converges to the same merged view. When the head endpoint
// dies, the first standby that acks is promoted to the front of the
// shipping order; the delta it acked carries the primary flag, which
// tells a standby aggregator to promote itself. State replacement makes
// any warm-ship gap harmless: the next acked delta replaces everything.
//
// Metrics (in the registry passed at construction): dist.leaf.deltas,
// dist.leaf.bytes, dist.leaf.acks, dist.leaf.resends,
// dist.leaf.reconnects, dist.leaf.ship_micros, dist.leaf.backoff_ms,
// dist.leaf.attempts_exhausted, dist.leaf.promotions.

#ifndef UMICRO_DIST_LEAF_H_
#define UMICRO_DIST_LEAF_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/peer.h"
#include "net/reconnect.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace umicro::dist {

/// Shipper configuration.
struct LeafShipperOptions {
  /// This leaf's identity = its shard slot in the merged view (dense,
  /// starting at 0).
  std::uint64_t leaf_id = 0;
  /// Stream dimensionality (announced in HELLO; the aggregator refuses
  /// a mismatch).
  std::size_t dimensions = 0;
  /// Straggler timeout: no ACK within this window tears the link down
  /// and re-sends the delta over a fresh connection.
  int ack_timeout_ms = 5000;
  /// Per-connect timeout.
  int connect_timeout_ms = 2000;
  /// Send attempts per delta; 0 retries until Stop().
  std::size_t max_attempts = 0;
  /// Reconnect backoff ladder (per endpoint).
  net::BackoffOptions backoff;
  /// Outgoing queue bounds.
  net::PeerSenderOptions sender;
  /// Standby aggregator endpoints, tried in order after the primary.
  std::vector<net::SocketAddress> standbys;
};

/// Synchronous, at-least-once delta shipper over a primary + standby
/// aggregator endpoint list.
class LeafShipper {
 public:
  /// `metrics` (optional) receives the dist.leaf.* instruments.
  LeafShipper(net::SocketAddress aggregator, LeafShipperOptions options,
              obs::MetricsRegistry* metrics = nullptr);
  ~LeafShipper();

  LeafShipper(const LeafShipper&) = delete;
  LeafShipper& operator=(const LeafShipper&) = delete;

  /// Ships the state as delta `seq` (per-leaf monotone, 1-based) and
  /// blocks until some endpoint acks it. Returns false only when
  /// stopped or `max_attempts` is exhausted.
  bool ShipState(std::uint64_t seq, std::uint64_t points,
                 const std::string& state_text);

  /// Sends an orderly BYE (best effort) to every connected endpoint and
  /// closes the links.
  void Finish();

  /// Aborts any in-flight ShipState (it returns false) and closes.
  void Stop();

  /// Deltas acked so far.
  std::uint64_t deltas_acked() const {
    return acked_.load(std::memory_order_relaxed);
  }
  /// Successful (re)connections so far, over all endpoints.
  std::uint64_t connects() const {
    return connects_.load(std::memory_order_relaxed);
  }
  /// Straggler-timeout re-sends so far.
  std::uint64_t resends() const {
    return resends_.load(std::memory_order_relaxed);
  }
  /// Shipping-order rotations (a standby took over the front).
  std::uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  /// ShipState calls that gave up after `max_attempts`.
  std::uint64_t attempts_exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  /// Address currently first in the shipping order.
  net::SocketAddress current_primary() const;

 private:
  /// One aggregator endpoint's link state. Sockets/senders are guarded
  /// by mu_ for creation/teardown; only the shipping thread reads them.
  struct Endpoint {
    Endpoint(net::SocketAddress a, net::BackoffOptions b)
        : address(std::move(a)), backoff(b) {}
    net::SocketAddress address;
    net::Socket socket;
    std::unique_ptr<net::PeerSender> sender;
    net::Backoff backoff;
    /// Connect attempts are gated until this instant after a failure.
    std::chrono::steady_clock::time_point retry_after{};
  };

  /// True when the endpoint has a live link (connecting + HELLO now if
  /// its backoff gate allows). Never sleeps.
  bool EndpointReady(Endpoint& endpoint);
  /// Tears the endpoint's link down; `gate` additionally arms its
  /// backoff gate so reconnect probes don't hot-loop.
  void TeardownEndpoint(Endpoint& endpoint, bool gate);
  /// Reads frames off the endpoint until the matching ACK, a hiccup, or
  /// the ack deadline.
  bool AwaitAck(Endpoint& endpoint, std::uint64_t seq);
  /// Moves order_[pos] to the front of the shipping order.
  void PromoteToFront(std::size_t pos);
  /// Best-effort delivery of the standby-flagged frame to every
  /// endpoint behind the front one.
  void WarmShipStandbys(const std::string& frame);
  /// Milliseconds until the earliest endpoint's backoff gate opens.
  int NextRetryDelayMs() const;
  /// Sleeps `ms`, waking early on Stop(); false when stopped.
  bool InterruptibleSleep(int ms);

  const LeafShipperOptions options_;

  obs::Counter* deltas_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Counter* acks_metric_ = nullptr;
  obs::Counter* resends_metric_ = nullptr;
  obs::Counter* reconnects_metric_ = nullptr;
  obs::Histogram* ship_micros_ = nullptr;
  obs::Gauge* backoff_gauge_ = nullptr;
  obs::Counter* exhausted_metric_ = nullptr;
  obs::Counter* promotions_metric_ = nullptr;

  /// Guards endpoint socket/sender creation + teardown and order_
  /// against Stop()/accessors on other threads.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// Shipping order; order_[0] is the current primary path.
  std::vector<std::size_t> order_;

  std::atomic<bool> stop_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> resends_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

}  // namespace umicro::dist

#endif  // UMICRO_DIST_LEAF_H_
