#include "dist/protocol.h"

#include <sstream>

namespace umicro::dist {

namespace {

/// Parses "<keyword> <version> ..." and returns the stream positioned
/// after the version; false on keyword/version mismatch.
bool ReadHeader(std::istringstream& in, const std::string& keyword) {
  std::string word;
  int version = 0;
  return (in >> word >> version) && word == keyword &&
         version == kDistProtocolVersion;
}

}  // namespace

std::string EncodeHello(const HelloMessage& hello) {
  std::ostringstream out;
  out << "uhello " << kDistProtocolVersion << ' ' << hello.leaf_id << ' '
      << hello.dimensions;
  return out.str();
}

std::optional<HelloMessage> ParseHello(const std::string& payload) {
  std::istringstream in(payload);
  if (!ReadHeader(in, "uhello")) return std::nullopt;
  HelloMessage hello;
  if (!(in >> hello.leaf_id >> hello.dimensions)) return std::nullopt;
  if (hello.leaf_id > kMaxLeafId) return std::nullopt;
  return hello;
}

std::string EncodeDelta(const DeltaMessage& delta) {
  std::ostringstream out;
  out << "udelta " << kDistProtocolVersion << ' ' << delta.leaf_id << ' '
      << delta.seq << ' ' << delta.points << ' ' << (delta.primary ? 1 : 0)
      << "\n";
  out << delta.state_text;
  return out.str();
}

std::optional<DeltaMessage> ParseDelta(const std::string& payload) {
  const std::size_t newline = payload.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  std::istringstream in(payload.substr(0, newline));
  if (!ReadHeader(in, "udelta")) return std::nullopt;
  DeltaMessage delta;
  if (!(in >> delta.leaf_id >> delta.seq >> delta.points)) {
    return std::nullopt;
  }
  // Optional trailing primary flag (absent in pre-failover senders).
  int primary = 1;
  if (in >> primary) {
    if (primary != 0 && primary != 1) return std::nullopt;
    delta.primary = primary != 0;
  }
  if (delta.leaf_id > kMaxLeafId || delta.seq == 0) return std::nullopt;
  delta.state_text = payload.substr(newline + 1);
  if (delta.state_text.empty()) return std::nullopt;
  return delta;
}

std::string EncodeAck(const AckMessage& ack) {
  std::ostringstream out;
  out << "uack " << kDistProtocolVersion << ' ' << ack.leaf_id << ' '
      << ack.seq;
  return out.str();
}

std::optional<AckMessage> ParseAck(const std::string& payload) {
  std::istringstream in(payload);
  if (!ReadHeader(in, "uack")) return std::nullopt;
  AckMessage ack;
  if (!(in >> ack.leaf_id >> ack.seq)) return std::nullopt;
  return ack;
}

}  // namespace umicro::dist
