#include "dist/aggregator.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "io/state_io.h"
#include "net/frame.h"
#include "net/socket_stream.h"
#include "obs/scoped_timer.h"
#include "parallel/shard_merge.h"
#include "serve/server.h"

namespace umicro::dist {

namespace {

/// Poll slice for stop-flag checks inside blocking session reads.
constexpr int kPollSliceMs = 200;
/// Socket send timeout for ACK frames.
constexpr int kAckSendTimeoutMs = 10000;

}  // namespace

Aggregator::Aggregator(AggregatorOptions options,
                       obs::MetricsRegistry* metrics)
    : options_(std::move(options)),
      replica_(options_.snapshot, options_.decay_lambda) {
  primary_.store(!options_.start_as_standby, std::memory_order_relaxed);
  broker_ = std::make_unique<serve::QueryBroker>(&replica_, options_.broker,
                                                 metrics);
  if (metrics != nullptr) {
    deltas_applied_metric_ = &metrics->GetCounter("dist.agg.deltas_applied");
    deltas_duplicate_metric_ =
        &metrics->GetCounter("dist.agg.deltas_duplicate");
    bytes_metric_ = &metrics->GetCounter("dist.agg.bytes");
    merges_metric_ = &metrics->GetCounter("dist.agg.merges");
    merge_micros_ = &metrics->GetHistogram("dist.agg.merge_micros");
    merge_lag_gauge_ = &metrics->GetGauge("dist.agg.merge_lag_points");
    leaves_gauge_ = &metrics->GetGauge("dist.agg.leaves");
    sessions_metric_ = &metrics->GetCounter("dist.agg.sessions");
    query_sessions_metric_ = &metrics->GetCounter("dist.agg.query_sessions");
    protocol_errors_metric_ =
        &metrics->GetCounter("dist.agg.protocol_errors");
    promotions_metric_ = &metrics->GetCounter("dist.agg.promotions");
    stale_gauge_ = &metrics->GetGauge("dist.agg.leaf_stale");
  }
}

Aggregator::~Aggregator() { Stop(); }

bool Aggregator::Start() {
  listener_ = net::TcpListener::Listen(options_.listen);
  if (!listener_.has_value()) return false;
  port_ = listener_->port();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void Aggregator::Stop() {
  if (stop_.exchange(true)) {
    // Second Stop(): everything below already ran or is running.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Shutdown (fd-read-only) wakes the accept poll; Close must wait
  // until the accept thread is gone or it races the fd read in Accept.
  if (listener_.has_value()) listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listener_.has_value()) listener_->Close();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& session : sessions_) session->socket.ShutdownBoth();
  }
  // Session threads observe the shutdown (EOF) or the stop flag within
  // one poll slice; joining outside sessions_mu_ is safe because the
  // vector only grows and the accept thread is already gone.
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
  }
  points_cv_.notify_all();
}

void Aggregator::AcceptLoop() {
  while (!stop_.load()) {
    std::optional<net::Socket> accepted = listener_->Accept(kPollSliceMs);
    ReapFinishedSessions();
    RefreshLiveness();
    if (!accepted.has_value()) continue;
    if (sessions_metric_ != nullptr) sessions_metric_->Increment();
    auto session = std::make_unique<Session>();
    session->socket = std::move(*accepted);
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] { RunSession(raw); });
  }
}

void Aggregator::ReapFinishedSessions() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void Aggregator::RunSession(Session* session) {
  // Sniff the first byte: the frame magic marks a leaf's framed delta
  // session, anything else a text query session. A peer that connects
  // and never sends anything is hung up on after io_timeout_ms -- the
  // slow-loris variant that would otherwise pin a session thread.
  unsigned char first = 0;
  bool sniffed = false;
  const auto sniff_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.io_timeout_ms);
  while (!stop_.load()) {
    bool timed_out = false;
    const long n = session->socket.PeekSome(&first, 1, kPollSliceMs,
                                            &timed_out);
    if (n > 0) {
      sniffed = true;
      break;
    }
    if (n < 0 || !timed_out) break;  // error or orderly close
    if (std::chrono::steady_clock::now() >= sniff_deadline) {
      if (protocol_errors_metric_ != nullptr) {
        protocol_errors_metric_->Increment();
      }
      break;
    }
  }
  if (sniffed && !stop_.load()) {
    if (first == net::kFrameMagic) {
      LeafSession(session->socket);
    } else {
      if (query_sessions_metric_ != nullptr) {
        query_sessions_metric_->Increment();
      }
      QuerySession(session->socket);
    }
  }
  // Prompt EOF toward the peer (a leaf whose session was refused would
  // otherwise sit out its full ACK timeout before retrying). Close is
  // left to the reaper/Stop() -- shutdown only reads the fd, so it
  // cannot race Stop()'s concurrent ShutdownBoth.
  session->socket.ShutdownBoth();
  session->done.store(true);
}

void Aggregator::LeafSession(net::Socket& socket) {
  net::FrameDecoder decoder;
  bool greeted = false;
  std::uint64_t session_leaf_id = 0;
  char buffer[16384];
  while (!stop_.load()) {
    bool timed_out = false;
    const long n = socket.RecvSome(buffer, sizeof(buffer), kPollSliceMs,
                                   &timed_out);
    if (n < 0 || (n == 0 && !timed_out)) return;
    if (n == 0) continue;
    if (bytes_metric_ != nullptr) {
      bytes_metric_->Increment(static_cast<std::uint64_t>(n));
    }
    decoder.Feed(buffer, static_cast<std::size_t>(n));
    if (decoder.corrupted()) {
      if (protocol_errors_metric_ != nullptr) {
        protocol_errors_metric_->Increment();
      }
      return;
    }
    while (std::optional<net::Frame> frame = decoder.Next()) {
      switch (frame->type) {
        case net::FrameType::kHello: {
          const std::optional<HelloMessage> hello =
              ParseHello(frame->payload);
          if (!hello.has_value() ||
              hello->dimensions != options_.dimensions) {
            if (protocol_errors_metric_ != nullptr) {
              protocol_errors_metric_->Increment();
            }
            return;
          }
          greeted = true;
          session_leaf_id = hello->leaf_id;
          break;
        }
        case net::FrameType::kDelta: {
          const std::optional<DeltaMessage> delta =
              ParseDelta(frame->payload);
          if (!greeted || !delta.has_value() || !ApplyDelta(*delta)) {
            if (protocol_errors_metric_ != nullptr) {
              protocol_errors_metric_->Increment();
            }
            return;
          }
          AckMessage ack;
          ack.leaf_id = delta->leaf_id;
          ack.seq = delta->seq;
          const std::string reply =
              net::EncodeFrame(net::FrameType::kAck, EncodeAck(ack));
          if (!socket.SendAll(reply.data(), reply.size(),
                              kAckSendTimeoutMs)) {
            return;
          }
          break;
        }
        case net::FrameType::kBye:
          if (greeted) MarkLeafFinished(session_leaf_id);
          return;
        case net::FrameType::kAck:
          // A leaf never sends ACKs; tolerate and ignore.
          break;
      }
    }
  }
}

void Aggregator::QuerySession(net::Socket& socket) {
  net::SocketStream stream(&socket, options_.io_timeout_ms);
  serve::ServerOptions serve_options;
  serve_options.status = [this] { return StatusSnapshot(); };
  serve::ServeLineProtocol(*broker_, stream, stream, serve_options);
  stream.flush();
  // A slow-loris peer (connected, then silent past io_timeout_ms) ends
  // the session through a read timeout, not an orderly close; count it.
  if (stream.timed_out() && protocol_errors_metric_ != nullptr) {
    protocol_errors_metric_->Increment();
  }
}

bool Aggregator::ApplyDelta(const DeltaMessage& delta) {
  if (delta.leaf_id > kMaxLeafId) return false;
  // A primary-flagged delta is the leaves' failover signal: they now
  // await this node's ACKs, so a standby promotes itself -- even when
  // the delta itself deduplicates (the warm-shipped copy got here
  // first, which is the common case right after a failover).
  if (delta.primary &&
      !primary_.exchange(true, std::memory_order_relaxed)) {
    if (promotions_metric_ != nullptr) promotions_metric_->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto it = leaves_.find(delta.leaf_id);
    if (it != leaves_.end() && delta.seq <= it->second.seq) {
      // Replay of an already-applied delta (leaf retry after a lost
      // ACK, or a restarted leaf catching up): ack it again, apply
      // nothing -- idempotence. It still proves the leaf is alive.
      it->second.last_delta = std::chrono::steady_clock::now();
      if (deltas_duplicate_metric_ != nullptr) {
        deltas_duplicate_metric_->Increment();
      }
      return true;
    }
  }

  // Parse outside the lock: the checkpoint codec re-verifies the state
  // body checksum, so line noise that survived the frame checksum still
  // cannot reach the merge.
  const std::optional<core::EngineState> state =
      io::ParseEngineState(delta.state_text);
  if (!state.has_value() || state->dimensions != options_.dimensions) {
    return false;
  }
  LeafEntry entry;
  entry.seq = delta.seq;
  entry.points = delta.points;
  entry.last_timestamp = state->last_timestamp;
  entry.last_delta = std::chrono::steady_clock::now();
  // A sequential leaf's live set is its single shard state; a sharded
  // leaf ships its merged view.
  if (state->shard_states.size() == 1 && state->global_clusters.empty()) {
    entry.clusters = state->shard_states[0].clusters;
  } else {
    entry.clusters = state->global_clusters;
  }

  std::lock_guard<std::mutex> lock(state_mu_);
  LeafEntry& slot = leaves_[delta.leaf_id];
  if (delta.seq <= slot.seq) {
    // Raced with a newer delta from the same leaf on another session.
    if (deltas_duplicate_metric_ != nullptr) {
      deltas_duplicate_metric_->Increment();
    }
    return true;
  }
  slot = std::move(entry);
  ++deltas_applied_;
  if (deltas_applied_metric_ != nullptr) deltas_applied_metric_->Increment();
  RebuildMergedViewLocked();
  points_cv_.notify_all();
  return true;
}

void Aggregator::MarkLeafFinished(std::uint64_t leaf_id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  const auto it = leaves_.find(leaf_id);
  if (it == leaves_.end()) return;
  it->second.finished = true;
  if (it->second.stale) RebuildMergedViewLocked();  // no longer excluded
}

void Aggregator::RefreshLiveness() {
  if (options_.stale_after_ms <= 0) return;
  std::lock_guard<std::mutex> lock(state_mu_);
  if (leaves_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.stale_after_ms);
  bool changed = false;
  for (const auto& [leaf_id, entry] : leaves_) {
    const bool stale = !entry.finished && now - entry.last_delta > limit;
    if (stale != entry.stale) {
      changed = true;
      break;
    }
  }
  // The rebuild recomputes every flag and republishes the degraded (or
  // recovered) view; nothing to do while membership is unchanged.
  if (changed) RebuildMergedViewLocked();
}

void Aggregator::RebuildMergedViewLocked() {
  const obs::ScopedTimer timer(merge_micros_);
  // Re-evaluate staleness first: a stale leaf keeps its progress
  // accounting (total_points, merge lag) but is left out of the merged
  // view, so queries answer from the live part of the fleet.
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(
      options_.stale_after_ms > 0 ? options_.stale_after_ms : 0);
  stale_count_ = 0;
  for (auto& [leaf_id, entry] : leaves_) {
    entry.stale = options_.stale_after_ms > 0 && !entry.finished &&
                  now - entry.last_delta > limit;
    if (entry.stale) ++stale_count_;
  }
  if (stale_gauge_ != nullptr) {
    stale_gauge_->Set(static_cast<double>(stale_count_));
  }
  // Shard slot = leaf id (dense ids), so the merged view's id tagging is
  // exactly the in-process sharded engine's regardless of which leaves
  // have reported yet.
  std::uint64_t max_id = 0;
  for (const auto& [leaf_id, entry] : leaves_) {
    max_id = std::max(max_id, leaf_id);
  }
  std::vector<std::vector<core::MicroCluster>> shard_sets(max_id + 1);
  double newest = 0.0;
  std::uint64_t min_points = 0, max_points = 0;
  bool first = true;
  for (const auto& [leaf_id, entry] : leaves_) {
    min_points = first ? entry.points : std::min(min_points, entry.points);
    max_points = std::max(max_points, entry.points);
    first = false;
    if (entry.stale) continue;
    shard_sets[leaf_id] = entry.clusters;
    newest = std::max(newest, entry.last_timestamp);
  }
  parallel::ShardMergeOptions merge_options;
  merge_options.dimensions = options_.dimensions;
  merge_options.dimension_threshold = options_.dimension_threshold;
  merge_options.global_budget = options_.global_budget;
  merged_ = parallel::MergeShardClusterSets(std::move(shard_sets),
                                            merge_options);
  merged_time_ = newest;
  if (merges_metric_ != nullptr) merges_metric_->Increment();
  if (merge_lag_gauge_ != nullptr) {
    merge_lag_gauge_->Set(static_cast<double>(max_points - min_points));
  }
  if (leaves_gauge_ != nullptr) {
    leaves_gauge_->Set(static_cast<double>(leaves_.size()));
  }

  // Publish to the replica the query broker reads. state_mu_ serializes
  // every publication, honoring the SnapshotSink single-publisher
  // contract.
  core::Snapshot snapshot;
  snapshot.time = merged_time_;
  snapshot.clusters.reserve(merged_.size());
  for (const core::MicroCluster& cluster : merged_) {
    core::MicroClusterState frozen;
    frozen.id = cluster.id;
    frozen.creation_time = cluster.creation_time;
    frozen.ecf = cluster.ecf;
    snapshot.clusters.push_back(std::move(frozen));
  }
  replica_.PublishCurrent(snapshot);
}

std::uint64_t Aggregator::total_points() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::uint64_t total = 0;
  for (const auto& [leaf_id, entry] : leaves_) total += entry.points;
  return total;
}

bool Aggregator::WaitForPoints(std::uint64_t n, int timeout_ms) {
  std::unique_lock<std::mutex> lock(state_mu_);
  return points_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [this, n] {
                               if (stop_.load()) return true;
                               std::uint64_t total = 0;
                               for (const auto& [id, entry] : leaves_) {
                                 total += entry.points;
                               }
                               return total >= n;
                             }) &&
         !stop_.load();
}

std::vector<core::MicroCluster> Aggregator::MergedClusters() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return merged_;
}

double Aggregator::merged_time() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return merged_time_;
}

std::size_t Aggregator::leaves_known() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return leaves_.size();
}

std::uint64_t Aggregator::deltas_applied() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return deltas_applied_;
}

std::size_t Aggregator::stale_leaves() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return stale_count_;
}

bool Aggregator::degraded() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return stale_count_ > 0;
}

serve::ServeStatus Aggregator::StatusSnapshot() const {
  serve::ServeStatus status;
  status.role = role();
  std::lock_guard<std::mutex> lock(state_mu_);
  status.degraded = stale_count_ > 0;
  status.leaves = leaves_.size();
  status.stale_leaves = stale_count_;
  status.deltas_applied = deltas_applied_;
  return status;
}

}  // namespace umicro::dist
