// Candidate pruning for the closest-cluster scan (docs/indexing.md).
//
// The assignment hot path evaluates every arriving point against all q
// micro-clusters through the batch kernels -- O(q d) per point. A
// CentroidIndex cuts that to a shortlist: a spatial structure over a
// *snapshot* of the centroid rows returns every row whose expected
// distance (Lemma 2.2) could possibly win, and the exact SIMD kernels
// refine only those rows. Pruning is provably safe -- the shortlist
// always contains the row the full scan would pick, bit for bit:
//
//   * The expected distance of row i decomposes as D2_i + s_i + psi2
//     where D2_i is the geometric (centroid) term, s_i >= 0 is the
//     cluster-error constant sum_j EF2_j/n^2 read live from the
//     ClusterTable, and psi2 >= 0 is the same point constant for every
//     row. The index lower-bounds D2_i from the snapshot (bounding-box
//     or triangle-inequality geometry), deflated by a per-row *drift
//     bound* (the centroids move as points are absorbed; every move is
//     reported through NoteDrift) and inflated floating-point margins,
//     and prunes row i only when that bound exceeds a proven upper
//     bound on the eventual winner's score by more than the margin.
//   * Rows appended since the snapshot are always candidates.
//   * Structural mutations (row removal, merge, restore) shift row ids;
//     the owner calls Invalidate() and the next Collect() rebuilds.
//
// The dimension-counting similarity is *not* served by this index: a
// dimension pruned by the vote (inv_j = 0) contributes arbitrarily much
// Euclidean distance at zero vote cost, so no Euclidean bound can
// safely prune the vote's argmax (counterexample in docs/indexing.md).
// core::UMicro only consults the index on the expected-distance path.

#ifndef UMICRO_INDEX_CENTROID_INDEX_H_
#define UMICRO_INDEX_CENTROID_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernels/cluster_table.h"

namespace umicro::index {

/// Which candidate structure the assignment scan runs behind.
enum class IndexKind {
  /// No index: every scan is the exact full kernel scan (zero overhead).
  kFlat,
  /// Median-split kd-tree over the snapshot centroids.
  kKdTree,
  /// Quantized coarse centers (~sqrt(q) groups, IVF-style) with
  /// per-member radii and triangle-inequality bounds.
  kCoarse,
  /// kKdTree gated to engage only once q is large enough to win
  /// (min_rows = 64); below that every query falls back to the flat
  /// scan.
  kAuto,
};

/// "flat" | "kdtree" | "coarse" | "auto".
const char* IndexKindName(IndexKind kind);

/// Inverse of IndexKindName; nullopt for unknown names.
std::optional<IndexKind> ParseIndexKind(const std::string& name);

/// Cumulative counters, monotone over an index's lifetime.
struct IndexStats {
  /// Collect() calls answered with a shortlist.
  std::uint64_t queries = 0;
  /// Collect() calls answered "run the full scan" (q below min_rows).
  std::uint64_t fallbacks = 0;
  /// Sum of shortlist sizes over answered queries.
  std::uint64_t candidates = 0;
  /// Sum of q over answered queries (what the full scan would have
  /// cost); 1 - candidates/scanned_rows is the prune ratio.
  std::uint64_t scanned_rows = 0;
  /// Snapshot rebuilds.
  std::uint64_t rebuilds = 0;
};

/// Pluggable candidate generator over the SoA centroid table
/// (knncolle-style: backends share the builder/searcher contract and
/// differ only in the structure behind Collect).
class CentroidIndex {
 public:
  struct Options {
    /// Collect() answers "full scan" below this row count.
    std::size_t min_rows = 2;
    /// kd-tree leaf capacity.
    std::size_t leaf_size = 8;
    /// Rebuild once appended rows exceed max(32, built/4).
    std::size_t min_appended_rebuild = 32;
    /// Rebuild once the accumulated drift bound exceeds this fraction
    /// of the snapshot's bounding-box diagonal.
    double drift_rebuild_fraction = 0.125;
  };

  explicit CentroidIndex(Options options) : options_(options) {}
  virtual ~CentroidIndex() = default;

  CentroidIndex(const CentroidIndex&) = delete;
  CentroidIndex& operator=(const CentroidIndex&) = delete;

  /// Backend name ("kdtree" | "coarse").
  virtual const char* name() const = 0;

  // ---- O(1) owner hooks: every table mutation is reported -----------

  /// One row was appended at the end of the table.
  void NoteAppend() { ++appended_; }

  /// Row `row`'s centroid moved by at most `distance` (Euclidean, real
  /// arithmetic); the index inflates it with floating-point slack.
  void NoteDrift(std::size_t row, double distance);

  /// Every statistic was scaled by one factor (decay). Centroids are
  /// invariant in real arithmetic; their re-derivation perturbs each
  /// coordinate by a few ulp, accounted per scale event.
  void NoteScale() { ++scale_events_; }

  /// Row ids shifted or state was replaced (removal, merge, restore):
  /// the snapshot is unusable, rebuild at the next Collect().
  void Invalidate() { dirty_ = true; }

  // ---- Query ---------------------------------------------------------

  /// Collects the candidate shortlist for point `x` (first table.dims()
  /// entries read). Returns false when the caller should run the full
  /// scan instead (q below min_rows). On true, `out` holds strictly
  /// ascending row ids guaranteed to contain the index the full
  /// BatchSquaredDistances + ArgMin scan would return, for
  /// DistanceKind::kExpected when `include_cluster_error` (pass the
  /// point's psi2 constant) and kGeometric otherwise (pass 0).
  bool Collect(const kernels::ClusterTable& table, const double* x,
               bool include_cluster_error, double point_error2,
               std::vector<std::uint32_t>* out);

  const IndexStats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 protected:
  /// Relative safety margin on every index-side bound. Nine orders of
  /// magnitude above the worst-case kernel reduction error for d <= 64
  /// (~1.06 * (stride+4) * DBL_EPSILON ~ 1.6e-14), so index bounds
  /// dominate every rounding difference between tiers and summation
  /// orders, including the kernel's final +s_i +psi2 additions.
  static constexpr double kRelMargin = 1e-9;

  /// Builds the backend structure over the freshly copied snapshot
  /// (snap_centroid(i), i < built_rows()).
  virtual void BuildStructure() = 0;

  /// Appends the backend's candidates among the built rows to `out`
  /// (any order, no duplicates). `upper` is a proven upper bound on the
  /// winner's kernel score minus psi2 (may be +inf when nothing seeded
  /// it yet); implementations tighten it with their own seeds and prune
  /// against EffectiveUpper(upper, point_error2).
  virtual void CollectImpl(const kernels::ClusterTable& table,
                           const double* x, bool include_cluster_error,
                           double point_error2, double upper,
                           std::vector<std::uint32_t>* out) = 0;

  // ---- Snapshot + bound helpers shared by backends -------------------

  /// Called after NoteDrift updates a built row's drift bound; backends
  /// override to keep finer-grained (per-subtree / per-group) drift
  /// maxima current in O(depth) or O(1).
  virtual void DriftUpdated(std::size_t /*row*/) {}

  std::size_t built_rows() const { return built_rows_; }
  std::size_t dims() const { return dims_; }
  /// Snapshot rows keep the table's zero-padded stride so the SIMD row
  /// reduction applies unchanged.
  std::size_t snap_stride() const { return snap_stride_; }
  kernels::Backend snap_backend() const { return snap_backend_; }
  const double* snap_centroid(std::size_t row) const {
    return &snap_[row * snap_stride_];
  }
  double row_drift(std::size_t row) const { return drift_[row]; }
  double row_norm(std::size_t row) const { return snap_norm_[row]; }
  double query_scale_ulp() const { return query_scale_ulp_; }

  /// Squared distance of the padded query to the snapshot centroid of
  /// `row`, on the snapshot's SIMD tier. `x` must be the padded pointer
  /// CollectImpl received.
  double SnapDist2(std::size_t row, const double* x) const;

  /// Upper bound on how far row `row`'s live centroid can be from its
  /// snapshot position (drift + per-scale-event ulp slack).
  double QueryDrift(std::size_t row) const {
    return drift_[row] + query_scale_ulp_ * snap_norm_[row];
  }

  /// Max of QueryDrift over all built rows (node-level slack).
  double MaxQueryDrift() const {
    return max_drift_ + query_scale_ulp_ * max_norm_;
  }

  /// score_row >= RowLower: snapshot distance deflated by margins and
  /// drift, squared, plus the live cluster-error constant `s`.
  double RowLower(std::size_t row, double snap_dist, double s) const {
    double lo = snap_dist * (1.0 - kRelMargin) - QueryDrift(row);
    if (lo < 0.0) lo = 0.0;
    return lo * lo + s;
  }

  /// score_row <= RowUpper (used to tighten `upper` from seeds).
  double RowUpper(std::size_t row, double snap_dist, double s) const {
    const double hi = snap_dist * (1.0 + kRelMargin) + QueryDrift(row);
    return hi * hi * (1.0 + kRelMargin) + s;
  }

  /// The pruning threshold: rows (and nodes/groups) whose lower bound
  /// exceeds this cannot round to a kernel score at or below the
  /// winner's. The absolute (upper + psi2) term keeps ties safe even
  /// when psi2 dwarfs the distances (e.g. an exact duplicate of a
  /// zero-error centroid: every score rounds to psi2 and the full scan
  /// picks the first row).
  double EffectiveUpper(double upper, double point_error2) const {
    return upper + (upper + point_error2) * kRelMargin;
  }

  /// Live cluster-error constant of the kExpected score (0 for
  /// kGeometric).
  static double RowErrorTerm(const kernels::ClusterTable& table,
                             std::size_t row, bool include_cluster_error) {
    return include_cluster_error ? table.ef2n2_sum(row) : 0.0;
  }

 private:
  bool NeedsRebuild(const kernels::ClusterTable& table) const;
  void Rebuild(const kernels::ClusterTable& table);

  const Options options_;
  IndexStats stats_;

  // Snapshot (stride-padded copies of the centroid rows at build time).
  std::size_t built_rows_ = 0;
  std::size_t dims_ = 0;
  std::size_t snap_stride_ = 0;
  kernels::Backend snap_backend_ = kernels::Backend::kScalar;
  std::vector<double> snap_;
  /// Query staged to snap_stride_ with zero padding (so backends can run
  /// the padded SIMD row reduction against snapshot rows).
  std::vector<double> padded_x_;
  /// Margin-inflated centroid norms (scale-event ulp slack is
  /// proportional to the coordinate magnitudes).
  std::vector<double> snap_norm_;
  double max_norm_ = 0.0;
  /// Bounding-box diagonal of the snapshot (rebuild-cadence yardstick).
  double diag_ = 0.0;

  // Staleness accounting since the snapshot.
  std::vector<double> drift_;
  double max_drift_ = 0.0;
  std::uint64_t scale_events_ = 0;
  std::size_t appended_ = 0;
  bool dirty_ = true;
  /// 16 ulp of per-coordinate slack per scale event, frozen per query.
  double query_scale_ulp_ = 0.0;
};

/// Builds the index for `kind`; nullptr for kFlat (callers treat a null
/// index as "always full scan", which keeps the flat path zero-cost).
std::unique_ptr<CentroidIndex> MakeCentroidIndex(IndexKind kind);

}  // namespace umicro::index

#endif  // UMICRO_INDEX_CENTROID_INDEX_H_
