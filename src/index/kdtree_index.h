// Median-split kd-tree backend of CentroidIndex (docs/indexing.md).
//
// Built over the snapshot centroids: recursive median split on the
// widest dimension down to leaf_size rows (a node whose bounding box
// has zero extent becomes a leaf, so identical centroids terminate).
// A query greedily descends to the nearest leaf to seed the winner's
// upper bound, then depth-first collects every row whose drift-deflated
// bounding-box / snapshot-distance lower bound stays within the
// effective upper bound.

#ifndef UMICRO_INDEX_KDTREE_INDEX_H_
#define UMICRO_INDEX_KDTREE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "index/centroid_index.h"

namespace umicro::index {

class KdTreeIndex final : public CentroidIndex {
 public:
  explicit KdTreeIndex(Options options) : CentroidIndex(options) {}

  const char* name() const override { return "kdtree"; }

 protected:
  void BuildStructure() override;
  void CollectImpl(const kernels::ClusterTable& table, const double* x,
                   bool include_cluster_error, double point_error2,
                   double upper, std::vector<std::uint32_t>* out) override;

 private:
  struct Node {
    std::uint32_t begin = 0;  // range [begin, end) of perm_
    std::uint32_t end = 0;
    std::int32_t left = -1;  // -1 = leaf
    std::int32_t right = -1;
  };

  std::int32_t BuildNode(std::uint32_t begin, std::uint32_t end,
                         std::int32_t parent);

  void DriftUpdated(std::size_t row) override;

  /// Squared distance of x to node `n`'s bounding box (0 inside).
  double NodeDist2(std::size_t n, const double* x) const;

  /// Worst drift-plus-ulp slack over the rows of node `n`'s subtree
  /// (kept current by DriftUpdated), mirroring QueryDrift per row.
  double NodeQueryDrift(std::size_t n) const {
    return node_drift_[n] + query_scale_ulp() * node_norm_[n];
  }

  /// Tightens `upper` over the rows of the leaf nearest to x.
  void SeedFromNearestLeaf(const kernels::ClusterTable& table,
                           const double* x, bool include_cluster_error,
                           double* upper) const;

  void CollectNode(std::size_t n, double node_dist2,
                   const kernels::ClusterTable& table, const double* x,
                   bool include_cluster_error, double point_error2,
                   double* upper, double* effective,
                   std::vector<std::uint32_t>* out) const;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> perm_;
  // Per-node bounding boxes, dims() doubles each.
  std::vector<double> bbox_min_;
  std::vector<double> bbox_max_;
  // Subtree maxima for the node-level prune slack.
  std::vector<std::int32_t> parent_;
  std::vector<double> node_drift_;
  std::vector<double> node_norm_;
  // Row -> owning leaf (drift bubbles leaf-to-root).
  std::vector<std::uint32_t> leaf_of_row_;
};

}  // namespace umicro::index

#endif  // UMICRO_INDEX_KDTREE_INDEX_H_
