#include "index/centroid_index.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>

#include "index/coarse_index.h"
#include "index/kdtree_index.h"
#include "kernels/kernels.h"
#include "util/check.h"

namespace umicro::index {

namespace {

// Per-event / per-report floating-point slack on centroid positions: the
// table re-derives centroid[j] = CF1_j * (1/n) after every mutation, a
// handful of roundings per coordinate, each relative to the coordinate
// magnitude. 16 ulp comfortably covers the longest such chain.
constexpr double kUlpSlack = 16.0 * DBL_EPSILON;

}  // namespace

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFlat:
      return "flat";
    case IndexKind::kKdTree:
      return "kdtree";
    case IndexKind::kCoarse:
      return "coarse";
    case IndexKind::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<IndexKind> ParseIndexKind(const std::string& name) {
  if (name == "flat") return IndexKind::kFlat;
  if (name == "kdtree") return IndexKind::kKdTree;
  if (name == "coarse") return IndexKind::kCoarse;
  if (name == "auto") return IndexKind::kAuto;
  return std::nullopt;
}

void CentroidIndex::NoteDrift(std::size_t row, double distance) {
  if (row >= built_rows_) return;  // appended rows are always candidates
  // Inflate the reported (real-arithmetic) move with relative slack and
  // the coordinate-rounding term, so drift_[row] stays a true upper
  // bound on ||live centroid - snapshot centroid||.
  const double inflated =
      distance * (1.0 + kRelMargin) + kUlpSlack * snap_norm_[row];
  drift_[row] += inflated;
  if (drift_[row] > max_drift_) max_drift_ = drift_[row];
  DriftUpdated(row);
}

double CentroidIndex::SnapDist2(std::size_t row, const double* x) const {
  return kernels::RowSquaredDistance(snap_backend_, x, snap_centroid(row),
                                     snap_stride_);
}

bool CentroidIndex::NeedsRebuild(const kernels::ClusterTable& table) const {
  if (dirty_) return true;
  if (table.dims() != dims_) return true;
  if (table.rows() < built_rows_) return true;
  const std::size_t appended_limit =
      std::max(options_.min_appended_rebuild, built_rows_ / 4);
  if (appended_ > appended_limit) return true;
  // Accumulated drift shrinks every lower bound; once it is a material
  // fraction of the data spread the structure stops pruning, so refresh.
  const double drift = max_drift_ + kUlpSlack * static_cast<double>(
                                        scale_events_) * max_norm_;
  return drift > options_.drift_rebuild_fraction * diag_;
}

void CentroidIndex::Rebuild(const kernels::ClusterTable& table) {
  built_rows_ = table.rows();
  dims_ = table.dims();
  snap_stride_ = table.stride();
  snap_backend_ = table.backend();
  snap_.resize(built_rows_ * snap_stride_);
  snap_norm_.resize(built_rows_);
  max_norm_ = 0.0;
  std::vector<double> bbox_min(dims_, std::numeric_limits<double>::infinity());
  std::vector<double> bbox_max(dims_,
                               -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < built_rows_; ++i) {
    const double* row = table.centroid_row(i);
    // Stride copy keeps the zero padding, so the SIMD row reduction runs
    // on snapshot rows exactly as on table rows.
    std::memcpy(&snap_[i * snap_stride_], row, snap_stride_ * sizeof(double));
    double norm2 = 0.0;
    for (std::size_t j = 0; j < dims_; ++j) {
      const double v = row[j];
      norm2 += v * v;
      bbox_min[j] = std::min(bbox_min[j], v);
      bbox_max[j] = std::max(bbox_max[j], v);
    }
    snap_norm_[i] = std::sqrt(norm2) * (1.0 + kRelMargin);
    max_norm_ = std::max(max_norm_, snap_norm_[i]);
  }
  double diag2 = 0.0;
  for (std::size_t j = 0; j < dims_; ++j) {
    const double extent = bbox_max[j] - bbox_min[j];
    diag2 += extent * extent;
  }
  diag_ = std::sqrt(diag2);
  drift_.assign(built_rows_, 0.0);
  max_drift_ = 0.0;
  scale_events_ = 0;
  appended_ = 0;
  dirty_ = false;
  ++stats_.rebuilds;
  BuildStructure();
}

bool CentroidIndex::Collect(const kernels::ClusterTable& table,
                            const double* x, bool include_cluster_error,
                            double point_error2,
                            std::vector<std::uint32_t>* out) {
  const std::size_t q = table.rows();
  if (q < options_.min_rows || table.dims() == 0) {
    ++stats_.fallbacks;
    return false;
  }
  if (NeedsRebuild(table)) Rebuild(table);
  query_scale_ulp_ = kUlpSlack * static_cast<double>(scale_events_);

  // Stage the query padded to the snapshot stride (callers only promise
  // dims() readable entries) so backends run the SIMD row reduction.
  padded_x_.assign(snap_stride_, 0.0);
  std::memcpy(padded_x_.data(), x, dims_ * sizeof(double));
  const double* xp = padded_x_.data();

  out->clear();
  // Rows appended since the snapshot are unconditional candidates; their
  // live centroids also seed the winner's upper bound (a fresh singleton
  // sits close to the arriving point far more often than not).
  double upper = std::numeric_limits<double>::infinity();
  for (std::size_t r = built_rows_; r < q; ++r) {
    const double d2 = kernels::RowSquaredDistance(
        snap_backend_, xp, table.centroid_row(r), snap_stride_);
    const double ub = d2 * (1.0 + kRelMargin) +
                      RowErrorTerm(table, r, include_cluster_error);
    upper = std::min(upper, ub);
  }

  CollectImpl(table, xp, include_cluster_error, point_error2, upper, out);
  for (std::size_t r = built_rows_; r < q; ++r) {
    out->push_back(static_cast<std::uint32_t>(r));
  }
  std::sort(out->begin(), out->end());
  UMICRO_DCHECK(!out->empty());

  ++stats_.queries;
  stats_.candidates += out->size();
  stats_.scanned_rows += q;
  return true;
}

std::unique_ptr<CentroidIndex> MakeCentroidIndex(IndexKind kind) {
  CentroidIndex::Options options;
  switch (kind) {
    case IndexKind::kFlat:
      return nullptr;
    case IndexKind::kKdTree:
      return std::make_unique<KdTreeIndex>(options);
    case IndexKind::kCoarse:
      return std::make_unique<CoarseIndex>(options);
    case IndexKind::kAuto:
      // Below ~64 rows the full SIMD scan beats tree traversal plus
      // gather refinement; gate the index instead of paying overhead.
      options.min_rows = 64;
      return std::make_unique<KdTreeIndex>(options);
  }
  return nullptr;
}

}  // namespace umicro::index
