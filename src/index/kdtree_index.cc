#include "index/kdtree_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "kernels/kernels.h"
#include "util/check.h"

namespace umicro::index {

void KdTreeIndex::BuildStructure() {
  nodes_.clear();
  bbox_min_.clear();
  bbox_max_.clear();
  parent_.clear();
  node_drift_.clear();
  node_norm_.clear();
  perm_.resize(built_rows());
  leaf_of_row_.assign(built_rows(), 0);
  std::iota(perm_.begin(), perm_.end(), 0u);
  nodes_.reserve(2 * built_rows() / std::max<std::size_t>(options().leaf_size, 1) + 1);
  if (built_rows() > 0) {
    BuildNode(0, static_cast<std::uint32_t>(built_rows()), -1);
  }
}

std::int32_t KdTreeIndex::BuildNode(std::uint32_t begin, std::uint32_t end,
                                    std::int32_t parent) {
  const std::int32_t id = static_cast<std::int32_t>(nodes_.size());
  Node node;
  node.begin = begin;
  node.end = end;
  nodes_.push_back(node);
  parent_.push_back(parent);
  node_drift_.push_back(0.0);

  // Boxes are stride-padded like the snapshot rows: the min/max sweep
  // over padded rows leaves lo = hi = 0 in the padded lanes, which is
  // exactly what the SIMD box-distance kernel needs.
  const std::size_t stride = snap_stride();
  const std::size_t box = static_cast<std::size_t>(id) * stride;
  bbox_min_.resize(box + stride, std::numeric_limits<double>::infinity());
  bbox_max_.resize(box + stride, -std::numeric_limits<double>::infinity());
  double norm = 0.0;
  for (std::uint32_t k = begin; k < end; ++k) {
    const double* c = snap_centroid(perm_[k]);
    for (std::size_t j = 0; j < stride; ++j) {
      bbox_min_[box + j] = std::min(bbox_min_[box + j], c[j]);
      bbox_max_[box + j] = std::max(bbox_max_[box + j], c[j]);
    }
    norm = std::max(norm, row_norm(perm_[k]));
  }
  node_norm_.push_back(norm);

  std::size_t split_dim = 0;
  double extent = 0.0;
  for (std::size_t j = 0; j < dims(); ++j) {
    const double e = bbox_max_[box + j] - bbox_min_[box + j];
    if (e > extent) {
      extent = e;
      split_dim = j;
    }
  }
  // Leaf: small enough, or every centroid in the range is identical
  // (extent 0 -- splitting could never separate them).
  if (end - begin <= options().leaf_size || extent <= 0.0) {
    for (std::uint32_t k = begin; k < end; ++k) {
      leaf_of_row_[perm_[k]] = static_cast<std::uint32_t>(id);
    }
    return id;
  }

  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(perm_.begin() + begin, perm_.begin() + mid,
                   perm_.begin() + end,
                   [this, split_dim](std::uint32_t a, std::uint32_t b) {
                     const double ca = snap_centroid(a)[split_dim];
                     const double cb = snap_centroid(b)[split_dim];
                     if (ca != cb) return ca < cb;
                     return a < b;  // total order keeps builds deterministic
                   });
  // Children are built after the parent is in nodes_, so index through
  // nodes_[id] (the vector may reallocate during recursion).
  const std::int32_t left = BuildNode(begin, mid, id);
  nodes_[static_cast<std::size_t>(id)].left = left;
  const std::int32_t right = BuildNode(mid, end, id);
  nodes_[static_cast<std::size_t>(id)].right = right;
  return id;
}

void KdTreeIndex::DriftUpdated(std::size_t row) {
  if (row >= leaf_of_row_.size()) return;  // snapshot pending rebuild
  const double drift = row_drift(row);
  std::int32_t n = static_cast<std::int32_t>(leaf_of_row_[row]);
  // Bubble the new subtree max toward the root; stop at the first
  // ancestor already dominating it.
  while (n >= 0 && node_drift_[static_cast<std::size_t>(n)] < drift) {
    node_drift_[static_cast<std::size_t>(n)] = drift;
    n = parent_[static_cast<std::size_t>(n)];
  }
}

double KdTreeIndex::NodeDist2(std::size_t n, const double* x) const {
  const std::size_t box = n * snap_stride();
  return kernels::BoxSquaredDistance(snap_backend(), x, &bbox_min_[box],
                                     &bbox_max_[box], snap_stride());
}

void KdTreeIndex::SeedFromNearestLeaf(const kernels::ClusterTable& table,
                                      const double* x,
                                      bool include_cluster_error,
                                      double* upper) const {
  std::size_t n = 0;
  while (nodes_[n].left >= 0) {
    const std::size_t left = static_cast<std::size_t>(nodes_[n].left);
    const std::size_t right = static_cast<std::size_t>(nodes_[n].right);
    n = NodeDist2(left, x) <= NodeDist2(right, x) ? left : right;
  }
  for (std::uint32_t k = nodes_[n].begin; k < nodes_[n].end; ++k) {
    const std::uint32_t row = perm_[k];
    const double dist = std::sqrt(SnapDist2(row, x));
    const double ub = RowUpper(
        row, dist, RowErrorTerm(table, row, include_cluster_error));
    *upper = std::min(*upper, ub);
  }
}

void KdTreeIndex::CollectNode(std::size_t n, double node_dist2,
                              const kernels::ClusterTable& table,
                              const double* x, bool include_cluster_error,
                              double point_error2, double* upper,
                              double* effective,
                              std::vector<std::uint32_t>* out) const {
  // Node-level prune: the box distance, deflated by the margin and the
  // worst drift of any row in this subtree, lower-bounds every member's
  // geometric term (their s_i >= 0 only adds).
  double lo = std::sqrt(node_dist2) * (1.0 - kRelMargin) - NodeQueryDrift(n);
  if (lo < 0.0) lo = 0.0;
  if (lo * lo > *effective) return;

  const Node& node = nodes_[n];
  if (node.left < 0) {
    for (std::uint32_t k = node.begin; k < node.end; ++k) {
      const std::uint32_t row = perm_[k];
      const double dist = std::sqrt(SnapDist2(row, x));
      const double s = RowErrorTerm(table, row, include_cluster_error);
      if (RowLower(row, dist, s) <= *effective) {
        out->push_back(row);
        const double ub = RowUpper(row, dist, s);
        if (ub < *upper) {
          *upper = ub;
          *effective = EffectiveUpper(ub, point_error2);
        }
      }
    }
    return;
  }
  // Nearer child first so the bound tightens before the farther side.
  const std::size_t left = static_cast<std::size_t>(node.left);
  const std::size_t right = static_cast<std::size_t>(node.right);
  const double left_d2 = NodeDist2(left, x);
  const double right_d2 = NodeDist2(right, x);
  if (left_d2 <= right_d2) {
    CollectNode(left, left_d2, table, x, include_cluster_error, point_error2,
                upper, effective, out);
    CollectNode(right, right_d2, table, x, include_cluster_error,
                point_error2, upper, effective, out);
  } else {
    CollectNode(right, right_d2, table, x, include_cluster_error,
                point_error2, upper, effective, out);
    CollectNode(left, left_d2, table, x, include_cluster_error, point_error2,
                upper, effective, out);
  }
}

void KdTreeIndex::CollectImpl(const kernels::ClusterTable& table,
                              const double* x, bool include_cluster_error,
                              double point_error2, double upper,
                              std::vector<std::uint32_t>* out) {
  UMICRO_DCHECK(!nodes_.empty());
  SeedFromNearestLeaf(table, x, include_cluster_error, &upper);
  double effective = EffectiveUpper(upper, point_error2);
  CollectNode(0, NodeDist2(0, x), table, x, include_cluster_error,
              point_error2, &upper, &effective, out);
}

}  // namespace umicro::index
