#include "index/coarse_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kernels/kernels.h"
#include "util/check.h"

namespace umicro::index {

void CoarseIndex::BuildStructure() {
  const std::size_t q = built_rows();
  const std::size_t stride = snap_stride();
  num_groups_ = std::max<std::size_t>(
      1, std::min(q, static_cast<std::size_t>(
                         std::sqrt(static_cast<double>(q)))));

  // Coarse centers: a deterministic stride sample of the snapshot rows,
  // kept stride-padded so the SIMD row reduction applies.
  centers_.resize(num_groups_ * stride);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    const std::size_t row = g * q / num_groups_;
    const double* c = snap_centroid(row);
    std::copy(c, c + stride,
              centers_.begin() + static_cast<std::ptrdiff_t>(g * stride));
  }

  // Assign every row to its nearest center (ties to the lowest group).
  group_of_row_.assign(q, 0);
  std::vector<std::uint32_t> counts(num_groups_, 0);
  member_radius_.assign(q, 0.0);
  group_radius_.assign(num_groups_, 0.0);
  group_drift_.assign(num_groups_, 0.0);
  group_norm_.assign(num_groups_, 0.0);
  for (std::size_t i = 0; i < q; ++i) {
    const double* c = snap_centroid(i);
    std::size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t g = 0; g < num_groups_; ++g) {
      const double d2 = kernels::RowSquaredDistance(
          snap_backend(), c, &centers_[g * stride], stride);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = g;
      }
    }
    group_of_row_[i] = static_cast<std::uint32_t>(best);
    ++counts[best];
    member_radius_[i] = std::sqrt(best_d2) * (1.0 + kRelMargin);
    group_radius_[best] = std::max(group_radius_[best], member_radius_[i]);
    group_norm_[best] = std::max(group_norm_[best], row_norm(i));
  }

  group_begin_.assign(num_groups_ + 1, 0);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    group_begin_[g + 1] = group_begin_[g] + counts[g];
  }
  perm_.resize(q);
  std::vector<std::uint32_t> cursor(group_begin_.begin(),
                                    group_begin_.end() - 1);
  for (std::size_t i = 0; i < q; ++i) {
    perm_[cursor[group_of_row_[i]]++] = static_cast<std::uint32_t>(i);
  }

  group_dist_.resize(num_groups_);
  group_order_.resize(num_groups_);
}

void CoarseIndex::DriftUpdated(std::size_t row) {
  if (row >= group_of_row_.size()) return;  // snapshot pending rebuild
  const std::size_t g = group_of_row_[row];
  group_drift_[g] = std::max(group_drift_[g], row_drift(row));
}

double CoarseIndex::CenterDist2(std::size_t group, const double* x) const {
  return kernels::RowSquaredDistance(snap_backend(), x,
                                     &centers_[group * snap_stride()],
                                     snap_stride());
}

void CoarseIndex::CollectImpl(const kernels::ClusterTable& table,
                              const double* x, bool include_cluster_error,
                              double point_error2, double upper,
                              std::vector<std::uint32_t>* out) {
  UMICRO_DCHECK(num_groups_ > 0);
  for (std::size_t g = 0; g < num_groups_; ++g) {
    group_dist_[g] = std::sqrt(CenterDist2(g, x));
    group_order_[g] = static_cast<std::uint32_t>(g);
  }
  // Nearest groups first: their members seed a tight bound that prunes
  // the far groups wholesale.
  std::sort(group_order_.begin(), group_order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (group_dist_[a] != group_dist_[b]) {
                return group_dist_[a] < group_dist_[b];
              }
              return a < b;
            });

  // Once the ascending center distance alone beats every group's radius
  // plus slack, all remaining groups are pruned -- break, don't scan.
  double max_reach = 0.0;
  const double ulp = query_scale_ulp();
  for (std::size_t g = 0; g < num_groups_; ++g) {
    max_reach = std::max(max_reach, group_radius_[g] + group_drift_[g] +
                                        ulp * group_norm_[g]);
  }

  double effective = EffectiveUpper(upper, point_error2);
  for (const std::uint32_t g : group_order_) {
    const double dist_lo = group_dist_[g] * (1.0 - kRelMargin);
    double stop = dist_lo - max_reach;
    if (stop > 0.0 && stop * stop > effective) break;

    const std::uint32_t begin = group_begin_[g];
    const std::uint32_t end = group_begin_[g + 1];
    if (begin == end) continue;
    const double group_slack =
        group_drift_[g] + ulp * group_norm_[g];
    double glo = dist_lo - group_radius_[g] - group_slack;
    if (glo < 0.0) glo = 0.0;
    if (glo * glo > effective) continue;

    const double dist_hi = group_dist_[g] * (1.0 + kRelMargin);
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t row = perm_[k];
      const double s = RowErrorTerm(table, row, include_cluster_error);
      // Two-sided triangle bound: the row is member_radius from the
      // center, so its snapshot distance is at least the gap between
      // the query-center distance and that radius, whichever side.
      double mlo = std::max(dist_lo - member_radius_[row],
                            member_radius_[row] * (1.0 - kRelMargin) -
                                dist_hi) -
                   QueryDrift(row);
      if (mlo < 0.0) mlo = 0.0;
      if (mlo * mlo + s > effective) continue;
      // The triangle test is only a prefilter; the exact snapshot
      // distance (one SIMD row reduction) decides candidacy and
      // tightens the bound so later (farther) groups prune harder.
      const double dist = std::sqrt(SnapDist2(row, x));
      if (RowLower(row, dist, s) > effective) continue;
      out->push_back(row);
      const double ub = RowUpper(row, dist, s);
      if (ub < upper) {
        upper = ub;
        effective = EffectiveUpper(ub, point_error2);
      }
    }
  }
}

}  // namespace umicro::index
