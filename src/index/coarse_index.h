// Quantized-coarse-centroid backend of CentroidIndex (docs/indexing.md).
//
// IVF-style: ~sqrt(q) coarse centers sampled from the snapshot, every
// snapshot centroid assigned to its nearest center with its distance to
// that center recorded as a per-member radius. A query measures the
// point against every coarse center (O(sqrt(q) d)) and keeps the rows
// whose triangle-inequality lower bound
//   D(x, center) - member_radius - drift
// stays within the effective upper bound; whole groups prune in one
// comparison through the group's max radius.

#ifndef UMICRO_INDEX_COARSE_INDEX_H_
#define UMICRO_INDEX_COARSE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "index/centroid_index.h"

namespace umicro::index {

class CoarseIndex final : public CentroidIndex {
 public:
  explicit CoarseIndex(Options options) : CentroidIndex(options) {}

  const char* name() const override { return "coarse"; }

 protected:
  void BuildStructure() override;
  void CollectImpl(const kernels::ClusterTable& table, const double* x,
                   bool include_cluster_error, double point_error2,
                   double upper, std::vector<std::uint32_t>* out) override;

 private:
  void DriftUpdated(std::size_t row) override;

  double CenterDist2(std::size_t group, const double* x) const;

  std::size_t num_groups_ = 0;
  std::vector<double> centers_;             // num_groups_ * snap_stride()
  std::vector<std::uint32_t> perm_;         // rows, grouped
  std::vector<std::uint32_t> group_begin_;  // num_groups_ + 1 offsets
  std::vector<std::uint32_t> group_of_row_; // by row id
  std::vector<double> member_radius_;       // by row id, margin-inflated
  std::vector<double> group_radius_;        // max member radius per group
  std::vector<double> group_drift_;         // max row drift per group
  std::vector<double> group_norm_;          // max row norm per group
  // Per-query scratch (Collect is single-threaded per index owner).
  std::vector<double> group_dist_;
  std::vector<std::uint32_t> group_order_;
};

}  // namespace umicro::index

#endif  // UMICRO_INDEX_COARSE_INDEX_H_
