#include "net/peer.h"

#include <utility>

namespace umicro::net {

PeerSender::PeerSender(Socket* socket, PeerSenderOptions options)
    : socket_(socket), options_(options) {
  writer_ = std::thread([this] { WriterLoop(); });
}

PeerSender::~PeerSender() { Stop(); }

bool PeerSender::Enqueue(std::string encoded_frame) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queued_bytes_ + encoded_frame.size() > options_.max_queue_bytes &&
      !stop_ && !broken_) {
    ++enqueue_blocks_;
    queue_changed_.wait(lock, [this, &encoded_frame] {
      return stop_ || broken_ ||
             queued_bytes_ + encoded_frame.size() <=
                 options_.max_queue_bytes;
    });
  }
  if (stop_ || broken_) return false;
  queued_bytes_ += encoded_frame.size();
  queue_.push_back(std::move(encoded_frame));
  queue_nonempty_.notify_one();
  return true;
}

bool PeerSender::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  queue_changed_.wait(lock, [this] {
    return broken_ || stop_ || (queue_.empty() && !writing_);
  });
  return !broken_ && !stop_;
}

void PeerSender::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Already stopped; the writer may have been joined by a previous
      // call.
    }
    stop_ = true;
    queue_nonempty_.notify_all();
    queue_changed_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
}

bool PeerSender::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

std::uint64_t PeerSender::frames_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_sent_;
}

std::uint64_t PeerSender::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_;
}

std::uint64_t PeerSender::enqueue_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueue_blocks_;
}

void PeerSender::WriterLoop() {
  for (;;) {
    std::string frame;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_nonempty_.wait(lock,
                           [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      frame = std::move(queue_.front());
      queue_.pop_front();
      queued_bytes_ -= frame.size();
      writing_ = true;
    }
    const bool ok =
        socket_->SendAll(frame.data(), frame.size(), options_.send_timeout_ms);
    {
      std::lock_guard<std::mutex> lock(mu_);
      writing_ = false;
      if (ok) {
        ++frames_sent_;
        bytes_sent_ += frame.size();
      } else {
        broken_ = true;
      }
      queue_changed_.notify_all();
      if (!ok) {
        queue_nonempty_.notify_all();
        return;
      }
    }
  }
}

}  // namespace umicro::net
