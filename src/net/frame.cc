#include "net/frame.h"

#include <cstring>

namespace umicro::net {

namespace {

void AppendBigEndian32(std::string* out, std::uint32_t value) {
  out->push_back(static_cast<char>((value >> 24) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>(value & 0xff));
}

void AppendBigEndian64(std::string* out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

std::uint32_t ReadBigEndian32(const char* data) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

std::uint64_t ReadBigEndian64(const char* data) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | static_cast<std::uint64_t>(bytes[i]);
  }
  return value;
}

bool ValidFrameType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kBye);
}

}  // namespace

std::uint64_t FrameChecksum(const std::string& payload) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char ch : payload) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) return std::string();
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(type));
  AppendBigEndian32(&out, static_cast<std::uint32_t>(payload.size()));
  AppendBigEndian64(&out, FrameChecksum(payload));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(const char* data, std::size_t size) {
  if (corrupted_ || size == 0) return;
  buffer_.append(data, size);
  for (;;) {
    if (buffer_.size() < kFrameHeaderSize) return;
    if (static_cast<unsigned char>(buffer_[0]) != kFrameMagic) {
      corrupted_ = true;
      return;
    }
    const std::uint8_t type = static_cast<std::uint8_t>(buffer_[1]);
    if (!ValidFrameType(type)) {
      corrupted_ = true;
      return;
    }
    const std::uint32_t length = ReadBigEndian32(buffer_.data() + 2);
    if (length > kMaxFramePayload) {
      corrupted_ = true;
      return;
    }
    if (buffer_.size() < kFrameHeaderSize + length) return;
    const std::uint64_t expected = ReadBigEndian64(buffer_.data() + 6);
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload = buffer_.substr(kFrameHeaderSize, length);
    if (FrameChecksum(frame.payload) != expected) {
      corrupted_ = true;
      return;
    }
    buffer_.erase(0, kFrameHeaderSize + length);
    ready_.push_back(std::move(frame));
    ++frames_decoded_;
  }
}

std::optional<Frame> FrameDecoder::Next() {
  if (ready_.empty()) return std::nullopt;
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

}  // namespace umicro::net
