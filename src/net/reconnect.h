// Capped exponential backoff for reconnecting peer links.
//
// A leaf whose aggregator link drops retries with delays
// base, 2*base, 4*base, ... capped at `max` (no jitter: the merge tree
// is a handful of long-lived peers, not a thundering herd, and
// determinism keeps the reconnect tests exact). A successful connection
// resets the ladder.

#ifndef UMICRO_NET_RECONNECT_H_
#define UMICRO_NET_RECONNECT_H_

#include <algorithm>
#include <cstdint>

namespace umicro::net {

/// Backoff ladder configuration.
struct BackoffOptions {
  /// First retry delay.
  int base_ms = 50;
  /// Ceiling for the doubled delays.
  int max_ms = 2000;
};

/// Capped exponential backoff state machine.
class Backoff {
 public:
  explicit Backoff(BackoffOptions options = {}) : options_(options) {
    Reset();
  }

  /// Delay to sleep before the next attempt, then advances the ladder.
  int NextDelayMs() {
    const int delay = next_ms_;
    next_ms_ = std::min(options_.max_ms, next_ms_ * 2);
    ++attempts_;
    return delay;
  }

  /// Back to the base delay (call after a successful connect).
  void Reset() {
    next_ms_ = std::max(1, options_.base_ms);
    attempts_ = 0;
  }

  /// Attempts since the last Reset().
  std::uint64_t attempts() const { return attempts_; }

  /// The delay the next NextDelayMs() will return.
  int peek_delay_ms() const { return next_ms_; }

 private:
  BackoffOptions options_;
  int next_ms_ = 0;
  std::uint64_t attempts_ = 0;
};

}  // namespace umicro::net

#endif  // UMICRO_NET_RECONNECT_H_
