// ChaosTransport: deterministic, seeded network fault injection for the
// distributed merge tree (docs/distributed.md).
//
// PR 3's FaultInjectingStream corrupts *records*; this layer corrupts
// the *wire*. When enabled (--net-chaos), every Socket send/recv/connect
// consults the process-wide ChaosTransport, which draws from one seeded
// util::Rng and may
//
//   drop       -- abort a send and tear the connection down, as if the
//                 peer vanished mid-write;
//   delay      -- sleep before a send (stale ACKs, straggler links);
//   truncate   -- deliver only a prefix of a send, then drop the link
//                 (the peer's frame decoder must reject the stump);
//   bitflip    -- flip one bit of a delivered send (the frame checksum
//                 must catch it);
//   partition  -- one-way partition a fresh connection: its reads
//                 black-hole for a window while its writes still flow.
//
// All decisions come from the one Rng, so a given seed replays the
// identical fault pattern -- the failover tests rely on that. Disabled
// (the default), every hook is a single relaxed atomic load, mirroring
// util::FailpointRegistry's disarmed fast path; the hooks stay compiled
// into release binaries at zero measurable cost (bench_dist_throughput).
//
// Surgical single-fault injection (tests that want exactly one dropped
// send rather than a probabilistic storm) goes through the failpoints
// "net.send_fail" and "net.recv_blackhole" instead.

#ifndef UMICRO_NET_CHAOS_H_
#define UMICRO_NET_CHAOS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "util/random.h"

namespace umicro::net {

/// Fault mix of the chaos layer. All probabilities are independent and
/// per operation (per send for drop/delay/truncate/bitflip, per connect
/// for partition); 0 disables that fault kind.
struct ChaosOptions {
  /// Seed of the deterministic fault pattern.
  std::uint64_t seed = 0xc4a05u;
  /// Probability a send is dropped and the link torn down.
  double drop_probability = 0.0;
  /// Probability a send is delayed by `delay_ms` first.
  double delay_probability = 0.0;
  int delay_ms = 20;
  /// Probability a send delivers only a random proper prefix, then the
  /// link is torn down.
  double truncate_probability = 0.0;
  /// Probability one random bit of a send is flipped in flight.
  double bitflip_probability = 0.0;
  /// Probability a fresh connection starts one-way partitioned: reads
  /// black-hole for `partition_ms` while writes still flow.
  double partition_probability = 0.0;
  int partition_ms = 300;
};

/// Parses a --net-chaos spec ("key=value,..." with keys drop, delay,
/// delay-ms, truncate, bitflip, partition, partition-ms); std::nullopt
/// on any malformed or out-of-range entry.
std::optional<ChaosOptions> ParseChaosSpec(const std::string& spec,
                                           std::uint64_t seed);

/// Injection tallies (deterministic given seed + operation sequence).
struct ChaosStats {
  std::uint64_t sends_dropped = 0;
  std::uint64_t sends_delayed = 0;
  std::uint64_t sends_truncated = 0;
  std::uint64_t sends_bitflipped = 0;
  std::uint64_t connects_partitioned = 0;
};

/// Process-wide wire-fault injector consulted by net::Socket. Enable()
/// is test/CLI setup; the hot-path guard is enabled().
class ChaosTransport {
 public:
  /// The process-wide instance.
  static ChaosTransport& Instance();

  /// Arms the fault mix (resets the Rng and the tallies).
  void Enable(const ChaosOptions& options);

  /// Back to the zero-cost pass-through (test teardown).
  void Disable();

  /// Hot-path guard: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// What Socket::SendAll should do to this send. Fields are applied in
  /// declaration order; at most one of drop/truncate/bitflip fires.
  struct SendPlan {
    int delay_ms = 0;
    bool drop = false;
    /// < size: deliver only this prefix, then fail the send.
    std::size_t truncate_to = std::numeric_limits<std::size_t>::max();
    /// < size * 8: flip this bit of the delivered bytes.
    std::size_t flip_bit = std::numeric_limits<std::size_t>::max();
  };
  SendPlan PlanSend(int fd, std::size_t size);

  /// Milliseconds Socket::RecvSome on `fd` should black-hole (one-way
  /// partition), bounded by `timeout_ms`; 0 = read normally.
  int RecvBlackholeMs(int fd, int timeout_ms);

  /// Called on every successful connect; may start a partition window.
  void OnConnect(int fd);

  /// Forgets per-fd state (called from Socket::Close while enabled).
  void OnClose(int fd);

  ChaosStats stats() const;

 private:
  ChaosTransport() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  ChaosOptions options_;
  util::Rng rng_{0xc4a05u};
  ChaosStats stats_;
  /// fd -> end of its one-way partition window.
  std::map<int, std::chrono::steady_clock::time_point> partitioned_;
};

}  // namespace umicro::net

#endif  // UMICRO_NET_CHAOS_H_
