#include "net/socket_stream.h"

namespace umicro::net {

SocketStreamBuf::SocketStreamBuf(Socket* socket, int read_timeout_ms)
    : socket_(socket), read_timeout_ms_(read_timeout_ms) {
  setg(in_buffer_.data(), in_buffer_.data(), in_buffer_.data());
  setp(out_buffer_.data(), out_buffer_.data() + out_buffer_.size());
}

SocketStreamBuf::int_type SocketStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  // Responses for everything read so far must be on the wire before the
  // session blocks waiting for the peer's next request.
  if (!FlushBuffer()) return traits_type::eof();
  bool timed_out = false;
  const long n =
      socket_->RecvSome(in_buffer_.data(), in_buffer_.size(),
                        read_timeout_ms_, &timed_out);
  if (n <= 0) {
    timed_out_ = timed_out;
    return traits_type::eof();
  }
  setg(in_buffer_.data(), in_buffer_.data(),
       in_buffer_.data() + static_cast<std::size_t>(n));
  return traits_type::to_int_type(*gptr());
}

SocketStreamBuf::int_type SocketStreamBuf::overflow(int_type ch) {
  if (!FlushBuffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int SocketStreamBuf::sync() { return FlushBuffer() ? 0 : -1; }

bool SocketStreamBuf::FlushBuffer() {
  const std::size_t pending = static_cast<std::size_t>(pptr() - pbase());
  if (pending > 0) {
    if (!socket_->SendAll(pbase(), pending, /*timeout_ms=*/10000)) {
      return false;
    }
    setp(out_buffer_.data(), out_buffer_.data() + out_buffer_.size());
  }
  return true;
}

}  // namespace umicro::net
