// Length-prefixed frame codec for the distributed merge tree's peer
// links (docs/distributed.md has the wire catalog).
//
// One frame on the wire:
//
//   magic(1)=0xD7 | type(1) | payload_len(4, big-endian)
//   | fnv1a64(payload)(8, big-endian) | payload bytes
//
// The magic byte doubles as the protocol sniff: the aggregator peeks the
// first byte of every accepted connection and treats 0xD7 as a framed
// peer session, anything else as a text line-protocol query session
// (no printable ASCII command starts with 0xD7). The checksum guards
// the small control frames; DELTA payloads additionally self-verify
// through the "ucheckpoint 2" body checksum they carry.
//
// The decoder is incremental and treats its input as hostile: a bad
// magic, an oversized length, or a checksum mismatch poisons the
// decoder (corrupted() becomes true) and the session layer drops the
// connection -- resynchronizing inside a corrupt TCP stream is not
// attempted.

#ifndef UMICRO_NET_FRAME_H_
#define UMICRO_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

namespace umicro::net {

/// First byte of every frame.
inline constexpr unsigned char kFrameMagic = 0xD7;

/// Frames larger than this are rejected by encoder and decoder alike
/// (a corrupt length can then no longer drive an OOM allocation).
inline constexpr std::size_t kMaxFramePayload = std::size_t{64} << 20;

/// Bytes of header before the payload.
inline constexpr std::size_t kFrameHeaderSize = 1 + 1 + 4 + 8;

/// Frame types of the dist protocol (dist/protocol.h builds payloads).
enum class FrameType : std::uint8_t {
  kHello = 1,  ///< leaf -> agg: identity + dimensionality
  kDelta = 2,  ///< leaf -> agg: sequence-numbered engine-state delta
  kAck = 3,    ///< agg -> leaf: delta applied (or deduplicated)
  kBye = 4,    ///< either: orderly session end
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kBye;
  std::string payload;
};

/// FNV-1a 64 over arbitrary bytes (the frame payload checksum; the same
/// hash the checkpoint codec uses).
std::uint64_t FrameChecksum(const std::string& payload);

/// Encodes one frame; empty string when the payload exceeds
/// kMaxFramePayload.
std::string EncodeFrame(FrameType type, const std::string& payload);

/// Incremental frame decoder: feed raw socket bytes, pop whole frames.
class FrameDecoder {
 public:
  /// Appends raw bytes and decodes as many whole frames as they
  /// complete. Ignored once corrupted.
  void Feed(const char* data, std::size_t size);

  /// Pops the next decoded frame, FIFO; std::nullopt when none is
  /// complete yet.
  std::optional<Frame> Next();

  /// True after a malformed header or checksum mismatch; the connection
  /// should be dropped.
  bool corrupted() const { return corrupted_; }

  /// Whole frames decoded so far.
  std::uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  std::string buffer_;
  std::deque<Frame> ready_;
  bool corrupted_ = false;
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace umicro::net

#endif  // UMICRO_NET_FRAME_H_
