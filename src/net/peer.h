// PeerSender: per-peer outgoing frame queue with backpressure.
//
// Every peer link in the merge tree (leaf->aggregator delta plane,
// aggregator->leaf ack plane) sends through one of these: callers
// enqueue encoded frames, a dedicated writer thread drains them onto
// the socket in order. The queue is bounded by a byte budget; Enqueue
// blocks while the budget is exhausted (backpressure toward the
// producer -- a leaf that outruns a slow aggregator link stalls its
// shipper, never the ingest path, and never queues unbounded memory).
//
// The sender never owns the socket. On a send error it marks itself
// broken and drains blocked producers; the owning session tears the
// connection down and (leaf side) reconnects with backoff.

#ifndef UMICRO_NET_PEER_H_
#define UMICRO_NET_PEER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "net/socket.h"

namespace umicro::net {

/// PeerSender configuration.
struct PeerSenderOptions {
  /// Enqueue blocks while this many payload bytes are already queued.
  std::size_t max_queue_bytes = std::size_t{16} << 20;
  /// Per-chunk socket send timeout; a peer stuck longer than this
  /// breaks the link (the leaf's straggler/reconnect machinery takes
  /// over from there).
  int send_timeout_ms = 10000;
};

/// Ordered, bounded, threaded sender over one socket.
class PeerSender {
 public:
  /// `socket` must outlive the sender (or outlive Stop()).
  PeerSender(Socket* socket, PeerSenderOptions options);

  /// Stops the writer (pending frames are dropped) and joins it.
  ~PeerSender();

  PeerSender(const PeerSender&) = delete;
  PeerSender& operator=(const PeerSender&) = delete;

  /// Enqueues one already-encoded frame, blocking while the byte budget
  /// is exhausted. Returns false (frame dropped) once the link is
  /// broken or stopped.
  bool Enqueue(std::string encoded_frame);

  /// Blocks until the queue is empty or the link broke; true when
  /// everything enqueued so far reached the socket.
  bool Drain();

  /// Signals the writer to stop and joins it.
  void Stop();

  /// True after a socket send failed (link is dead).
  bool broken() const;

  /// Frames / bytes handed to the socket so far.
  std::uint64_t frames_sent() const;
  std::uint64_t bytes_sent() const;
  /// Enqueue calls that had to block on the byte budget.
  std::uint64_t enqueue_blocks() const;

 private:
  void WriterLoop();

  Socket* const socket_;
  const PeerSenderOptions options_;

  mutable std::mutex mu_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_changed_;
  std::deque<std::string> queue_;
  std::size_t queued_bytes_ = 0;
  bool stop_ = false;
  bool broken_ = false;
  bool writing_ = false;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t enqueue_blocks_ = 0;

  std::thread writer_;
};

}  // namespace umicro::net

#endif  // UMICRO_NET_PEER_H_
