#include "net/chaos.h"

#include <algorithm>
#include <cstdlib>

namespace umicro::net {

std::optional<ChaosOptions> ParseChaosSpec(const std::string& spec,
                                           std::uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  std::size_t start = 0;
  while (start < spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return std::nullopt;  // "key", "=v", and "key=" are all malformed
    }
    const std::string key = item.substr(0, eq);
    char* parse_end = nullptr;
    const double value = std::strtod(item.c_str() + eq + 1, &parse_end);
    if (parse_end != item.c_str() + item.size()) return std::nullopt;
    if (key == "delay-ms" || key == "partition-ms") {
      if (value < 1.0) return std::nullopt;
      (key == "delay-ms" ? options.delay_ms : options.partition_ms) =
          static_cast<int>(value);
      continue;
    }
    if (value < 0.0 || value > 1.0) return std::nullopt;
    if (key == "drop") {
      options.drop_probability = value;
    } else if (key == "delay") {
      options.delay_probability = value;
    } else if (key == "truncate") {
      options.truncate_probability = value;
    } else if (key == "bitflip") {
      options.bitflip_probability = value;
    } else if (key == "partition") {
      options.partition_probability = value;
    } else {
      return std::nullopt;
    }
  }
  return options;
}

ChaosTransport& ChaosTransport::Instance() {
  static ChaosTransport* instance = new ChaosTransport();
  return *instance;
}

void ChaosTransport::Enable(const ChaosOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  rng_ = util::Rng(options.seed);
  stats_ = ChaosStats{};
  partitioned_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void ChaosTransport::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  partitioned_.clear();
}

ChaosTransport::SendPlan ChaosTransport::PlanSend(int fd, std::size_t size) {
  (void)fd;
  SendPlan plan;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed) || size == 0) return plan;
  if (options_.delay_probability > 0.0 &&
      rng_.NextDouble() < options_.delay_probability) {
    plan.delay_ms = options_.delay_ms;
    ++stats_.sends_delayed;
  }
  // At most one destructive fault per send, chosen in fixed order so a
  // seed replays the identical pattern.
  if (options_.drop_probability > 0.0 &&
      rng_.NextDouble() < options_.drop_probability) {
    plan.drop = true;
    ++stats_.sends_dropped;
    return plan;
  }
  if (options_.truncate_probability > 0.0 &&
      rng_.NextDouble() < options_.truncate_probability) {
    plan.truncate_to =
        static_cast<std::size_t>(rng_.NextBounded(size));  // proper prefix
    ++stats_.sends_truncated;
    return plan;
  }
  if (options_.bitflip_probability > 0.0 &&
      rng_.NextDouble() < options_.bitflip_probability) {
    plan.flip_bit = static_cast<std::size_t>(rng_.NextBounded(size * 8));
    ++stats_.sends_bitflipped;
  }
  return plan;
}

int ChaosTransport::RecvBlackholeMs(int fd, int timeout_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return 0;
  const auto it = partitioned_.find(fd);
  if (it == partitioned_.end()) return 0;
  const auto now = std::chrono::steady_clock::now();
  if (now >= it->second) {
    partitioned_.erase(it);
    return 0;
  }
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(it->second - now)
          .count();
  return std::min<int>(timeout_ms, static_cast<int>(std::max<long long>(
                                       1, remaining)));
}

void ChaosTransport::OnConnect(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (options_.partition_probability > 0.0 &&
      rng_.NextDouble() < options_.partition_probability) {
    partitioned_[fd] =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.partition_ms);
    ++stats_.connects_partitioned;
  }
}

void ChaosTransport::OnClose(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_.erase(fd);
}

ChaosStats ChaosTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace umicro::net
