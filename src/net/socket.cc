#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "net/chaos.h"
#include "util/failpoints.h"

namespace umicro::net {

std::string SocketAddress::ToString() const {
  return host + ":" + std::to_string(port);
}

std::optional<SocketAddress> ParseHostPort(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return std::nullopt;
  }
  SocketAddress address;
  address.host = text.substr(0, colon);
  if (address.host == "localhost") address.host = "127.0.0.1";
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end != port_text.c_str() + port_text.size() || port > 65535) {
    return std::nullopt;
  }
  in_addr parsed{};
  if (::inet_pton(AF_INET, address.host.c_str(), &parsed) != 1) {
    return std::nullopt;
  }
  address.port = static_cast<std::uint16_t>(port);
  return address;
}

namespace {

bool FillSockaddr(const SocketAddress& address, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(address.port);
  return ::inet_pton(AF_INET, address.host.c_str(), &out->sin_addr) == 1;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::Wait(bool want_read, int timeout_ms) const {
  if (fd_ < 0) return false;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = want_read ? POLLIN : POLLOUT;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return false;
    return (pfd.revents & (pfd.events | POLLHUP | POLLERR)) != 0;
  }
}

bool Socket::SendRaw(const void* data, std::size_t size, int timeout_ms) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    if (!Wait(/*want_read=*/false, timeout_ms)) return false;
    const ssize_t n =
        ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::SendAll(const void* data, std::size_t size, int timeout_ms) {
  if (UMICRO_FAILPOINT("net.send_fail")) {
    ShutdownBoth();
    return false;
  }
  ChaosTransport& chaos = ChaosTransport::Instance();
  if (chaos.enabled()) {
    const ChaosTransport::SendPlan plan = chaos.PlanSend(fd_, size);
    if (plan.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
    }
    if (plan.drop) {
      ShutdownBoth();
      return false;
    }
    if (plan.truncate_to < size) {
      SendRaw(data, plan.truncate_to, timeout_ms);
      ShutdownBoth();
      return false;
    }
    if (plan.flip_bit < size * 8) {
      std::string mangled(static_cast<const char*>(data), size);
      mangled[plan.flip_bit / 8] ^=
          static_cast<char>(1u << (plan.flip_bit % 8));
      return SendRaw(mangled.data(), mangled.size(), timeout_ms);
    }
  }
  return SendRaw(data, size, timeout_ms);
}

long Socket::RecvSome(void* data, std::size_t size, int timeout_ms,
                      bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (UMICRO_FAILPOINT("net.recv_blackhole")) {
    if (timed_out != nullptr) *timed_out = true;
    return 0;
  }
  ChaosTransport& chaos = ChaosTransport::Instance();
  if (chaos.enabled()) {
    // One-way partition: writes flow, reads see nothing for a window.
    const int hole = chaos.RecvBlackholeMs(fd_, timeout_ms);
    if (hole > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(hole));
      if (timed_out != nullptr) *timed_out = true;
      return 0;
    }
  }
  if (!Wait(/*want_read=*/true, timeout_ms)) {
    if (timed_out != nullptr) *timed_out = true;
    return 0;
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (timed_out != nullptr) *timed_out = true;
      return 0;
    }
    return static_cast<long>(n);
  }
}

long Socket::PeekSome(void* data, std::size_t size, int timeout_ms,
                      bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (!Wait(/*want_read=*/true, timeout_ms)) {
    if (timed_out != nullptr) *timed_out = true;
    return 0;
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, MSG_PEEK);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (timed_out != nullptr) *timed_out = true;
      return 0;
    }
    return static_cast<long>(n);
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ChaosTransport& chaos = ChaosTransport::Instance();
    if (chaos.enabled()) chaos.OnClose(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpListener> TcpListener::Listen(
    const SocketAddress& address) {
  sockaddr_in addr{};
  if (!FillSockaddr(address, &addr)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  Socket socket(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    return std::nullopt;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  std::uint16_t port = address.port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port = ntohs(bound.sin_port);
  }
  return TcpListener(std::move(socket), port);
}

std::optional<Socket> TcpListener::Accept(int timeout_ms) {
  if (!socket_.valid()) return std::nullopt;
  pollfd pfd{};
  pfd.fd = socket_.fd();
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return std::nullopt;
    break;
  }
  const int fd = ::accept4(socket_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return std::nullopt;
  SetNoDelay(fd);
  return Socket(fd);
}

std::optional<Socket> TcpConnect(const SocketAddress& address,
                                 int timeout_ms) {
  sockaddr_in addr{};
  if (!FillSockaddr(address, &addr)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  Socket socket(fd);
  // Connect with a deadline: switch to non-blocking for the handshake,
  // then back to blocking for the steady-state send/recv paths.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return std::nullopt;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) return std::nullopt;
    int error = 0;
    socklen_t error_len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0 ||
        error != 0) {
      return std::nullopt;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  SetNoDelay(fd);
  ChaosTransport& chaos = ChaosTransport::Instance();
  if (chaos.enabled()) chaos.OnConnect(fd);
  return socket;
}

}  // namespace umicro::net
