// SocketStream: std::iostream over a connected socket.
//
// Turns one TCP connection into the istream/ostream pair
// serve::ServeLineProtocol expects, which is what makes the PR 5 line
// protocol network-reachable without a second parser: the aggregator
// wraps each accepted query connection in a SocketStream and hands it
// straight to the existing server loop. Reads are bounded by a poll
// timeout so a silent peer cannot pin a session thread forever; a
// timeout surfaces as EOF (the session ends, the protocol state cannot
// desync because responses are only written between whole lines).

#ifndef UMICRO_NET_SOCKET_STREAM_H_
#define UMICRO_NET_SOCKET_STREAM_H_

#include <array>
#include <cstddef>
#include <istream>
#include <streambuf>

#include "net/socket.h"

namespace umicro::net {

/// streambuf bridging a Socket; used via SocketStream below.
class SocketStreamBuf : public std::streambuf {
 public:
  /// `socket` must outlive the stream. `read_timeout_ms` bounds every
  /// refill; expiry reads as EOF.
  SocketStreamBuf(Socket* socket, int read_timeout_ms);

  /// True when the last EOF came from the read timeout rather than an
  /// orderly peer close -- how the aggregator tells a slow-loris query
  /// session apart from a client that hung up.
  bool timed_out() const { return timed_out_; }

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool FlushBuffer();

  Socket* const socket_;
  const int read_timeout_ms_;
  bool timed_out_ = false;
  std::array<char, 4096> in_buffer_;
  std::array<char, 4096> out_buffer_;
};

/// iostream facade over one socket.
class SocketStream : public std::iostream {
 public:
  explicit SocketStream(Socket* socket, int read_timeout_ms = 60000)
      : std::iostream(&buf_), buf_(socket, read_timeout_ms) {}

  /// See SocketStreamBuf::timed_out().
  bool timed_out() const { return buf_.timed_out(); }

 private:
  SocketStreamBuf buf_;
};

}  // namespace umicro::net

#endif  // UMICRO_NET_SOCKET_STREAM_H_
