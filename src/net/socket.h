// Minimal POSIX TCP wrappers for the distributed tier (docs/distributed.md).
//
// Everything here is loopback/LAN plumbing, not a general networking
// library: RAII sockets, a listener with a non-blocking (poll-based)
// accept loop, and timeout-bounded connect/send/recv so no thread in the
// merge tree can block forever on a dead peer. All calls are safe under
// TSan-instrumented concurrent use as long as at most one thread reads
// and one thread writes a given socket at a time (the contract the
// net::PeerSender / dist session threads follow).

#ifndef UMICRO_NET_SOCKET_H_
#define UMICRO_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace umicro::net {

/// An IPv4 host:port pair.
struct SocketAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string ToString() const;
};

/// Parses "host:port" (IPv4 literal or name resolvable by inet_pton;
/// names other than "localhost" are not resolved). Returns std::nullopt
/// on malformed input or an out-of-range port.
std::optional<SocketAddress> ParseHostPort(const std::string& text);

/// RAII wrapper over one connected (or accepted) TCP socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the whole buffer, waiting up to `timeout_ms` for writability
  /// at each step. False on error/timeout/peer close. When the chaos
  /// layer (net/chaos.h) is enabled, the send may be delayed, dropped,
  /// truncated, or bit-flipped per its seeded plan.
  bool SendAll(const void* data, std::size_t size, int timeout_ms);

  /// Receives up to `size` bytes. Returns bytes read (>0), 0 on orderly
  /// peer close or timeout with no data (distinguish via `*timed_out`),
  /// -1 on error.
  long RecvSome(void* data, std::size_t size, int timeout_ms,
                bool* timed_out = nullptr);

  /// Like RecvSome but leaves the bytes in the socket (MSG_PEEK).
  long PeekSome(void* data, std::size_t size, int timeout_ms,
                bool* timed_out = nullptr);

  /// Half/full shutdown; unblocks a peer (or sibling thread) blocked in
  /// recv on this socket.
  void ShutdownBoth();

  void Close();

 private:
  /// Waits for readability (`want_read`) or writability; true when ready.
  bool Wait(bool want_read, int timeout_ms) const;

  /// The undisturbed send loop SendAll wraps (chaos applies above it).
  bool SendRaw(const void* data, std::size_t size, int timeout_ms);

  int fd_ = -1;
};

/// Listening TCP socket with a poll-based accept loop.
class TcpListener {
 public:
  /// Binds and listens on `address` (port 0 picks an ephemeral port,
  /// re-readable via port()). std::nullopt on bind/listen failure.
  static std::optional<TcpListener> Listen(const SocketAddress& address);

  TcpListener(TcpListener&&) = default;
  TcpListener& operator=(TcpListener&&) = default;

  /// Waits up to `timeout_ms` for one incoming connection; std::nullopt
  /// on timeout or when the listener has been closed from another
  /// thread. The accepted socket is blocking with TCP_NODELAY set.
  std::optional<Socket> Accept(int timeout_ms);

  /// The bound port (resolves port 0 to the kernel's pick).
  std::uint16_t port() const { return port_; }

  /// Wakes a concurrent Accept (poll reports the shutdown and accept
  /// fails), which then returns std::nullopt. Only reads the fd, so it
  /// is safe against a racing Accept; Close() is not -- call it only
  /// after the accepting thread has been joined.
  void Shutdown() { socket_.ShutdownBoth(); }

  /// Closes the listening socket. Not safe against a concurrent
  /// Accept: Shutdown() and join the accept thread first.
  void Close() { socket_.Close(); }

 private:
  TcpListener(Socket socket, std::uint16_t port)
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to `address`, waiting up to `timeout_ms`. The returned
/// socket is blocking with TCP_NODELAY set. std::nullopt on
/// failure/timeout.
std::optional<Socket> TcpConnect(const SocketAddress& address,
                                 int timeout_ms);

}  // namespace umicro::net

#endif  // UMICRO_NET_SOCKET_H_
