// Expected-distance computations between an uncertain point and an
// uncertain micro-cluster (Lemmas 2.1 / 2.2) and the dimension-counting
// similarity function built on top of them.

#ifndef UMICRO_CORE_EXPECTED_DISTANCE_H_
#define UMICRO_CORE_EXPECTED_DISTANCE_H_

#include <cstddef>
#include <vector>

#include "core/cluster_feature.h"
#include "stream/point.h"

namespace umicro::core {

/// Lemma 2.2, one dimension: the expected squared distance along
/// dimension j between uncertain point X (instantiation x, error psi)
/// and the uncertain centroid Z of cluster C,
///   E[||X - Z||_j^2] = CF1_j^2/n^2 + EF2_j/n^2 + psi_j^2 + x_j^2
///                      - 2 x_j CF1_j / n.
/// Requires a non-empty cluster. The value can dip microscopically below
/// zero from cancellation; callers clamp where it matters.
///
/// Defined inline: this is the innermost operation of the algorithm
/// (evaluated per cluster per dimension per point) and must inline into
/// the scan loops.
inline double ExpectedSquaredDistanceAt(const stream::UncertainPoint& point,
                                        const ErrorClusterFeature& cluster,
                                        std::size_t j) {
  const double n = cluster.weight();
  const double cf1 = cluster.cf1()[j];
  const double x = point.values[j];
  const double psi = point.ErrorAt(j);
  return cf1 * cf1 / (n * n) + cluster.ef2()[j] / (n * n) + psi * psi +
         x * x - 2.0 * x * cf1 / n;
}

/// Lemma 2.2, summed over dimensions: v = E[||X - Z||^2].
double ExpectedSquaredDistance(const stream::UncertainPoint& point,
                               const ErrorClusterFeature& cluster);

/// Lemma 2.2 minus the cluster-error term EF2_j/n^2, one dimension.
///
/// The EF2_j/n^2 term of the expected distance shrinks as a cluster
/// grows, so the raw Lemma 2.2 value systematically favors heavier
/// clusters when used to *compare* clusters -- under strong noise this
/// rich-get-richer bias collapses the clustering into one giant cluster.
/// Dropping the cluster-dependent term (and keeping the point's own
/// psi_j^2, which is identical across candidate clusters) yields a value
/// that is safe to compare across clusters while still reflecting how
/// uncertain the point's own measurement is.
inline double ComparableSquaredDistanceAt(
    const stream::UncertainPoint& point, const ErrorClusterFeature& cluster,
    std::size_t j) {
  const double n = cluster.weight();
  return ExpectedSquaredDistanceAt(point, cluster, j) -
         cluster.ef2()[j] / (n * n);
}

/// The purely geometric squared distance between the instantiation x and
/// the expected centroid E[Z] = CF1/n along dimension j. Equals Lemma
/// 2.2 minus both error terms (psi_j^2 and EF2_j/n^2).
inline double GeometricSquaredDistanceAt(const stream::UncertainPoint& point,
                                         const ErrorClusterFeature& cluster,
                                         std::size_t j) {
  const double diff = point.values[j] - cluster.cf1()[j] / cluster.weight();
  return diff * diff;
}

/// Geometric squared distance summed over dimensions, clamped at 0.
double GeometricSquaredDistance(const stream::UncertainPoint& point,
                                const ErrorClusterFeature& cluster);

/// How the per-dimension distance inside the similarity is computed.
enum class DistanceForm {
  /// Lemma 2.2 verbatim (includes the cluster's EF2_j/n^2 term). The
  /// paper-literal form and the default.
  kPaperExpected,
  /// The bias-corrected form: Lemma 2.2 minus the cluster-error term
  /// (see ComparableSquaredDistanceAt). An engineering alternative
  /// studied by ablation A7.
  kComparable,
};

/// The dimension-counting similarity of Section II-B: for each dimension
/// j it adds max{0, 1 - dist_j^2 / (thresh * sigma_j^2)}, where
/// sigma_j^2 is the global variance of the data along dimension j and
/// dist_j^2 is the expected squared distance in the chosen form.
/// Dimensions whose distance exceeds thresh*sigma_j^2 -- typically the
/// heavily uncertain ones, since psi_j^2 inflates dist_j^2 -- contribute
/// nothing and are thereby pruned from the comparison. Larger return
/// values mean more similar. Dimensions with sigma_j^2 <= 0 are skipped.
double DimensionCountingSimilarity(
    const stream::UncertainPoint& point, const ErrorClusterFeature& cluster,
    const std::vector<double>& global_variances, double thresh,
    DistanceForm form = DistanceForm::kComparable);

}  // namespace umicro::core

#endif  // UMICRO_CORE_EXPECTED_DISTANCE_H_
