// EngineCore: one engine's complete algorithm state behind one compact
// object -- the umappp Status pattern (all mutable state of a run owned
// by a single movable handle with a driver API).
//
// Everything that used to live inline in UMicroEngine -- the online
// UMicro component, the pyramidal snapshot store, the stream clock, the
// snapshot-cadence bookkeeping, and the optional snapshot-sink hookup --
// is extracted here so that two very different owners can drive it:
//
//   * UMicroEngine wraps one EngineCore plus a metrics registry and
//     keeps the public ClusteringEngine contract unchanged;
//   * the fleet's TenantHandle owns one EngineCore per tenant --
//     hundreds of thousands of them in one process -- with no
//     per-tenant registry, virtual dispatch, or facade overhead.
//
// EngineCore itself is deliberately registry-free: AttachMetrics wires
// the optional instruments (the sequential engine attaches its own
// registry; fleet tenants leave it detached and the fleet records
// batch-level fleet.* metrics instead). Exported state therefore never
// includes metric cells; owners that persist them add them on top.

#ifndef UMICRO_CORE_ENGINE_CORE_H_
#define UMICRO_CORE_ENGINE_CORE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/horizon.h"
#include "core/snapshot.h"
#include "core/umicro.h"
#include "obs/metrics.h"
#include "stream/point.h"

namespace umicro::core {

/// Complete serializable state of a running engine -- the unit of a
/// crash-safe checkpoint (see io/state_io.h for the on-disk format and
/// resilience/checkpoint.h for the write/recover machinery).
///
/// The ECF statistics inside are additive and carry no hidden process
/// state, so restoring this into a freshly constructed, identically
/// configured engine and replaying the stream from `points_processed()`
/// onward reproduces the uninterrupted run exactly (the no-double-count
/// invariant the crash-recovery suite asserts).
struct EngineState {
  /// Concrete engine tag ("umicro" or "sharded"); restore refuses a
  /// mismatch.
  std::string engine_kind;
  /// Stream dimensionality the state was exported under.
  std::size_t dimensions = 0;
  /// Per-shard algorithm states; exactly one entry for the sequential
  /// engine, one per worker for the sharded engine (its post-merge
  /// residuals -- the shard-private statistics as of the flushed
  /// checkpoint instant).
  std::vector<UMicroState> shard_states;
  /// Sharded only: the merged global view at checkpoint time.
  std::vector<MicroCluster> global_clusters;
  /// Sharded only: coordinator counters (ingest total, round-robin
  /// cursor) so partitioning resumes exactly where it stopped.
  std::uint64_t points_ingested = 0;
  std::uint64_t next_round_robin = 0;
  /// Pyramidal snapshot-store contents.
  SnapshotStoreState store;
  /// Engine stream clock.
  std::uint64_t next_tick = 1;
  std::uint64_t since_snapshot = 0;
  double last_timestamp = 0.0;
  /// Counter/gauge cells of the owner's metrics registry at checkpoint
  /// time; empty for registry-free owners (fleet tenants). Histograms
  /// are not restorable and restart empty after recovery.
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

/// The handle-owned sequential engine state: online component +
/// pyramidal store + stream clock, with the cadence-snapshot driver.
///
/// Single-threaded: all calls must come from one thread at a time (an
/// owner that hands the core between threads -- the fleet's workers and
/// coordinator -- provides its own exclusion).
class EngineCore {
 public:
  /// Creates the state for `dimensions`-dimensional streams.
  EngineCore(std::size_t dimensions, const EngineOptions& options);

  EngineCore(const EngineCore&) = delete;
  EngineCore& operator=(const EngineCore&) = delete;

  /// Ingests one point, taking the cadence snapshot when due.
  void Process(const stream::UncertainPoint& point);

  /// Batched ingest: identical point-by-point semantics, but the batch
  /// is chunked at snapshot-cadence boundaries so the online component
  /// ingests each chunk in one amortized ProcessBatch call and every
  /// due snapshot is still taken at exactly the right point count.
  void ProcessBatch(std::span<const stream::UncertainPoint> points);

  /// Clusters the most recent `horizon` time units into `options.k`
  /// macro-clusters. Returns std::nullopt before any data or when the
  /// window is empty.
  std::optional<HorizonClustering> ClusterRecent(
      double horizon, const MacroClusteringOptions& options);

  /// With a sink attached, publishes a fresh "current" view of the live
  /// state (no-op before any data).
  void Flush();

  /// Attaches a snapshot sink (nullptr detaches): primes it with every
  /// retained snapshot plus the live state, then keeps publishing on
  /// cadence and on Flush(). Attaching the sink that is already
  /// attached is a no-op (idempotent -- the fleet's serve path relies
  /// on this to never double-prime a replica's retention rings).
  void AttachSnapshotSink(SnapshotSink* sink);

  /// The currently attached sink (nullptr when detached).
  SnapshotSink* sink() const { return sink_; }

  /// Attaches a metrics registry (nullptr detaches, the default): the
  /// online component's "umicro." instruments plus the engine-level
  /// "snapshot." take counters/timers. The registry must outlive this
  /// core.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Captures the complete durable state. Metric cells are left empty
  /// (EngineCore is registry-free); owners append their own.
  EngineState ExportState() const;

  /// Restores a previously exported state into this freshly
  /// constructed, same-configured core. Returns false (core untouched)
  /// when the state's kind or dimensionality does not match.
  bool RestoreState(const EngineState& state);

  /// Online component (current micro-clusters, diagnostics).
  const UMicro& online() const { return online_; }

  /// Snapshot store (inspection / persistence).
  const SnapshotStore& store() const { return store_; }

  /// Points ingested so far.
  std::size_t points_processed() const { return online_.points_processed(); }

  /// Newest timestamp seen (the engine clock's decay anchor).
  double last_timestamp() const { return last_timestamp_; }

  /// Configured options.
  const EngineOptions& options() const { return options_; }

 private:
  /// Takes the cadence snapshot: stores it, publishes it to the sink.
  void TakeCadenceSnapshot();

  /// Refreshes the snapshot.{bytes,frames,delta_ratio} gauges and feeds
  /// the cumulative store counters (reconstructions, spills) into the
  /// registry as deltas since the last publication.
  void PublishStoreMetrics();

  EngineOptions options_;
  UMicro online_;
  SnapshotStore store_;
  SnapshotSink* sink_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* snapshot_micros_ = nullptr;
  obs::Counter* snapshots_taken_ = nullptr;
  obs::Gauge* snapshots_stored_ = nullptr;
  obs::Gauge* snapshot_bytes_ = nullptr;
  obs::Gauge* snapshot_frames_ = nullptr;
  obs::Gauge* snapshot_delta_ratio_ = nullptr;
  obs::Counter* snapshot_reconstructions_ = nullptr;
  obs::Counter* snapshot_spills_ = nullptr;
  std::uint64_t published_reconstructions_ = 0;
  std::uint64_t published_spills_ = 0;
  std::uint64_t next_tick_ = 1;
  std::size_t since_snapshot_ = 0;
  double last_timestamp_ = 0.0;
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_ENGINE_CORE_H_
