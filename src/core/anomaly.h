// Streaming anomaly detection on top of UMicro.
//
// A record that cannot be absorbed by any existing micro-cluster is a
// novelty; a sustained burst of novelties signals a new pattern (e.g.
// the attack bursts of the intrusion scenario). This wrapper drives a
// UMicro instance, tracks the recent novelty rate with an exponential
// moving average, and scores each record by how far it fell outside its
// nearest cluster's uncertainty boundary.

#ifndef UMICRO_CORE_ANOMALY_H_
#define UMICRO_CORE_ANOMALY_H_

#include <cstddef>

#include "core/umicro.h"
#include "stream/point.h"

namespace umicro::core {

/// Configuration of the anomaly layer.
struct AnomalyOptions {
  /// The underlying clusterer's configuration.
  UMicroOptions umicro;
  /// EMA factor for the novelty-rate estimate (per record).
  double rate_smoothing = 0.01;
  /// A record is flagged anomalous when it is a novelty and the recent
  /// novelty rate exceeds this threshold (bursts, not lone outliers).
  double burst_rate_threshold = 0.2;
  /// Records processed before burst flagging starts: the cold-start
  /// phase creates micro-clusters for everything and is inherently
  /// "bursty" without being anomalous.
  std::size_t warmup_points = 200;
};

/// Verdict for one record.
struct AnomalyVerdict {
  /// True when the record created a new micro-cluster (novelty).
  bool novel = false;
  /// True when the record is part of a novelty burst.
  bool burst = false;
  /// Expected distance to the chosen cluster (0 for the first record).
  double expected_distance = 0.0;
  /// Smoothed recent novelty rate after this record.
  double novelty_rate = 0.0;
};

/// UMicro-backed streaming anomaly detector.
class AnomalyDetector {
 public:
  AnomalyDetector(std::size_t dimensions, AnomalyOptions options);

  /// Processes one record and returns its verdict.
  AnomalyVerdict Process(const stream::UncertainPoint& point);

  /// The underlying clusterer (inspection).
  const UMicro& clusterer() const { return clusterer_; }

  /// Smoothed novelty rate right now.
  double novelty_rate() const { return novelty_rate_; }

  /// Total records flagged as burst anomalies.
  std::size_t burst_count() const { return burst_count_; }

 private:
  AnomalyOptions options_;
  UMicro clusterer_;
  double novelty_rate_ = 0.0;
  std::size_t burst_count_ = 0;
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_ANOMALY_H_
