// A live micro-cluster: ECF statistics plus bookkeeping the algorithm
// needs (identity, creation time) and evaluation-only label histograms.

#ifndef UMICRO_CORE_MICROCLUSTER_H_
#define UMICRO_CORE_MICROCLUSTER_H_

#include <cstdint>

#include "core/cluster_feature.h"
#include "stream/clusterer.h"
#include "stream/point.h"

namespace umicro::core {

/// One micro-cluster maintained by the UMicro algorithm.
///
/// `labels` accumulates ground-truth label weights for evaluation (cluster
/// purity); it never influences clustering decisions. Under time decay the
/// histogram is scaled together with the ECF so purity reflects the same
/// weighting as the statistics.
struct MicroCluster {
  /// Stable identity, used to match clusters across snapshots for the
  /// subtractive horizon computation.
  std::uint64_t id = 0;
  /// Timestamp of the point that created this cluster.
  double creation_time = 0.0;
  /// The additive error-based statistics.
  ErrorClusterFeature ecf;
  /// Evaluation-only ground-truth histogram.
  stream::LabelHistogram labels;

  MicroCluster() = default;

  /// Creates a singleton cluster from `point`.
  MicroCluster(std::uint64_t cluster_id, const stream::UncertainPoint& point,
               double weight = 1.0)
      : id(cluster_id),
        creation_time(point.timestamp),
        ecf(ErrorClusterFeature::FromPoint(point, weight)) {
    if (point.label != stream::kUnlabeled) labels[point.label] += weight;
  }

  /// Folds `point` into the statistics and the label histogram.
  void AddPoint(const stream::UncertainPoint& point, double weight = 1.0) {
    ecf.AddPoint(point, weight);
    if (point.label != stream::kUnlabeled) labels[point.label] += weight;
  }

  /// Applies one decay step to statistics and histogram alike.
  void Decay(double factor) {
    ecf.Scale(factor);
    for (auto& [label, w] : labels) w *= factor;
  }
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_MICROCLUSTER_H_
