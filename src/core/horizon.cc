#include "core/horizon.h"

#include "util/check.h"

namespace umicro::core {

std::optional<HorizonClustering> ClusterOverHorizon(
    const SnapshotStore& store, const Snapshot& current, double horizon,
    const MacroClusteringOptions& options) {
  UMICRO_CHECK(horizon > 0.0);
  const auto older = store.FindNearest(current.time - horizon);
  if (!older.has_value()) return std::nullopt;
  if (older->time > current.time) return std::nullopt;

  HorizonClustering result;
  result.realized_horizon = current.time - older->time;
  result.window = SubtractSnapshot(current, *older);
  if (result.window.empty()) return std::nullopt;
  result.macro = ClusterMicroClusters(result.window, options);
  return result;
}

}  // namespace umicro::core
