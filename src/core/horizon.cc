#include "core/horizon.h"

#include "obs/scoped_timer.h"
#include "util/check.h"

namespace umicro::core {

std::optional<HorizonClustering> ClusterOverHorizon(
    const SnapshotStore& store, const Snapshot& current, double horizon,
    const MacroClusteringOptions& options, obs::MetricsRegistry* metrics) {
  UMICRO_CHECK(horizon > 0.0);
  if (metrics != nullptr) metrics->GetCounter("horizon.queries").Increment();
  const auto older = store.FindNearest(current.time - horizon);
  if (!older.has_value()) return std::nullopt;
  if (older->time > current.time) return std::nullopt;

  HorizonClustering result;
  result.realized_horizon = current.time - older->time;
  {
    const obs::ScopedTimer timer(
        metrics != nullptr
            ? &metrics->GetHistogram("snapshot.subtract_micros")
            : nullptr);
    result.window = SubtractSnapshot(current, *older);
  }
  if (result.window.empty()) return std::nullopt;
  {
    const obs::ScopedTimer timer(
        metrics != nullptr ? &metrics->GetHistogram("horizon.macro_micros")
                           : nullptr);
    result.macro = ClusterMicroClusters(result.window, options);
  }
  return result;
}

}  // namespace umicro::core
