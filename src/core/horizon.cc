#include "core/horizon.h"

#include "obs/scoped_timer.h"
#include "util/check.h"

namespace umicro::core {

namespace {

/// Bucket bounds for the realized-horizon fidelity histogram: ratios
/// cluster tightly around 1.0, so the resolution sits there.
std::vector<double> RealizedRatioBounds() {
  return {0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 4.0};
}

}  // namespace

std::optional<HorizonClustering> ClusterWindow(
    const Snapshot& current, const Snapshot& older, double horizon,
    double decay_lambda, const MacroClusteringOptions& options,
    obs::MetricsRegistry* metrics) {
  UMICRO_CHECK(horizon > 0.0);
  UMICRO_CHECK(older.time <= current.time);

  HorizonClustering result;
  result.realized_horizon = current.time - older.time;
  result.realized_ratio = result.realized_horizon / horizon;
  if (metrics != nullptr) {
    metrics->GetHistogram("horizon.realized_ratio", RealizedRatioBounds())
        .Record(result.realized_ratio);
  }
  {
    const obs::ScopedTimer timer(
        metrics != nullptr
            ? &metrics->GetHistogram("snapshot.subtract_micros")
            : nullptr);
    result.window = SubtractSnapshot(current, older, decay_lambda);
  }
  if (result.window.empty()) return std::nullopt;
  {
    const obs::ScopedTimer timer(
        metrics != nullptr ? &metrics->GetHistogram("horizon.macro_micros")
                           : nullptr);
    result.macro = ClusterMicroClusters(result.window, options);
  }
  return result;
}

std::optional<HorizonClustering> ClusterOverHorizon(
    const SnapshotStore& store, const Snapshot& current, double horizon,
    const MacroClusteringOptions& options, obs::MetricsRegistry* metrics,
    double decay_lambda) {
  UMICRO_CHECK(horizon > 0.0);
  if (metrics != nullptr) metrics->GetCounter("horizon.queries").Increment();
  // Prefer the snapshot at or before t_c - h: its window covers at least
  // the requested horizon. FindNearest could return a snapshot newer
  // than t_c - h -- arbitrarily close to t_c -- silently collapsing the
  // realized horizon; it remains only as the fallback when the horizon
  // predates everything retained (where "nearest" is the earliest
  // stored snapshot and the shortfall is unavoidable).
  auto older = store.FindAtOrBefore(current.time - horizon);
  if (!older.has_value()) {
    // The horizon predates every retained frame: the answer is clamped
    // to the oldest window we can realize. Degraded, and observable --
    // the caller sees realized_ratio < 1 and the counter flags it even
    // when nobody inspects the ratio.
    older = store.FindNearest(current.time - horizon);
    if (older.has_value() && metrics != nullptr) {
      metrics->GetCounter("snapshot.horizon_clamped").Increment();
    }
  }
  if (!older.has_value()) return std::nullopt;
  if (older->time > current.time) return std::nullopt;
  return ClusterWindow(current, *older, horizon, decay_lambda, options,
                       metrics);
}

}  // namespace umicro::core
