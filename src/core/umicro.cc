#include "core/umicro.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/expected_distance.h"
#include "obs/scoped_timer.h"
#include "util/check.h"

namespace umicro::core {

UMicro::UMicro(std::size_t dimensions, UMicroOptions options)
    : dimensions_(dimensions),
      options_(options),
      table_(dimensions),
      welford_(dimensions),
      global_variances_(dimensions, 0.0),
      scaled_inverse_variances_(dimensions, 0.0) {
  UMICRO_CHECK(dimensions > 0);
  UMICRO_CHECK(options_.num_micro_clusters > 0);
  UMICRO_CHECK(options_.boundary_factor > 0.0);
  UMICRO_CHECK(options_.dimension_threshold > 0.0);
  UMICRO_CHECK(options_.decay_lambda >= 0.0);
  UMICRO_CHECK(options_.eviction_horizon >= 0.0);
  UMICRO_CHECK(options_.variance_refresh_interval > 0);
  clusters_.reserve(options_.num_micro_clusters + 1);
  table_.Reserve(options_.num_micro_clusters + 1);
  scores_scratch_.reserve(options_.num_micro_clusters + 1);
  // The candidate index serves only the expected-distance similarity:
  // the dimension-counting vote has no safe Euclidean pruning bound (a
  // vote-pruned dimension absorbs unbounded distance at zero vote cost;
  // docs/indexing.md), so counting instances keep the flat scan.
  if (options_.similarity == SimilarityMode::kExpectedDistance) {
    assign_index_ = index::MakeCentroidIndex(options_.assign_index);
  }
}

std::string UMicro::name() const {
  return options_.decay_lambda > 0.0 ? "UMicro(decay)" : "UMicro";
}

void UMicro::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    process_micros_ = nullptr;
    batch_micros_ = nullptr;
    closest_pair_micros_ = nullptr;
    kernel_tier_metric_ = nullptr;
    points_metric_ = nullptr;
    kernel_scans_metric_ = nullptr;
    absorbed_metric_ = nullptr;
    created_metric_ = nullptr;
    evicted_metric_ = nullptr;
    merged_metric_ = nullptr;
    live_clusters_metric_ = nullptr;
    index_queries_metric_ = nullptr;
    index_candidates_metric_ = nullptr;
    index_rebuilds_metric_ = nullptr;
    index_prune_ratio_metric_ = nullptr;
    return;
  }
  process_micros_ = &registry->GetHistogram("umicro.process_micros");
  batch_micros_ = &registry->GetHistogram("umicro.batch_micros");
  closest_pair_micros_ =
      &registry->GetHistogram("umicro.closest_pair_micros");
  kernel_tier_metric_ = &registry->GetGauge("umicro.kernel_tier");
  kernel_tier_metric_->Set(static_cast<double>(table_.backend()));
  points_metric_ = &registry->GetCounter("umicro.points");
  kernel_scans_metric_ = &registry->GetCounter("umicro.kernel_scans");
  absorbed_metric_ = &registry->GetCounter("umicro.absorbed");
  created_metric_ = &registry->GetCounter("umicro.created");
  evicted_metric_ = &registry->GetCounter("umicro.evicted");
  merged_metric_ = &registry->GetCounter("umicro.merged");
  live_clusters_metric_ = &registry->GetGauge("umicro.live_clusters");
  // Index metrics only exist for instances that can actually index
  // (expected-distance similarity + non-flat kind), so flat/counting
  // runs keep their metric exports unchanged.
  if (assign_index_ != nullptr) {
    index_queries_metric_ = &registry->GetCounter("umicro.index.queries");
    index_candidates_metric_ =
        &registry->GetCounter("umicro.index.candidates");
    index_rebuilds_metric_ = &registry->GetCounter("umicro.index.rebuilds");
    index_prune_ratio_metric_ =
        &registry->GetGauge("umicro.index.prune_ratio");
  }
}

void UMicro::ApplyDecay(double now) {
  if (options_.decay_lambda <= 0.0) return;
  if (!decay_clock_started_) {
    decay_clock_started_ = true;
    last_decay_time_ = now;
    return;
  }
  const double dt = now - last_decay_time_;
  if (dt <= 0.0) return;
  // All statistics decay at the shared rate 2^(-lambda) per time unit
  // (Section II-E); one factor therefore applies to every cluster.
  const double factor = std::exp2(-options_.decay_lambda * dt);
  if (factor < std::numeric_limits<double>::min()) {
    // The gap was long enough to underflow the factor to zero or
    // denormal: every statistic is fully decayed. Scaling by such a
    // factor would leave denormal dust (or trip the scale kernel's
    // positivity contract), so the cluster set is dropped outright --
    // the stream effectively restarts after the gap.
    clusters_.clear();
    table_.Reset(dimensions_);
    if (assign_index_ != nullptr) assign_index_->Invalidate();
    last_decay_time_ = now;
    return;
  }
  for (auto& cluster : clusters_) cluster.Decay(factor);
  // Mirror the decay in the SoA table (bit-identical scale kernel).
  table_.ScaleAll(factor);
  // Centroids are scale-invariant in real arithmetic; the index accounts
  // the few-ulp re-derivation wobble per scale event.
  if (assign_index_ != nullptr) assign_index_->NoteScale();
  last_decay_time_ = now;
}

void UMicro::UpdateGlobalVariances(const stream::UncertainPoint& point) {
  switch (options_.variance_source) {
    case VarianceSource::kStreamWelford: {
      for (std::size_t j = 0; j < dimensions_; ++j) {
        welford_[j].Add(point.values[j]);
        global_variances_[j] = welford_[j].PopulationVariance();
      }
      break;
    }
    case VarianceSource::kClusterAggregate: {
      if (points_processed_ % options_.variance_refresh_interval != 0 &&
          !clusters_.empty()) {
        return;
      }
      // Sum every micro-cluster's CF vector into one global feature
      // vector and apply the BIRCH variance formula (the paper's recipe).
      ErrorClusterFeature global(dimensions_);
      for (const auto& cluster : clusters_) global.Merge(cluster.ecf);
      if (global.empty()) return;
      for (std::size_t j = 0; j < dimensions_; ++j) {
        global_variances_[j] = global.VarianceAt(j);
      }
      break;
    }
  }
  for (std::size_t j = 0; j < dimensions_; ++j) {
    const double scaled = options_.dimension_threshold * global_variances_[j];
    scaled_inverse_variances_[j] = scaled > 0.0 ? 1.0 / scaled : 0.0;
  }
}

std::size_t UMicro::FindClosest(const stream::UncertainPoint& point) const {
  UMICRO_DCHECK(!clusters_.empty());
  UMICRO_DCHECK(table_.rows() == clusters_.size());
  const std::size_t q = table_.rows();
  const bool counting =
      options_.similarity == SimilarityMode::kDimensionCounting;
  const bool paper_form =
      options_.distance_form == DistanceForm::kPaperExpected;
  const kernels::Backend backend = table_.backend();
  const double* errors =
      point.errors.empty() ? nullptr : point.errors.data();

  // Stage the point once (O(d)), then scan all q rows through the
  // batch kernels (kernels::BatchDimensionVotes mirrors the old inline
  // similarity loop; its scalar tier reproduces it exactly).
  point_ctx_.Prepare(table_, point.values.data(), errors,
                     counting ? scaled_inverse_variances_.data() : nullptr);
  scores_scratch_.resize(q);
  if (counting) {
    kernels::BatchDimensionVotes(table_, point_ctx_, paper_form, backend,
                                 scores_scratch_.data());
    const std::size_t best = kernels::ArgMax(scores_scratch_.data(), q);
    if (scores_scratch_[best] > 0.0) return best;
    // Every dimension of every cluster was pruned (all expected
    // distances beyond thresh*sigma^2): the vote is uninformative, so
    // fall back to the distance to break the tie.
  }
  const kernels::DistanceKind kind = paper_form
                                         ? kernels::DistanceKind::kExpected
                                         : kernels::DistanceKind::kGeometric;
  if (assign_index_ != nullptr &&
      assign_index_->Collect(
          table_, point_ctx_.x.data(),
          /*include_cluster_error=*/kind == kernels::DistanceKind::kExpected,
          kind == kernels::DistanceKind::kExpected ? point_ctx_.psi2_sum
                                                   : 0.0,
          &candidates_scratch_)) {
    // Exact refinement on the shortlist: the gathered kernel computes
    // the same per-row values as the full scan, and the shortlist is
    // ascending and provably contains the full scan's winner, so the
    // first-wins ArgMin maps back to the identical row.
    kernels::GatherSquaredDistances(table_, point_ctx_, kind, backend,
                                    candidates_scratch_.data(),
                                    candidates_scratch_.size(),
                                    scores_scratch_.data());
    const std::size_t best =
        kernels::ArgMin(scores_scratch_.data(), candidates_scratch_.size());
    return candidates_scratch_[best];
  }
  kernels::BatchSquaredDistances(table_, point_ctx_, kind, backend,
                                 scores_scratch_.data());
  return kernels::ArgMin(scores_scratch_.data(), q);
}

double UMicro::UncertaintyBoundary(std::size_t index) const {
  const MicroCluster& cluster = clusters_[index];
  if (cluster.ecf.weight() >= 2.0) {
    const double own_radius =
        options_.boundary_factor * cluster.ecf.UncertainRadius();
    if (own_radius > 0.0) return own_radius;
  }

  // (Near-)singleton cluster: its own deviation statistics are not yet
  // meaningful (a lone point's uncertain radius reflects only its
  // measurement error, which under heavy noise spans the whole data
  // space and would make the first micro-cluster swallow the entire
  // stream), so use half the distance to the nearest other micro-cluster
  // centroid instead -- the CluStream convention, halved so the boundary
  // stays inside this cluster's Voronoi cell. With no other cluster to
  // measure against the boundary is 0: a lone singleton absorbs only
  // exact duplicates and the cluster set can grow from the start.
  double nearest = 0.0;
  if (clusters_.size() > 1) {
    double nearest_d2 = std::numeric_limits<double>::infinity();
    const double n_self = cluster.ecf.weight();
    const double* cf1_self = cluster.ecf.cf1().data();
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
      if (i == index) continue;
      const double n_other = clusters_[i].ecf.weight();
      const double* cf1_other = clusters_[i].ecf.cf1().data();
      double d2 = 0.0;
      for (std::size_t j = 0; j < dimensions_; ++j) {
        const double diff = cf1_self[j] / n_self - cf1_other[j] / n_other;
        d2 += diff * diff;
      }
      nearest_d2 = std::min(nearest_d2, d2);
    }
    nearest = 0.5 * std::sqrt(nearest_d2);
  }
  return nearest;
}

bool UMicro::ShouldAbsorb(const stream::UncertainPoint& point,
                          std::size_t index) const {
  const MicroCluster& cluster = clusters_[index];
  const double boundary = UncertaintyBoundary(index);

  if (options_.distance_form == DistanceForm::kPaperExpected) {
    // Paper-literal: the expected distance (Lemma 2.2) against t
    // standard deviations of the expected point-to-centroid distances
    // (Eq. 6). Under strong noise this over-absorbs, since the boundary
    // carries t^2 times the error mass the distance does.
    return std::sqrt(ExpectedSquaredDistance(point, cluster.ecf)) <=
           boundary;
  }

  // Bias-corrected (default): the geometric distance between the
  // instantiation and the expected centroid against the boundary. The
  // mature-cluster boundary is still the paper's uncertain radius (t*U,
  // Eq. 6), which is error-aware: heavily uncertain clusters accept a
  // wider neighborhood, but the acceptance test itself cannot be gamed
  // by the point's or the cluster's error mass.
  return std::sqrt(GeometricSquaredDistance(point, cluster.ecf)) <=
         boundary;
}

void UMicro::Process(const stream::UncertainPoint& point) {
  ProcessAndExplain(point);
}

void UMicro::ProcessBatch(std::span<const stream::UncertainPoint> points) {
  if (points.empty()) return;
  const obs::ScopedTimer timer(batch_micros_);
  BatchCounters counters;
  for (const auto& point : points) ProcessOne(point, &counters);
  FlushCounters(counters, points.size());
}

UMicro::ProcessOutcome UMicro::ProcessAndExplain(
    const stream::UncertainPoint& point) {
  const obs::ScopedTimer timer(process_micros_);
  BatchCounters counters;
  const ProcessOutcome outcome = ProcessOne(point, &counters);
  FlushCounters(counters, 1);
  return outcome;
}

UMicro::ProcessOutcome UMicro::ProcessOne(const stream::UncertainPoint& point,
                                          BatchCounters* counters) {
  UMICRO_CHECK_MSG(point.dimensions() == dimensions_,
                   "point has %zu dimensions, algorithm expects %zu",
                   point.dimensions(), dimensions_);
  ++points_processed_;
  ApplyDecay(point.timestamp);
  UpdateGlobalVariances(point);

  const double* errors =
      point.errors.empty() ? nullptr : point.errors.data();
  ProcessOutcome outcome;
  if (!clusters_.empty()) {
    // One similarity-kernel scan per live cluster: the per-point cost of
    // the expected-distance kernel, in units of cluster comparisons.
    counters->scans += clusters_.size();
    const std::size_t closest = FindClosest(point);
    outcome.expected_distance =
        std::sqrt(ExpectedSquaredDistance(point, clusters_[closest].ecf));
    if (ShouldAbsorb(point, closest)) {
      if (assign_index_ != nullptr) {
        // Folding a unit-weight point moves the centroid by exactly
        // ||x - c_old|| / (n + 1) (real arithmetic); report it before
        // the table mutates so the index's drift bound stays true.
        const double* c_old = table_.centroid_row(closest);
        double d2 = 0.0;
        for (std::size_t j = 0; j < dimensions_; ++j) {
          const double diff = point.values[j] - c_old[j];
          d2 += diff * diff;
        }
        assign_index_->NoteDrift(closest,
                                 std::sqrt(d2) /
                                     (table_.weight(closest) + 1.0));
      }
      clusters_[closest].AddPoint(point);
      table_.AddPoint(closest, point.values.data(), errors, 1.0);
      outcome.absorbed = true;
      outcome.cluster_id = clusters_[closest].id;
      ++counters->absorbed;
      return outcome;
    }
  }

  clusters_.emplace_back(next_cluster_id_++, point);
  table_.PushPointRow(point.values.data(), errors, 1.0);
  if (assign_index_ != nullptr) assign_index_->NoteAppend();
  ++clusters_created_;
  ++counters->created;
  outcome.absorbed = false;
  outcome.cluster_id = clusters_.back().id;
  if (clusters_.size() > options_.num_micro_clusters) {
    RetireOneCluster(point.timestamp);
  }
  return outcome;
}

void UMicro::FlushCounters(const BatchCounters& counters,
                           std::size_t points) {
  if (points_metric_ != nullptr) points_metric_->Increment(points);
  if (kernel_scans_metric_ != nullptr && counters.scans > 0) {
    kernel_scans_metric_->Increment(counters.scans);
  }
  if (absorbed_metric_ != nullptr && counters.absorbed > 0) {
    absorbed_metric_->Increment(counters.absorbed);
  }
  if (created_metric_ != nullptr && counters.created > 0) {
    created_metric_->Increment(counters.created);
  }
  if (live_clusters_metric_ != nullptr && counters.created > 0) {
    live_clusters_metric_->Set(static_cast<double>(clusters_.size()));
  }
  if (assign_index_ != nullptr && index_queries_metric_ != nullptr) {
    const index::IndexStats& stats = assign_index_->stats();
    if (stats.queries > flushed_index_stats_.queries) {
      index_queries_metric_->Increment(stats.queries -
                                       flushed_index_stats_.queries);
    }
    if (stats.candidates > flushed_index_stats_.candidates) {
      index_candidates_metric_->Increment(stats.candidates -
                                          flushed_index_stats_.candidates);
    }
    if (stats.rebuilds > flushed_index_stats_.rebuilds) {
      index_rebuilds_metric_->Increment(stats.rebuilds -
                                        flushed_index_stats_.rebuilds);
    }
    if (stats.scanned_rows > 0) {
      index_prune_ratio_metric_->Set(
          1.0 - static_cast<double>(stats.candidates) /
                    static_cast<double>(stats.scanned_rows));
    }
    flushed_index_stats_ = stats;
  }
}

void UMicro::RetireOneCluster(double now) {
  // The paper's rule: evict the least recently updated micro-cluster --
  // applied when that cluster is actually stale. When every cluster is
  // fresh, evicting would just churn through singletons, so the two
  // closest micro-clusters are merged instead (the consolidation step of
  // the CluStream framework this algorithm extends); the additive
  // property makes the merge exact.
  std::size_t lru = 0;
  for (std::size_t i = 1; i < clusters_.size(); ++i) {
    if (clusters_[i].ecf.last_update_time() <
        clusters_[lru].ecf.last_update_time()) {
      lru = i;
    }
  }
  if (clusters_[lru].ecf.last_update_time() <
      now - options_.eviction_horizon) {
    clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(lru));
    table_.RemoveRow(lru);
    // Row ids shifted: the index snapshot is stale, rebuild lazily.
    if (assign_index_ != nullptr) assign_index_->Invalidate();
    ++clusters_evicted_;
    if (evicted_metric_ != nullptr) evicted_metric_->Increment();
    return;
  }

  // Closest-pair search over the table's already-materialized centroid
  // rows (cache-blocked kernel; previously an O(q^2 d) scalar scan over
  // a freshly divided centroid matrix).
  std::size_t best_a = 0;
  std::size_t best_b = 1;
  double best_d2 = std::numeric_limits<double>::infinity();
  {
    const obs::ScopedTimer pair_timer(closest_pair_micros_);
    kernels::ClosestCentroidPair(table_, table_.backend(), &best_a, &best_b,
                                 &best_d2);
  }
  MicroCluster& into = clusters_[best_a];
  MicroCluster& from = clusters_[best_b];
  // The merged cluster continues under the heavier constituent's
  // identity; the lighter id disappears, which horizon subtraction
  // treats as a removed cluster (documented approximation).
  if (from.ecf.weight() > into.ecf.weight()) {
    std::swap(into.id, from.id);
    std::swap(into.creation_time, from.creation_time);
  }
  into.creation_time = std::min(into.creation_time, from.creation_time);
  into.ecf.Merge(from.ecf);
  table_.MergeRows(best_a, best_b);
  for (const auto& [label, weight] : from.labels) {
    into.labels[label] += weight;
  }
  clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(best_b));
  table_.RemoveRow(best_b);
  // The merged row jumped position and the rest shifted: rebuild lazily.
  if (assign_index_ != nullptr) assign_index_->Invalidate();
  ++clusters_merged_;
  if (merged_metric_ != nullptr) merged_metric_->Increment();
}

UMicroState UMicro::ExportState() const {
  UMicroState state;
  state.clusters = clusters_;
  state.welford.reserve(welford_.size());
  for (const auto& acc : welford_) {
    state.welford.push_back({acc.count(), acc.Mean(), acc.m2()});
  }
  state.global_variances = global_variances_;
  state.next_cluster_id = next_cluster_id_;
  state.points_processed = points_processed_;
  state.clusters_created = clusters_created_;
  state.clusters_evicted = clusters_evicted_;
  state.clusters_merged = clusters_merged_;
  state.last_decay_time = last_decay_time_;
  state.decay_clock_started = decay_clock_started_;
  return state;
}

void UMicro::RestoreState(const UMicroState& state) {
  UMICRO_CHECK_MSG(state.welford.size() == dimensions_,
                   "state has %zu dimensions, algorithm expects %zu",
                   state.welford.size(), dimensions_);
  UMICRO_CHECK(state.global_variances.size() == dimensions_);
  for (const auto& cluster : state.clusters) {
    UMICRO_CHECK(cluster.ecf.dimensions() == dimensions_);
  }
  clusters_ = state.clusters;
  // Rebuild the SoA mirror from the restored structs (raw copies, so
  // mirror and structs start out bit-identical again).
  table_.Reset(dimensions_);
  table_.Reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    table_.PushRow(cluster.ecf.cf1().data(), cluster.ecf.cf2().data(),
                   cluster.ecf.ef2().data(), cluster.ecf.weight());
  }
  // Whatever the index had mirrored is gone with the old table.
  if (assign_index_ != nullptr) assign_index_->Invalidate();
  welford_.clear();
  welford_.reserve(state.welford.size());
  for (const auto& raw : state.welford) {
    welford_.push_back(
        util::WelfordAccumulator::FromRaw(raw.count, raw.mean, raw.m2));
  }
  global_variances_ = state.global_variances;
  for (std::size_t j = 0; j < dimensions_; ++j) {
    const double scaled = options_.dimension_threshold * global_variances_[j];
    scaled_inverse_variances_[j] = scaled > 0.0 ? 1.0 / scaled : 0.0;
  }
  next_cluster_id_ = state.next_cluster_id;
  points_processed_ = state.points_processed;
  clusters_created_ = state.clusters_created;
  clusters_evicted_ = state.clusters_evicted;
  clusters_merged_ = state.clusters_merged;
  last_decay_time_ = state.last_decay_time;
  decay_clock_started_ = state.decay_clock_started;
}

std::vector<stream::LabelHistogram> UMicro::ClusterLabelHistograms() const {
  std::vector<stream::LabelHistogram> histograms;
  histograms.reserve(clusters_.size());
  for (const auto& cluster : clusters_) histograms.push_back(cluster.labels);
  return histograms;
}

std::vector<std::vector<double>> UMicro::ClusterCentroids() const {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    if (!cluster.ecf.empty()) centroids.push_back(cluster.ecf.Centroid());
  }
  return centroids;
}

Snapshot UMicro::TakeSnapshot(double time) const {
  Snapshot snapshot;
  snapshot.time = time;
  snapshot.clusters.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    MicroClusterState state;
    state.id = cluster.id;
    state.creation_time = cluster.creation_time;
    state.ecf = cluster.ecf;
    snapshot.clusters.push_back(std::move(state));
  }
  return snapshot;
}

}  // namespace umicro::core
