#include "core/evolution.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math_utils.h"

namespace umicro::core {

namespace {

/// Macro-clusters a window and reduces it to (centroid, mass, rms).
struct MacroSummary {
  std::vector<std::vector<double>> centroids;
  std::vector<double> mass;
  std::vector<double> rms;
};

MacroSummary Summarize(const std::vector<MicroClusterState>& window,
                       const MacroClusteringOptions& options) {
  const MacroClustering clustering = ClusterMicroClusters(window, options);
  MacroSummary summary;
  const std::size_t k = clustering.centroids.size();
  summary.centroids = clustering.centroids;
  summary.mass.assign(k, 0.0);
  // Mass-weighted mean squared micro-centroid distance as the macro
  // cluster's RMS scale.
  std::vector<double> msd(k, 0.0);
  for (std::size_t i = 0; i < window.size(); ++i) {
    const int c = clustering.assignment[i];
    const double w = window[i].ecf.weight();
    summary.mass[static_cast<std::size_t>(c)] += w;
    msd[static_cast<std::size_t>(c)] +=
        w * util::SquaredDistance(window[i].ecf.Centroid(),
                                  clustering.centroids[
                                      static_cast<std::size_t>(c)]);
  }
  summary.rms.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    summary.rms[c] =
        summary.mass[c] > 0.0 ? std::sqrt(msd[c] / summary.mass[c]) : 0.0;
  }
  return summary;
}

}  // namespace

EvolutionReport CompareWindows(
    const std::vector<MicroClusterState>& earlier,
    const std::vector<MicroClusterState>& later,
    const EvolutionOptions& options) {
  UMICRO_CHECK(!earlier.empty());
  UMICRO_CHECK(!later.empty());
  UMICRO_CHECK(options.drift_radius_factor >= 0.0);
  UMICRO_CHECK(options.match_radius_factor >= options.drift_radius_factor);

  const MacroSummary a = Summarize(earlier, options.macro);
  const MacroSummary b = Summarize(later, options.macro);

  // Greedy globally-closest matching between the two centroid sets.
  struct Pair {
    double distance;
    std::size_t ai;
    std::size_t bi;
  };
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < a.centroids.size(); ++i) {
    for (std::size_t j = 0; j < b.centroids.size(); ++j) {
      pairs.push_back({util::EuclideanDistance(a.centroids[i],
                                               b.centroids[j]),
                       i, j});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) {
              return x.distance < y.distance;
            });

  std::vector<bool> a_used(a.centroids.size(), false);
  std::vector<bool> b_used(b.centroids.size(), false);
  EvolutionReport report;
  for (const Pair& pair : pairs) {
    if (a_used[pair.ai] || b_used[pair.bi]) continue;
    // Scale threshold by the earlier cluster's RMS radius (floored to
    // stay meaningful for razor-thin clusters).
    const double scale = std::max(a.rms[pair.ai], 1e-12);
    if (pair.distance > options.match_radius_factor * scale) {
      continue;  // too far apart to be the same population
    }
    a_used[pair.ai] = true;
    b_used[pair.bi] = true;
    ClusterEvolution entry;
    entry.fate = pair.distance <= options.drift_radius_factor * scale
                     ? ClusterFate::kStable
                     : ClusterFate::kDrifted;
    entry.earlier_centroid = a.centroids[pair.ai];
    entry.later_centroid = b.centroids[pair.bi];
    entry.earlier_mass = a.mass[pair.ai];
    entry.later_mass = b.mass[pair.bi];
    entry.drift_distance = pair.distance;
    report.clusters.push_back(std::move(entry));
  }

  for (std::size_t i = 0; i < a.centroids.size(); ++i) {
    if (a_used[i]) continue;
    ClusterEvolution entry;
    entry.fate = ClusterFate::kDied;
    entry.earlier_centroid = a.centroids[i];
    entry.earlier_mass = a.mass[i];
    report.clusters.push_back(std::move(entry));
  }
  for (std::size_t j = 0; j < b.centroids.size(); ++j) {
    if (b_used[j]) continue;
    ClusterEvolution entry;
    entry.fate = ClusterFate::kBorn;
    entry.later_centroid = b.centroids[j];
    entry.later_mass = b.mass[j];
    report.clusters.push_back(std::move(entry));
  }
  return report;
}

}  // namespace umicro::core
