// Cluster-evolution analysis across horizons.
//
// The CluStream framework the paper extends exists precisely to support
// "analysis of clustering trends": compare the macro-structure of two
// time windows and report what appeared, vanished, drifted, or changed
// mass. This module implements that comparison over the uncertain
// micro-cluster substrate: macro-cluster both windows, greedily match
// macro-clusters across windows by centroid distance, and classify each
// as stable / drifted / born / died.

#ifndef UMICRO_CORE_EVOLUTION_H_
#define UMICRO_CORE_EVOLUTION_H_

#include <cstddef>
#include <vector>

#include "core/macro_cluster.h"
#include "core/snapshot.h"

namespace umicro::core {

/// Options for the evolution comparison.
struct EvolutionOptions {
  /// Macro-clustering applied to each window.
  MacroClusteringOptions macro;
  /// A matched pair whose centroid moved at most this many times the
  /// earlier cluster's RMS radius counts as stable; farther = drifted.
  double drift_radius_factor = 1.0;
  /// Matches farther than this many earlier-RMS-radii are rejected
  /// entirely (the earlier cluster died, the later one was born).
  double match_radius_factor = 4.0;
};

/// Evolution verdict for one macro-cluster.
enum class ClusterFate {
  kStable,   ///< matched, small centroid movement
  kDrifted,  ///< matched, centroid moved materially
  kBorn,     ///< present only in the later window
  kDied,     ///< present only in the earlier window
};

/// One entry of the evolution report.
struct ClusterEvolution {
  ClusterFate fate = ClusterFate::kStable;
  /// Centroid in the earlier window (empty for kBorn).
  std::vector<double> earlier_centroid;
  /// Centroid in the later window (empty for kDied).
  std::vector<double> later_centroid;
  /// Mass in each window (0 where absent).
  double earlier_mass = 0.0;
  double later_mass = 0.0;
  /// Centroid displacement (0 for born/died).
  double drift_distance = 0.0;
};

/// Full report of a two-window comparison.
struct EvolutionReport {
  std::vector<ClusterEvolution> clusters;

  /// Convenience counts.
  std::size_t stable() const { return Count(ClusterFate::kStable); }
  std::size_t drifted() const { return Count(ClusterFate::kDrifted); }
  std::size_t born() const { return Count(ClusterFate::kBorn); }
  std::size_t died() const { return Count(ClusterFate::kDied); }

 private:
  std::size_t Count(ClusterFate fate) const {
    std::size_t n = 0;
    for (const auto& entry : clusters) {
      if (entry.fate == fate) ++n;
    }
    return n;
  }
};

/// Compares the macro-structure of two micro-cluster windows (typically
/// two horizon extractions). Both windows must be non-empty.
EvolutionReport CompareWindows(
    const std::vector<MicroClusterState>& earlier,
    const std::vector<MicroClusterState>& later,
    const EvolutionOptions& options);

}  // namespace umicro::core

#endif  // UMICRO_CORE_EVOLUTION_H_
