#include "core/anomaly.h"

#include "util/check.h"

namespace umicro::core {

AnomalyDetector::AnomalyDetector(std::size_t dimensions,
                                 AnomalyOptions options)
    : options_(options), clusterer_(dimensions, options.umicro) {
  UMICRO_CHECK(options_.rate_smoothing > 0.0 &&
               options_.rate_smoothing <= 1.0);
  UMICRO_CHECK(options_.burst_rate_threshold >= 0.0 &&
               options_.burst_rate_threshold <= 1.0);
}

AnomalyVerdict AnomalyDetector::Process(
    const stream::UncertainPoint& point) {
  const UMicro::ProcessOutcome outcome =
      clusterer_.ProcessAndExplain(point);
  AnomalyVerdict verdict;
  verdict.novel = !outcome.absorbed;
  verdict.expected_distance = outcome.expected_distance;

  novelty_rate_ += options_.rate_smoothing *
                   ((verdict.novel ? 1.0 : 0.0) - novelty_rate_);
  verdict.novelty_rate = novelty_rate_;
  verdict.burst = verdict.novel &&
                  novelty_rate_ > options_.burst_rate_threshold &&
                  clusterer_.points_processed() > options_.warmup_points;
  if (verdict.burst) ++burst_count_;
  return verdict;
}

}  // namespace umicro::core
