// Horizon-scoped clustering: combine the pyramidal snapshot store, ECF
// subtractivity, and offline macro-clustering into one query.

#ifndef UMICRO_CORE_HORIZON_H_
#define UMICRO_CORE_HORIZON_H_

#include <optional>
#include <vector>

#include "core/macro_cluster.h"
#include "core/snapshot.h"
#include "obs/metrics.h"

namespace umicro::core {

/// Result of a horizon query.
struct HorizonClustering {
  /// The horizon actually realized, h' (distance to the chosen stored
  /// snapshot). With at-or-before selection h' >= h; only the fallback
  /// (no snapshot at or before t - h, e.g. a horizon longer than the
  /// retained history) realizes a shorter window.
  double realized_horizon = 0.0;
  /// realized_horizon / requested horizon. 1.0 is an exact hit; values
  /// below 1.0 mean the window silently covers less than asked for.
  double realized_ratio = 0.0;
  /// Micro-cluster statistics covering exactly (t_c - h', t_c].
  std::vector<MicroClusterState> window;
  /// Macro-clustering of the window (k centroids + assignment).
  MacroClustering macro;
};

/// Subtracts `older` from `current` (decay-corrected by `decay_lambda`,
/// see SubtractSnapshot) and macro-clusters the residual window. This is
/// the snapshot-selection-free half of a horizon query, shared by
/// ClusterOverHorizon and the serve layer's read replica (which selects
/// the older snapshot from its own published history). Returns
/// std::nullopt when the window is empty. With a registry attached,
/// records "snapshot.subtract_micros", "horizon.macro_micros", and the
/// "horizon.realized_ratio" histogram.
std::optional<HorizonClustering> ClusterWindow(
    const Snapshot& current, const Snapshot& older, double horizon,
    double decay_lambda, const MacroClusteringOptions& options,
    obs::MetricsRegistry* metrics = nullptr);

/// Answers "cluster the last `horizon` time units into `k` groups":
/// finds the stored snapshot at or before `current.time - horizon`
/// (falling back to the nearest stored snapshot only when none exists at
/// or before that instant -- i.e. the horizon predates retention),
/// subtracts it from `current` with decay correction, and macro-clusters
/// the residual window. Returns std::nullopt when the store holds no
/// usable snapshot or the window is empty. With a registry attached,
/// records the query count plus subtract and macro-clustering latency
/// histograms and the realized-horizon fidelity ("horizon.queries",
/// "snapshot.subtract_micros", "horizon.macro_micros",
/// "horizon.realized_ratio").
std::optional<HorizonClustering> ClusterOverHorizon(
    const SnapshotStore& store, const Snapshot& current, double horizon,
    const MacroClusteringOptions& options,
    obs::MetricsRegistry* metrics = nullptr, double decay_lambda = 0.0);

}  // namespace umicro::core

#endif  // UMICRO_CORE_HORIZON_H_
