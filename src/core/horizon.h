// Horizon-scoped clustering: combine the pyramidal snapshot store, ECF
// subtractivity, and offline macro-clustering into one query.

#ifndef UMICRO_CORE_HORIZON_H_
#define UMICRO_CORE_HORIZON_H_

#include <optional>
#include <vector>

#include "core/macro_cluster.h"
#include "core/snapshot.h"
#include "obs/metrics.h"

namespace umicro::core {

/// Result of a horizon query.
struct HorizonClustering {
  /// The horizon actually realized, h' (closest stored snapshot).
  double realized_horizon = 0.0;
  /// Micro-cluster statistics covering exactly (t_c - h', t_c].
  std::vector<MicroClusterState> window;
  /// Macro-clustering of the window (k centroids + assignment).
  MacroClustering macro;
};

/// Answers "cluster the last `horizon` time units into `k` groups":
/// finds the stored snapshot nearest to `current.time - horizon`,
/// subtracts it from `current`, and macro-clusters the residual window.
/// Returns std::nullopt when the store holds no usable snapshot or the
/// window is empty. With a registry attached, records the query count
/// plus subtract and macro-clustering latency histograms
/// ("horizon.queries", "snapshot.subtract_micros",
/// "horizon.macro_micros").
std::optional<HorizonClustering> ClusterOverHorizon(
    const SnapshotStore& store, const Snapshot& current, double horizon,
    const MacroClusteringOptions& options,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace umicro::core

#endif  // UMICRO_CORE_HORIZON_H_
