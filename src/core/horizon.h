// Horizon-scoped clustering: combine the pyramidal snapshot store, ECF
// subtractivity, and offline macro-clustering into one query.

#ifndef UMICRO_CORE_HORIZON_H_
#define UMICRO_CORE_HORIZON_H_

#include <optional>
#include <vector>

#include "core/macro_cluster.h"
#include "core/snapshot.h"

namespace umicro::core {

/// Result of a horizon query.
struct HorizonClustering {
  /// The horizon actually realized, h' (closest stored snapshot).
  double realized_horizon = 0.0;
  /// Micro-cluster statistics covering exactly (t_c - h', t_c].
  std::vector<MicroClusterState> window;
  /// Macro-clustering of the window (k centroids + assignment).
  MacroClustering macro;
};

/// Answers "cluster the last `horizon` time units into `k` groups":
/// finds the stored snapshot nearest to `current.time - horizon`,
/// subtracts it from `current`, and macro-clusters the residual window.
/// Returns std::nullopt when the store holds no usable snapshot or the
/// window is empty.
std::optional<HorizonClustering> ClusterOverHorizon(
    const SnapshotStore& store, const Snapshot& current, double horizon,
    const MacroClusteringOptions& options);

}  // namespace umicro::core

#endif  // UMICRO_CORE_HORIZON_H_
