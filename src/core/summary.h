// Human-readable summaries of a micro-clustering.

#ifndef UMICRO_CORE_SUMMARY_H_
#define UMICRO_CORE_SUMMARY_H_

#include <string>
#include <vector>

#include "core/microcluster.h"

namespace umicro::core {

/// Options for the textual cluster summary.
struct SummaryOptions {
  /// Show at most this many clusters (heaviest first); 0 = all.
  std::size_t top = 10;
  /// Show at most this many centroid coordinates per cluster.
  std::size_t max_dims = 6;
};

/// Renders a fixed-width table of the clusters: id, weight, uncertain
/// radius, mean per-dimension error, dominant label (when histograms
/// are populated), and the leading centroid coordinates.
std::string SummarizeClusters(const std::vector<MicroCluster>& clusters,
                              const SummaryOptions& options = {});

}  // namespace umicro::core

#endif  // UMICRO_CORE_SUMMARY_H_
