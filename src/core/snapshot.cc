#include "core/snapshot.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "util/check.h"

namespace umicro::core {

namespace {
/// Absolute weight floor below which a subtracted cluster is empty.
constexpr double kMinResidualWeight = 1e-9;
/// Relative floor: a residual lighter than this fraction of the weight
/// that was subtracted from it is floating-point cancellation noise,
/// not window mass (its centroid would be noise divided by noise).
constexpr double kMinResidualFraction = 1e-6;

/// Fixed per-frame overhead charged by the byte accounting (container
/// headers, tick/time/encoding metadata).
constexpr std::size_t kFrameOverheadBytes = 64;

/// Per-cluster bookkeeping outside the three statistic vectors:
/// id + creation_time + weight + last_update_time.
constexpr std::size_t kClusterHeaderBytes = 32;

/// Process-wide serial for spill file names: stores sharing one spill
/// directory (a tenant fleet) must not collide.
std::atomic<std::uint64_t> g_spill_serial{0};

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Bitwise equality of two frozen micro-clusters. Deliberately not
/// operator== on doubles: -0.0 vs 0.0 and NaN payloads must count as
/// changes for reconstruction to be bit-identical.
bool BitIdentical(const MicroClusterState& a, const MicroClusterState& b) {
  return a.id == b.id && SameBits(a.creation_time, b.creation_time) &&
         SameBits(a.ecf.weight(), b.ecf.weight()) &&
         SameBits(a.ecf.last_update_time(), b.ecf.last_update_time()) &&
         SameBits(a.ecf.cf1(), b.ecf.cf1()) &&
         SameBits(a.ecf.cf2(), b.ecf.cf2()) &&
         SameBits(a.ecf.ef2(), b.ecf.ef2());
}

bool IsCold(const EncodedFrame& frame) {
  return frame.encoding == FrameEncoding::kQuantized ||
         frame.encoding == FrameEncoding::kSpilled;
}

std::size_t ExactClusterBytes(std::size_t dims) {
  return kClusterHeaderBytes + 3 * dims * sizeof(double);
}

QuantizedClusters Quantize(const Snapshot& snapshot) {
  QuantizedClusters q;
  const std::size_t n = snapshot.clusters.size();
  q.dims = n == 0 ? 0 : snapshot.clusters.front().ecf.dimensions();
  q.ids.reserve(n);
  q.creation_times.reserve(n);
  q.weights.reserve(n);
  q.last_updates.reserve(n);
  q.values.reserve(n * 3 * q.dims);
  for (const auto& state : snapshot.clusters) {
    UMICRO_CHECK_MSG(state.ecf.dimensions() == q.dims,
                     "mixed dimensionality inside one snapshot frame");
    q.ids.push_back(state.id);
    q.creation_times.push_back(state.creation_time);
    q.weights.push_back(static_cast<float>(state.ecf.weight()));
    q.last_updates.push_back(static_cast<float>(state.ecf.last_update_time()));
    for (double v : state.ecf.cf1()) q.values.push_back(static_cast<float>(v));
    for (double v : state.ecf.cf2()) q.values.push_back(static_cast<float>(v));
    for (double v : state.ecf.ef2()) q.values.push_back(static_cast<float>(v));
  }
  return q;
}

Snapshot Widen(const EncodedFrame& frame) {
  const QuantizedClusters& q = frame.quant;
  Snapshot out;
  out.time = frame.time;
  out.clusters.reserve(q.ids.size());
  const std::size_t d = q.dims;
  for (std::size_t i = 0; i < q.ids.size(); ++i) {
    MicroClusterState state;
    state.id = q.ids[i];
    state.creation_time = q.creation_times[i];
    std::vector<double> cf1(d), cf2(d), ef2(d);
    const float* base = q.values.data() + i * 3 * d;
    for (std::size_t j = 0; j < d; ++j) cf1[j] = static_cast<double>(base[j]);
    for (std::size_t j = 0; j < d; ++j)
      cf2[j] = static_cast<double>(base[d + j]);
    for (std::size_t j = 0; j < d; ++j)
      ef2[j] = static_cast<double>(base[2 * d + j]);
    state.ecf = ErrorClusterFeature::FromRaw(
        std::move(cf1), std::move(cf2), std::move(ef2),
        static_cast<double>(q.weights[i]),
        static_cast<double>(q.last_updates[i]));
    out.clusters.push_back(std::move(state));
  }
  return out;
}

/// Reconstructs a delta frame on top of its materialized parent. nullopt
/// on structural corruption (an id with no donor entry anywhere).
std::optional<Snapshot> ApplyDelta(const EncodedFrame& frame,
                                   const Snapshot& parent) {
  std::unordered_map<std::uint64_t, const MicroClusterState*> changed_by_id;
  changed_by_id.reserve(frame.changed.size());
  for (const auto& state : frame.changed) changed_by_id.emplace(state.id, &state);
  std::unordered_map<std::uint64_t, const MicroClusterState*> parent_by_id;
  parent_by_id.reserve(parent.clusters.size());
  for (const auto& state : parent.clusters) parent_by_id.emplace(state.id, &state);

  Snapshot out;
  out.time = frame.time;
  out.clusters.reserve(frame.ids.size());
  for (std::uint64_t id : frame.ids) {
    auto it = changed_by_id.find(id);
    if (it != changed_by_id.end()) {
      out.clusters.push_back(*it->second);
      continue;
    }
    auto pit = parent_by_id.find(id);
    if (pit == parent_by_id.end()) return std::nullopt;
    out.clusters.push_back(*pit->second);
  }
  return out;
}
}  // namespace

SnapshotStore::SnapshotStore(std::size_t alpha, std::size_t l)
    : SnapshotStore(alpha, l, SnapshotTiering{}) {}

SnapshotStore::SnapshotStore(std::size_t alpha, std::size_t l,
                             SnapshotTiering tiering)
    : alpha_(alpha), l_(l), tiering_(std::move(tiering)) {
  UMICRO_CHECK(alpha >= 2);
  UMICRO_CHECK(l >= 1);
  double capacity = 1.0;
  for (std::size_t i = 0; i < l; ++i) capacity *= static_cast<double>(alpha);
  UMICRO_CHECK_MSG(capacity <= 1e9, "alpha^l too large to retain");
  capacity_per_order_ = static_cast<std::size_t>(capacity) + 1;
}

std::size_t SnapshotStore::OrderOf(std::uint64_t tick) const {
  UMICRO_CHECK(tick >= 1);
  std::size_t order = 0;
  while (tick % alpha_ == 0) {
    tick /= alpha_;
    ++order;
  }
  return order;
}

void SnapshotStore::EncodeDelta(EncodedFrame& frame, const Snapshot& parent) {
  UMICRO_CHECK(frame.encoding == FrameEncoding::kFull);
  std::unordered_map<std::uint64_t, const MicroClusterState*> parent_by_id;
  parent_by_id.reserve(parent.clusters.size());
  for (const auto& state : parent.clusters) parent_by_id.emplace(state.id, &state);

  frame.ids.reserve(frame.full.size());
  for (auto& state : frame.full) {
    frame.ids.push_back(state.id);
    auto it = parent_by_id.find(state.id);
    if (it == parent_by_id.end() || !BitIdentical(state, *it->second)) {
      frame.changed.push_back(std::move(state));
    }
  }
  frame.full.clear();
  frame.full.shrink_to_fit();
  frame.encoding = FrameEncoding::kDelta;
}

void SnapshotStore::Insert(std::uint64_t tick, Snapshot snapshot) {
  UMICRO_CHECK_MSG(tick > last_tick_, "ticks must be strictly increasing");
  last_tick_ = tick;
  const std::size_t order = OrderOf(tick);
  if (order >= orders_.size()) orders_.resize(order + 1);
  auto& ring = orders_[order];

  // The new frame becomes the ring head; in delta/tiered modes the
  // previous head turns warm and keeps only what differs from it.
  if (tiering_.mode != SnapshotStoreMode::kFull && !ring.empty() &&
      ring.back().encoding == FrameEncoding::kFull) {
    EncodeDelta(ring.back(), snapshot);
  }

  EncodedFrame frame;
  frame.tick = tick;
  frame.time = snapshot.time;
  frame.encoding = FrameEncoding::kFull;
  frame.cluster_count = snapshot.clusters.size();
  frame.dims = snapshot.clusters.empty()
                   ? 0
                   : snapshot.clusters.front().ecf.dimensions();
  frame.full = std::move(snapshot.clusters);
  ring.push_back(std::move(frame));
  if (ring.size() > capacity_per_order_) EvictFront(ring);
  EnforceBudget();
}

void SnapshotStore::EvictFront(std::deque<EncodedFrame>& ring) {
  if (ring.front().encoding == FrameEncoding::kSpilled) {
    std::remove(ring.front().spill_path.c_str());
  }
  ring.pop_front();
}

std::optional<Snapshot> SnapshotStore::MaterializeSelfContained(
    const EncodedFrame& frame) const {
  switch (frame.encoding) {
    case FrameEncoding::kFull: {
      Snapshot out;
      out.time = frame.time;
      out.clusters = frame.full;
      return out;
    }
    case FrameEncoding::kQuantized:
      ++reconstructions_;
      return Widen(frame);
    case FrameEncoding::kSpilled: {
      if (!tiering_.codec.valid()) {
        ++spill_failures_;
        return std::nullopt;
      }
      std::optional<Snapshot> loaded = tiering_.codec.read(frame.spill_path);
      if (!loaded.has_value()) {
        ++spill_failures_;
        return std::nullopt;
      }
      ++spill_loads_;
      ++reconstructions_;
      loaded->time = frame.time;
      return loaded;
    }
    case FrameEncoding::kDelta:
      break;
  }
  return std::nullopt;
}

std::optional<Snapshot> SnapshotStore::MaterializeIndex(
    const std::deque<EncodedFrame>& ring, std::size_t index) const {
  // Delta chains resolve rightwards: each warm frame's parent is the
  // next-newer frame in the same ring, and the chain ends at the ring's
  // self-contained head.
  std::size_t base_index = index;
  while (base_index < ring.size() &&
         ring[base_index].encoding == FrameEncoding::kDelta) {
    ++base_index;
  }
  if (base_index >= ring.size()) return std::nullopt;
  std::optional<Snapshot> snapshot =
      MaterializeSelfContained(ring[base_index]);
  while (snapshot.has_value() && base_index > index) {
    --base_index;
    snapshot = ApplyDelta(ring[base_index], *snapshot);
    ++reconstructions_;
  }
  return snapshot;
}

std::optional<Snapshot> SnapshotStore::MaterializeFrame(
    std::size_t order, std::size_t index) const {
  return MaterializeIndex(orders_[order], index);
}

std::optional<Snapshot> SnapshotStore::FindAtOrBefore(double time) const {
  struct Candidate {
    double time;
    std::size_t order;
    std::size_t index;
  };
  std::vector<Candidate> candidates;
  for (std::size_t order = 0; order < orders_.size(); ++order) {
    const auto& ring = orders_[order];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      if (ring[i].time <= time) candidates.push_back({ring[i].time, order, i});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.time > b.time;
            });
  // Skip-and-degrade: a frame whose spill file is gone is not an error,
  // the next-best retained frame answers instead.
  for (const Candidate& c : candidates) {
    std::optional<Snapshot> snapshot = MaterializeIndex(orders_[c.order], c.index);
    if (snapshot.has_value()) return snapshot;
  }
  return std::nullopt;
}

std::optional<Snapshot> SnapshotStore::FindNearest(double time) const {
  struct Candidate {
    double diff;
    double time;
    std::size_t order;
    std::size_t index;
  };
  std::vector<Candidate> candidates;
  for (std::size_t order = 0; order < orders_.size(); ++order) {
    const auto& ring = orders_[order];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      candidates.push_back(
          {std::abs(ring[i].time - time), ring[i].time, order, i});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.diff != b.diff) return a.diff < b.diff;
              return a.time > b.time;
            });
  for (const Candidate& c : candidates) {
    std::optional<Snapshot> snapshot = MaterializeIndex(orders_[c.order], c.index);
    if (snapshot.has_value()) return snapshot;
  }
  return std::nullopt;
}

void SnapshotStore::ForEach(
    const std::function<void(std::size_t, const Snapshot&)>& fn) const {
  for (std::size_t order = 0; order < orders_.size(); ++order) {
    const auto& ring = orders_[order];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      std::optional<Snapshot> snapshot = MaterializeIndex(ring, i);
      if (snapshot.has_value()) fn(order, *snapshot);
    }
  }
}

bool SnapshotStore::DemoteOldestToCold() {
  // The first non-cold frame of each ring (excluding the head) is the
  // only candidate: demoting it keeps the cold tier a contiguous prefix,
  // so no delta chain ever has to resolve through a lossy frame.
  const EncodedFrame* best = nullptr;
  std::size_t best_order = 0;
  std::size_t best_index = 0;
  for (std::size_t order = 0; order < orders_.size(); ++order) {
    const auto& ring = orders_[order];
    if (ring.size() < 2) continue;  // never demote a ring head
    for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
      if (IsCold(ring[i])) continue;
      if (best == nullptr || ring[i].tick < best->tick) {
        best = &ring[i];
        best_order = order;
        best_index = i;
      }
      break;
    }
  }
  if (best == nullptr) return false;

  std::optional<Snapshot> exact = MaterializeIndex(orders_[best_order], best_index);
  // Warm chains resolve through warm/hot frames only, which always
  // materialize; a failure here means internal corruption.
  if (!exact.has_value()) return false;

  EncodedFrame cold;
  cold.tick = best->tick;
  cold.time = best->time;
  cold.cluster_count = exact->clusters.size();
  cold.dims = exact->clusters.empty()
                  ? 0
                  : exact->clusters.front().ecf.dimensions();
  bool spilled = false;
  if (!tiering_.spill_dir.empty() && tiering_.codec.valid()) {
    std::string path = tiering_.spill_dir + "/frame-" +
                       std::to_string(++g_spill_serial) + "-t" +
                       std::to_string(cold.tick) + ".usnapf";
    if (tiering_.codec.write(*exact, path)) {
      cold.encoding = FrameEncoding::kSpilled;
      cold.spill_path = std::move(path);
      ++spills_;
      spilled = true;
    }
  }
  if (!spilled) {
    cold.encoding = FrameEncoding::kQuantized;
    cold.quant = Quantize(*exact);
  }
  orders_[best_order][best_index] = std::move(cold);
  return true;
}

void SnapshotStore::EnforceBudget() {
  if (tiering_.mode != SnapshotStoreMode::kTiered ||
      tiering_.budget_bytes == 0) {
    return;
  }
  while (ApproxBytes() > tiering_.budget_bytes) {
    if (!DemoteOldestToCold()) break;
  }
}

std::size_t SnapshotStore::FrameBytes(const EncodedFrame& frame) {
  std::size_t bytes = kFrameOverheadBytes;
  switch (frame.encoding) {
    case FrameEncoding::kFull:
      for (const auto& state : frame.full) {
        bytes += ExactClusterBytes(state.ecf.dimensions());
      }
      break;
    case FrameEncoding::kDelta:
      bytes += frame.ids.size() * sizeof(std::uint64_t);
      for (const auto& state : frame.changed) {
        bytes += ExactClusterBytes(state.ecf.dimensions());
      }
      break;
    case FrameEncoding::kQuantized:
      bytes += frame.quant.ids.size() * sizeof(std::uint64_t);
      bytes += frame.quant.creation_times.size() * sizeof(double);
      bytes += frame.quant.weights.size() * sizeof(float);
      bytes += frame.quant.last_updates.size() * sizeof(float);
      bytes += frame.quant.values.size() * sizeof(float);
      break;
    case FrameEncoding::kSpilled:
      bytes += frame.spill_path.size();
      break;
  }
  return bytes;
}

std::size_t SnapshotStore::FullEquivalentBytes(const EncodedFrame& frame) {
  return kFrameOverheadBytes +
         frame.cluster_count * ExactClusterBytes(frame.dims);
}

std::size_t SnapshotStore::ApproxBytes() const {
  std::size_t bytes = 0;
  for (const auto& ring : orders_) {
    for (const auto& frame : ring) bytes += FrameBytes(frame);
  }
  return bytes;
}

SnapshotTierStats SnapshotStore::TierStats() const {
  SnapshotTierStats stats;
  for (const auto& ring : orders_) {
    for (const auto& frame : ring) {
      ++stats.frames;
      switch (frame.encoding) {
        case FrameEncoding::kFull: ++stats.full_frames; break;
        case FrameEncoding::kDelta: ++stats.delta_frames; break;
        case FrameEncoding::kQuantized: ++stats.quantized_frames; break;
        case FrameEncoding::kSpilled: ++stats.spilled_frames; break;
      }
      stats.approx_bytes += FrameBytes(frame);
      stats.full_equivalent_bytes += FullEquivalentBytes(frame);
    }
  }
  stats.delta_ratio =
      stats.full_equivalent_bytes == 0
          ? 1.0
          : static_cast<double>(stats.approx_bytes) /
                static_cast<double>(stats.full_equivalent_bytes);
  stats.reconstructions = reconstructions_;
  stats.spills = spills_;
  stats.spill_loads = spill_loads_;
  stats.spill_failures = spill_failures_;
  return stats;
}

SnapshotStoreState SnapshotStore::ExportState() const {
  SnapshotStoreState state;
  state.last_tick = last_tick_;
  state.alpha = alpha_;
  state.l = l_;
  state.orders.reserve(orders_.size());
  for (const auto& ring : orders_) {
    state.orders.emplace_back(ring.begin(), ring.end());
  }
  return state;
}

bool SnapshotStore::RestoreState(const SnapshotStoreState& state,
                                 std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  if (state.alpha != alpha_ || state.l != l_) {
    return fail("snapshot store geometry mismatch: state written under alpha=" +
                std::to_string(state.alpha) + " l=" + std::to_string(state.l) +
                " but store is configured with alpha=" +
                std::to_string(alpha_) + " l=" + std::to_string(l_) +
                "; refusing to restore (order rings would be silently "
                "truncated or overfilled)");
  }
  for (std::size_t order = 0; order < state.orders.size(); ++order) {
    const auto& ring = state.orders[order];
    if (ring.size() > capacity_per_order_) {
      return fail("order " + std::to_string(order) + " ring holds " +
                  std::to_string(ring.size()) + " frames, capacity is " +
                  std::to_string(capacity_per_order_));
    }
    std::uint64_t prev_tick = 0;
    bool saw_warm = false;
    for (const auto& frame : ring) {
      if (frame.tick == 0 || frame.tick <= prev_tick) {
        return fail("order " + std::to_string(order) +
                    " frame ticks are not strictly increasing");
      }
      prev_tick = frame.tick;
      if (frame.tick > state.last_tick) {
        return fail("frame tick " + std::to_string(frame.tick) +
                    " is newer than the store's last tick " +
                    std::to_string(state.last_tick));
      }
      if (OrderOf(frame.tick) != order) {
        return fail("tick " + std::to_string(frame.tick) +
                    " classifies at order " +
                    std::to_string(OrderOf(frame.tick)) +
                    " but was stored in ring " + std::to_string(order));
      }
      if (IsCold(frame)) {
        if (saw_warm) {
          return fail("cold frame after a warm frame in order " +
                      std::to_string(order) +
                      " (the cold tier must be a ring prefix)");
        }
      } else {
        saw_warm = true;
      }
      switch (frame.encoding) {
        case FrameEncoding::kFull:
          if (frame.full.size() != frame.cluster_count) {
            return fail("full frame at tick " + std::to_string(frame.tick) +
                        " has inconsistent cluster count");
          }
          break;
        case FrameEncoding::kDelta:
          if (frame.ids.size() != frame.cluster_count ||
              frame.changed.size() > frame.ids.size()) {
            return fail("delta frame at tick " + std::to_string(frame.tick) +
                        " has inconsistent id/changed counts");
          }
          break;
        case FrameEncoding::kQuantized: {
          const auto& q = frame.quant;
          if (q.ids.size() != frame.cluster_count ||
              q.creation_times.size() != frame.cluster_count ||
              q.weights.size() != frame.cluster_count ||
              q.last_updates.size() != frame.cluster_count ||
              q.values.size() != frame.cluster_count * 3 * q.dims ||
              q.dims != frame.dims) {
            return fail("quantized frame at tick " +
                        std::to_string(frame.tick) +
                        " has inconsistent array sizes");
          }
          break;
        }
        case FrameEncoding::kSpilled:
          if (frame.spill_path.empty()) {
            return fail("spilled frame at tick " + std::to_string(frame.tick) +
                        " has no spill path");
          }
          break;
      }
    }
    if (!ring.empty() && ring.back().encoding == FrameEncoding::kDelta) {
      return fail("order " + std::to_string(order) +
                  " ring head is a delta frame with no parent to resolve "
                  "against");
    }
  }

  last_tick_ = state.last_tick;
  orders_.clear();
  orders_.resize(state.orders.size());
  for (std::size_t i = 0; i < state.orders.size(); ++i) {
    orders_[i].assign(state.orders[i].begin(), state.orders[i].end());
  }
  return true;
}

std::size_t SnapshotStore::TotalStored() const {
  std::size_t total = 0;
  for (const auto& ring : orders_) total += ring.size();
  return total;
}

std::vector<MicroClusterState> SubtractSnapshot(const Snapshot& current,
                                                const Snapshot& older,
                                                double decay_lambda) {
  UMICRO_CHECK(older.time <= current.time);
  UMICRO_CHECK(decay_lambda >= 0.0);
  // Live ECFs have been decayed to current.time while the stored ones
  // froze at older.time; bring the older statistics forward to the same
  // reference instant before subtracting.
  double decay_factor =
      decay_lambda > 0.0
          ? std::exp2(-decay_lambda * (current.time - older.time))
          : 1.0;
  // A factor that underflowed to the denormal range carries no usable
  // mass; flush it to zero so the scaled statistics below are exact
  // zeros rather than denormal noise.
  if (decay_factor < std::numeric_limits<double>::min()) decay_factor = 0.0;
  std::unordered_map<std::uint64_t, const MicroClusterState*> older_by_id;
  older_by_id.reserve(older.clusters.size());
  for (const auto& state : older.clusters) {
    older_by_id.emplace(state.id, &state);
  }

  std::vector<MicroClusterState> result;
  result.reserve(current.clusters.size());
  for (const auto& state : current.clusters) {
    auto it = older_by_id.find(state.id);
    if (it == older_by_id.end()) {
      // Created inside the horizon: keep whole.
      result.push_back(state);
      continue;
    }
    MicroClusterState window = state;
    ErrorClusterFeature scaled = it->second->ecf;
    if (decay_factor != 1.0) scaled.Scale(decay_factor);
    const double subtracted_weight = scaled.weight();
    if (subtracted_weight > kMinResidualWeight) {
      window.ecf.Subtract(scaled);
    }
    // When the older contribution has fully decayed (zero/denormal
    // weight), nothing is subtracted: whatever mass the live cluster
    // still has is genuine window mass -- but it must itself clear the
    // absolute floor, otherwise the "window" is just the decayed husk of
    // pre-horizon points and belongs to the empty window.
    const double floor = std::max(kMinResidualWeight,
                                  kMinResidualFraction * subtracted_weight);
    if (window.ecf.weight() > floor) {
      result.push_back(std::move(window));
    }
  }
  return result;
}

}  // namespace umicro::core
