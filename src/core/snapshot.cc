#include "core/snapshot.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace umicro::core {

namespace {
/// Absolute weight floor below which a subtracted cluster is empty.
constexpr double kMinResidualWeight = 1e-9;
/// Relative floor: a residual lighter than this fraction of the weight
/// that was subtracted from it is floating-point cancellation noise,
/// not window mass (its centroid would be noise divided by noise).
constexpr double kMinResidualFraction = 1e-6;
}  // namespace

SnapshotStore::SnapshotStore(std::size_t alpha, std::size_t l)
    : alpha_(alpha) {
  UMICRO_CHECK(alpha >= 2);
  UMICRO_CHECK(l >= 1);
  double capacity = 1.0;
  for (std::size_t i = 0; i < l; ++i) capacity *= static_cast<double>(alpha);
  UMICRO_CHECK_MSG(capacity <= 1e9, "alpha^l too large to retain");
  capacity_per_order_ = static_cast<std::size_t>(capacity) + 1;
}

std::size_t SnapshotStore::OrderOf(std::uint64_t tick) const {
  UMICRO_CHECK(tick >= 1);
  std::size_t order = 0;
  while (tick % alpha_ == 0) {
    tick /= alpha_;
    ++order;
  }
  return order;
}

void SnapshotStore::Insert(std::uint64_t tick, Snapshot snapshot) {
  UMICRO_CHECK_MSG(tick > last_tick_, "ticks must be strictly increasing");
  last_tick_ = tick;
  const std::size_t order = OrderOf(tick);
  if (order >= orders_.size()) orders_.resize(order + 1);
  auto& ring = orders_[order];
  ring.push_back(std::move(snapshot));
  if (ring.size() > capacity_per_order_) ring.pop_front();
}

std::optional<Snapshot> SnapshotStore::FindAtOrBefore(double time) const {
  const Snapshot* best = nullptr;
  for (const auto& ring : orders_) {
    for (const auto& snapshot : ring) {
      if (snapshot.time <= time &&
          (best == nullptr || snapshot.time > best->time)) {
        best = &snapshot;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<Snapshot> SnapshotStore::FindNearest(double time) const {
  const Snapshot* best = nullptr;
  double best_diff = 0.0;
  for (const auto& ring : orders_) {
    for (const auto& snapshot : ring) {
      const double diff = std::abs(snapshot.time - time);
      if (best == nullptr || diff < best_diff) {
        best = &snapshot;
        best_diff = diff;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

SnapshotStoreState SnapshotStore::ExportState() const {
  SnapshotStoreState state;
  state.last_tick = last_tick_;
  state.orders.reserve(orders_.size());
  for (const auto& ring : orders_) {
    state.orders.emplace_back(ring.begin(), ring.end());
  }
  return state;
}

void SnapshotStore::RestoreState(const SnapshotStoreState& state) {
  last_tick_ = state.last_tick;
  orders_.clear();
  orders_.resize(state.orders.size());
  for (std::size_t i = 0; i < state.orders.size(); ++i) {
    orders_[i].assign(state.orders[i].begin(), state.orders[i].end());
  }
}

std::size_t SnapshotStore::TotalStored() const {
  std::size_t total = 0;
  for (const auto& ring : orders_) total += ring.size();
  return total;
}

std::vector<MicroClusterState> SubtractSnapshot(const Snapshot& current,
                                                const Snapshot& older,
                                                double decay_lambda) {
  UMICRO_CHECK(older.time <= current.time);
  UMICRO_CHECK(decay_lambda >= 0.0);
  // Live ECFs have been decayed to current.time while the stored ones
  // froze at older.time; bring the older statistics forward to the same
  // reference instant before subtracting.
  const double decay_factor =
      decay_lambda > 0.0
          ? std::exp2(-decay_lambda * (current.time - older.time))
          : 1.0;
  std::unordered_map<std::uint64_t, const MicroClusterState*> older_by_id;
  older_by_id.reserve(older.clusters.size());
  for (const auto& state : older.clusters) {
    older_by_id.emplace(state.id, &state);
  }

  std::vector<MicroClusterState> result;
  result.reserve(current.clusters.size());
  for (const auto& state : current.clusters) {
    auto it = older_by_id.find(state.id);
    if (it == older_by_id.end()) {
      // Created inside the horizon: keep whole.
      result.push_back(state);
      continue;
    }
    MicroClusterState window = state;
    ErrorClusterFeature scaled = it->second->ecf;
    if (decay_factor != 1.0) scaled.Scale(decay_factor);
    window.ecf.Subtract(scaled);
    const double floor = std::max(kMinResidualWeight,
                                  kMinResidualFraction * scaled.weight());
    if (window.ecf.weight() > floor) {
      result.push_back(std::move(window));
    }
  }
  return result;
}

}  // namespace umicro::core
