// Offline macro-clustering over micro-clusters (the "higher level
// macro-clusters" of Section II-D).
//
// Micro-clusters act as weighted pseudo-points (centroid, weight); a
// weighted k-means with k-means++ seeding groups them into the
// user-requested number of macro-clusters, typically over a horizon
// extracted from the pyramidal snapshot store.

#ifndef UMICRO_CORE_MACRO_CLUSTER_H_
#define UMICRO_CORE_MACRO_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "core/snapshot.h"

namespace umicro::core {

/// Tunables of the offline weighted k-means.
struct MacroClusteringOptions {
  /// Number of macro-clusters to produce.
  std::size_t k = 5;
  /// Lloyd iteration cap.
  std::size_t max_iterations = 100;
  /// Relative SSQ improvement below which iteration stops.
  double tolerance = 1e-7;
  /// Independent restarts; the best (lowest weighted SSQ) run wins.
  std::size_t num_restarts = 3;
  /// RNG seed.
  std::uint64_t seed = 11;
};

/// Result of a macro-clustering run.
struct MacroClustering {
  /// Macro-cluster centroids (k of them, possibly fewer if inputs < k).
  std::vector<std::vector<double>> centroids;
  /// For each input pseudo-point, the index of its macro-cluster.
  std::vector<int> assignment;
  /// Weighted sum of squared distances at convergence.
  double weighted_ssq = 0.0;
};

/// Weighted k-means over explicit pseudo-points. `points` and `weights`
/// must have equal size; weights must be positive.
MacroClustering WeightedKMeans(const std::vector<std::vector<double>>& points,
                               const std::vector<double>& weights,
                               const MacroClusteringOptions& options);

/// Convenience: macro-clusters a set of micro-cluster states (e.g. the
/// output of SubtractSnapshot) using centroid/weight pseudo-points.
MacroClustering ClusterMicroClusters(
    const std::vector<MicroClusterState>& states,
    const MacroClusteringOptions& options);

}  // namespace umicro::core

#endif  // UMICRO_CORE_MACRO_CLUSTER_H_
