#include "core/cluster_feature.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace umicro::core {

ErrorClusterFeature::ErrorClusterFeature(std::size_t dimensions)
    : cf1_(dimensions, 0.0), cf2_(dimensions, 0.0), ef2_(dimensions, 0.0) {
  UMICRO_CHECK(dimensions > 0);
}

ErrorClusterFeature ErrorClusterFeature::FromPoint(
    const stream::UncertainPoint& point, double weight) {
  ErrorClusterFeature ecf(point.dimensions());
  ecf.AddPoint(point, weight);
  return ecf;
}

void ErrorClusterFeature::AddPoint(const stream::UncertainPoint& point,
                                   double weight) {
  UMICRO_CHECK(point.dimensions() == dimensions());
  UMICRO_CHECK(weight > 0.0);
  for (std::size_t j = 0; j < dimensions(); ++j) {
    const double x = point.values[j];
    const double psi = point.ErrorAt(j);
    cf1_[j] += weight * x;
    cf2_[j] += weight * x * x;
    ef2_[j] += weight * psi * psi;
  }
  weight_ += weight;
  last_update_time_ = std::max(last_update_time_, point.timestamp);
}

void ErrorClusterFeature::Merge(const ErrorClusterFeature& other) {
  UMICRO_CHECK(other.dimensions() == dimensions());
  for (std::size_t j = 0; j < dimensions(); ++j) {
    cf1_[j] += other.cf1_[j];
    cf2_[j] += other.cf2_[j];
    ef2_[j] += other.ef2_[j];
  }
  weight_ += other.weight_;
  last_update_time_ = std::max(last_update_time_, other.last_update_time_);
}

void ErrorClusterFeature::Subtract(const ErrorClusterFeature& other) {
  UMICRO_CHECK(other.dimensions() == dimensions());
  weight_ -= other.weight_;
  if (weight_ <= 0.0) {
    // An over-subtracted cluster is empty. Clamping only the weight
    // while leaving cf1 nonzero used to hand Centroid() a near-zero
    // divisor and inject huge coordinates downstream; all statistics
    // are zeroed together so the clamp is self-consistent.
    weight_ = 0.0;
    std::fill(cf1_.begin(), cf1_.end(), 0.0);
    std::fill(cf2_.begin(), cf2_.end(), 0.0);
    std::fill(ef2_.begin(), ef2_.end(), 0.0);
    return;
  }
  for (std::size_t j = 0; j < dimensions(); ++j) {
    cf1_[j] -= other.cf1_[j];
    cf2_[j] = std::max(0.0, cf2_[j] - other.cf2_[j]);
    ef2_[j] = std::max(0.0, ef2_[j] - other.ef2_[j]);
  }
}

void ErrorClusterFeature::Scale(double factor) {
  UMICRO_CHECK(factor >= 0.0);
  for (std::size_t j = 0; j < dimensions(); ++j) {
    cf1_[j] *= factor;
    cf2_[j] *= factor;
    ef2_[j] *= factor;
  }
  weight_ *= factor;
}

std::vector<double> ErrorClusterFeature::Centroid() const {
  UMICRO_CHECK(!empty());
  std::vector<double> centroid(dimensions());
  for (std::size_t j = 0; j < dimensions(); ++j) {
    centroid[j] = cf1_[j] / weight_;
  }
  return centroid;
}

double ErrorClusterFeature::CentroidAt(std::size_t j) const {
  UMICRO_DCHECK(!empty());
  UMICRO_DCHECK(j < dimensions());
  return cf1_[j] / weight_;
}

double ErrorClusterFeature::ExpectedCentroidNormSquared() const {
  UMICRO_CHECK(!empty());
  const double n2 = weight_ * weight_;
  double sum = 0.0;
  for (std::size_t j = 0; j < dimensions(); ++j) {
    sum += cf1_[j] * cf1_[j] / n2 + ef2_[j] / n2;
  }
  return sum;
}

double ErrorClusterFeature::UncertainRadiusSquared() const {
  UMICRO_CHECK(!empty());
  const double n = weight_;
  double sum = 0.0;
  for (std::size_t j = 0; j < dimensions(); ++j) {
    sum += cf2_[j] + ef2_[j] * (1.0 + 1.0 / n) - cf1_[j] * cf1_[j] / n;
  }
  return std::max(0.0, sum / n);
}

double ErrorClusterFeature::UncertainRadius() const {
  return std::sqrt(UncertainRadiusSquared());
}

double ErrorClusterFeature::VarianceAt(std::size_t j) const {
  UMICRO_CHECK(!empty());
  UMICRO_CHECK(j < dimensions());
  const double mean = cf1_[j] / weight_;
  return std::max(0.0, cf2_[j] / weight_ - mean * mean);
}

ErrorClusterFeature ErrorClusterFeature::FromRaw(std::vector<double> cf1,
                                                 std::vector<double> cf2,
                                                 std::vector<double> ef2,
                                                 double weight,
                                                 double last_update_time) {
  UMICRO_CHECK(!cf1.empty());
  UMICRO_CHECK(cf1.size() == cf2.size() && cf2.size() == ef2.size());
  UMICRO_CHECK(weight >= 0.0);
  ErrorClusterFeature ecf;
  ecf.cf1_ = std::move(cf1);
  ecf.cf2_ = std::move(cf2);
  ecf.ef2_ = std::move(ef2);
  ecf.weight_ = weight;
  ecf.last_update_time_ = last_update_time;
  return ecf;
}

}  // namespace umicro::core
