#include "core/engine_core.h"

#include <algorithm>
#include <cstdio>

#include "obs/scoped_timer.h"

namespace umicro::core {

EngineCore::EngineCore(std::size_t dimensions, const EngineOptions& options)
    : options_(options),
      online_(dimensions, options.umicro),
      store_(options.snapshot.pyramid_alpha, options.snapshot.pyramid_l,
             options.snapshot.tiering) {}

void EngineCore::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  online_.AttachMetrics(registry);
  if (registry != nullptr) {
    snapshot_micros_ = &registry->GetHistogram("snapshot.take_micros");
    snapshots_taken_ = &registry->GetCounter("snapshot.taken");
    snapshots_stored_ = &registry->GetGauge("snapshot.stored");
    snapshot_bytes_ = &registry->GetGauge("snapshot.bytes");
    snapshot_frames_ = &registry->GetGauge("snapshot.frames");
    snapshot_delta_ratio_ = &registry->GetGauge("snapshot.delta_ratio");
    snapshot_reconstructions_ = &registry->GetCounter("snapshot.reconstructions");
    snapshot_spills_ = &registry->GetCounter("snapshot.spills");
  } else {
    snapshot_micros_ = nullptr;
    snapshots_taken_ = nullptr;
    snapshots_stored_ = nullptr;
    snapshot_bytes_ = nullptr;
    snapshot_frames_ = nullptr;
    snapshot_delta_ratio_ = nullptr;
    snapshot_reconstructions_ = nullptr;
    snapshot_spills_ = nullptr;
  }
}

void EngineCore::PublishStoreMetrics() {
  if (snapshot_bytes_ == nullptr) return;
  const SnapshotTierStats stats = store_.TierStats();
  snapshot_bytes_->Set(static_cast<double>(stats.approx_bytes));
  snapshot_frames_->Set(static_cast<double>(stats.frames));
  snapshot_delta_ratio_->Set(stats.delta_ratio);
  if (stats.reconstructions > published_reconstructions_) {
    snapshot_reconstructions_->Increment(stats.reconstructions -
                                         published_reconstructions_);
    published_reconstructions_ = stats.reconstructions;
  }
  if (stats.spills > published_spills_) {
    snapshot_spills_->Increment(stats.spills - published_spills_);
    published_spills_ = stats.spills;
  }
}

void EngineCore::TakeCadenceSnapshot() {
  const obs::ScopedTimer timer(snapshot_micros_);
  const std::uint64_t tick = next_tick_++;
  Snapshot snapshot = online_.TakeSnapshot(last_timestamp_);
  if (sink_ != nullptr) {
    sink_->PublishSnapshot(store_.OrderOf(tick), snapshot);
  }
  store_.Insert(tick, std::move(snapshot));
  since_snapshot_ = 0;
  if (snapshots_taken_ != nullptr) snapshots_taken_->Increment();
  if (snapshots_stored_ != nullptr) {
    snapshots_stored_->Set(static_cast<double>(store_.TotalStored()));
  }
  PublishStoreMetrics();
}

void EngineCore::Process(const stream::UncertainPoint& point) {
  online_.Process(point);
  // Out-of-order arrivals (merged shard replays, log replays) must not
  // rewind the engine clock: SnapshotStore::Insert requires increasing
  // tick times and the decay anchor is the newest time seen, so the
  // timestamp is clamped to be monotone.
  last_timestamp_ = std::max(last_timestamp_, point.timestamp);
  if (options_.snapshot.snapshot_every > 0 &&
      ++since_snapshot_ >= options_.snapshot.snapshot_every) {
    TakeCadenceSnapshot();
  }
}

void EngineCore::ProcessBatch(
    std::span<const stream::UncertainPoint> points) {
  const std::size_t every = options_.snapshot.snapshot_every;
  std::size_t offset = 0;
  while (offset < points.size()) {
    std::size_t take = points.size() - offset;
    if (every > 0) take = std::min(take, every - since_snapshot_);
    const auto chunk = points.subspan(offset, take);
    online_.ProcessBatch(chunk);
    for (const auto& point : chunk) {
      last_timestamp_ = std::max(last_timestamp_, point.timestamp);
    }
    offset += take;
    if (every > 0) {
      since_snapshot_ += take;
      if (since_snapshot_ >= every) TakeCadenceSnapshot();
    }
  }
}

std::optional<HorizonClustering> EngineCore::ClusterRecent(
    double horizon, const MacroClusteringOptions& options) {
  if (online_.points_processed() == 0) return std::nullopt;
  const Snapshot current = online_.TakeSnapshot(last_timestamp_);
  auto result = ClusterOverHorizon(store_, current, horizon, options, metrics_,
                                   options_.umicro.decay_lambda);
  // Horizon queries materialize frames (delta walks, spill loads);
  // surface the store counters they advanced.
  PublishStoreMetrics();
  return result;
}

void EngineCore::Flush() {
  if (sink_ != nullptr && online_.points_processed() > 0) {
    sink_->PublishCurrent(online_.TakeSnapshot(last_timestamp_));
  }
}

void EngineCore::AttachSnapshotSink(SnapshotSink* sink) {
  if (sink == sink_) return;  // idempotent: never double-prime a sink
  sink_ = sink;
  if (sink_ == nullptr) return;
  store_.ForEach([this](std::size_t order, const Snapshot& snapshot) {
    sink_->PublishSnapshot(order, snapshot);
  });
  if (online_.points_processed() > 0) {
    sink_->PublishCurrent(online_.TakeSnapshot(last_timestamp_));
  }
}

EngineState EngineCore::ExportState() const {
  EngineState state;
  state.engine_kind = "umicro";
  state.dimensions = online_.dimensions();
  state.shard_states.push_back(online_.ExportState());
  state.store = store_.ExportState();
  state.next_tick = next_tick_;
  state.since_snapshot = since_snapshot_;
  state.last_timestamp = last_timestamp_;
  return state;
}

bool EngineCore::RestoreState(const EngineState& state) {
  if (state.engine_kind != "umicro") return false;
  if (state.dimensions != online_.dimensions()) return false;
  if (state.shard_states.size() != 1) return false;
  // Validate and restore the store first: a geometry mismatch
  // (alpha/l drift between writer and reader) must leave the whole core
  // untouched, not just the retention rings.
  std::string store_error;
  if (!store_.RestoreState(state.store, &store_error)) {
    std::fprintf(stderr, "engine restore rejected: %s\n",
                 store_error.c_str());
    return false;
  }
  online_.RestoreState(state.shard_states[0]);
  next_tick_ = state.next_tick;
  since_snapshot_ = static_cast<std::size_t>(state.since_snapshot);
  last_timestamp_ = state.last_timestamp;
  return true;
}

}  // namespace umicro::core
