// UMicro: the paper's online algorithm for clustering uncertain data
// streams (Figure 1), including the exponential-time-decay variant of
// Section II-E.
//
// Per arriving record (X, psi(X)):
//   1. find the closest micro-cluster under the expected similarity
//      (dimension-counting by default, raw expected distance optionally);
//   2. compute that cluster's critical uncertainty boundary (t standard
//      deviations of the expected point-to-centroid distances, Eq. 6);
//   3. absorb the point if it falls inside the boundary, otherwise create
//      a new singleton micro-cluster, evicting the least-recently-updated
//      cluster when the budget n_micro is exceeded.

#ifndef UMICRO_CORE_UMICRO_H_
#define UMICRO_CORE_UMICRO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/expected_distance.h"
#include "index/centroid_index.h"
#include "core/microcluster.h"
#include "core/snapshot.h"
#include "kernels/cluster_table.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "stream/clusterer.h"
#include "stream/point.h"
#include "util/math_utils.h"

namespace umicro::core {

/// How the closest micro-cluster is chosen.
enum class SimilarityMode {
  /// Section II-B's dimension-counting similarity: per-dimension votes
  /// max{0, 1 - E[dist_j^2]/(thresh*sigma_j^2)}, pruning noisy dimensions.
  kDimensionCounting,
  /// Plain minimum expected squared distance (Lemma 2.2) -- the ablation
  /// baseline showing why the pruning similarity helps.
  kExpectedDistance,
};

/// Where the global per-dimension variances sigma_j^2 come from.
enum class VarianceSource {
  /// One-pass Welford statistics over every record seen (O(d)/point).
  kStreamWelford,
  /// The paper's formulation: sum all micro-cluster CF vectors into one
  /// global feature vector and apply the BIRCH variance formula;
  /// recomputed every `variance_refresh_interval` points.
  kClusterAggregate,
};

/// Tunables of the UMicro algorithm.
struct UMicroOptions {
  /// Number of micro-clusters to maintain (paper experiments: 100).
  std::size_t num_micro_clusters = 100;
  /// Boundary width in standard deviations (paper: t = 3).
  double boundary_factor = 3.0;
  /// Closest-cluster criterion.
  SimilarityMode similarity = SimilarityMode::kDimensionCounting;
  /// The `thresh` knob of the dimension-counting similarity.
  double dimension_threshold = 3.0;
  /// Distance form used when comparing a point against clusters.
  /// kPaperExpected (default) is Lemma 2.2 verbatim. kComparable drops
  /// the cluster-error term EF2_j/n^2, whose shrink-with-n behaviour can
  /// bias comparisons toward heavy clusters; with the merge-based
  /// maintenance below both forms are stable, and ablation bench A7
  /// contrasts them (the literal form scores slightly higher on the
  /// paper's purity metric across the reproduction workloads).
  DistanceForm distance_form = DistanceForm::kPaperExpected;
  /// Source of the global dimension variances.
  VarianceSource variance_source = VarianceSource::kStreamWelford;
  /// Refresh period (in points) for kClusterAggregate.
  std::size_t variance_refresh_interval = 256;
  /// Exponential decay rate lambda; weight w_t(X) = 2^(-lambda (t_c - t)).
  /// 0 disables decay (Definition 2.1 statistics); > 0 enables the
  /// weighted statistics of Definition 2.3. Half-life is 1/lambda.
  double decay_lambda = 0.0;
  /// Candidate index for the closest-cluster scan (src/index,
  /// docs/indexing.md): prunes the O(q) expected-distance scan to a
  /// provably-safe shortlist the exact SIMD kernels refine. Only the
  /// expected-distance similarity is indexable (the dimension-counting
  /// vote admits no safe Euclidean bound; counting-mode instances always
  /// run the full scan, whatever this is set to). kAuto engages a
  /// kd-tree once the live cluster count reaches 64.
  index::IndexKind assign_index = index::IndexKind::kAuto;
  /// Staleness horizon for making room: when a new micro-cluster must be
  /// created past the budget, the least-recently-updated cluster is
  /// evicted if it has not been touched for this many time units (the
  /// paper's rule); otherwise the two closest micro-clusters are merged
  /// instead (the CluStream consolidation rule). Merging is what lets
  /// young singleton clusters coalesce into mature clusters with
  /// meaningful radii; without it a high-dimensional stream can churn
  /// through singletons forever. Set to 0 to always evict (paper-literal
  /// Figure 1).
  double eviction_horizon = 5000.0;
};

/// Complete serializable state of a running UMicro instance
/// (checkpoint/restore; see io/state_io.h for the on-disk format).
struct UMicroState {
  /// Raw Welford accumulator state per dimension.
  struct WelfordRaw {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };

  std::vector<MicroCluster> clusters;
  std::vector<WelfordRaw> welford;
  std::vector<double> global_variances;
  std::uint64_t next_cluster_id = 0;
  std::size_t points_processed = 0;
  std::size_t clusters_created = 0;
  std::size_t clusters_evicted = 0;
  std::size_t clusters_merged = 0;
  double last_decay_time = 0.0;
  bool decay_clock_started = false;
};

/// The uncertain micro-clustering algorithm.
class UMicro : public stream::StreamClusterer {
 public:
  /// Creates an algorithm instance for `dimensions`-dimensional streams.
  UMicro(std::size_t dimensions, UMicroOptions options);

  /// What happened to one processed record (anomaly-detection hook: a
  /// record that had to open its own micro-cluster is a novelty).
  struct ProcessOutcome {
    /// True when the point was absorbed into an existing micro-cluster;
    /// false when it created a new singleton.
    bool absorbed = false;
    /// Id of the cluster the point ended up in.
    std::uint64_t cluster_id = 0;
    /// Expected distance (Lemma 2.2) to the chosen cluster; 0 for the
    /// very first point of the stream.
    double expected_distance = 0.0;
  };

  // StreamClusterer interface.
  void Process(const stream::UncertainPoint& point) override;
  /// Batched ingest: processes the points strictly in order with exactly
  /// the per-point semantics of Process (each decision sees the state
  /// left by its predecessors), but amortizes the timer and metric
  /// traffic over the whole batch.
  void ProcessBatch(std::span<const stream::UncertainPoint> points) override;
  std::string name() const override;

  /// Like Process, but reports what happened to the record.
  ProcessOutcome ProcessAndExplain(const stream::UncertainPoint& point);
  std::size_t points_processed() const override { return points_processed_; }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms() const override;
  std::vector<std::vector<double>> ClusterCentroids() const override;

  /// Live micro-clusters (inspection / offline macro-clustering input).
  const std::vector<MicroCluster>& clusters() const { return clusters_; }

  /// Current global per-dimension variance estimates.
  const std::vector<double>& global_variances() const {
    return global_variances_;
  }

  /// Dimensionality of the stream.
  std::size_t dimensions() const { return dimensions_; }

  /// Configured options.
  const UMicroOptions& options() const { return options_; }

  /// Materializes the current micro-cluster set as a snapshot at `time`
  /// (for the pyramidal time frame of Section II-D).
  Snapshot TakeSnapshot(double time) const;

  /// Captures the complete mutable state for checkpointing; restoring it
  /// into a same-configured instance resumes the stream exactly.
  UMicroState ExportState() const;

  /// Restores a previously exported state. The instance must have the
  /// same dimensionality the state was exported with; the options are
  /// taken from this instance (they are configuration, not state).
  void RestoreState(const UMicroState& state);

  /// Number of singleton creations so far (diagnostics).
  std::size_t clusters_created() const { return clusters_created_; }
  /// Number of evictions of the least-recently-updated cluster.
  std::size_t clusters_evicted() const { return clusters_evicted_; }
  /// Number of closest-pair merges performed to make room.
  std::size_t clusters_merged() const { return clusters_merged_; }

  /// Attaches a metrics registry (nullptr detaches, the default). The
  /// algorithm then records, under the "umicro." prefix: per-point
  /// process latency, similarity-kernel cluster scans, and
  /// absorb/create/evict/merge outcome counters. The registry must
  /// outlive this instance; several instances (e.g. the shards of a
  /// sharded pipeline) may share one registry, the cells are atomic.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// The kernel tier the batch scans run on (CPUID-dispatched; the
  /// UMICRO_KERNEL environment variable clamps it downward).
  kernels::Backend kernel_backend() const { return table_.backend(); }

  /// The candidate index behind the assignment scan, or nullptr when
  /// this instance runs flat scans (flat kind, or counting similarity).
  const index::CentroidIndex* assign_index() const {
    return assign_index_.get();
  }

 private:
  /// Per-batch tallies of metric events, flushed to the registry once
  /// per Process/ProcessBatch call instead of per point.
  struct BatchCounters {
    std::size_t scans = 0;
    std::size_t absorbed = 0;
    std::size_t created = 0;
  };

  /// The full per-point pipeline (decay, variances, assign, maintain)
  /// without any metric traffic; tallies events into `counters`.
  ProcessOutcome ProcessOne(const stream::UncertainPoint& point,
                            BatchCounters* counters);

  /// Pushes a batch's tallied events to the attached registry.
  void FlushCounters(const BatchCounters& counters, std::size_t points);

  /// Index of the closest cluster under the configured similarity;
  /// clusters_ must be non-empty.
  std::size_t FindClosest(const stream::UncertainPoint& point) const;

  /// Critical uncertainty boundary of cluster `index` (Section II-C):
  /// boundary_factor * U, with the nearest-other-centroid fallback for
  /// (near-)singleton clusters whose own radius is uninformative.
  double UncertaintyBoundary(std::size_t index) const;

  /// Whether `point` falls inside cluster `index`'s uncertainty boundary
  /// (Figure 1's absorb-or-create decision). Mature clusters compare the
  /// expected distance against t*U; near-singletons compare the
  /// error-stripped geometric distance against the Voronoi fallback.
  bool ShouldAbsorb(const stream::UncertainPoint& point,
                    std::size_t index) const;

  /// Applies pending exponential decay to every cluster (lazy, single
  /// shared rate: all statistics scale by 2^(-lambda * dt)).
  void ApplyDecay(double now);

  /// Makes room after a creation pushed the set past the budget: evicts
  /// the least-recently-updated cluster if stale, else merges the two
  /// closest clusters.
  void RetireOneCluster(double now);

  /// Updates global_variances_ according to the configured source.
  void UpdateGlobalVariances(const stream::UncertainPoint& point);

  const std::size_t dimensions_;
  const UMicroOptions options_;

  std::vector<MicroCluster> clusters_;
  /// SoA mirror of clusters_ (row i <-> clusters_[i]), kept bit-identical
  /// through the fused update kernels; all batch scans read it.
  kernels::ClusterTable table_;
  std::vector<util::WelfordAccumulator> welford_;
  std::vector<double> global_variances_;
  /// Cached 1/(thresh * sigma_j^2) (0 where sigma_j^2 == 0), refreshed
  /// together with global_variances_; turns the per-dimension division
  /// of the similarity scan into a multiplication.
  std::vector<double> scaled_inverse_variances_;
  /// Staged per-point buffers for the batch kernels.
  mutable kernels::PointContext point_ctx_;
  /// Per-cluster scores (votes or distances) of the current scan.
  mutable std::vector<double> scores_scratch_;
  /// Candidate index over table_'s centroids (null = always full scan).
  /// Mutable: Collect lazily rebuilds and tallies stats inside the
  /// logically-const FindClosest.
  mutable std::unique_ptr<index::CentroidIndex> assign_index_;
  /// Shortlist of the current indexed scan.
  mutable std::vector<std::uint32_t> candidates_scratch_;
  /// Index stats already pushed to the registry (FlushCounters ships
  /// the delta since this watermark).
  index::IndexStats flushed_index_stats_;

  // Metric handles resolved once by AttachMetrics; all null when no
  // registry is attached (the hot path then costs one pointer test).
  obs::Histogram* process_micros_ = nullptr;
  obs::Histogram* batch_micros_ = nullptr;
  obs::Histogram* closest_pair_micros_ = nullptr;
  obs::Gauge* kernel_tier_metric_ = nullptr;
  obs::Counter* points_metric_ = nullptr;
  obs::Counter* kernel_scans_metric_ = nullptr;
  obs::Counter* absorbed_metric_ = nullptr;
  obs::Counter* created_metric_ = nullptr;
  obs::Counter* evicted_metric_ = nullptr;
  obs::Counter* merged_metric_ = nullptr;
  obs::Gauge* live_clusters_metric_ = nullptr;
  obs::Counter* index_queries_metric_ = nullptr;
  obs::Counter* index_candidates_metric_ = nullptr;
  obs::Counter* index_rebuilds_metric_ = nullptr;
  obs::Gauge* index_prune_ratio_metric_ = nullptr;

  std::size_t points_processed_ = 0;
  std::uint64_t next_cluster_id_ = 0;
  std::size_t clusters_created_ = 0;
  std::size_t clusters_evicted_ = 0;
  std::size_t clusters_merged_ = 0;
  double last_decay_time_ = 0.0;
  bool decay_clock_started_ = false;
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_UMICRO_H_
