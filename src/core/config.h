// EngineConfig: the one configuration object of the whole stack.
//
// Before this header, every subsystem grew its own option struct and
// callers (the CLI above all) threaded them around piecemeal:
// UMicroOptions + SnapshotPolicy into the engines, checkpoint cadence
// into resilience, queue/merge knobs into parallel, broker knobs into
// serve. EngineConfig consolidates them: one value with per-field
// defaults describes an engine, a sharded pipeline, a checkpointer, a
// query broker, and a tenant fleet. Subsystems accept it directly
// (UMicroEngine, ParallelUMicroEngine, CheckpointManager, QueryBroker
// options, EngineFleet all have EngineConfig entry points); the old
// per-subsystem constructors remain as thin deprecated shims so
// existing code compiles unchanged.
//
// Layering: this header lives in core and therefore only names types
// core already owns plus plain scalars. Subsystems that keep richer
// option structs (parallel's BackpressurePolicy, resilience's
// CheckpointPolicy, serve's QueryBrokerOptions) provide their own
// EngineConfig converters next to those structs.

#ifndef UMICRO_CORE_CONFIG_H_
#define UMICRO_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/snapshot.h"
#include "core/umicro.h"

namespace umicro::core {

/// Configuration of the sequential engine. Deprecated shim: new code
/// should carry a full EngineConfig and let subsystems slice it; this
/// struct survives because every existing constructor and test names
/// it.
struct EngineOptions {
  /// Online component configuration.
  UMicroOptions umicro;
  /// Snapshot cadence and pyramidal retention.
  SnapshotPolicy snapshot;
};

/// Core-level mirror of parallel::BackpressurePolicy (defined here so
/// EngineConfig does not depend on the parallel subsystem; the
/// parallel engine maps it onto its own enum).
enum class QueueFullPolicy {
  kBlock,
  kDropOldest,
  kDropNewest,
};

/// Sharded-ingest knobs (parallel subsystem).
struct ParallelConfig {
  /// Worker threads; 0 selects the sequential engine.
  std::size_t threads = 0;
  /// Points between global merges.
  std::size_t merge_every = 8192;
  /// Per-shard queue capacity, in producer batches.
  std::size_t queue_capacity = 1024;
  /// Points buffered per shard before an enqueue.
  std::size_t producer_batch = 64;
  /// Reaction to a full shard queue.
  QueueFullPolicy backpressure = QueueFullPolicy::kBlock;
  /// Adaptive load shedding + worker supervision.
  bool degrade = false;
};

/// Crash-safe checkpointing knobs (resilience subsystem).
struct CheckpointConfig {
  /// Checkpoint directory; empty disables checkpointing.
  std::string dir;
  /// Checkpoint after this many newly processed points (0 = never by
  /// count).
  std::size_t every_points = 0;
  /// Checkpoint after this much wall-clock time (0 = never by time).
  double every_seconds = 0.0;
  /// Keep only the newest N checkpoints/manifests (0 = keep all).
  std::size_t keep_last = 4;
};

/// Query-serving knobs (serve subsystem).
struct ServeConfig {
  /// Broker worker threads.
  std::size_t threads = 4;
  /// Broker queue bound (backpressure toward the front end).
  std::size_t max_queue = 1024;
  /// Uncertainty-boundary width for ANOMALY queries.
  double boundary_factor = 3.0;
  /// Line-protocol pipeline depth.
  std::size_t max_pipeline = 64;
};

/// Multi-tenant fleet knobs (fleet subsystem; docs/fleet.md).
struct FleetConfig {
  /// Tenant engines to pre-create; 0 disables fleet mode. Tenants can
  /// also be created lazily through EngineFleet::EnsureTenant.
  std::size_t tenants = 0;
  /// Ingest worker threads shared by all tenants (tenant -> worker by
  /// hash).
  std::size_t workers = 4;
  /// Per-worker queue capacity, in tenant batches.
  std::size_t queue_capacity = 1024;
  /// Points buffered per tenant before the batch is routed to its
  /// worker (drained through the batched kernel path).
  std::size_t tenant_batch = 64;
  /// Per-tenant pyramidal store, sized down from the single-engine
  /// default: a fleet of 10^5 tenants cannot afford alpha^l + 1 deep
  /// rings per order each, so l shrinks by one and snapshots come at a
  /// coarser cadence. Frames are delta-encoded by default -- the fleet
  /// is exactly the context where per-tenant store bytes dominate, and
  /// delta frames are lossless (bit-identical materialization).
  SnapshotPolicy snapshot = [] {
    SnapshotPolicy policy;
    policy.snapshot_every = 256;
    policy.pyramid_alpha = 2;
    policy.pyramid_l = 2;
    policy.tiering.mode = SnapshotStoreMode::kDelta;
    return policy;
  }();
};

/// The consolidated configuration. Every field group has working
/// defaults; a default-constructed EngineConfig describes the same
/// sequential engine `UMicroEngine(dims, EngineOptions{})` builds.
struct EngineConfig {
  /// Online algorithm tunables (shared by every engine and tenant).
  UMicroOptions umicro;
  /// Snapshot cadence / pyramidal retention of a single engine.
  SnapshotPolicy snapshot;
  /// Sharded-ingest pipeline.
  ParallelConfig parallel;
  /// Crash-safe checkpointing.
  CheckpointConfig checkpoint;
  /// Query serving.
  ServeConfig serve;
  /// Multi-tenant fleet.
  FleetConfig fleet;

  /// The core slice: what a sequential engine (or one fleet tenant with
  /// the single-engine store) consumes.
  EngineOptions CoreOptions() const { return {umicro, snapshot}; }

  /// The per-tenant slice: same algorithm, fleet-sized pyramidal store.
  EngineOptions TenantOptions() const { return {umicro, fleet.snapshot}; }
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_CONFIG_H_
