#include "core/engine.h"

#include <algorithm>

#include "util/check.h"

namespace umicro::core {

UMicroEngine::UMicroEngine(std::size_t dimensions, EngineOptions options)
    : options_(options),
      online_(dimensions, options.umicro),
      store_(options.pyramid_alpha, options.pyramid_l) {
  UMICRO_CHECK(options_.snapshot_every > 0);
}

void UMicroEngine::Process(const stream::UncertainPoint& point) {
  online_.Process(point);
  // Out-of-order arrivals (merged shard replays, log replays) must not
  // rewind the engine clock: SnapshotStore::Insert requires increasing
  // tick times and the decay anchor is the newest time seen, so the
  // timestamp is clamped to be monotone.
  last_timestamp_ = std::max(last_timestamp_, point.timestamp);
  if (++since_snapshot_ >= options_.snapshot_every) {
    store_.Insert(next_tick_++, online_.TakeSnapshot(last_timestamp_));
    since_snapshot_ = 0;
  }
}

std::optional<HorizonClustering> UMicroEngine::ClusterRecent(
    double horizon, const MacroClusteringOptions& options) const {
  if (online_.points_processed() == 0) return std::nullopt;
  const Snapshot current = online_.TakeSnapshot(last_timestamp_);
  return ClusterOverHorizon(store_, current, horizon, options);
}

}  // namespace umicro::core
