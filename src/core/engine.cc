#include "core/engine.h"

namespace umicro::core {

UMicroEngine::UMicroEngine(std::size_t dimensions, EngineOptions options)
    : core_(dimensions, options) {
  core_.AttachMetrics(&metrics_);
}

EngineState UMicroEngine::ExportEngineState() {
  EngineState state = core_.ExportState();
  state.counters = metrics_.CounterCells();
  state.gauges = metrics_.GaugeCells();
  return state;
}

bool UMicroEngine::RestoreEngineState(const EngineState& state) {
  if (!core_.RestoreState(state)) return false;
  metrics_.RestoreCells(state.counters, state.gauges);
  return true;
}

}  // namespace umicro::core
