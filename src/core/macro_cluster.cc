#include "core/macro_cluster.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math_utils.h"
#include "util/random.h"

namespace umicro::core {

namespace {

/// One k-means++ seeded Lloyd run; returns its weighted SSQ result.
MacroClustering RunOnce(const std::vector<std::vector<double>>& points,
                        const std::vector<double>& weights, std::size_t k,
                        std::size_t max_iterations, double tolerance,
                        util::Rng& rng) {
  const std::size_t n = points.size();
  const std::size_t dims = points[0].size();

  // k-means++ seeding with point weights folded into the D^2 sampling.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.Categorical(weights)]);
  std::vector<double> min_dist2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    std::vector<double> sampling(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_dist2[i] = std::min(
          min_dist2[i], util::SquaredDistance(points[i], centroids.back()));
      sampling[i] = weights[i] * min_dist2[i];
      total += sampling[i];
    }
    if (total <= 0.0) {
      // All points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng.NextBounded(n)]);
    } else {
      centroids.push_back(points[rng.Categorical(sampling)]);
    }
  }

  MacroClustering result;
  result.assignment.assign(n, 0);
  double previous_ssq = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Assignment step.
    double ssq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d2 = util::SquaredDistance(points[i], centroids[c]);
        if (d2 < best) {
          best = d2;
          best_c = static_cast<int>(c);
        }
      }
      result.assignment[i] = best_c;
      ssq += weights[i] * best;
    }
    result.weighted_ssq = ssq;

    // Update step.
    std::vector<std::vector<double>> sums(centroids.size(),
                                          std::vector<double>(dims, 0.0));
    std::vector<double> mass(centroids.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = result.assignment[i];
      mass[c] += weights[i];
      for (std::size_t j = 0; j < dims; ++j) {
        sums[c][j] += weights[i] * points[i][j];
      }
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (mass[c] <= 0.0) {
        // Empty macro-cluster: re-seed at the heaviest pseudo-point.
        centroids[c] = points[rng.Categorical(weights)];
        continue;
      }
      for (std::size_t j = 0; j < dims; ++j) {
        centroids[c][j] = sums[c][j] / mass[c];
      }
    }

    if (previous_ssq - ssq <= tolerance * std::max(1.0, previous_ssq)) break;
    previous_ssq = ssq;
  }

  // Final assignment pass so the returned assignment/SSQ are consistent
  // with the returned (post-update) centroids.
  double final_ssq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      const double d2 = util::SquaredDistance(points[i], centroids[c]);
      if (d2 < best) {
        best = d2;
        best_c = static_cast<int>(c);
      }
    }
    result.assignment[i] = best_c;
    final_ssq += weights[i] * best;
  }
  result.weighted_ssq = final_ssq;

  result.centroids = std::move(centroids);
  return result;
}

}  // namespace

MacroClustering WeightedKMeans(const std::vector<std::vector<double>>& points,
                               const std::vector<double>& weights,
                               const MacroClusteringOptions& options) {
  UMICRO_CHECK(!points.empty());
  UMICRO_CHECK(points.size() == weights.size());
  UMICRO_CHECK(options.k > 0);
  for (double w : weights) UMICRO_CHECK(w > 0.0);

  const std::size_t k = std::min(options.k, points.size());
  util::Rng rng(options.seed);
  MacroClustering best;
  best.weighted_ssq = std::numeric_limits<double>::infinity();
  const std::size_t restarts = std::max<std::size_t>(1, options.num_restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    MacroClustering run = RunOnce(points, weights, k, options.max_iterations,
                                  options.tolerance, rng);
    if (run.weighted_ssq < best.weighted_ssq) best = std::move(run);
  }
  return best;
}

MacroClustering ClusterMicroClusters(
    const std::vector<MicroClusterState>& states,
    const MacroClusteringOptions& options) {
  UMICRO_CHECK(!states.empty());
  std::vector<std::vector<double>> points;
  std::vector<double> weights;
  points.reserve(states.size());
  weights.reserve(states.size());
  for (const auto& state : states) {
    UMICRO_CHECK(!state.ecf.empty());
    points.push_back(state.ecf.Centroid());
    weights.push_back(state.ecf.weight());
  }
  return WeightedKMeans(points, weights, options);
}

}  // namespace umicro::core
