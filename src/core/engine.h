// The unified engine API plus its sequential implementation.
//
// ClusteringEngine is the one surface tools and benches drive: it extends
// the StreamClusterer contract (Process / name / points_processed /
// evaluation hooks) with horizon queries over a pyramidal snapshot store
// and a per-engine metrics registry, so the sequential UMicroEngine and
// the sharded ParallelUMicroEngine are interchangeable behind one
// pointer.
//
// UMicroEngine is the paper's full online/interactive analysis stack in
// one object. Section II-D: "as in [CluStream], the approach can be used
// to perform interactive and online clustering in a data stream
// environment". The engine owns the UMicro online component and the
// pyramidal snapshot store, takes snapshots automatically at the
// SnapshotPolicy cadence, and answers horizon queries ("what did the
// stream look like over the last h time units, as k clusters?") at any
// moment.

#ifndef UMICRO_CORE_ENGINE_H_
#define UMICRO_CORE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/horizon.h"
#include "core/snapshot.h"
#include "core/umicro.h"
#include "obs/metrics.h"
#include "stream/clusterer.h"
#include "stream/point.h"

namespace umicro::core {

/// Complete serializable state of a running engine -- the unit of a
/// crash-safe checkpoint (see io/state_io.h for the on-disk format and
/// resilience/checkpoint.h for the write/recover machinery).
///
/// The ECF statistics inside are additive and carry no hidden process
/// state, so restoring this into a freshly constructed, identically
/// configured engine and replaying the stream from `points_processed()`
/// onward reproduces the uninterrupted run exactly (the no-double-count
/// invariant the crash-recovery suite asserts).
struct EngineState {
  /// Concrete engine tag ("umicro" or "sharded"); restore refuses a
  /// mismatch.
  std::string engine_kind;
  /// Stream dimensionality the state was exported under.
  std::size_t dimensions = 0;
  /// Per-shard algorithm states; exactly one entry for the sequential
  /// engine, one per worker for the sharded engine (its post-merge
  /// residuals -- the shard-private statistics as of the flushed
  /// checkpoint instant).
  std::vector<UMicroState> shard_states;
  /// Sharded only: the merged global view at checkpoint time.
  std::vector<MicroCluster> global_clusters;
  /// Sharded only: coordinator counters (ingest total, round-robin
  /// cursor) so partitioning resumes exactly where it stopped.
  std::uint64_t points_ingested = 0;
  std::uint64_t next_round_robin = 0;
  /// Pyramidal snapshot-store contents.
  SnapshotStoreState store;
  /// Engine stream clock.
  std::uint64_t next_tick = 1;
  std::uint64_t since_snapshot = 0;
  double last_timestamp = 0.0;
  /// Counter/gauge cells of the metrics registry at checkpoint time;
  /// histograms are not restorable and restart empty after recovery.
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

/// Abstract engine: one-pass stream clustering plus snapshots, horizon
/// queries, and an observability surface. Implemented by UMicroEngine
/// (sequential) and parallel::ParallelUMicroEngine (sharded); callers
/// hold a ClusteringEngine* and never branch on the concrete type.
class ClusteringEngine : public stream::StreamClusterer {
 public:
  /// Clusters the most recent `horizon` time units into `options.k`
  /// macro-clusters. Returns std::nullopt before any data or when the
  /// window is empty.
  virtual std::optional<HorizonClustering> ClusterRecent(
      double horizon, const MacroClusteringOptions& options) = 0;

  /// Completes all in-flight work so reads see current state (drains +
  /// merges for a sharded engine) and, with a snapshot sink attached,
  /// publishes a fresh "current" view to it.
  virtual void Flush() = 0;

  /// Attaches a snapshot sink (the serve layer's read replica; nullptr
  /// detaches). The engine immediately primes the sink with every
  /// retained pyramidal snapshot plus the live state, then keeps
  /// publishing on snapshot cadence and on Flush(). The sink must
  /// outlive the engine or be detached first; publications happen on
  /// the engine's coordinator thread.
  virtual void AttachSnapshotSink(SnapshotSink* sink) = 0;

  /// Snapshot store (inspection / persistence).
  virtual const SnapshotStore& store() const = 0;

  /// Captures the complete durable state (flushing in-flight work
  /// first): algorithm statistics, snapshot store, stream clock, and the
  /// counter/gauge metric cells.
  virtual EngineState ExportEngineState() = 0;

  /// Restores a previously exported state into this engine. Must be
  /// called on a freshly constructed engine with the same configuration;
  /// returns false (leaving the engine untouched) when the state's kind
  /// or dimensionality does not match.
  virtual bool RestoreEngineState(const EngineState& state) = 0;

  /// The engine's metrics registry: counters/gauges/latency histograms
  /// for every instrumented stage (see docs/observability.md for the
  /// catalog). Live -- collect at any time.
  virtual obs::MetricsRegistry& metrics() = 0;
  const obs::MetricsRegistry& metrics() const {
    return const_cast<ClusteringEngine*>(this)->metrics();
  }
};

/// Configuration of the sequential engine.
struct EngineOptions {
  /// Online component configuration.
  UMicroOptions umicro;
  /// Snapshot cadence and pyramidal retention.
  SnapshotPolicy snapshot;
};

/// Online uncertain-stream clustering with historical horizon queries.
class UMicroEngine : public ClusteringEngine {
 public:
  /// Creates an engine for `dimensions`-dimensional streams.
  UMicroEngine(std::size_t dimensions, EngineOptions options);

  UMicroEngine(const UMicroEngine&) = delete;
  UMicroEngine& operator=(const UMicroEngine&) = delete;

  // StreamClusterer interface (delegating to the online component).
  void Process(const stream::UncertainPoint& point) override;
  /// Batched ingest: identical point-by-point semantics, but the batch
  /// is chunked at snapshot-cadence boundaries so the online component
  /// ingests each chunk in one amortized ProcessBatch call and every
  /// due snapshot is still taken at exactly the right point count.
  void ProcessBatch(std::span<const stream::UncertainPoint> points) override;
  std::string name() const override;
  std::size_t points_processed() const override {
    return online_.points_processed();
  }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms()
      const override {
    return online_.ClusterLabelHistograms();
  }
  std::vector<std::vector<double>> ClusterCentroids() const override {
    return online_.ClusterCentroids();
  }

  // ClusteringEngine interface.
  std::optional<HorizonClustering> ClusterRecent(
      double horizon, const MacroClusteringOptions& options) override;
  void Flush() override;
  void AttachSnapshotSink(SnapshotSink* sink) override;
  EngineState ExportEngineState() override;
  bool RestoreEngineState(const EngineState& state) override;
  const SnapshotStore& store() const override { return store_; }
  obs::MetricsRegistry& metrics() override { return metrics_; }

  /// Online component (current micro-clusters, diagnostics).
  const UMicro& online() const { return online_; }

 private:
  /// Takes the cadence snapshot: stores it, publishes it to the sink.
  void TakeCadenceSnapshot();

  EngineOptions options_;
  obs::MetricsRegistry metrics_;
  UMicro online_;
  SnapshotStore store_;
  SnapshotSink* sink_ = nullptr;
  obs::Histogram* snapshot_micros_;
  obs::Counter* snapshots_taken_;
  obs::Gauge* snapshots_stored_;
  std::uint64_t next_tick_ = 1;
  std::size_t since_snapshot_ = 0;
  double last_timestamp_ = 0.0;
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_ENGINE_H_
