// The unified engine API plus its sequential implementation.
//
// ClusteringEngine is the one surface tools and benches drive: it extends
// the StreamClusterer contract (Process / name / points_processed /
// evaluation hooks) with horizon queries over a pyramidal snapshot store
// and a per-engine metrics registry, so the sequential UMicroEngine and
// the sharded ParallelUMicroEngine are interchangeable behind one
// pointer.
//
// UMicroEngine is the paper's full online/interactive analysis stack in
// one object. Section II-D: "as in [CluStream], the approach can be used
// to perform interactive and online clustering in a data stream
// environment". The engine owns the UMicro online component and the
// pyramidal snapshot store, takes snapshots automatically at the
// SnapshotPolicy cadence, and answers horizon queries ("what did the
// stream look like over the last h time units, as k clusters?") at any
// moment.

#ifndef UMICRO_CORE_ENGINE_H_
#define UMICRO_CORE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/horizon.h"
#include "core/snapshot.h"
#include "core/umicro.h"
#include "obs/metrics.h"
#include "stream/clusterer.h"
#include "stream/point.h"

namespace umicro::core {

/// Abstract engine: one-pass stream clustering plus snapshots, horizon
/// queries, and an observability surface. Implemented by UMicroEngine
/// (sequential) and parallel::ParallelUMicroEngine (sharded); callers
/// hold a ClusteringEngine* and never branch on the concrete type.
class ClusteringEngine : public stream::StreamClusterer {
 public:
  /// Clusters the most recent `horizon` time units into `options.k`
  /// macro-clusters. Returns std::nullopt before any data or when the
  /// window is empty.
  virtual std::optional<HorizonClustering> ClusterRecent(
      double horizon, const MacroClusteringOptions& options) = 0;

  /// Completes all in-flight work so reads see current state (no-op for
  /// a sequential engine; drains + merges for a sharded one).
  virtual void Flush() = 0;

  /// Snapshot store (inspection / persistence).
  virtual const SnapshotStore& store() const = 0;

  /// The engine's metrics registry: counters/gauges/latency histograms
  /// for every instrumented stage (see docs/observability.md for the
  /// catalog). Live -- collect at any time.
  virtual obs::MetricsRegistry& metrics() = 0;
  const obs::MetricsRegistry& metrics() const {
    return const_cast<ClusteringEngine*>(this)->metrics();
  }
};

/// Configuration of the sequential engine.
struct EngineOptions {
  /// Online component configuration.
  UMicroOptions umicro;
  /// Snapshot cadence and pyramidal retention.
  SnapshotPolicy snapshot;
};

/// Online uncertain-stream clustering with historical horizon queries.
class UMicroEngine : public ClusteringEngine {
 public:
  /// Creates an engine for `dimensions`-dimensional streams.
  UMicroEngine(std::size_t dimensions, EngineOptions options);

  UMicroEngine(const UMicroEngine&) = delete;
  UMicroEngine& operator=(const UMicroEngine&) = delete;

  // StreamClusterer interface (delegating to the online component).
  void Process(const stream::UncertainPoint& point) override;
  std::string name() const override;
  std::size_t points_processed() const override {
    return online_.points_processed();
  }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms()
      const override {
    return online_.ClusterLabelHistograms();
  }
  std::vector<std::vector<double>> ClusterCentroids() const override {
    return online_.ClusterCentroids();
  }

  // ClusteringEngine interface.
  std::optional<HorizonClustering> ClusterRecent(
      double horizon, const MacroClusteringOptions& options) override;
  void Flush() override {}
  const SnapshotStore& store() const override { return store_; }
  obs::MetricsRegistry& metrics() override { return metrics_; }

  /// Online component (current micro-clusters, diagnostics).
  const UMicro& online() const { return online_; }

 private:
  EngineOptions options_;
  obs::MetricsRegistry metrics_;
  UMicro online_;
  SnapshotStore store_;
  obs::Histogram* snapshot_micros_;
  obs::Counter* snapshots_taken_;
  obs::Gauge* snapshots_stored_;
  std::uint64_t next_tick_ = 1;
  std::size_t since_snapshot_ = 0;
  double last_timestamp_ = 0.0;
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_ENGINE_H_
