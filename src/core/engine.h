// UMicroEngine: the paper's full online/interactive analysis stack in
// one object.
//
// Section II-D: "as in [CluStream], the approach can be used to perform
// interactive and online clustering in a data stream environment". The
// engine owns the UMicro online component and the pyramidal snapshot
// store, takes snapshots automatically at a fixed cadence, and answers
// horizon queries ("what did the stream look like over the last h time
// units, as k clusters?") at any moment.

#ifndef UMICRO_CORE_ENGINE_H_
#define UMICRO_CORE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "core/horizon.h"
#include "core/snapshot.h"
#include "core/umicro.h"
#include "stream/point.h"

namespace umicro::core {

/// Configuration of the combined engine.
struct EngineOptions {
  /// Online component configuration.
  UMicroOptions umicro;
  /// Stream points between automatic snapshots.
  std::size_t snapshot_every = 100;
  /// Pyramidal geometric base alpha (>= 2).
  std::size_t pyramid_alpha = 2;
  /// Pyramidal precision l (>= 1): alpha^l + 1 snapshots kept per order.
  std::size_t pyramid_l = 3;
};

/// Online uncertain-stream clustering with historical horizon queries.
class UMicroEngine {
 public:
  /// Creates an engine for `dimensions`-dimensional streams.
  UMicroEngine(std::size_t dimensions, EngineOptions options);

  /// Feeds the next stream record; snapshots automatically every
  /// `snapshot_every` points.
  void Process(const stream::UncertainPoint& point);

  /// Online component (current micro-clusters, diagnostics).
  const UMicro& online() const { return online_; }

  /// Snapshot store (inspection / persistence).
  const SnapshotStore& store() const { return store_; }

  /// Clusters the most recent `horizon` time units into
  /// `options.k` macro-clusters. Returns std::nullopt before the first
  /// snapshot or when the window is empty.
  std::optional<HorizonClustering> ClusterRecent(
      double horizon, const MacroClusteringOptions& options) const;

  /// Total records processed.
  std::size_t points_processed() const { return online_.points_processed(); }

 private:
  EngineOptions options_;
  UMicro online_;
  SnapshotStore store_;
  std::uint64_t next_tick_ = 1;
  std::size_t since_snapshot_ = 0;
  double last_timestamp_ = 0.0;
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_ENGINE_H_
