// The unified engine API plus its sequential implementation.
//
// ClusteringEngine is the one surface tools and benches drive: it extends
// the StreamClusterer contract (Process / name / points_processed /
// evaluation hooks) with horizon queries over a pyramidal snapshot store
// and a per-engine metrics registry, so the sequential UMicroEngine and
// the sharded ParallelUMicroEngine are interchangeable behind one
// pointer.
//
// UMicroEngine is the paper's full online/interactive analysis stack in
// one object. Section II-D: "as in [CluStream], the approach can be used
// to perform interactive and online clustering in a data stream
// environment". All of its algorithm state -- the UMicro online
// component, the pyramidal snapshot store, and the stream clock -- lives
// in one handle-owned core::EngineCore (engine_core.h); the engine adds
// the metrics registry and the virtual facade. The fleet layer
// (src/fleet) owns thousands of the same EngineCore objects directly,
// one per tenant, without this facade.

#ifndef UMICRO_CORE_ENGINE_H_
#define UMICRO_CORE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/engine_core.h"
#include "core/horizon.h"
#include "core/snapshot.h"
#include "core/umicro.h"
#include "obs/metrics.h"
#include "stream/clusterer.h"
#include "stream/point.h"

namespace umicro::core {

/// Abstract engine: one-pass stream clustering plus snapshots, horizon
/// queries, and an observability surface. Implemented by UMicroEngine
/// (sequential) and parallel::ParallelUMicroEngine (sharded); callers
/// hold a ClusteringEngine* and never branch on the concrete type.
class ClusteringEngine : public stream::StreamClusterer {
 public:
  /// Clusters the most recent `horizon` time units into `options.k`
  /// macro-clusters. Returns std::nullopt before any data or when the
  /// window is empty.
  virtual std::optional<HorizonClustering> ClusterRecent(
      double horizon, const MacroClusteringOptions& options) = 0;

  /// Completes all in-flight work so reads see current state (drains +
  /// merges for a sharded engine) and, with a snapshot sink attached,
  /// publishes a fresh "current" view to it.
  virtual void Flush() = 0;

  /// Attaches a snapshot sink (the serve layer's read replica; nullptr
  /// detaches). The engine immediately primes the sink with every
  /// retained pyramidal snapshot plus the live state, then keeps
  /// publishing on snapshot cadence and on Flush(). Re-attaching the
  /// sink that is already attached is a no-op (never double-primes).
  /// The sink must outlive the engine or be detached first;
  /// publications happen on the engine's coordinator thread.
  virtual void AttachSnapshotSink(SnapshotSink* sink) = 0;

  /// Snapshot store (inspection / persistence).
  virtual const SnapshotStore& store() const = 0;

  /// Captures the complete durable state (flushing in-flight work
  /// first): algorithm statistics, snapshot store, stream clock, and the
  /// counter/gauge metric cells.
  virtual EngineState ExportEngineState() = 0;

  /// Restores a previously exported state into this engine. Must be
  /// called on a freshly constructed engine with the same configuration;
  /// returns false (leaving the engine untouched) when the state's kind
  /// or dimensionality does not match.
  virtual bool RestoreEngineState(const EngineState& state) = 0;

  /// The engine's metrics registry: counters/gauges/latency histograms
  /// for every instrumented stage (see docs/observability.md for the
  /// catalog). Live -- collect at any time.
  virtual obs::MetricsRegistry& metrics() = 0;
  const obs::MetricsRegistry& metrics() const {
    return const_cast<ClusteringEngine*>(this)->metrics();
  }
};

/// Online uncertain-stream clustering with historical horizon queries.
class UMicroEngine : public ClusteringEngine {
 public:
  /// Creates an engine for `dimensions`-dimensional streams.
  UMicroEngine(std::size_t dimensions, EngineOptions options);

  /// Creates an engine from the consolidated configuration (the umicro
  /// + snapshot slices; see core/config.h).
  UMicroEngine(std::size_t dimensions, const EngineConfig& config)
      : UMicroEngine(dimensions, config.CoreOptions()) {}

  UMicroEngine(const UMicroEngine&) = delete;
  UMicroEngine& operator=(const UMicroEngine&) = delete;

  // StreamClusterer interface (delegating to the handle-owned core).
  void Process(const stream::UncertainPoint& point) override {
    core_.Process(point);
  }
  void ProcessBatch(std::span<const stream::UncertainPoint> points) override {
    core_.ProcessBatch(points);
  }
  std::string name() const override { return core_.online().name(); }
  std::size_t points_processed() const override {
    return core_.points_processed();
  }
  std::vector<stream::LabelHistogram> ClusterLabelHistograms()
      const override {
    return core_.online().ClusterLabelHistograms();
  }
  std::vector<std::vector<double>> ClusterCentroids() const override {
    return core_.online().ClusterCentroids();
  }

  // ClusteringEngine interface.
  std::optional<HorizonClustering> ClusterRecent(
      double horizon, const MacroClusteringOptions& options) override {
    return core_.ClusterRecent(horizon, options);
  }
  void Flush() override { core_.Flush(); }
  void AttachSnapshotSink(SnapshotSink* sink) override {
    core_.AttachSnapshotSink(sink);
  }
  EngineState ExportEngineState() override;
  bool RestoreEngineState(const EngineState& state) override;
  const SnapshotStore& store() const override { return core_.store(); }
  obs::MetricsRegistry& metrics() override { return metrics_; }

  /// Online component (current micro-clusters, diagnostics).
  const UMicro& online() const { return core_.online(); }

  /// The handle-owned algorithm state.
  const EngineCore& core() const { return core_; }

 private:
  obs::MetricsRegistry metrics_;
  EngineCore core_;
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_ENGINE_H_
