#include "core/expected_distance.h"

#include <algorithm>

#include "util/check.h"

namespace umicro::core {

double ExpectedSquaredDistance(const stream::UncertainPoint& point,
                               const ErrorClusterFeature& cluster) {
  UMICRO_CHECK(!cluster.empty());
  UMICRO_CHECK(point.dimensions() == cluster.dimensions());
  double v = 0.0;
  for (std::size_t j = 0; j < cluster.dimensions(); ++j) {
    v += ExpectedSquaredDistanceAt(point, cluster, j);
  }
  // v is a sum of expectations of squares; clamp tiny negative residue.
  return std::max(0.0, v);
}

double GeometricSquaredDistance(const stream::UncertainPoint& point,
                                const ErrorClusterFeature& cluster) {
  UMICRO_DCHECK(!cluster.empty());
  UMICRO_DCHECK(point.dimensions() == cluster.dimensions());
  const double n = cluster.weight();
  const double* cf1 = cluster.cf1().data();
  const double* x = point.values.data();
  double g = 0.0;
  for (std::size_t j = 0; j < cluster.dimensions(); ++j) {
    const double diff = x[j] - cf1[j] / n;
    g += diff * diff;
  }
  return g;
}

double DimensionCountingSimilarity(
    const stream::UncertainPoint& point, const ErrorClusterFeature& cluster,
    const std::vector<double>& global_variances, double thresh,
    DistanceForm form) {
  UMICRO_DCHECK(!cluster.empty());
  UMICRO_DCHECK(point.dimensions() == cluster.dimensions());
  UMICRO_DCHECK(global_variances.size() == cluster.dimensions());
  UMICRO_DCHECK(thresh > 0.0);
  const std::size_t dims = cluster.dimensions();
  const double n = cluster.weight();
  const double inv_n = 1.0 / n;
  const double inv_n2 = inv_n * inv_n;
  const double* cf1 = cluster.cf1().data();
  const double* ef2 = cluster.ef2().data();
  const double* x = point.values.data();
  const double* psi = point.errors.empty() ? nullptr : point.errors.data();
  const bool include_cluster_error = form == DistanceForm::kPaperExpected;

  double similarity = 0.0;
  for (std::size_t j = 0; j < dims; ++j) {
    const double sigma2 = global_variances[j];
    if (sigma2 <= 0.0) continue;
    const double diff = x[j] - cf1[j] * inv_n;
    double dist2 = diff * diff;
    if (psi != nullptr) dist2 += psi[j] * psi[j];
    if (include_cluster_error) dist2 += ef2[j] * inv_n2;
    if (dist2 < 0.0) dist2 = 0.0;
    const double vote = 1.0 - dist2 / (thresh * sigma2);
    if (vote > 0.0) similarity += vote;
  }
  return similarity;
}

}  // namespace umicro::core
