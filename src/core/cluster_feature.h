// Error-based cluster feature vector (the paper's ECF, Definition 2.1,
// and its time-decayed form, Definition 2.3).
//
// An uncertain micro-cluster over points X_i1..X_in with error vectors
// psi(X_i1)..psi(X_in) is the (3d+2)-tuple
//     ( CF2x(C), EF2x(C), CF1x(C), t(C), n(C) )
// where, along each dimension p,
//     CF2x_p = sum_i x_p(i)^2        (second moment of the values)
//     EF2x_p = sum_i psi_p(X_i)^2    (sum of squared errors)
//     CF1x_p = sum_i x_p(i)          (first moment of the values)
// n(C) is the point count and t(C) the last-update timestamp. In the
// weighted variant every sum carries the decay weight w_t(X) and n(C)
// becomes the total weight W(C); both cases share this one class, with
// `weight()` playing the role of n(C)/W(C).

#ifndef UMICRO_CORE_CLUSTER_FEATURE_H_
#define UMICRO_CORE_CLUSTER_FEATURE_H_

#include <cstddef>
#include <vector>

#include "stream/point.h"

namespace umicro::core {

/// Additive error-based cluster feature vector (ECF).
class ErrorClusterFeature {
 public:
  ErrorClusterFeature() = default;

  /// Creates an empty ECF for `dimensions`-dimensional points.
  explicit ErrorClusterFeature(std::size_t dimensions);

  /// Creates a singleton ECF from one (possibly weighted) point.
  static ErrorClusterFeature FromPoint(const stream::UncertainPoint& point,
                                       double weight = 1.0);

  /// Folds one point with the given weight into the feature vector and
  /// advances t(C) to the point's timestamp.
  void AddPoint(const stream::UncertainPoint& point, double weight = 1.0);

  /// Additive property (Property 2.1): component-wise sum of all
  /// non-temporal statistics; t(C1 u C2) = max(t(C1), t(C2)).
  void Merge(const ErrorClusterFeature& other);

  /// Subtractivity: removes `other`'s contribution (used by the pyramidal
  /// time frame to recover horizon-specific statistics). `other` must
  /// describe a subset of this cluster's points. If the subtraction
  /// drives the weight to (or past) zero, the whole feature vector is
  /// zeroed -- a cluster with no weight has no statistics.
  void Subtract(const ErrorClusterFeature& other);

  /// Multiplies every additive statistic by `factor` (exponential time
  /// decay; the temporal stamp is left untouched).
  void Scale(double factor);

  /// Dimensionality d.
  std::size_t dimensions() const { return cf1_.size(); }

  /// Point count n(C), or total weight W(C) in the decayed setting.
  double weight() const { return weight_; }

  /// True when no points have been folded in (weight == 0).
  bool empty() const { return weight_ <= 0.0; }

  /// Last-update timestamp t(C).
  double last_update_time() const { return last_update_time_; }

  /// Overrides t(C) (used when deserializing snapshots).
  void set_last_update_time(double t) { last_update_time_ = t; }

  /// First-moment vector CF1x.
  const std::vector<double>& cf1() const { return cf1_; }

  /// Second-moment vector CF2x.
  const std::vector<double>& cf2() const { return cf2_; }

  /// Squared-error vector EF2x.
  const std::vector<double>& ef2() const { return ef2_; }

  /// Cluster centroid: CF1x / weight. Must not be empty.
  std::vector<double> Centroid() const;

  /// Centroid coordinate along dimension `j`.
  double CentroidAt(std::size_t j) const;

  /// Lemma 2.1: E[||Z||^2] = sum_j CF1_j^2/n^2 + sum_j EF2_j/n^2, where Z
  /// is the (random) centroid of the cluster.
  double ExpectedCentroidNormSquared() const;

  /// Squared uncertain radius (Eq. 6): the mean over the cluster's points
  /// of the expected squared distance to the centroid,
  ///   U^2 = (1/n) sum_i E[||Y_i - W||^2]
  ///       = (1/n) sum_j [ CF2_j + EF2_j (1 + 1/n) - CF1_j^2 / n ].
  /// Derived by summing Lemma 2.2 over the member points; the closed form
  /// needs only the ECF. Clamped at 0 against floating-point cancellation.
  double UncertainRadiusSquared() const;

  /// Uncertain radius U (square root of the above).
  double UncertainRadius() const;

  /// Per-dimension variance of the stored values: CF2_j/n - (CF1_j/n)^2
  /// (the BIRCH formula, clamped at 0). Used to derive the global
  /// dimension variances for the dimension-counting similarity.
  double VarianceAt(std::size_t j) const;

  /// Direct construction from raw statistics (deserialization hook).
  static ErrorClusterFeature FromRaw(std::vector<double> cf1,
                                     std::vector<double> cf2,
                                     std::vector<double> ef2, double weight,
                                     double last_update_time);

 private:
  std::vector<double> cf1_;
  std::vector<double> cf2_;
  std::vector<double> ef2_;
  double weight_ = 0.0;
  double last_update_time_ = 0.0;
};

}  // namespace umicro::core

#endif  // UMICRO_CORE_CLUSTER_FEATURE_H_
