#include "core/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace umicro::core {

std::string SummarizeClusters(const std::vector<MicroCluster>& clusters,
                              const SummaryOptions& options) {
  // Sort indices by weight, heaviest first.
  std::vector<std::size_t> order(clusters.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              return clusters[a].ecf.weight() > clusters[b].ecf.weight();
            });
  const std::size_t shown =
      options.top == 0 ? order.size()
                       : std::min(options.top, order.size());

  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%6s %10s %10s %10s %8s  %s\n", "id",
                "weight", "radius", "mean-err", "label", "centroid");
  out << line;
  for (std::size_t rank = 0; rank < shown; ++rank) {
    const MicroCluster& cluster = clusters[order[rank]];
    if (cluster.ecf.empty()) continue;
    const std::size_t d = cluster.ecf.dimensions();
    // Mean per-dimension error stddev from EF2: sqrt(mean EF2_j / n).
    double ef2_sum = 0.0;
    for (double e : cluster.ecf.ef2()) ef2_sum += e;
    const double mean_error = std::sqrt(
        ef2_sum / (static_cast<double>(d) * cluster.ecf.weight()));

    int dominant = stream::kUnlabeled;
    double best = 0.0;
    for (const auto& [label, weight] : cluster.labels) {
      if (weight > best) {
        best = weight;
        dominant = label;
      }
    }
    std::string label_text =
        dominant == stream::kUnlabeled ? "-" : std::to_string(dominant);

    std::snprintf(line, sizeof(line), "%6llu %10.1f %10.3f %10.3f %8s  ",
                  static_cast<unsigned long long>(cluster.id),
                  cluster.ecf.weight(), cluster.ecf.UncertainRadius(),
                  mean_error, label_text.c_str());
    out << line;
    out << '(';
    const std::size_t dims_shown = std::min(options.max_dims, d);
    for (std::size_t j = 0; j < dims_shown; ++j) {
      if (j > 0) out << ", ";
      std::snprintf(line, sizeof(line), "%.3g",
                    cluster.ecf.CentroidAt(j));
      out << line;
    }
    if (dims_shown < d) out << ", ...";
    out << ")\n";
  }
  if (shown < order.size()) {
    std::snprintf(line, sizeof(line), "... and %zu more clusters\n",
                  order.size() - shown);
    out << line;
  }
  return out.str();
}

}  // namespace umicro::core
