// Pyramidal time frame storage (Section II-D).
//
// Micro-cluster statistics are saved at snapshot instants. Snapshots are
// classified into orders: a clock tick t belongs to order i when t is
// divisible by alpha^i (we store it at its highest such order, as in the
// CluStream framework), and at most alpha^l + 1 snapshots are retained
// per order. For any user horizon h there then exists a stored snapshot
// at h' close to h (Eq. 7 states |h - h'| / h <= 1/alpha^l; the bound
// provable for this retention policy -- and the one CluStream's Property
// 1 actually establishes -- is 2/alpha^(l-1), with the 1/alpha^l figure
// holding for alpha = 2 and empirically for small alpha), and the
// additive/subtractive ECF properties recover the statistics of exactly
// the window (t_c - h', t_c].
//
// Storage tiers (docs/snapshots.md): each order ring holds its newest
// frame ("hot") as a verbatim micro-cluster array. In delta/tiered modes
// older frames in the ring ("warm") keep only the clusters whose bits
// differ from the next-newer frame -- reconstruction re-reads unchanged
// clusters from the parent, so a materialized warm frame is bit-identical
// to what the full store would have returned. In tiered mode the oldest
// frames ("cold") beyond a byte budget are either spilled to disk through
// an injected codec (exact) or quantized to float32 in memory (bounded
// error, measured by bench_snapshot_memory).

#ifndef UMICRO_CORE_SNAPSHOT_H_
#define UMICRO_CORE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster_feature.h"

namespace umicro::core {

/// Frozen state of one micro-cluster inside a snapshot.
struct MicroClusterState {
  std::uint64_t id = 0;
  double creation_time = 0.0;
  ErrorClusterFeature ecf;
};

/// Frozen state of the whole micro-cluster set at one instant.
struct Snapshot {
  /// Stream time at which the snapshot was taken.
  double time = 0.0;
  /// All live micro-clusters at that time.
  std::vector<MicroClusterState> clusters;
};

/// How the store represents retained frames.
enum class SnapshotStoreMode : std::uint8_t {
  /// Every frame is a verbatim micro-cluster array (the classic store).
  kFull = 0,
  /// Ring heads stay verbatim; older frames are delta-encoded against
  /// their pyramid parent. Lossless: materialization is bit-identical.
  kDelta = 1,
  /// Delta encoding plus a byte budget: the oldest frames beyond the
  /// budget are spilled to disk (exact) or quantized (bounded error).
  kTiered = 2,
};

/// Disk codec for cold-frame spills, injected by the io layer (core must
/// not depend on io). `write` persists a snapshot at `path` and returns
/// false on any failure; `read` returns nullopt when the file is
/// missing, corrupt, or fails its checksum.
struct SnapshotSpillCodec {
  std::function<bool(const Snapshot&, const std::string& path)> write;
  std::function<std::optional<Snapshot>(const std::string& path)> read;

  bool valid() const { return static_cast<bool>(write) && static_cast<bool>(read); }
};

/// Tiering configuration carried inside SnapshotPolicy.
struct SnapshotTiering {
  SnapshotStoreMode mode = SnapshotStoreMode::kFull;
  /// Approximate in-memory budget for kTiered; frames are demoted to the
  /// cold tier (oldest first) while the encoded footprint exceeds it.
  /// 0 means "no budget": kTiered then behaves like kDelta.
  std::size_t budget_bytes = 0;
  /// Directory for cold-frame spill files. Empty (or an invalid codec)
  /// keeps cold frames in memory as quantized arrays instead.
  std::string spill_dir;
  /// Injected disk codec (io::MakeSnapshotSpillCodec). Unset codec with a
  /// non-empty spill_dir degrades to in-memory quantization.
  SnapshotSpillCodec codec;
};

/// Shared snapshot/pyramid configuration of the engines (sequential and
/// sharded): how often to snapshot and how the pyramidal store retains.
struct SnapshotPolicy {
  /// Stream points between automatic snapshots; 0 disables automatic
  /// snapshotting entirely (horizon queries then see only the live
  /// state).
  std::size_t snapshot_every = 100;
  /// Pyramidal geometric base alpha (>= 2).
  std::size_t pyramid_alpha = 2;
  /// Pyramidal precision l (>= 1): alpha^l + 1 snapshots kept per order.
  std::size_t pyramid_l = 3;
  /// Storage-tier configuration (full / delta / tiered).
  SnapshotTiering tiering;
};

/// On-disk / in-memory representation of one retained frame.
enum class FrameEncoding : std::uint8_t {
  kFull = 0,       ///< verbatim micro-cluster array
  kDelta = 1,      ///< ids + clusters whose bits differ from the parent
  kQuantized = 2,  ///< float32 statistics, in memory
  kSpilled = 3,    ///< exact frame on disk; only the header stays resident
};

/// Quantized (float32) micro-cluster arrays of one cold frame. Ids and
/// creation times stay exact (they are identity, not statistics); every
/// additive statistic is narrowed to float.
struct QuantizedClusters {
  std::size_t dims = 0;
  std::vector<std::uint64_t> ids;
  std::vector<double> creation_times;
  std::vector<float> weights;
  std::vector<float> last_updates;
  /// Per cluster: cf1[0..d), cf2[0..d), ef2[0..d), flattened.
  std::vector<float> values;
};

/// One retained frame in encoded form. Exactly one payload member is
/// populated, selected by `encoding`.
struct EncodedFrame {
  std::uint64_t tick = 0;
  double time = 0.0;
  FrameEncoding encoding = FrameEncoding::kFull;
  /// Number of micro-clusters in the materialized frame (all encodings).
  std::size_t cluster_count = 0;
  /// Point dimensionality of the frame's clusters (0 when empty).
  std::size_t dims = 0;
  /// kFull payload.
  std::vector<MicroClusterState> full;
  /// kDelta payload: the frame's full id sequence plus the entries whose
  /// bit pattern differs from the parent frame's same-id entry.
  std::vector<std::uint64_t> ids;
  std::vector<MicroClusterState> changed;
  /// kQuantized payload.
  QuantizedClusters quant;
  /// kSpilled payload: file written by the injected codec.
  std::string spill_path;
};

/// Complete serializable state of a SnapshotStore (checkpoint/restore).
/// `orders[i]` mirrors the store's order-i ring, oldest first, in encoded
/// form; restoring into a store configured with the same alpha/l
/// reproduces retention exactly (restore rejects a mismatch).
struct SnapshotStoreState {
  std::uint64_t last_tick = 0;
  std::size_t alpha = 0;
  std::size_t l = 0;
  std::vector<std::vector<EncodedFrame>> orders;
};

/// Storage-tier accounting, queried by engines for snapshot.* metrics.
struct SnapshotTierStats {
  std::size_t frames = 0;
  std::size_t full_frames = 0;
  std::size_t delta_frames = 0;
  std::size_t quantized_frames = 0;
  std::size_t spilled_frames = 0;
  /// Approximate resident bytes of the encoded frames.
  std::size_t approx_bytes = 0;
  /// What the same retention would occupy in the full-array store.
  std::size_t full_equivalent_bytes = 0;
  /// approx_bytes / full_equivalent_bytes (1.0 when empty).
  double delta_ratio = 1.0;
  /// Cumulative materializations of non-full frames.
  std::uint64_t reconstructions = 0;
  /// Cumulative frames written to / read back from / lost on disk.
  std::uint64_t spills = 0;
  std::uint64_t spill_loads = 0;
  std::uint64_t spill_failures = 0;
};

/// Receiver of snapshot publications (the serve layer's read replica).
///
/// Engines call this on the ingest/coordinator thread, never
/// concurrently with itself; implementations make the published state
/// visible to readers on other threads (see serve/replica.h).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  /// A pyramidal-cadence snapshot was just stored at ring `order`
  /// (SnapshotStore::OrderOf of its tick). Entering the same order with
  /// the same retention reproduces the store's ring contents exactly.
  virtual void PublishSnapshot(std::size_t order, const Snapshot& snapshot) = 0;

  /// A fresh off-cadence view of the live state (attach / flush /
  /// quiesce): becomes the replica's "current" snapshot but does not
  /// enter pyramidal retention.
  virtual void PublishCurrent(const Snapshot& snapshot) = 0;
};

/// Pyramidal retention store for snapshots, with tiered frame storage.
class SnapshotStore {
 public:
  /// `alpha` >= 2 is the geometric base; `l` >= 1 controls precision:
  /// each order keeps alpha^l + 1 snapshots and horizons are then
  /// approximable within a factor 1/alpha^l. Default tiering keeps every
  /// frame verbatim (the classic store).
  SnapshotStore(std::size_t alpha, std::size_t l);
  SnapshotStore(std::size_t alpha, std::size_t l, SnapshotTiering tiering);

  /// Stores `snapshot`, which was taken at integer clock `tick` >= 1.
  /// Ticks must be inserted in increasing order. In delta/tiered modes
  /// the ring's previous head is re-encoded against the new frame.
  void Insert(std::uint64_t tick, Snapshot snapshot);

  /// Highest-order snapshot classification of `tick` (largest i with
  /// alpha^i dividing tick); exposed for tests.
  std::size_t OrderOf(std::uint64_t tick) const;

  /// Snapshot whose time is closest to `time` from below (<= time).
  /// Frames whose spill file is missing/corrupt are skipped (the next
  /// best candidate answers instead) and counted as spill_failures.
  std::optional<Snapshot> FindAtOrBefore(double time) const;

  /// Snapshot whose time is nearest to `time` in absolute difference,
  /// with the same skip-and-degrade behaviour on spill failures.
  std::optional<Snapshot> FindNearest(double time) const;

  /// Total number of snapshots currently retained (storage-cost metric).
  std::size_t TotalStored() const;

  /// Visits every retained snapshot as (order, snapshot), oldest first
  /// within each order ring (replica priming after recovery/attach).
  /// Frames that fail to materialize (lost spill files) are skipped.
  void ForEach(
      const std::function<void(std::size_t, const Snapshot&)>& fn) const;

  /// Number of order levels currently in use.
  std::size_t NumOrders() const { return orders_.size(); }

  /// Frames retained in order ring `order`.
  std::size_t OrderSize(std::size_t order) const {
    return orders_[order].size();
  }

  /// Encoded form of frame `index` (oldest first) of ring `order`;
  /// exposed for tests and byte accounting.
  const EncodedFrame& FrameAt(std::size_t order, std::size_t index) const {
    return orders_[order][index];
  }

  /// Materializes frame `index` of ring `order`. nullopt only when the
  /// frame is spilled and its file is missing or corrupt.
  std::optional<Snapshot> MaterializeFrame(std::size_t order,
                                           std::size_t index) const;

  /// Per-order retention capacity: alpha^l + 1.
  std::size_t CapacityPerOrder() const { return capacity_per_order_; }

  /// Geometric base alpha.
  std::size_t alpha() const { return alpha_; }

  /// Pyramidal precision l.
  std::size_t l() const { return l_; }

  /// Active tiering configuration.
  const SnapshotTiering& tiering() const { return tiering_; }

  /// Storage-tier accounting (byte totals recomputed on call; counters
  /// are cumulative since construction/restore).
  SnapshotTierStats TierStats() const;

  /// Captures the complete retention state for checkpointing. Frames are
  /// exported in their encoded form (deltas stay deltas).
  SnapshotStoreState ExportState() const;

  /// Restores a previously exported state, replacing current contents.
  /// Fails fast (returning false, with a diagnostic in `*error` when
  /// non-null) if the state was exported under a different alpha/l or
  /// violates ring invariants -- restoring such a state would silently
  /// truncate or overfill the order rings. On failure the store is left
  /// unchanged.
  [[nodiscard]] bool RestoreState(const SnapshotStoreState& state,
                                  std::string* error = nullptr);

 private:
  /// Re-encodes the given kFull frame as a delta against `parent` (the
  /// next-newer frame's materialized contents).
  static void EncodeDelta(EncodedFrame& frame, const Snapshot& parent);

  /// Materializes a frame that does not depend on a parent (kFull,
  /// kQuantized, kSpilled). nullopt on spill read failure.
  std::optional<Snapshot> MaterializeSelfContained(
      const EncodedFrame& frame) const;

  /// Materializes frame `index` of `ring`, resolving delta chains
  /// rightwards (towards newer frames).
  std::optional<Snapshot> MaterializeIndex(const std::deque<EncodedFrame>& ring,
                                           std::size_t index) const;

  /// Demotes the globally oldest warm/hot (non-head) frame to the cold
  /// tier; returns false when no frame is eligible.
  bool DemoteOldestToCold();

  /// Enforces tiering_.budget_bytes by repeated demotion.
  void EnforceBudget();

  /// Drops the oldest frame of `ring`, deleting its spill file if any.
  void EvictFront(std::deque<EncodedFrame>& ring);

  /// Approximate resident bytes of one encoded frame.
  static std::size_t FrameBytes(const EncodedFrame& frame);

  /// Bytes the frame would occupy in the full-array store.
  static std::size_t FullEquivalentBytes(const EncodedFrame& frame);

  std::size_t ApproxBytes() const;

  std::size_t alpha_;
  std::size_t l_;
  std::size_t capacity_per_order_;
  SnapshotTiering tiering_;
  std::uint64_t last_tick_ = 0;
  std::uint64_t spill_serial_ = 0;
  /// orders_[i] holds the most recent snapshots of order i, oldest first.
  std::vector<std::deque<EncodedFrame>> orders_;
  /// Cumulative tier counters (mutated on const query paths; the store
  /// has a single-threaded ownership contract).
  mutable std::uint64_t reconstructions_ = 0;
  mutable std::uint64_t spills_ = 0;
  mutable std::uint64_t spill_loads_ = 0;
  mutable std::uint64_t spill_failures_ = 0;
};

/// Horizon extraction via subtractivity: returns the micro-cluster
/// statistics covering the window (older.time, current.time].
///
/// Clusters present in both snapshots have the older statistics
/// subtracted; clusters created after the older snapshot are retained in
/// their current form; clusters that vanished in between are discarded
/// (they live only in `older`).
///
/// With exponential time decay enabled (`decay_lambda` > 0, Definition
/// 2.3), the live statistics at current.time have been scaled by
/// 2^(-lambda * dt) since the older snapshot was taken; the older ECFs
/// are therefore scaled by the same elapsed factor before subtracting,
/// so the residual is exactly the decayed window mass. Subtracting the
/// older snapshot raw (the pre-fix behaviour) over-subtracts fresh mass
/// and retains stale mass.
///
/// Residuals whose weight is negligible -- below an absolute floor or
/// below a small fraction of the (scaled) subtracted weight, i.e. pure
/// floating-point cancellation noise -- are dropped; keeping them used
/// to hand macro-clustering centroids at noise/noise coordinates far
/// outside the data bounding box. When the gap is long enough that the
/// older snapshot's mass has fully decayed (zero or denormal scaled
/// weight), nothing is subtracted and clusters whose own weight has also
/// decayed away are dropped, so the window comes back empty instead of
/// populated with denormal-noise centroids.
std::vector<MicroClusterState> SubtractSnapshot(const Snapshot& current,
                                                const Snapshot& older,
                                                double decay_lambda = 0.0);

}  // namespace umicro::core

#endif  // UMICRO_CORE_SNAPSHOT_H_
