// Pyramidal time frame storage (Section II-D).
//
// Micro-cluster statistics are saved at snapshot instants. Snapshots are
// classified into orders: a clock tick t belongs to order i when t is
// divisible by alpha^i (we store it at its highest such order, as in the
// CluStream framework), and at most alpha^l + 1 snapshots are retained
// per order. For any user horizon h there then exists a stored snapshot
// at h' close to h (Eq. 7 states |h - h'| / h <= 1/alpha^l; the bound
// provable for this retention policy -- and the one CluStream's Property
// 1 actually establishes -- is 2/alpha^(l-1), with the 1/alpha^l figure
// holding for alpha = 2 and empirically for small alpha), and the
// additive/subtractive ECF properties recover the statistics of exactly
// the window (t_c - h', t_c].

#ifndef UMICRO_CORE_SNAPSHOT_H_
#define UMICRO_CORE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/cluster_feature.h"

namespace umicro::core {

/// Shared snapshot/pyramid configuration of the engines (sequential and
/// sharded): how often to snapshot and how the pyramidal store retains.
struct SnapshotPolicy {
  /// Stream points between automatic snapshots; 0 disables automatic
  /// snapshotting entirely (horizon queries then see only the live
  /// state).
  std::size_t snapshot_every = 100;
  /// Pyramidal geometric base alpha (>= 2).
  std::size_t pyramid_alpha = 2;
  /// Pyramidal precision l (>= 1): alpha^l + 1 snapshots kept per order.
  std::size_t pyramid_l = 3;
};

/// Frozen state of one micro-cluster inside a snapshot.
struct MicroClusterState {
  std::uint64_t id = 0;
  double creation_time = 0.0;
  ErrorClusterFeature ecf;
};

/// Frozen state of the whole micro-cluster set at one instant.
struct Snapshot {
  /// Stream time at which the snapshot was taken.
  double time = 0.0;
  /// All live micro-clusters at that time.
  std::vector<MicroClusterState> clusters;
};

/// Complete serializable state of a SnapshotStore (checkpoint/restore).
/// `orders[i]` mirrors the store's order-i ring, oldest first; restoring
/// it into a same-configured store reproduces retention exactly.
struct SnapshotStoreState {
  std::uint64_t last_tick = 0;
  std::vector<std::vector<Snapshot>> orders;
};

/// Receiver of snapshot publications (the serve layer's read replica).
///
/// Engines call this on the ingest/coordinator thread, never
/// concurrently with itself; implementations make the published state
/// visible to readers on other threads (see serve/replica.h).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  /// A pyramidal-cadence snapshot was just stored at ring `order`
  /// (SnapshotStore::OrderOf of its tick). Entering the same order with
  /// the same retention reproduces the store's ring contents exactly.
  virtual void PublishSnapshot(std::size_t order, const Snapshot& snapshot) = 0;

  /// A fresh off-cadence view of the live state (attach / flush /
  /// quiesce): becomes the replica's "current" snapshot but does not
  /// enter pyramidal retention.
  virtual void PublishCurrent(const Snapshot& snapshot) = 0;
};

/// Pyramidal retention store for snapshots.
class SnapshotStore {
 public:
  /// `alpha` >= 2 is the geometric base; `l` >= 1 controls precision:
  /// each order keeps alpha^l + 1 snapshots and horizons are then
  /// approximable within a factor 1/alpha^l.
  SnapshotStore(std::size_t alpha, std::size_t l);

  /// Stores `snapshot`, which was taken at integer clock `tick` >= 1.
  /// Ticks must be inserted in increasing order.
  void Insert(std::uint64_t tick, Snapshot snapshot);

  /// Highest-order snapshot classification of `tick` (largest i with
  /// alpha^i dividing tick); exposed for tests.
  std::size_t OrderOf(std::uint64_t tick) const;

  /// Snapshot whose time is closest to `time` from below (<= time).
  std::optional<Snapshot> FindAtOrBefore(double time) const;

  /// Snapshot whose time is nearest to `time` in absolute difference.
  std::optional<Snapshot> FindNearest(double time) const;

  /// Total number of snapshots currently retained (storage-cost metric).
  std::size_t TotalStored() const;

  /// Visits every retained snapshot as (order, snapshot), oldest first
  /// within each order ring (replica priming after recovery/attach).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t order = 0; order < orders_.size(); ++order) {
      for (const auto& snapshot : orders_[order]) fn(order, snapshot);
    }
  }

  /// Number of order levels currently in use.
  std::size_t NumOrders() const { return orders_.size(); }

  /// Per-order retention capacity: alpha^l + 1.
  std::size_t CapacityPerOrder() const { return capacity_per_order_; }

  /// Geometric base alpha.
  std::size_t alpha() const { return alpha_; }

  /// Captures the complete retention state for checkpointing.
  SnapshotStoreState ExportState() const;

  /// Restores a previously exported state, replacing current contents.
  /// The store must be configured with the same alpha/l the state was
  /// exported under for retention to continue identically.
  void RestoreState(const SnapshotStoreState& state);

 private:
  std::size_t alpha_;
  std::size_t capacity_per_order_;
  std::uint64_t last_tick_ = 0;
  /// orders_[i] holds the most recent snapshots of order i, oldest first.
  std::vector<std::deque<Snapshot>> orders_;
};

/// Horizon extraction via subtractivity: returns the micro-cluster
/// statistics covering the window (older.time, current.time].
///
/// Clusters present in both snapshots have the older statistics
/// subtracted; clusters created after the older snapshot are retained in
/// their current form; clusters that vanished in between are discarded
/// (they live only in `older`).
///
/// With exponential time decay enabled (`decay_lambda` > 0, Definition
/// 2.3), the live statistics at current.time have been scaled by
/// 2^(-lambda * dt) since the older snapshot was taken; the older ECFs
/// are therefore scaled by the same elapsed factor before subtracting,
/// so the residual is exactly the decayed window mass. Subtracting the
/// older snapshot raw (the pre-fix behaviour) over-subtracts fresh mass
/// and retains stale mass.
///
/// Residuals whose weight is negligible -- below an absolute floor or
/// below a small fraction of the (scaled) subtracted weight, i.e. pure
/// floating-point cancellation noise -- are dropped; keeping them used
/// to hand macro-clustering centroids at noise/noise coordinates far
/// outside the data bounding box.
std::vector<MicroClusterState> SubtractSnapshot(const Snapshot& current,
                                                const Snapshot& older,
                                                double decay_lambda = 0.0);

}  // namespace umicro::core

#endif  // UMICRO_CORE_SNAPSHOT_H_
