#include "util/csv_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace umicro::util {

std::string EscapeCsvCell(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  UMICRO_CHECK(!header_.empty());
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  UMICRO_CHECK_MSG(cells.size() == header_.size(),
                   "row has %zu cells, header has %zu", cells.size(),
                   header_.size());
  rows_.push_back(cells);
}

void CsvWriter::AddRow(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double value : cells) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    formatted.emplace_back(buffer);
  }
  AddRow(formatted);
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out << ',';
    out << EscapeCsvCell(header_[i]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeCsvCell(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

bool CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  file << ToString();
  return file.good();
}

}  // namespace umicro::util
