// Lightweight runtime-invariant macros.
//
// The project follows the Google C++ style guide and does not use
// exceptions. Invariant violations abort the process with a diagnostic
// instead; fallible operations return std::optional or a bool.

#ifndef UMICRO_UTIL_CHECK_H_
#define UMICRO_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a message when `condition` is false.
///
/// Enabled in all build modes: these guard API contracts whose violation
/// would otherwise corrupt cluster statistics silently.
#define UMICRO_CHECK(condition)                                          \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "UMICRO_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #condition);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

/// UMICRO_CHECK with a custom printf-style message appended.
#define UMICRO_CHECK_MSG(condition, ...)                                 \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "UMICRO_CHECK failed at %s:%d: %s: ",         \
                   __FILE__, __LINE__, #condition);                      \
      std::fprintf(stderr, __VA_ARGS__);                                 \
      std::fprintf(stderr, "\n");                                        \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

/// Debug-only invariant check; compiled out in release builds.
#ifndef NDEBUG
#define UMICRO_DCHECK(condition) UMICRO_CHECK(condition)
#else
#define UMICRO_DCHECK(condition) \
  do {                           \
  } while (false)
#endif

#endif  // UMICRO_UTIL_CHECK_H_
