// Small filesystem helpers for CLI/tool error paths.
//
// Tools validate their output destinations up front with these so a bad
// --metrics-out or --checkpoint-dir fails with a one-line diagnostic
// before any work is done, instead of a mid-run write failure (or a
// CHECK backtrace).

#ifndef UMICRO_UTIL_PATHS_H_
#define UMICRO_UTIL_PATHS_H_

#include <string>

namespace umicro::util {

/// True when `path` names an existing regular file.
bool FileExists(const std::string& path);

/// True when `path` names an existing directory.
bool DirectoryExists(const std::string& path);

/// Creates `path` (and missing parents) as a directory; true when the
/// directory exists afterwards.
bool EnsureDirectory(const std::string& path);

/// Directory component of `path` ("." when there is no separator).
std::string ParentDirectory(const std::string& path);

/// True when a file at `path` could be created or overwritten: either
/// the file exists and is writable, or its parent directory exists and
/// is writable.
bool PathIsWritable(const std::string& path);

}  // namespace umicro::util

#endif  // UMICRO_UTIL_PATHS_H_
