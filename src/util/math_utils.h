// Small numerical helpers shared across the library.

#ifndef UMICRO_UTIL_MATH_UTILS_H_
#define UMICRO_UTIL_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace umicro::util {

/// Numerically stable single-pass mean/variance accumulator (Welford).
///
/// Used by the stream-statistics tracker and by tests as an independent
/// reference against the CF-vector variance formula.
class WelfordAccumulator {
 public:
  WelfordAccumulator() = default;

  /// Folds one observation into the running statistics.
  void Add(double value);

  /// Merges another accumulator (parallel-variance combination).
  void Merge(const WelfordAccumulator& other);

  /// Number of observations folded so far.
  std::size_t count() const { return count_; }

  /// Running mean; 0 when empty.
  double Mean() const { return mean_; }

  /// Population variance (divides by n); 0 when fewer than 1 observation.
  double PopulationVariance() const;

  /// Sample variance (divides by n-1); 0 when fewer than 2 observations.
  double SampleVariance() const;

  /// Population standard deviation.
  double PopulationStddev() const;

  /// Raw second central moment sum (serialization hook).
  double m2() const { return m2_; }

  /// Reconstructs an accumulator from its raw state (deserialization).
  static WelfordAccumulator FromRaw(std::size_t count, double mean,
                                    double m2);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.15e-9). `p` must be in (0, 1).
///
/// CluStream uses this to convert the `delta` fraction of a micro-cluster's
/// timestamp distribution into a relevance stamp.
double InverseNormalCdf(double p);

/// Regularized lower incomplete gamma function P(a, x) = gamma(a, x) /
/// Gamma(a), for a > 0, x >= 0. Series expansion for x < a + 1, Lentz
/// continued fraction otherwise (relative error ~1e-12). P(k/2, x/2) is
/// the chi-square CDF with k degrees of freedom -- used by the uncertain
/// density-based clustering baseline's distance-probability model.
double RegularizedGammaP(double a, double x);

/// Squared Euclidean distance between two equal-length vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Euclidean distance between two equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Clamps `value` into [lo, hi].
double Clamp(double value, double lo, double hi);

}  // namespace umicro::util

#endif  // UMICRO_UTIL_MATH_UTILS_H_
