#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace umicro::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  UMICRO_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  UMICRO_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method.
  for (;;) {
    const double u = Uniform(-1.0, 1.0);
    const double v = Uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      cached_gaussian_ = v * factor;
      has_cached_gaussian_ = true;
      return u * factor;
    }
  }
}

double Rng::Gaussian(double mean, double stddev) {
  UMICRO_DCHECK(stddev >= 0.0);
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  UMICRO_CHECK(rate > 0.0);
  // -log(1 - u) avoids log(0) since NextDouble() < 1.
  return -std::log(1.0 - NextDouble()) / rate;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  UMICRO_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    UMICRO_CHECK(w >= 0.0);
    total += w;
  }
  UMICRO_CHECK(total > 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace umicro::util
