// Deterministic failure-injection points for resilience testing.
//
// A failpoint is a named site in production code (queue, merge,
// checkpoint-write, worker-loop paths) that tests can arm to simulate a
// fault: a worker death, an I/O failure, a stall. Disarmed failpoints
// cost one relaxed atomic load, so the hooks stay compiled into release
// binaries and the crash-recovery suite exercises the exact production
// code paths.
//
// Usage (test side):
//   FailpointRegistry::Instance().Arm("checkpoint.write_fail",
//                                     {.skip = 2, .limit = 1});
//   ... run the system; the 3rd checkpoint write fails once ...
//   FailpointRegistry::Instance().DisarmAll();
//
// Usage (instrumented site):
//   if (UMICRO_FAILPOINT("checkpoint.write_fail")) return false;

#ifndef UMICRO_UTIL_FAILPOINTS_H_
#define UMICRO_UTIL_FAILPOINTS_H_

#include <atomic>
#include <cstddef>
#include <limits>
#include <map>
#include <mutex>
#include <string>

namespace umicro::util {

/// How an armed failpoint behaves.
struct FailpointSpec {
  /// Hits that pass through untriggered before the first trigger.
  std::size_t skip = 0;
  /// Maximum number of triggering hits; further hits pass through.
  std::size_t limit = std::numeric_limits<std::size_t>::max();
  /// For stall-style sites: how long the site should sleep when
  /// triggered (the site reads this via StallMillis).
  std::size_t stall_millis = 0;
};

/// Process-wide named failpoints. Thread-safe; the disarmed fast path is
/// a single relaxed atomic load (no lock, no lookup).
class FailpointRegistry {
 public:
  /// The process-wide registry.
  static FailpointRegistry& Instance();

  /// Arms `name` with the given behavior (re-arming resets its counts).
  void Arm(const std::string& name, FailpointSpec spec = {});

  /// Disarms `name`; its site then never triggers.
  void Disarm(const std::string& name);

  /// Disarms everything (test teardown).
  void DisarmAll();

  /// Site hook: records a hit on `name` and reports whether this hit
  /// triggers the simulated fault. Always false while disarmed.
  bool ShouldTrigger(const std::string& name);

  /// Site hook for stall sites: the stall duration of a triggering hit,
  /// 0 when the hit does not trigger. Counts a hit like ShouldTrigger.
  std::size_t StallMillis(const std::string& name);

  /// Total hits on `name` since it was (re-)armed.
  std::size_t HitCount(const std::string& name) const;

  /// Triggering hits on `name` since it was (re-)armed.
  std::size_t TriggerCount(const std::string& name) const;

  /// True when any failpoint is currently armed (sites use this to skip
  /// the locked lookup; exposed for tests).
  bool AnyArmed() const {
    return any_armed_.load(std::memory_order_relaxed);
  }

 private:
  struct PointState {
    FailpointSpec spec;
    std::size_t hits = 0;
    std::size_t triggers = 0;
  };

  FailpointRegistry() = default;

  mutable std::mutex mu_;
  std::atomic<bool> any_armed_{false};
  std::map<std::string, PointState> points_;
};

}  // namespace umicro::util

/// True when the named failpoint is armed and this hit triggers. The
/// string is only constructed on the slow (armed) path.
#define UMICRO_FAILPOINT(name)                                      \
  (::umicro::util::FailpointRegistry::Instance().AnyArmed() &&      \
   ::umicro::util::FailpointRegistry::Instance().ShouldTrigger(name))

#endif  // UMICRO_UTIL_FAILPOINTS_H_
