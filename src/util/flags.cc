#include "util/flags.h"

#include <cstdlib>

namespace umicro::util {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  for (const auto& [name, value] : values_) queried_[name] = false;
}

bool FlagParser::Has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  queried_[name] = true;
  return true;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  queried_[name] = true;
  return it->second.empty() ? fallback : it->second;
}

double FlagParser::GetDouble(const std::string& name,
                             double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    if (it != values_.end()) queried_[name] = true;
    return fallback;
  }
  queried_[name] = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end != it->second.c_str() + it->second.size()) return fallback;
  return value;
}

std::size_t FlagParser::GetSize(const std::string& name,
                                std::size_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    if (it != values_.end()) queried_[name] = true;
    return fallback;
  }
  queried_[name] = true;
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(it->second.c_str(), &end, 10);
  if (end != it->second.c_str() + it->second.size()) return fallback;
  return static_cast<std::size_t>(value);
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  queried_[name] = true;
  if (it->second.empty()) return true;
  return it->second != "false" && it->second != "0" &&
         it->second != "off";
}

std::vector<std::string> FlagParser::UnqueriedFlags() const {
  std::vector<std::string> unqueried;
  for (const auto& [name, was_queried] : queried_) {
    if (!was_queried) unqueried.push_back(name);
  }
  return unqueried;
}

}  // namespace umicro::util
