// Minimal command-line flag parsing shared by the tools and benches.
//
// Supports `--name=value` and boolean `--name` forms. Unknown flags are
// collected so callers can decide whether to reject them.

#ifndef UMICRO_UTIL_FLAGS_H_
#define UMICRO_UTIL_FLAGS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace umicro::util {

/// Parsed command line.
class FlagParser {
 public:
  /// Parses argv (skipping argv[0]). Arguments not starting with `--`
  /// are collected as positional.
  FlagParser(int argc, char** argv);

  /// True when `--name` or `--name=...` was present.
  bool Has(const std::string& name) const;

  /// String value of `--name=value`; `fallback` when absent or given
  /// in the boolean form.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Double value; `fallback` when absent or unparsable.
  double GetDouble(const std::string& name, double fallback) const;

  /// Unsigned integer value; `fallback` when absent or unparsable.
  std::size_t GetSize(const std::string& name, std::size_t fallback) const;

  /// Boolean: true when the flag is present (either form), with
  /// `--name=false` / `--name=0` turning it off explicitly.
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line that the caller never queried;
  /// call after all Get*/Has calls to reject typos.
  std::vector<std::string> UnqueriedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace umicro::util

#endif  // UMICRO_UTIL_FLAGS_H_
