// Minimal CSV emission for benchmark result series.

#ifndef UMICRO_UTIL_CSV_WRITER_H_
#define UMICRO_UTIL_CSV_WRITER_H_

#include <string>
#include <vector>

namespace umicro::util {

/// Accumulates a rectangular table and renders it as CSV.
///
/// Used by every figure-reproduction bench to dump the series it prints,
/// so results can be re-plotted without re-running the sweep.
class CsvWriter {
 public:
  /// Creates a table with the given column names.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void AddRow(const std::vector<std::string>& cells);

  /// Convenience overload: formats doubles with 6 significant digits.
  void AddRow(const std::vector<double>& cells);

  /// Renders the full table (header + rows) as CSV text.
  std::string ToString() const;

  /// Writes the table to `path`. Returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV cell (quotes cells containing commas/quotes/newlines).
std::string EscapeCsvCell(const std::string& cell);

}  // namespace umicro::util

#endif  // UMICRO_UTIL_CSV_WRITER_H_
