#include "util/paths.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace umicro::util {

bool FileExists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0 && S_ISREG(info.st_mode);
}

bool DirectoryExists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0 && S_ISDIR(info.st_mode);
}

bool EnsureDirectory(const std::string& path) {
  if (path.empty()) return false;
  if (DirectoryExists(path)) return true;
  // Create missing components left to right (mkdir -p).
  std::string prefix;
  prefix.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix += path[i];
      continue;
    }
    if (!prefix.empty() && !DirectoryExists(prefix)) {
      if (::mkdir(prefix.c_str(), 0777) != 0 && !DirectoryExists(prefix)) {
        return false;
      }
    }
    if (i < path.size()) prefix += '/';
  }
  return DirectoryExists(path);
}

std::string ParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool PathIsWritable(const std::string& path) {
  if (path.empty()) return false;
  if (::access(path.c_str(), W_OK) == 0) return true;
  if (::access(path.c_str(), F_OK) == 0) return false;  // exists, read-only
  const std::string parent = ParentDirectory(path);
  return ::access(parent.c_str(), W_OK) == 0;
}

}  // namespace umicro::util
