#include "util/failpoints.h"

namespace umicro::util {

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[name] = PointState{spec, 0, 0};
  any_armed_.store(true, std::memory_order_relaxed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(name);
  any_armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

bool FailpointRegistry::ShouldTrigger(const std::string& name) {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return false;
  PointState& point = it->second;
  const std::size_t hit = point.hits++;
  if (hit < point.spec.skip) return false;
  if (point.triggers >= point.spec.limit) return false;
  ++point.triggers;
  return true;
}

std::size_t FailpointRegistry::StallMillis(const std::string& name) {
  if (!AnyArmed()) return 0;
  std::size_t stall = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return 0;
    stall = it->second.spec.stall_millis;
  }
  return ShouldTrigger(name) ? stall : 0;
}

std::size_t FailpointRegistry::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::size_t FailpointRegistry::TriggerCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.triggers;
}

}  // namespace umicro::util
