// Deterministic pseudo-random number generation for data synthesis and
// algorithm seeding.
//
// All stochastic components of the library draw from `Rng`, a xoshiro256++
// generator with splitmix64 seeding. Determinism across platforms matters
// here: the benchmark harness regenerates the paper's figures, and those
// runs must be reproducible bit-for-bit from a seed.

#ifndef UMICRO_UTIL_RANDOM_H_
#define UMICRO_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace umicro::util {

/// Deterministic 64-bit PRNG (xoshiro256++) with convenience draws.
///
/// Not thread-safe; use one instance per thread. The class is cheaply
/// copyable, which makes it easy to fork reproducible sub-streams.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng& other) = default;
  Rng& operator=(const Rng& other) = default;

  /// Returns the next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, bound). `bound` > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Returns a standard normal draw (Marsaglia polar method, cached pair).
  double Gaussian();

  /// Returns a normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns an exponential draw with the given rate (rate > 0).
  double Exponential(double rate);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. All weights must be non-negative with a positive sum.
  std::size_t Categorical(const std::vector<double>& weights);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace umicro::util

#endif  // UMICRO_UTIL_RANDOM_H_
