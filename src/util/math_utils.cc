#include "util/math_utils.h"

#include <cmath>

#include "util/check.h"

namespace umicro::util {

void WelfordAccumulator::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void WelfordAccumulator::Merge(const WelfordAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
}

double WelfordAccumulator::PopulationVariance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double WelfordAccumulator::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double WelfordAccumulator::PopulationStddev() const {
  return std::sqrt(PopulationVariance());
}

WelfordAccumulator WelfordAccumulator::FromRaw(std::size_t count,
                                               double mean, double m2) {
  UMICRO_CHECK(m2 >= 0.0);
  WelfordAccumulator acc;
  acc.count_ = count;
  acc.mean_ = mean;
  acc.m2_ = m2;
  return acc;
}

double InverseNormalCdf(double p) {
  UMICRO_CHECK(p > 0.0 && p < 1.0);
  // Peter Acklam's rational approximation with one Halley refinement.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  constexpr double kHigh = 1.0 - 0.02425;

  double x;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= kHigh) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method against erfc for extra accuracy.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double RegularizedGammaP(double a, double x) {
  UMICRO_CHECK(a > 0.0);
  UMICRO_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;

  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = x^a e^-x / Gamma(a) * sum_n x^n / (a (a+1)...(a+n)).
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }

  // Continued fraction for Q(a,x) (modified Lentz).
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  const double q = h * std::exp(-x + a * std::log(x) - log_gamma_a);
  return 1.0 - q;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  UMICRO_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Clamp(double value, double lo, double hi) {
  if (value < lo) return lo;
  if (value > hi) return hi;
  return value;
}

}  // namespace umicro::util
