#include "resilience/validating_stream.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace umicro::resilience {

namespace {

/// Strictness order used when one record exhibits several defects.
int Severity(BadRecordPolicy policy) {
  switch (policy) {
    case BadRecordPolicy::kRepair:
      return 0;
    case BadRecordPolicy::kQuarantine:
      return 1;
    case BadRecordPolicy::kDrop:
      return 2;
  }
  return 0;
}

void AppendCsvDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

}  // namespace

std::optional<BadRecordPolicy> ParseBadRecordPolicy(const std::string& text) {
  if (text == "repair") return BadRecordPolicy::kRepair;
  if (text == "quarantine") return BadRecordPolicy::kQuarantine;
  if (text == "drop") return BadRecordPolicy::kDrop;
  return std::nullopt;
}

ValidationPolicies ValidationPolicies::Uniform(BadRecordPolicy policy) {
  ValidationPolicies policies;
  policies.non_finite_value = policy;
  policies.bad_error = policy;
  policies.dimension_mismatch = policy;
  policies.bad_timestamp = policy;
  return policies;
}

ValidatingStream::ValidatingStream(stream::StreamSource* source,
                                   std::size_t dimensions,
                                   ValidationOptions options,
                                   obs::MetricsRegistry* metrics)
    : source_(source),
      dimensions_(dimensions),
      options_(std::move(options)),
      value_counts_(dimensions, 0),
      value_means_(dimensions, 0.0),
      value_mins_(dimensions, 0.0),
      value_maxes_(dimensions, 0.0) {
  if (metrics != nullptr) {
    ok_metric_ = &metrics->GetCounter("resilience.records_ok");
    repaired_metric_ = &metrics->GetCounter("resilience.records_repaired");
    quarantined_metric_ =
        &metrics->GetCounter("resilience.records_quarantined");
    dropped_metric_ = &metrics->GetCounter("resilience.records_dropped");
    non_finite_metric_ =
        &metrics->GetCounter("resilience.bad.non_finite_value");
    bad_error_metric_ = &metrics->GetCounter("resilience.bad.error_stddev");
    dim_mismatch_metric_ =
        &metrics->GetCounter("resilience.bad.dimension_mismatch");
    bad_timestamp_metric_ = &metrics->GetCounter("resilience.bad.timestamp");
  }
}

std::optional<stream::UncertainPoint> ValidatingStream::Next() {
  while (true) {
    std::optional<stream::UncertainPoint> point = source_->Next();
    if (!point.has_value()) return std::nullopt;
    ++stats_.records_seen;
    if (HandleRecord(&*point)) return point;
  }
}

bool ValidatingStream::Reset() {
  if (!source_->Reset()) return false;
  stats_ = ValidationStats{};
  value_counts_.assign(dimensions_, 0);
  value_means_.assign(dimensions_, 0.0);
  value_mins_.assign(dimensions_, 0.0);
  value_maxes_.assign(dimensions_, 0.0);
  last_timestamp_ = 0.0;
  saw_timestamp_ = false;
  return true;
}

bool ValidatingStream::HandleRecord(stream::UncertainPoint* point) {
  const ValidationPolicies& policies = options_.policies;

  // Classify every defect the record exhibits.
  const bool wrong_dims = point->dimensions() != dimensions_ ||
                          (point->has_errors() &&
                           point->errors.size() != point->values.size());
  bool non_finite_value = false;
  for (std::size_t j = 0; j < point->values.size(); ++j) {
    if (!std::isfinite(point->values[j])) {
      non_finite_value = true;
      break;
    }
  }
  bool bad_error = false;
  for (double e : point->errors) {
    if (!std::isfinite(e) || e < 0.0) {
      bad_error = true;
      break;
    }
  }
  const bool bad_timestamp =
      !std::isfinite(point->timestamp) ||
      (saw_timestamp_ && point->timestamp < last_timestamp_);

  if (!wrong_dims && !non_finite_value && !bad_error && !bad_timestamp) {
    ++stats_.records_ok;
    if (ok_metric_ != nullptr) ok_metric_->Increment();
    // Clean record: fold its values into the imputation statistics.
    for (std::size_t j = 0; j < dimensions_; ++j) {
      const double v = point->values[j];
      if (value_counts_[j] == 0) {
        value_mins_[j] = v;
        value_maxes_[j] = v;
      } else {
        value_mins_[j] = std::min(value_mins_[j], v);
        value_maxes_[j] = std::max(value_maxes_[j], v);
      }
      ++value_counts_[j];
      value_means_[j] +=
          (v - value_means_[j]) / static_cast<double>(value_counts_[j]);
    }
    last_timestamp_ = point->timestamp;
    saw_timestamp_ = true;
    return true;
  }

  // Tally the defect classes and pick the strictest applicable policy.
  BadRecordPolicy decision = BadRecordPolicy::kRepair;
  auto apply = [&decision](BadRecordPolicy policy) {
    if (Severity(policy) > Severity(decision)) decision = policy;
  };
  if (wrong_dims) {
    ++stats_.dimension_mismatches;
    if (dim_mismatch_metric_ != nullptr) dim_mismatch_metric_->Increment();
    apply(policies.dimension_mismatch);
  }
  if (non_finite_value) {
    ++stats_.non_finite_values;
    if (non_finite_metric_ != nullptr) non_finite_metric_->Increment();
    apply(policies.non_finite_value);
  }
  if (bad_error) {
    ++stats_.bad_errors;
    if (bad_error_metric_ != nullptr) bad_error_metric_->Increment();
    apply(policies.bad_error);
  }
  if (bad_timestamp) {
    ++stats_.bad_timestamps;
    if (bad_timestamp_metric_ != nullptr) bad_timestamp_metric_->Increment();
    apply(policies.bad_timestamp);
  }

  if (decision == BadRecordPolicy::kDrop) {
    ++stats_.records_dropped;
    if (dropped_metric_ != nullptr) dropped_metric_->Increment();
    return false;
  }
  if (decision == BadRecordPolicy::kQuarantine) {
    ++stats_.records_quarantined;
    if (quarantined_metric_ != nullptr) quarantined_metric_->Increment();
    Quarantine(*point);
    return false;
  }

  // Repair, in defect order: shape, then values, then errors, then time.
  if (wrong_dims) {
    point->values.resize(dimensions_, std::nan(""));
    if (point->has_errors()) point->errors.resize(dimensions_, 0.0);
    non_finite_value = true;  // padding may have introduced NaNs
  }
  if (non_finite_value) {
    for (std::size_t j = 0; j < dimensions_; ++j) {
      double& v = point->values[j];
      if (std::isfinite(v)) continue;
      if (std::isnan(v)) {
        // Impute the running mean of valid observations (0 before any).
        v = value_means_[j];
      } else {
        // Clamp infinities to the observed range of the dimension.
        v = v > 0.0 ? value_maxes_[j] : value_mins_[j];
      }
    }
  }
  if (bad_error) {
    for (double& e : point->errors) {
      if (!std::isfinite(e)) {
        e = 0.0;  // unknown uncertainty -> treat as deterministic
      } else if (e < 0.0) {
        e = -e;  // a stddev's sign carries no information
      }
    }
  }
  if (bad_timestamp) {
    // The engine clock must be monotone; a bad arrival time is clamped
    // to the newest time already delivered.
    point->timestamp = saw_timestamp_ ? last_timestamp_ : 0.0;
  }
  last_timestamp_ = std::max(last_timestamp_, point->timestamp);
  saw_timestamp_ = true;
  ++stats_.records_repaired;
  if (repaired_metric_ != nullptr) repaired_metric_->Increment();
  return true;
}

void ValidatingStream::Quarantine(const stream::UncertainPoint& point) {
  if (options_.quarantine_path.empty()) return;
  if (!quarantine_open_attempted_) {
    quarantine_open_attempted_ = true;
    quarantine_file_.open(options_.quarantine_path,
                          std::ios::out | std::ios::trunc);
  }
  if (!quarantine_file_.is_open()) return;
  std::string line;
  for (std::size_t j = 0; j < point.values.size(); ++j) {
    if (j > 0) line += ',';
    AppendCsvDouble(&line, point.values[j]);
  }
  for (double e : point.errors) {
    line += ',';
    AppendCsvDouble(&line, e);
  }
  line += ',';
  AppendCsvDouble(&line, point.timestamp);
  line += ',';
  line += std::to_string(point.label);
  line += '\n';
  quarantine_file_ << line;
}

}  // namespace umicro::resilience
