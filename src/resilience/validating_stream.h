// Input hardening: a StreamSource decorator that classifies and handles
// malformed records before they reach a clustering engine.
//
// Real uncertain-data feeds carry sensor glitches: NaN/Inf readings,
// negative or NaN error stddevs, records with the wrong dimensionality,
// and clocks that jump backwards. None of those may crash the engine or
// poison the ECF statistics (a single NaN value contaminates CF1/CF2
// forever, since the features are additive and never recomputed). The
// ValidatingStream sits between any source and the engine, classifies
// every defect, and applies a per-class policy:
//
//   kRepair     -- fix the record in place (impute the running mean for
//                  NaN values, clamp infinities to the observed range,
//                  zero bad error stddevs, pad/truncate dimensions,
//                  clamp regressing timestamps) and deliver it;
//   kQuarantine -- append the record to a side CSV file and withhold it;
//   kDrop       -- silently withhold it.
//
// Every decision is counted, both in the returned stats() and in the
// attached MetricsRegistry ("resilience.*"; see docs/resilience.md).

#ifndef UMICRO_RESILIENCE_VALIDATING_STREAM_H_
#define UMICRO_RESILIENCE_VALIDATING_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "stream/point.h"
#include "stream/stream_source.h"

namespace umicro::resilience {

/// What to do with a record exhibiting a given defect class.
enum class BadRecordPolicy {
  kRepair,
  kQuarantine,
  kDrop,
};

/// Parses "repair" / "quarantine" / "drop"; std::nullopt otherwise.
std::optional<BadRecordPolicy> ParseBadRecordPolicy(const std::string& text);

/// Per-defect-class policies (one record can exhibit several defects;
/// the most severe applicable policy wins: drop > quarantine > repair).
struct ValidationPolicies {
  /// NaN or +-Inf among the value coordinates.
  BadRecordPolicy non_finite_value = BadRecordPolicy::kRepair;
  /// Negative or non-finite error stddev.
  BadRecordPolicy bad_error = BadRecordPolicy::kRepair;
  /// Record dimensionality differs from the stream's.
  BadRecordPolicy dimension_mismatch = BadRecordPolicy::kDrop;
  /// Non-finite timestamp, or a timestamp earlier than the newest one
  /// already delivered (the engine clock must never rewind).
  BadRecordPolicy bad_timestamp = BadRecordPolicy::kRepair;

  /// All four classes set to `policy` (the CLI's --bad-record-policy).
  static ValidationPolicies Uniform(BadRecordPolicy policy);
};

/// Configuration of a ValidatingStream.
struct ValidationOptions {
  ValidationPolicies policies;
  /// Side file receiving quarantined records as CSV lines; empty means
  /// quarantined records are withheld without being persisted (still
  /// counted as quarantined, not as dropped).
  std::string quarantine_path;
};

/// Validation decision counts (also mirrored into the metrics registry
/// when one is attached).
struct ValidationStats {
  std::uint64_t records_seen = 0;
  /// Clean records passed through untouched.
  std::uint64_t records_ok = 0;
  std::uint64_t records_repaired = 0;
  std::uint64_t records_quarantined = 0;
  std::uint64_t records_dropped = 0;
  // Defect-class tallies (one record may count in several).
  std::uint64_t non_finite_values = 0;
  std::uint64_t bad_errors = 0;
  std::uint64_t dimension_mismatches = 0;
  std::uint64_t bad_timestamps = 0;
};

/// StreamSource decorator applying the validation policies. Does not own
/// the wrapped source. Single-threaded, like every StreamSource.
class ValidatingStream : public stream::StreamSource {
 public:
  /// Wraps `source`; `metrics` may be null (stats() still counts).
  /// `dimensions` is the authoritative stream dimensionality the engine
  /// was configured with.
  ValidatingStream(stream::StreamSource* source, std::size_t dimensions,
                   ValidationOptions options,
                   obs::MetricsRegistry* metrics = nullptr);

  /// Next deliverable (clean or repaired) record; quarantined/dropped
  /// records are consumed internally. std::nullopt at end of stream.
  std::optional<stream::UncertainPoint> Next() override;

  std::size_t dimensions() const override { return dimensions_; }

  /// Resets the wrapped source and the validator's running state.
  bool Reset() override;

  /// Decision counts so far.
  const ValidationStats& stats() const { return stats_; }

 private:
  /// Validates/handles one record. Returns true when the (possibly
  /// repaired) record should be delivered.
  bool HandleRecord(stream::UncertainPoint* point);

  void Quarantine(const stream::UncertainPoint& point);

  stream::StreamSource* const source_;
  const std::size_t dimensions_;
  const ValidationOptions options_;

  ValidationStats stats_;
  /// Per-dimension running mean/extremes of valid values (imputation and
  /// clamping sources).
  std::vector<std::uint64_t> value_counts_;
  std::vector<double> value_means_;
  std::vector<double> value_mins_;
  std::vector<double> value_maxes_;
  /// Newest timestamp delivered so far (regression detector).
  double last_timestamp_ = 0.0;
  bool saw_timestamp_ = false;

  std::ofstream quarantine_file_;
  bool quarantine_open_attempted_ = false;

  // Metric handles (null when no registry was attached).
  obs::Counter* ok_metric_ = nullptr;
  obs::Counter* repaired_metric_ = nullptr;
  obs::Counter* quarantined_metric_ = nullptr;
  obs::Counter* dropped_metric_ = nullptr;
  obs::Counter* non_finite_metric_ = nullptr;
  obs::Counter* bad_error_metric_ = nullptr;
  obs::Counter* dim_mismatch_metric_ = nullptr;
  obs::Counter* bad_timestamp_metric_ = nullptr;
};

}  // namespace umicro::resilience

#endif  // UMICRO_RESILIENCE_VALIDATING_STREAM_H_
