// Crash-safe checkpointing and recovery of a running ClusteringEngine.
//
// The ECF statistics are additive with no hidden process state
// (Property 2.1), which makes checkpoint/replay exact: restore the
// newest checkpoint into an identically configured engine, replay the
// stream from points_processed() onward, and the result is bit-identical
// to the uninterrupted run -- no point double-counted, none lost. The
// machinery here supplies the durable half of that guarantee:
//
//   CheckpointManager  -- writes "checkpoint-<seq>.uckpt" files into a
//                         directory at a points/seconds cadence, each
//                         atomically (temp + fsync + rename) with a
//                         checksummed header, sequence numbers strictly
//                         increasing across process restarts;
//   RecoverOrCreateEngine -- builds a fresh engine via a caller factory,
//                         then restores the newest checkpoint that is
//                         both uncorrupted (checksum + parse) and
//                         compatible (kind/dimensions), skipping and
//                         counting any that are not.

#ifndef UMICRO_RESILIENCE_CHECKPOINT_H_
#define UMICRO_RESILIENCE_CHECKPOINT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"

namespace umicro::resilience {

/// When CheckpointManager writes.
struct CheckpointPolicy {
  /// Checkpoint after this many newly processed points (0 = never by
  /// count).
  std::size_t every_points = 0;
  /// Checkpoint after this much wall-clock time (0 = never by time).
  double every_seconds = 0.0;
  /// Keep only the newest N checkpoint files, pruning older ones after
  /// each successful write (0 = keep everything).
  std::size_t keep_last = 4;
};

/// Writes versioned engine checkpoints into one directory.
///
/// Sequence numbers continue from the highest checkpoint already in the
/// directory, so filenames stay strictly increasing across restarts and
/// recovery can always pick "the newest" lexicographically.
class CheckpointManager {
 public:
  /// Uses `dir` (created if missing) under the given policy.
  CheckpointManager(std::string dir, CheckpointPolicy policy);

  /// Writes a checkpoint when the policy says one is due. Returns true
  /// when a checkpoint was written, false when none was due or the
  /// write failed (check write_failures() to distinguish).
  bool MaybeCheckpoint(core::ClusteringEngine& engine);

  /// Writes a checkpoint unconditionally (flushes the engine first).
  bool CheckpointNow(core::ClusteringEngine& engine);

  /// Checkpoints successfully written by this manager.
  std::size_t checkpoints_written() const { return checkpoints_written_; }

  /// Failed write attempts (I/O errors, or the "checkpoint.write_fail"
  /// failpoint).
  std::size_t write_failures() const { return write_failures_; }

  /// Path of the newest checkpoint written by this manager; empty
  /// before the first successful write.
  const std::string& last_path() const { return last_path_; }

  /// Checkpoint directory.
  const std::string& dir() const { return dir_; }

 private:
  void PruneOld();

  const std::string dir_;
  const CheckpointPolicy policy_;
  std::uint64_t next_seq_ = 1;
  std::size_t checkpoints_written_ = 0;
  std::size_t write_failures_ = 0;
  std::size_t last_checkpoint_points_ = 0;
  std::chrono::steady_clock::time_point last_checkpoint_time_;
  std::string last_path_;
};

/// Checkpoint files in `dir`, newest (highest sequence) first.
std::vector<std::string> ListCheckpointFiles(const std::string& dir);

/// Result of RecoverOrCreateEngine.
struct RecoveredEngine {
  /// The engine -- freshly constructed, and restored when `recovered`.
  std::unique_ptr<core::ClusteringEngine> engine;
  /// True when a checkpoint was restored into the engine.
  bool recovered = false;
  /// Points already processed at the restored checkpoint (replay the
  /// stream from this offset); 0 when not recovered.
  std::uint64_t resume_from = 0;
  /// Checkpoint files that had to be skipped (corrupt, unparsable, or
  /// incompatible with the engine the factory builds).
  std::size_t corrupt_skipped = 0;
  /// Path of the restored checkpoint; empty when not recovered.
  std::string checkpoint_path;
};

/// Builds an engine with `factory` and restores the newest usable
/// checkpoint from `checkpoint_dir` into it. A missing or empty
/// directory simply yields a fresh engine (`recovered` false); corrupt
/// or incompatible checkpoints are skipped (counted) in favor of older
/// ones. The factory must produce the same configuration the
/// checkpoints were written under for recovery to be exact.
RecoveredEngine RecoverOrCreateEngine(
    const std::string& checkpoint_dir,
    const std::function<std::unique_ptr<core::ClusteringEngine>()>& factory);

}  // namespace umicro::resilience

#endif  // UMICRO_RESILIENCE_CHECKPOINT_H_
