#include "resilience/checkpoint.h"

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "io/state_io.h"
#include "util/paths.h"

namespace umicro::resilience {

namespace {

constexpr char kPrefix[] = "checkpoint-";
constexpr char kSuffix[] = ".uckpt";

/// Sequence number of a checkpoint filename; std::nullopt when the name
/// is not of the checkpoint-<seq>.uckpt form.
std::optional<std::uint64_t> SequenceOf(const std::string& name) {
  const std::size_t prefix_len = sizeof(kPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long seq = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end != digits.c_str() + digits.size()) {
    return std::nullopt;
  }
  return seq;
}

std::string CheckpointName(std::uint64_t seq) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(seq), kSuffix);
  return buffer;
}

/// (sequence, filename) pairs present in `dir`, unsorted.
std::vector<std::pair<std::uint64_t, std::string>> ScanDir(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return found;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    const std::optional<std::uint64_t> seq = SequenceOf(name);
    if (seq.has_value()) found.emplace_back(*seq, name);
  }
  ::closedir(handle);
  return found;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, CheckpointPolicy policy)
    : dir_(std::move(dir)),
      policy_(policy),
      last_checkpoint_time_(std::chrono::steady_clock::now()) {
  util::EnsureDirectory(dir_);
  // Continue the sequence past anything already on disk so recovery's
  // "newest wins" rule holds across restarts.
  for (const auto& [seq, name] : ScanDir(dir_)) {
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

bool CheckpointManager::MaybeCheckpoint(core::ClusteringEngine& engine) {
  bool due = false;
  if (policy_.every_points > 0) {
    const std::size_t points = engine.points_processed();
    due = points >= last_checkpoint_points_ + policy_.every_points;
  }
  if (!due && policy_.every_seconds > 0.0) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - last_checkpoint_time_;
    due = elapsed.count() >= policy_.every_seconds;
  }
  if (!due) return false;
  return CheckpointNow(engine);
}

bool CheckpointManager::CheckpointNow(core::ClusteringEngine& engine) {
  const core::EngineState state = engine.ExportEngineState();
  const std::string path = dir_ + "/" + CheckpointName(next_seq_);
  if (!io::WriteEngineStateFile(state, path)) {
    ++write_failures_;
    // The cadence state still advances: a failed write should not turn
    // into a tight retry loop on every subsequent point.
    last_checkpoint_points_ = engine.points_processed();
    last_checkpoint_time_ = std::chrono::steady_clock::now();
    return false;
  }
  ++next_seq_;
  ++checkpoints_written_;
  last_checkpoint_points_ = engine.points_processed();
  last_checkpoint_time_ = std::chrono::steady_clock::now();
  last_path_ = path;
  PruneOld();
  return true;
}

void CheckpointManager::PruneOld() {
  if (policy_.keep_last == 0) return;
  std::vector<std::pair<std::uint64_t, std::string>> found = ScanDir(dir_);
  if (found.size() <= policy_.keep_last) return;
  std::sort(found.begin(), found.end());  // oldest first
  const std::size_t excess = found.size() - policy_.keep_last;
  for (std::size_t i = 0; i < excess; ++i) {
    const std::string path = dir_ + "/" + found[i].second;
    std::remove(path.c_str());
  }
}

std::vector<std::string> ListCheckpointFiles(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found = ScanDir(dir);
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (const auto& [seq, name] : found) paths.push_back(dir + "/" + name);
  return paths;
}

RecoveredEngine RecoverOrCreateEngine(
    const std::string& checkpoint_dir,
    const std::function<std::unique_ptr<core::ClusteringEngine>()>& factory) {
  RecoveredEngine result;
  result.engine = factory();
  for (const std::string& path : ListCheckpointFiles(checkpoint_dir)) {
    const std::optional<core::EngineState> state =
        io::ReadEngineStateFile(path);
    if (!state.has_value()) {
      ++result.corrupt_skipped;
      continue;
    }
    if (!result.engine->RestoreEngineState(*state)) {
      // Parsed but incompatible with the configured engine (wrong kind,
      // dimensionality, or shard count) -- as unusable as corruption.
      ++result.corrupt_skipped;
      continue;
    }
    result.recovered = true;
    result.resume_from = result.engine->points_processed();
    result.checkpoint_path = path;
    break;
  }
  return result;
}

}  // namespace umicro::resilience
