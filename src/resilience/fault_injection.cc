#include "resilience/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace umicro::resilience {

FaultInjectingStream::FaultInjectingStream(stream::StreamSource* source,
                                           FaultInjectionOptions options)
    : source_(source), options_(options), rng_(options.seed) {}

std::optional<stream::UncertainPoint> FaultInjectingStream::Next() {
  if (!queued_.empty()) {
    stream::UncertainPoint point = std::move(queued_.front());
    queued_.pop_front();
    return point;
  }
  std::optional<stream::UncertainPoint> point = PullRecord();
  if (!point.has_value()) return std::nullopt;

  if (options_.reorder_probability > 0.0 &&
      rng_.NextDouble() < options_.reorder_probability) {
    // Swap with the successor: deliver the next record first and queue
    // this one behind it.
    std::optional<stream::UncertainPoint> successor = PullRecord();
    if (successor.has_value()) {
      ++stats_.records_reordered;
      queued_.push_back(std::move(*point));
      return successor;
    }
    return point;  // nothing left to swap with
  }
  if (options_.duplicate_probability > 0.0 &&
      rng_.NextDouble() < options_.duplicate_probability) {
    ++stats_.records_duplicated;
    queued_.push_back(*point);
  }
  return point;
}

bool FaultInjectingStream::Reset() {
  if (!source_->Reset()) return false;
  rng_ = util::Rng(options_.seed);
  stats_ = FaultInjectionStats{};
  queued_.clear();
  return true;
}

std::optional<stream::UncertainPoint> FaultInjectingStream::PullRecord() {
  if (options_.gap_probability > 0.0 &&
      rng_.NextDouble() < options_.gap_probability) {
    const std::size_t length =
        1 + static_cast<std::size_t>(rng_.NextBounded(
                std::max<std::uint64_t>(1, options_.max_gap_length)));
    for (std::size_t i = 0; i < length; ++i) {
      if (!source_->Next().has_value()) break;
      ++stats_.records_gapped;
    }
  }
  std::optional<stream::UncertainPoint> point = source_->Next();
  if (!point.has_value()) return std::nullopt;
  if (options_.corrupt_probability > 0.0 &&
      rng_.NextDouble() < options_.corrupt_probability) {
    ++stats_.records_corrupted;
    Corrupt(&*point);
  }
  return point;
}

void FaultInjectingStream::Corrupt(stream::UncertainPoint* point) {
  const std::size_t dims = point->values.size();
  switch (rng_.NextBounded(5)) {
    case 0:  // a value reading turns NaN
      if (dims > 0) {
        point->values[rng_.NextBounded(dims)] =
            std::numeric_limits<double>::quiet_NaN();
      }
      break;
    case 1:  // a value reading saturates to +-Inf
      if (dims > 0) {
        point->values[rng_.NextBounded(dims)] =
            rng_.NextBounded(2) == 0
                ? std::numeric_limits<double>::infinity()
                : -std::numeric_limits<double>::infinity();
      }
      break;
    case 2:  // an error stddev turns negative
      if (point->errors.empty()) point->errors.assign(dims, 0.0);
      if (!point->errors.empty()) {
        double& e = point->errors[rng_.NextBounded(point->errors.size())];
        e = -(std::fabs(e) + 1.0);
      }
      break;
    case 3:  // the arrival timestamp turns NaN
      point->timestamp = std::numeric_limits<double>::quiet_NaN();
      break;
    case 4:  // a dimension is lost in transit
      if (dims > 0) {
        point->values.pop_back();
        if (!point->errors.empty()) point->errors.pop_back();
      }
      break;
  }
}

}  // namespace umicro::resilience
