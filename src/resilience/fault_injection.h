// Deterministic stream-level fault injection for resilience testing.
//
// FaultInjectingStream decorates any StreamSource with seeded, replayable
// faults of the kinds real feeds exhibit:
//
//   corruption  -- a value turns NaN/Inf, an error stddev turns negative,
//                  the timestamp turns NaN, or a dimension is lost
//                  (exactly the defect classes ValidatingStream handles);
//   duplication -- a record is delivered twice in a row;
//   reordering  -- two consecutive records swap places;
//   burst gaps  -- a run of records disappears entirely.
//
// All decisions come from one util::Rng, so a given seed produces the
// identical fault pattern on every run -- the crash-recovery and
// input-hardening suites rely on that to assert exact counts. Process-
// level faults (worker death, checkpoint-write failure, stalls) are
// injected separately through util::FailpointRegistry.

#ifndef UMICRO_RESILIENCE_FAULT_INJECTION_H_
#define UMICRO_RESILIENCE_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "stream/point.h"
#include "stream/stream_source.h"
#include "util/random.h"

namespace umicro::resilience {

/// Fault mix of one FaultInjectingStream. All probabilities are per
/// source record and independent; 0 disables that fault kind.
struct FaultInjectionOptions {
  /// Seed of the deterministic fault pattern.
  std::uint64_t seed = 0xfa117u;
  /// Probability a record is corrupted (one defect kind chosen
  /// uniformly among value-NaN, value-Inf, negative error stddev,
  /// NaN timestamp, lost dimension).
  double corrupt_probability = 0.0;
  /// Probability a record is delivered twice.
  double duplicate_probability = 0.0;
  /// Probability a record swaps places with its successor.
  double reorder_probability = 0.0;
  /// Probability a burst gap opens before a record: 1..max_gap_length
  /// source records are consumed and discarded.
  double gap_probability = 0.0;
  /// Longest burst gap, in records (>= 1 when gap_probability > 0).
  std::size_t max_gap_length = 16;
};

/// Injection tallies (deterministic given seed + source content).
struct FaultInjectionStats {
  std::uint64_t records_corrupted = 0;
  std::uint64_t records_duplicated = 0;
  std::uint64_t records_reordered = 0;
  /// Source records swallowed by burst gaps.
  std::uint64_t records_gapped = 0;
};

/// StreamSource decorator injecting the configured faults. Does not own
/// the wrapped source.
class FaultInjectingStream : public stream::StreamSource {
 public:
  FaultInjectingStream(stream::StreamSource* source,
                       FaultInjectionOptions options);

  std::optional<stream::UncertainPoint> Next() override;
  std::size_t dimensions() const override { return source_->dimensions(); }

  /// Resets the wrapped source, the RNG, and the tallies, so the same
  /// fault pattern replays.
  bool Reset() override;

  const FaultInjectionStats& stats() const { return stats_; }

 private:
  /// Pulls one record from the source, applying gaps and corruption.
  std::optional<stream::UncertainPoint> PullRecord();

  /// Applies one randomly chosen defect to `point`.
  void Corrupt(stream::UncertainPoint* point);

  stream::StreamSource* const source_;
  const FaultInjectionOptions options_;
  util::Rng rng_;
  FaultInjectionStats stats_;
  /// Records scheduled for delivery before the source is consulted
  /// again (duplicates and reorder leftovers).
  std::deque<stream::UncertainPoint> queued_;
};

}  // namespace umicro::resilience

#endif  // UMICRO_RESILIENCE_FAULT_INJECTION_H_
