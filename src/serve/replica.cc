#include "serve/replica.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace umicro::serve {

namespace {

std::size_t CapacityPerOrder(const core::SnapshotPolicy& policy) {
  UMICRO_CHECK(policy.pyramid_alpha >= 2);
  UMICRO_CHECK(policy.pyramid_l >= 1);
  double capacity = 1.0;
  for (std::size_t i = 0; i < policy.pyramid_l; ++i) {
    capacity *= static_cast<double>(policy.pyramid_alpha);
  }
  UMICRO_CHECK_MSG(capacity <= 1e9, "alpha^l too large to retain");
  return static_cast<std::size_t>(capacity) + 1;
}

}  // namespace

SnapshotReadReplica::SnapshotReadReplica(const core::SnapshotPolicy& policy,
                                         double decay_lambda)
    : capacity_per_order_(CapacityPerOrder(policy)),
      decay_lambda_(decay_lambda),
      state_(std::make_shared<const ReplicaState>()) {
  UMICRO_CHECK(decay_lambda >= 0.0);
}

void SnapshotReadReplica::PublishSnapshot(std::size_t order,
                                          const core::Snapshot& snapshot) {
  auto shared = std::make_shared<const core::Snapshot>(snapshot);
  if (order >= orders_.size()) orders_.resize(order + 1);
  auto& ring = orders_[order];
  ring.push_back(shared);
  if (ring.size() > capacity_per_order_) ring.pop_front();
  // A cadence snapshot is also the freshest view of the live state.
  current_ = std::move(shared);
  InstallState();
}

void SnapshotReadReplica::PublishCurrent(const core::Snapshot& snapshot) {
  current_ = std::make_shared<const core::Snapshot>(snapshot);
  InstallState();
}

void SnapshotReadReplica::InstallState() {
  auto next = std::make_shared<ReplicaState>();
  next->publish_seq = ++publish_seq_;
  next->current = current_;
  std::size_t total = 0;
  for (const auto& ring : orders_) total += ring.size();
  next->history.reserve(total);
  for (const auto& ring : orders_) {
    next->history.insert(next->history.end(), ring.begin(), ring.end());
  }
  std::sort(next->history.begin(), next->history.end(),
            [](const auto& a, const auto& b) { return a->time < b->time; });
  std::shared_ptr<const ReplicaState> installed(std::move(next));
  std::lock_guard<std::mutex> lock(state_mu_);
  state_.swap(installed);
}

std::shared_ptr<const ReplicaState> SnapshotReadReplica::Acquire() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

const core::Snapshot* SnapshotReadReplica::FindAtOrBefore(
    const ReplicaState& state, double time) {
  const core::Snapshot* best = nullptr;
  for (const auto& snapshot : state.history) {
    if (snapshot->time > time) break;  // history is ascending by time
    best = snapshot.get();
  }
  return best;
}

const core::Snapshot* SnapshotReadReplica::FindNearest(
    const ReplicaState& state, double time) {
  const core::Snapshot* best = nullptr;
  double best_diff = 0.0;
  for (const auto& snapshot : state.history) {
    const double diff = std::abs(snapshot->time - time);
    if (best == nullptr || diff < best_diff) {
      best = snapshot.get();
      best_diff = diff;
    }
  }
  return best;
}

}  // namespace umicro::serve
