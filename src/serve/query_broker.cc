#include "serve/query_broker.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/scoped_timer.h"
#include "util/check.h"

namespace umicro::serve {

QueryBroker::QueryBroker(ReplicaResolver resolver, QueryBrokerOptions options,
                         obs::MetricsRegistry* metrics)
    : resolver_(std::move(resolver)), options_(options), metrics_(metrics) {
  UMICRO_CHECK(resolver_ != nullptr);
  UMICRO_CHECK(options_.num_threads >= 1);
  UMICRO_CHECK(options_.max_queue >= 1);
  if (metrics_ != nullptr) {
    queries_ = &metrics_->GetCounter("serve.queries");
    errors_ = &metrics_->GetCounter("serve.errors");
    query_micros_ = &metrics_->GetHistogram("serve.query_micros");
    queue_depth_gauge_ = &metrics_->GetGauge("serve.queue_depth");
    queue_depth_peak_ = &metrics_->GetGauge("serve.queue_depth_peak");
  }
  workers_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryBroker::QueryBroker(const SnapshotReadReplica* replica,
                         QueryBrokerOptions options,
                         obs::MetricsRegistry* metrics)
    : QueryBroker(
          [replica](std::uint64_t tenant) {
            // Non-owning alias: the shim keeps the old lifetime contract
            // (caller guarantees the replica outlives the broker).
            return tenant == 0
                       ? std::shared_ptr<const SnapshotReadReplica>(
                             std::shared_ptr<const SnapshotReadReplica>(),
                             replica)
                       : std::shared_ptr<const SnapshotReadReplica>();
          },
          options, metrics) {
  UMICRO_CHECK(replica != nullptr);
  multi_tenant_ = false;
}

QueryBroker::~QueryBroker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_nonempty_.notify_all();
  queue_nonfull_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<QueryResponse> QueryBroker::Submit(QueryRequest request) {
  PendingQuery pending;
  pending.request = std::move(request);
  std::future<QueryResponse> future = pending.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_nonfull_.wait(lock, [this] {
      return queue_.size() < options_.max_queue || shutdown_;
    });
    if (shutdown_) {
      pending.promise.set_value(
          {false, "broker shutting down", 0, {}, {}, false, 0.0, {}});
      return future;
    }
    queue_.push_back(std::move(pending));
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      queue_depth_peak_->SetMax(static_cast<double>(queue_.size()));
    }
  }
  queue_nonempty_.notify_one();
  return future;
}

void QueryBroker::WorkerLoop() {
  for (;;) {
    PendingQuery pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_nonempty_.wait(lock,
                           [this] { return !queue_.empty() || shutdown_; });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
      }
    }
    queue_nonfull_.notify_one();
    pending.promise.set_value(Execute(pending.request));
  }
}

std::size_t QueryBroker::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

QueryResponse QueryBroker::Execute(const QueryRequest& request) const {
  const obs::ScopedTimer timer(query_micros_);
  if (queries_ != nullptr) {
    queries_->Increment();
  } else {
    served_fallback_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::shared_ptr<const SnapshotReadReplica> replica =
      resolver_(request.tenant);
  if (replica == nullptr) {
    QueryResponse response;
    response.error = "unknown tenant";
    if (errors_ != nullptr) errors_->Increment();
    return response;
  }
  const std::shared_ptr<const ReplicaState> state = replica->Acquire();
  QueryResponse response;
  switch (request.kind) {
    case QueryRequest::Kind::kClusterRecent:
      response = ExecuteClusterRecent(request, *replica, *state);
      break;
    case QueryRequest::Kind::kNearest:
      response = ExecuteNearest(request, *state);
      break;
    case QueryRequest::Kind::kAnomaly:
      response = ExecuteAnomaly(request, *state);
      break;
    case QueryRequest::Kind::kStats:
      response = ExecuteStats(*state);
      break;
  }
  if (!response.ok && errors_ != nullptr) errors_->Increment();
  return response;
}

QueryResponse QueryBroker::ExecuteClusterRecent(
    const QueryRequest& request, const SnapshotReadReplica& replica,
    const ReplicaState& state) const {
  QueryResponse response;
  response.publish_seq = state.publish_seq;
  if (request.horizon <= 0.0) {
    response.error = "horizon must be positive";
    return response;
  }
  response.ok = true;
  if (state.current == nullptr) return response;  // nothing published yet
  // Mirror ClusterOverHorizon's selection over the replica history:
  // at-or-before preferred, nearest as the predates-retention fallback.
  const core::Snapshot* older = SnapshotReadReplica::FindAtOrBefore(
      state, state.current->time - request.horizon);
  if (older == nullptr) {
    older = SnapshotReadReplica::FindNearest(
        state, state.current->time - request.horizon);
    // Horizon predates the replica's retention: flag the clamped answer
    // (mirrors the engine-side snapshot.horizon_clamped counter).
    if (older != nullptr && metrics_ != nullptr) {
      metrics_->GetCounter("snapshot.horizon_clamped").Increment();
    }
  }
  if (older == nullptr || older->time > state.current->time) return response;
  core::MacroClusteringOptions macro = options_.macro;
  if (request.k > 0) macro.k = request.k;
  response.clustering =
      core::ClusterWindow(*state.current, *older, request.horizon,
                          replica.decay_lambda(), macro, metrics_);
  return response;
}

QueryResponse QueryBroker::ExecuteNearest(const QueryRequest& request,
                                          const ReplicaState& state) const {
  QueryResponse response;
  response.publish_seq = state.publish_seq;
  if (state.current != nullptr && !state.current->clusters.empty() &&
      request.values.size() != state.current->clusters[0].ecf.dimensions()) {
    response.error = "probe dimensionality mismatch";
    return response;
  }
  response.ok = true;
  if (state.current == nullptr) return response;
  const NearestResult* found = nullptr;
  NearestResult best;
  for (const auto& cluster : state.current->clusters) {
    if (cluster.ecf.empty()) continue;
    double dist2 = 0.0;
    for (std::size_t j = 0; j < request.values.size(); ++j) {
      const double delta = request.values[j] - cluster.ecf.CentroidAt(j);
      dist2 += delta * delta;
    }
    if (found == nullptr || dist2 < best.distance) {
      best.cluster_id = cluster.id;
      best.distance = dist2;
      best.weight = cluster.ecf.weight();
      found = &best;
    }
  }
  if (found != nullptr) {
    best.distance = std::sqrt(best.distance);
    for (const auto& cluster : state.current->clusters) {
      if (cluster.id == best.cluster_id) {
        best.centroid = cluster.ecf.Centroid();
        break;
      }
    }
    response.nearest = std::move(best);
  }
  return response;
}

QueryResponse QueryBroker::ExecuteAnomaly(const QueryRequest& request,
                                          const ReplicaState& state) const {
  QueryResponse response = ExecuteNearest(request, state);
  if (!response.ok || !response.nearest.has_value()) return response;
  // Figure 1's novelty rule against the published state: a probe is
  // anomalous when no cluster could absorb it, i.e. it sits beyond
  // t standard deviations of the uncertain radius of every mature
  // cluster. A (near-)singleton's radius is uninformative (zero), so
  // singletons never vouch for a probe; before any mature cluster
  // exists everything reads as novel, matching the algorithm's
  // cold-start behaviour.
  response.anomalous = true;
  response.boundary = 0.0;
  for (const auto& cluster : state.current->clusters) {
    if (cluster.ecf.empty() || cluster.ecf.weight() < 2.0) continue;
    double dist2 = 0.0;
    for (std::size_t j = 0; j < request.values.size(); ++j) {
      const double delta = request.values[j] - cluster.ecf.CentroidAt(j);
      dist2 += delta * delta;
    }
    const double boundary =
        options_.boundary_factor * cluster.ecf.UncertainRadius();
    if (cluster.id == response.nearest->cluster_id ||
        boundary > response.boundary) {
      response.boundary = boundary;
    }
    if (std::sqrt(dist2) <= boundary) {
      response.anomalous = false;
      response.boundary = boundary;
      break;
    }
  }
  return response;
}

QueryResponse QueryBroker::ExecuteStats(const ReplicaState& state) const {
  QueryResponse response;
  response.ok = true;
  response.publish_seq = state.publish_seq;
  ServeStats stats;
  stats.publish_seq = state.publish_seq;
  stats.published_time =
      state.current != nullptr ? state.current->time : 0.0;
  stats.live_clusters =
      state.current != nullptr ? state.current->clusters.size() : 0;
  stats.snapshots_retained = state.history.size();
  stats.queries_served = queries_served();
  stats.queue_depth = queue_depth();
  response.stats = stats;
  return response;
}

}  // namespace umicro::serve
