// SnapshotReadReplica: the immutable published view query threads read.
//
// The engine (one coordinator thread) publishes on snapshot cadence via
// the core::SnapshotSink interface; each publication builds a fresh
// ReplicaState -- a copy-on-publish value that shares the unchanged
// Snapshot objects with its predecessors through shared_ptr -- and
// swaps it in under a pointer-sized critical section. Readers Acquire()
// a shared_ptr copy and keep a consistent view for as long as they hold
// it, no matter how many publications happen meanwhile. No lock is ever
// held across a query or across snapshot construction; the only point
// where ingest and readers can touch is the one-pointer swap/copy.
//
// The replica mirrors the engine store's pyramidal retention exactly
// (same per-order rings, same capacity), so the snapshot a replica
// query selects is the same one an in-process ClusterRecent would
// select -- the quiesced-equality guarantee the serve tests assert.

#ifndef UMICRO_SERVE_REPLICA_H_
#define UMICRO_SERVE_REPLICA_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/snapshot.h"

namespace umicro::serve {

/// One published, immutable view of the engine's snapshot state.
struct ReplicaState {
  /// Monotone publication sequence number (0 = never published).
  std::uint64_t publish_seq = 0;
  /// The freshest view of the live micro-cluster set; null before any
  /// data has been published.
  std::shared_ptr<const core::Snapshot> current;
  /// Pyramid-retained snapshot history, ascending by time. Entries are
  /// shared with earlier/later states; only the vector is per-state.
  std::vector<std::shared_ptr<const core::Snapshot>> history;
};

/// Copy-on-publish snapshot replica behind a guarded shared_ptr swap.
class SnapshotReadReplica : public core::SnapshotSink {
 public:
  /// `policy` must match the engine's snapshot policy (alpha / l drive
  /// the mirrored retention); `decay_lambda` is the engine's decay rate,
  /// threaded into horizon subtraction by the query broker.
  SnapshotReadReplica(const core::SnapshotPolicy& policy,
                      double decay_lambda);

  // core::SnapshotSink (engine thread only).
  void PublishSnapshot(std::size_t order,
                       const core::Snapshot& snapshot) override;
  void PublishCurrent(const core::Snapshot& snapshot) override;

  /// The current published state (never null; publish_seq == 0 and a
  /// null `current` before the first publication). Safe from any thread;
  /// the returned state never mutates.
  std::shared_ptr<const ReplicaState> Acquire() const;

  /// The engine's decay rate lambda (horizon subtraction correction).
  double decay_lambda() const { return decay_lambda_; }

  /// Publications so far.
  std::uint64_t publish_seq() const { return publish_seq_; }

  /// Latest history snapshot at or before `time`; nullptr if none.
  static const core::Snapshot* FindAtOrBefore(const ReplicaState& state,
                                              double time);

  /// History snapshot nearest to `time`; nullptr on empty history.
  static const core::Snapshot* FindNearest(const ReplicaState& state,
                                           double time);

 private:
  /// Rebuilds and atomically installs a new ReplicaState from the
  /// writer-side rings + current pointer.
  void InstallState();

  const std::size_t capacity_per_order_;
  const double decay_lambda_;
  /// Writer-side retention rings (engine thread only), mirroring
  /// SnapshotStore: orders_[i] holds order-i snapshots, oldest first.
  std::vector<std::deque<std::shared_ptr<const core::Snapshot>>> orders_;
  std::shared_ptr<const core::Snapshot> current_;
  std::uint64_t publish_seq_ = 0;
  /// Guards only the `state_` pointer itself. Held for one shared_ptr
  /// copy (Acquire) or swap (publish) -- never across a query, never
  /// across snapshot construction -- so ingest can stall behind a
  /// reader for at most a refcount bump. (std::atomic<shared_ptr>
  /// would drop even that, but libstdc++'s lock-free protocol is
  /// opaque to TSan; a pointer-sized critical section keeps the
  /// concurrency tests sanitizer-clean.)
  mutable std::mutex state_mu_;
  std::shared_ptr<const ReplicaState> state_;
};

}  // namespace umicro::serve

#endif  // UMICRO_SERVE_REPLICA_H_
