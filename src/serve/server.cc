#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace umicro::serve {

namespace {

/// Echoes client input back safely inside an ERR line: non-printable
/// bytes are masked and the length capped, so hostile bytes (NULs,
/// control codes, megabyte tokens) can never desync the line protocol
/// through their own error message.
std::string SanitizeToken(const std::string& token) {
  constexpr std::size_t kEchoCap = 32;
  std::string safe;
  const std::size_t limit = std::min(token.size(), kEchoCap);
  safe.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    const unsigned char byte = static_cast<unsigned char>(token[i]);
    safe.push_back(byte >= 0x20 && byte < 0x7F ? static_cast<char>(byte)
                                               : '?');
  }
  if (token.size() > kEchoCap) safe += "...";
  return safe;
}

/// Reads one '\n'-terminated line of at most `limit` bytes (a trailing
/// '\r' is stripped for CRLF clients). Returns false at EOF with
/// nothing read. A longer line sets *overflow and is discarded through
/// its newline without ever being buffered whole.
bool ReadLineBounded(std::istream& in, std::string* line,
                     std::size_t limit, bool* overflow) {
  line->clear();
  *overflow = false;
  int ch;
  bool any = false;
  while ((ch = in.get()) != std::char_traits<char>::eof()) {
    any = true;
    if (ch == '\n') break;
    if (line->size() >= limit) {
      *overflow = true;
      while ((ch = in.get()) != std::char_traits<char>::eof() &&
             ch != '\n') {
      }
      break;
    }
    line->push_back(static_cast<char>(ch));
  }
  if (!any) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Parses a strict double; false on trailing garbage.
bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty();
}

/// Parses a strict decimal tenant id; false on sign, trailing garbage,
/// or overflow.
bool ParseTenantId(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatClusterResponse(const QueryResponse& response) {
  std::ostringstream out;
  if (!response.clustering.has_value()) {
    out << "OK CLUSTER seq=" << response.publish_seq
        << " centroids=0 empty=1\nEND";
    return out.str();
  }
  const core::HorizonClustering& clustering = *response.clustering;
  out << "OK CLUSTER seq=" << response.publish_seq
      << " realized=" << FormatDouble(clustering.realized_horizon)
      << " ratio=" << FormatDouble(clustering.realized_ratio)
      << " window=" << clustering.window.size()
      << " centroids=" << clustering.macro.centroids.size() << "\n";
  // Per-macro-cluster weight: the window mass assigned to it.
  std::vector<double> weights(clustering.macro.centroids.size(), 0.0);
  for (std::size_t i = 0; i < clustering.macro.assignment.size(); ++i) {
    const int target = clustering.macro.assignment[i];
    if (target >= 0 && static_cast<std::size_t>(target) < weights.size()) {
      weights[target] += clustering.window[i].ecf.weight();
    }
  }
  for (std::size_t i = 0; i < clustering.macro.centroids.size(); ++i) {
    out << "C " << FormatDouble(weights[i]);
    for (const double coordinate : clustering.macro.centroids[i]) {
      out << ' ' << FormatDouble(coordinate);
    }
    out << '\n';
  }
  out << "END";
  return out.str();
}

std::string FormatResponse(const QueryRequest& request,
                           const QueryResponse& response,
                           const ServerOptions& options) {
  if (!response.ok) return "ERR " + response.error;
  switch (request.kind) {
    case QueryRequest::Kind::kClusterRecent:
      return FormatClusterResponse(response);
    case QueryRequest::Kind::kNearest: {
      if (!response.nearest.has_value()) {
        return "OK NEAREST seq=" + std::to_string(response.publish_seq) +
               " empty=1";
      }
      std::ostringstream out;
      out << "OK NEAREST seq=" << response.publish_seq
          << " id=" << response.nearest->cluster_id
          << " dist=" << FormatDouble(response.nearest->distance)
          << " weight=" << FormatDouble(response.nearest->weight);
      return out.str();
    }
    case QueryRequest::Kind::kAnomaly: {
      if (!response.nearest.has_value()) {
        return "OK ANOMALY seq=" + std::to_string(response.publish_seq) +
               " empty=1";
      }
      std::ostringstream out;
      out << "OK ANOMALY seq=" << response.publish_seq
          << " novel=" << (response.anomalous ? 1 : 0)
          << " dist=" << FormatDouble(response.nearest->distance)
          << " boundary=" << FormatDouble(response.boundary);
      return out.str();
    }
    case QueryRequest::Kind::kStats: {
      const ServeStats& stats = response.stats.value();
      std::ostringstream out;
      out << "OK STATS seq=" << stats.publish_seq
          << " time=" << FormatDouble(stats.published_time)
          << " clusters=" << stats.live_clusters
          << " snapshots=" << stats.snapshots_retained
          << " served=" << stats.queries_served
          << " queue=" << stats.queue_depth;
      if (options.status) {
        const ServeStatus status = options.status();
        out << " stale=" << status.stale_leaves
            << " degraded=" << (status.degraded ? 1 : 0);
      }
      return out.str();
    }
  }
  return "ERR internal";
}

/// Parses one request line. Returns false with `error` set on a
/// malformed line; QUIT parses as true with `quit` set.
bool ParseRequest(const std::vector<std::string>& tokens,
                  QueryRequest* request, bool* quit, std::string* error) {
  *quit = false;
  if (tokens.empty()) {
    *error = "empty request";
    return false;
  }
  const std::string& verb = tokens[0];
  if (verb == "QUIT") {
    *quit = true;
    return true;
  }
  if (verb == "STATS") {
    request->kind = QueryRequest::Kind::kStats;
    return true;
  }
  if (verb == "CLUSTER") {
    // Grammar (docs/serving.md): 1-2 args is the v1 single-tenant form
    // (session tenant); exactly 3 args is the v2 tenant-qualified form
    // CLUSTER <tenant> <horizon> <k>.
    if (tokens.size() < 2 || tokens.size() > 4) {
      *error = "usage: CLUSTER [<tenant>] <horizon> <k>";
      return false;
    }
    request->kind = QueryRequest::Kind::kClusterRecent;
    std::size_t arg = 1;
    if (tokens.size() == 4) {
      if (!ParseTenantId(tokens[arg], &request->tenant)) {
        *error = "tenant must be a nonnegative integer";
        return false;
      }
      ++arg;
    }
    if (!ParseDouble(tokens[arg], &request->horizon) ||
        request->horizon <= 0.0) {
      *error = "horizon must be a positive number";
      return false;
    }
    ++arg;
    if (arg < tokens.size()) {
      double k = 0.0;
      if (!ParseDouble(tokens[arg], &k) || k < 1.0) {
        *error = "k must be a positive integer";
        return false;
      }
      request->k = static_cast<std::size_t>(k);
    }
    return true;
  }
  if (verb == "NEAREST" || verb == "ANOMALY") {
    if (tokens.size() < 2) {
      *error = "usage: " + verb + " <v0> <v1> ...";
      return false;
    }
    request->kind = verb == "NEAREST" ? QueryRequest::Kind::kNearest
                                      : QueryRequest::Kind::kAnomaly;
    request->values.reserve(tokens.size() - 1);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      double value = 0.0;
      if (!ParseDouble(tokens[i], &value)) {
        *error = "malformed coordinate: " + SanitizeToken(tokens[i]);
        return false;
      }
      request->values.push_back(value);
    }
    return true;
  }
  *error = "unknown request: " + SanitizeToken(verb);
  return false;
}

struct InFlight {
  QueryRequest request;
  std::future<QueryResponse> future;
};

}  // namespace

std::size_t ServeLineProtocol(QueryBroker& broker, std::istream& in,
                              std::ostream& out,
                              const ServerOptions& options) {
  std::size_t served = 0;
  std::deque<InFlight> pipeline;
  const auto drain_one = [&] {
    InFlight& oldest = pipeline.front();
    out << FormatResponse(oldest.request, oldest.future.get(), options)
        << '\n';
    pipeline.pop_front();
    ++served;
  };

  std::string line;
  bool quit = false;
  bool overflow = false;
  // Per-session default tenant (v2 TENANT command); every session
  // starts on tenant 0, which is what a v1 client always talks to.
  std::uint64_t session_tenant = 0;
  while (!quit &&
         ReadLineBounded(in, &line, options.max_line_bytes, &overflow)) {
    if (overflow) {
      while (!pipeline.empty()) drain_one();
      out << "ERR request line too long\n";
      out.flush();
      ++served;
      continue;
    }
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;  // blank line: keepalive, no response
    // Session commands are answered inline by the protocol loop (never
    // by the broker); responses must still come back in request order,
    // so everything submitted before them drains first.
    if (tokens[0] == "HELLO") {
      while (!pipeline.empty()) drain_one();
      out << "OK HELLO proto=2 tenants="
          << (broker.multi_tenant() ? 1 : 0)
          << " pipeline=" << options.max_pipeline
          << " commands=HELLO,TENANT,ROLE,HEALTH,CLUSTER,NEAREST,"
             "ANOMALY,STATS,QUIT\n";
      out.flush();
      ++served;
      continue;
    }
    if (tokens[0] == "ROLE" || tokens[0] == "HEALTH") {
      while (!pipeline.empty()) drain_one();
      const ServeStatus status =
          options.status ? options.status() : ServeStatus{};
      if (tokens[0] == "ROLE") {
        out << "OK ROLE " << status.role << '\n';
      } else {
        out << "OK HEALTH role=" << status.role
            << " degraded=" << (status.degraded ? 1 : 0)
            << " leaves=" << status.leaves
            << " stale=" << status.stale_leaves
            << " deltas=" << status.deltas_applied << '\n';
      }
      out.flush();
      ++served;
      continue;
    }
    if (tokens[0] == "TENANT") {
      while (!pipeline.empty()) drain_one();
      std::uint64_t tenant = 0;
      if (tokens.size() != 2 || !ParseTenantId(tokens[1], &tenant)) {
        out << "ERR usage: TENANT <id>\n";
      } else if (!broker.multi_tenant() && tenant != 0) {
        out << "ERR single-tenant broker: only tenant 0 exists\n";
      } else {
        session_tenant = tenant;
        out << "OK TENANT " << tenant << '\n';
      }
      out.flush();
      ++served;
      continue;
    }
    QueryRequest request;
    request.tenant = session_tenant;
    std::string error;
    if (!ParseRequest(tokens, &request, &quit, &error)) {
      // Errors must come back in request order too: flush everything
      // submitted before this line first.
      while (!pipeline.empty()) drain_one();
      out << "ERR " << error << '\n';
      out.flush();
      ++served;
      continue;
    }
    if (quit) break;
    InFlight flight;
    flight.request = request;
    flight.future = broker.Submit(std::move(request));
    pipeline.push_back(std::move(flight));
    while (pipeline.size() >= options.max_pipeline) drain_one();
    // Answer eagerly once the stream has no buffered input, so an
    // interactive session sees its response immediately.
    if (in.rdbuf()->in_avail() <= 0) {
      while (!pipeline.empty()) drain_one();
      out.flush();
    }
  }
  while (!pipeline.empty()) drain_one();
  if (quit) out << "OK BYE\n";
  out.flush();
  return served;
}

}  // namespace umicro::serve
