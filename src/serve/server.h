// LineProtocolServer: a minimal text front end over the QueryBroker.
//
// Reads newline-terminated requests from an std::istream and writes
// newline-terminated responses to an std::ostream, in request order.
// Wired to stdin/stdout by `umicro_cli --serve`; any socket wrapper
// that exposes iostreams (socat, inetd, a netcat pipe) turns it into a
// network service without further code.
//
// The request/response grammar (protocol version 2: HELLO capability
// negotiation, per-session TENANT selection, tenant-qualified CLUSTER)
// is documented in ONE place: docs/serving.md. Do not restate it here
// or in the CLI help; change the grammar there first.
//
// Requests are submitted to the broker asynchronously and pipelined up
// to `max_pipeline` deep, so a burst of queries is answered by all
// broker workers in parallel while responses still come back in order.
// HELLO and TENANT are session commands answered inline (in order) by
// the protocol loop itself, never by the broker.

#ifndef UMICRO_SERVE_SERVER_H_
#define UMICRO_SERVE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>

#include "serve/query_broker.h"

namespace umicro::serve {

/// Control-plane view behind the ROLE/HEALTH verbs (and the STATS
/// stale/degraded suffix). A distributed aggregator provides one via
/// ServerOptions::status; standalone serving leaves it unset and
/// answers with these defaults.
struct ServeStatus {
  /// "primary" | "standby" for an aggregator, "standalone" otherwise.
  std::string role = "standalone";
  /// True when stale leaves are excluded from the served merged view.
  bool degraded = false;
  std::size_t leaves = 0;
  std::size_t stale_leaves = 0;
  std::uint64_t deltas_applied = 0;
};

/// Server configuration.
struct ServerOptions {
  /// Maximum in-flight (submitted, unanswered) requests before the
  /// reader blocks on the oldest response.
  std::size_t max_pipeline = 64;
  /// Longest accepted request line. Anything longer is answered with an
  /// ERR line and discarded through its newline (the reader never
  /// buffers more than this much of a hostile line).
  std::size_t max_line_bytes = std::size_t{1} << 20;
  /// When set, ROLE/HEALTH answer from this snapshot and STATS gains
  /// the stale/degraded fields. Called on the protocol thread.
  std::function<ServeStatus()> status;
};

/// Runs the line protocol over `in`/`out` until EOF or QUIT; returns
/// the number of requests served. `broker` must outlive the call.
std::size_t ServeLineProtocol(QueryBroker& broker, std::istream& in,
                              std::ostream& out,
                              const ServerOptions& options = {});

}  // namespace umicro::serve

#endif  // UMICRO_SERVE_SERVER_H_
