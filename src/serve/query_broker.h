// QueryBroker: concurrent query answering over a SnapshotReadReplica.
//
// N worker threads drain a bounded queue of queries; every query runs
// against an Acquire()d immutable ReplicaState, so nothing a query does
// can stall Process/ProcessBatch on the engine thread. Submit() hands
// back a future; Execute() answers synchronously on the caller's thread
// through the identical code path (the quiesced-equality tests use it).
//
// Query kinds (the paper's interactive analysis, Section II-D, served):
//   kClusterRecent -- "cluster the last h time units into k groups"
//                     via decay-corrected snapshot subtraction;
//   kNearest       -- closest micro-cluster to a probe point;
//   kAnomaly       -- is the probe outside the nearest cluster's
//                     critical uncertainty boundary (t standard
//                     deviations of the uncertain radius)?
//   kStats         -- replica/broker health.
//
// Metrics (in the registry passed at construction, usually the
// engine's): serve.queries, serve.errors, serve.query_micros,
// serve.queue_depth (live gauge), serve.queue_depth_peak.

#ifndef UMICRO_SERVE_QUERY_BROKER_H_
#define UMICRO_SERVE_QUERY_BROKER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/horizon.h"
#include "core/macro_cluster.h"
#include "obs/metrics.h"
#include "serve/replica.h"

namespace umicro::serve {

/// Broker configuration.
struct QueryBrokerOptions {
  /// Worker threads answering queries (>= 1).
  std::size_t num_threads = 4;
  /// Submit() blocks when this many queries are already queued
  /// (backpressure toward the front end, never toward ingest).
  std::size_t max_queue = 1024;
  /// Uncertainty-boundary width for kAnomaly (the paper's t).
  double boundary_factor = 3.0;
  /// Macro-clustering defaults for kClusterRecent; a request's k
  /// overrides options.macro.k when nonzero.
  core::MacroClusteringOptions macro;

  /// The serve slice of the consolidated EngineConfig (core/config.h).
  static QueryBrokerOptions FromConfig(const core::EngineConfig& config) {
    QueryBrokerOptions options;
    options.num_threads = config.serve.threads;
    options.max_queue = config.serve.max_queue;
    options.boundary_factor = config.serve.boundary_factor;
    return options;
  }
};

/// Maps a tenant id to its read replica (nullptr = unknown tenant).
/// Must be callable from any broker worker thread concurrently with
/// tenant creation/removal on the owner's side; the returned shared_ptr
/// keeps the replica alive for the duration of the query.
using ReplicaResolver =
    std::function<std::shared_ptr<const SnapshotReadReplica>(std::uint64_t)>;

/// One query.
struct QueryRequest {
  enum class Kind { kClusterRecent, kNearest, kAnomaly, kStats };
  Kind kind = Kind::kStats;
  /// Tenant the query targets; 0 is the implicit single-tenant default
  /// (the old single-replica constructor serves only tenant 0).
  std::uint64_t tenant = 0;
  /// kClusterRecent: horizon h in stream time units (> 0).
  double horizon = 0.0;
  /// kClusterRecent: macro-cluster count; 0 = broker default.
  std::size_t k = 0;
  /// kNearest / kAnomaly: the probe point's coordinates.
  std::vector<double> values;
};

/// kNearest payload.
struct NearestResult {
  std::uint64_t cluster_id = 0;
  double distance = 0.0;
  double weight = 0.0;
  std::vector<double> centroid;
};

/// kStats payload.
struct ServeStats {
  std::uint64_t publish_seq = 0;
  double published_time = 0.0;
  std::size_t live_clusters = 0;
  std::size_t snapshots_retained = 0;
  std::uint64_t queries_served = 0;
  std::size_t queue_depth = 0;
};

/// One answer. `ok` is false only for malformed requests (wrong arity,
/// nonpositive horizon); an empty replica yields ok with empty payloads.
struct QueryResponse {
  bool ok = false;
  std::string error;
  /// Publication the answer was computed against (0 = nothing published).
  std::uint64_t publish_seq = 0;
  /// kClusterRecent: nullopt when the replica holds no usable window.
  std::optional<core::HorizonClustering> clustering;
  /// kNearest / kAnomaly: nullopt when no clusters are published.
  std::optional<NearestResult> nearest;
  /// kAnomaly verdict + the boundary it was judged against.
  bool anomalous = false;
  double boundary = 0.0;
  /// kStats payload.
  std::optional<ServeStats> stats;
};

/// Concurrent query front end over one replica or a tenant fleet.
class QueryBroker {
 public:
  /// Tenant-aware broker: every query's tenant id is resolved to a
  /// replica through `resolver` (see EngineFleet::Resolver()). An
  /// unresolvable tenant answers ok=false "unknown tenant". `metrics`
  /// (optional) receives the serve.* instruments.
  QueryBroker(ReplicaResolver resolver, QueryBrokerOptions options,
              obs::MetricsRegistry* metrics = nullptr);

  /// Single-tenant shim: serves `replica` as tenant 0 (any other tenant
  /// id is unknown). `replica` must outlive the broker. Pass the
  /// engine's registry so one export covers ingest and serving.
  QueryBroker(const SnapshotReadReplica* replica, QueryBrokerOptions options,
              obs::MetricsRegistry* metrics = nullptr);

  QueryBroker(const QueryBroker&) = delete;
  QueryBroker& operator=(const QueryBroker&) = delete;

  /// Drains the queue and joins the workers.
  ~QueryBroker();

  /// Enqueues a query for the worker pool; blocks while the queue is at
  /// max_queue. The future resolves when a worker answers.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Answers synchronously on the calling thread (same code path the
  /// workers run).
  QueryResponse Execute(const QueryRequest& request) const;

  /// Queries currently waiting for a worker.
  std::size_t queue_depth() const;

  /// True when this broker routes by tenant id (resolver-constructed);
  /// the serve protocol's HELLO capability line reports it.
  bool multi_tenant() const { return multi_tenant_; }

  /// Queries answered so far (workers + Execute).
  std::uint64_t queries_served() const {
    return queries_ != nullptr
               ? queries_->value()
               : served_fallback_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingQuery {
    QueryRequest request;
    std::promise<QueryResponse> promise;
  };

  void WorkerLoop();

  QueryResponse ExecuteClusterRecent(const QueryRequest& request,
                                     const SnapshotReadReplica& replica,
                                     const ReplicaState& state) const;
  QueryResponse ExecuteNearest(const QueryRequest& request,
                               const ReplicaState& state) const;
  QueryResponse ExecuteAnomaly(const QueryRequest& request,
                               const ReplicaState& state) const;
  QueryResponse ExecuteStats(const ReplicaState& state) const;

  ReplicaResolver resolver_;
  bool multi_tenant_ = true;
  const QueryBrokerOptions options_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* queries_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Histogram* query_micros_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* queue_depth_peak_ = nullptr;
  /// Served tally when no registry is attached.
  mutable std::atomic<std::uint64_t> served_fallback_{0};

  mutable std::mutex mu_;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_nonfull_;
  std::deque<PendingQuery> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace umicro::serve

#endif  // UMICRO_SERVE_QUERY_BROKER_H_
