// Incremental, partitioned fleet checkpointing with a checksummed
// manifest -- and the fleet-aware counterpart of RecoverOrCreateEngine.
//
// One monolithic checkpoint per pass does not scale to a fleet: with
// 10^5 tenants of which a handful moved, rewriting every tenant's state
// is almost all wasted I/O. A checkpoint pass here writes one
// "ucheckpoint 2" file per DIRTY tenant only (a tenant is dirty when
// its processed-point count changed since the last pass; ECF additivity
// makes the count a complete dirtiness signal -- no points, no state
// change), then one manifest naming, for every tenant, the file that
// holds its current state:
//
//   tenant-<id>-<seq>.uckpt   one tenant's engine state (the same
//                             atomic temp+fsync+rename, checksummed
//                             "ucheckpoint 2" format single engines
//                             use);
//   manifest-<seq>.ufm        the pass manifest ("ufleetmanifest 1"):
//
//     ufleetmanifest 1 <fnv1a-of-body>
//     seq <seq>
//     dimensions <d>
//     tenants <count>
//     T <tenant-id> <filename> <points> <fnv1a-of-file-text>
//     ... one T line per tenant, ascending by id ...
//
// Clean tenants' T lines point at files written by earlier passes, so a
// manifest is a complete fleet image even though the pass wrote only
// the dirty subset. Every write is atomic and old manifests plus the
// files they reference stay on disk until pruned (newest `keep_last`
// manifests survive; tenant files are removed only once no surviving
// manifest references them), so a crash at ANY instant leaves the
// previous pass fully recoverable.
//
// RecoverOrCreateFleet walks manifests newest-first, takes the first
// one whose header checksum validates, and restores tenant by tenant --
// a tenant whose file is missing, corrupt (manifest checksum, file
// checksum, or parse), or incompatible is recreated EMPTY and counted
// in corrupt_skipped instead of failing the whole fleet.

#ifndef UMICRO_FLEET_FLEET_CHECKPOINT_H_
#define UMICRO_FLEET_FLEET_CHECKPOINT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "fleet/engine_fleet.h"
#include "obs/metrics.h"

namespace umicro::fleet {

/// Writes incremental fleet checkpoints into one directory.
class FleetCheckpointer {
 public:
  /// Uses `dir` (created if missing) under config's cadence/retention.
  /// Seeds itself from the newest valid manifest already in `dir`, so
  /// after a restart the first pass rewrites only tenants that moved
  /// since that manifest (not the whole fleet). `metrics` (optional,
  /// usually the fleet's registry) receives the fleet.checkpoint.*
  /// instruments, including the dirty-ratio gauge.
  FleetCheckpointer(std::string dir, core::CheckpointConfig config,
                    obs::MetricsRegistry* metrics = nullptr);

  /// Runs a pass when the cadence (points/seconds) says one is due.
  bool MaybeCheckpoint(EngineFleet& fleet);

  /// Runs a pass unconditionally: flushes the fleet, writes every dirty
  /// tenant's state, then the manifest. False when any write failed
  /// (the previous pass stays intact and authoritative).
  bool CheckpointNow(EngineFleet& fleet);

  /// Successful passes so far.
  std::size_t checkpoints_written() const { return checkpoints_written_; }

  /// Failed write attempts.
  std::size_t write_failures() const { return write_failures_; }

  /// Dirty tenants / total tenants of the last successful pass
  /// (0 before any pass; 1.0 = full rewrite).
  double last_dirty_ratio() const { return last_dirty_ratio_; }

  /// Tenants rewritten by the last successful pass.
  std::size_t last_dirty_count() const { return last_dirty_count_; }

  /// Sequence of the last successful pass (0 before any).
  std::uint64_t last_seq() const { return last_seq_; }

  /// Checkpoint directory.
  const std::string& dir() const { return dir_; }

 private:
  struct TenantRecord {
    std::string file;
    std::uint64_t points = 0;
    std::uint64_t checksum = 0;
  };

  void PruneOld();

  const std::string dir_;
  const core::CheckpointConfig config_;
  obs::Gauge* dirty_ratio_gauge_ = nullptr;
  obs::Counter* passes_ = nullptr;
  obs::Counter* tenants_written_ = nullptr;
  obs::Counter* failures_ = nullptr;

  std::uint64_t next_seq_ = 1;
  /// The last manifest's image: tenant -> its current on-disk record.
  std::map<std::uint64_t, TenantRecord> latest_;
  std::size_t checkpoints_written_ = 0;
  std::size_t write_failures_ = 0;
  double last_dirty_ratio_ = 0.0;
  std::size_t last_dirty_count_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint64_t last_checkpoint_points_ = 0;
  std::chrono::steady_clock::time_point last_checkpoint_time_;
};

/// Manifest files in `dir`, newest (highest sequence) first.
std::vector<std::string> ListFleetManifestFiles(const std::string& dir);

/// Result of RecoverOrCreateFleet.
struct RecoveredFleet {
  /// The fleet -- freshly constructed, with recovered tenants restored.
  std::unique_ptr<EngineFleet> fleet;
  /// True when a manifest was found and applied (even partially).
  bool recovered = false;
  /// Sequence of the manifest applied; 0 when none.
  std::uint64_t manifest_seq = 0;
  /// Tenants restored from their checkpoint files.
  std::size_t tenants_restored = 0;
  /// Tenant records skipped (missing/corrupt/incompatible file); those
  /// tenants exist but start empty.
  std::size_t corrupt_skipped = 0;
  /// Manifests that failed validation and were passed over for older
  /// ones.
  std::size_t manifests_skipped = 0;
  /// Per-tenant replay offsets: points already processed at the
  /// checkpoint (absent or 0 = replay that tenant from the start).
  std::map<std::uint64_t, std::uint64_t> resume_from;
};

/// Builds a fleet for `dimensions`/`config` and restores the newest
/// valid manifest from `checkpoint_dir` into it. A missing or empty
/// directory yields a fresh fleet (`recovered` false); corrupt tenant
/// records are skipped (counted) without failing the fleet.
RecoveredFleet RecoverOrCreateFleet(const std::string& checkpoint_dir,
                                    std::size_t dimensions,
                                    const core::EngineConfig& config);

}  // namespace umicro::fleet

#endif  // UMICRO_FLEET_FLEET_CHECKPOINT_H_
