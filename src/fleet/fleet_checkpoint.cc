#include "fleet/fleet_checkpoint.h"

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "io/state_io.h"
#include "util/failpoints.h"
#include "util/paths.h"

namespace umicro::fleet {

namespace {

constexpr char kManifestPrefix[] = "manifest-";
constexpr char kManifestSuffix[] = ".ufm";
constexpr char kTenantSuffix[] = ".uckpt";

std::string ManifestName(std::uint64_t seq) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%08llu%s", kManifestPrefix,
                static_cast<unsigned long long>(seq), kManifestSuffix);
  return buffer;
}

std::string TenantFileName(std::uint64_t tenant, std::uint64_t seq) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "tenant-%llu-%08llu%s",
                static_cast<unsigned long long>(tenant),
                static_cast<unsigned long long>(seq), kTenantSuffix);
  return buffer;
}

/// Sequence of a manifest-<seq>.ufm name; std::nullopt otherwise.
std::optional<std::uint64_t> ManifestSequenceOf(const std::string& name) {
  const std::size_t prefix_len = sizeof(kManifestPrefix) - 1;
  const std::size_t suffix_len = sizeof(kManifestSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kManifestPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kManifestSuffix) !=
      0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long seq = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end != digits.c_str() + digits.size()) {
    return std::nullopt;
  }
  return seq;
}

/// (sequence, filename) of every manifest in `dir`, unsorted.
std::vector<std::pair<std::uint64_t, std::string>> ScanManifests(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return found;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    const std::optional<std::uint64_t> seq = ManifestSequenceOf(name);
    if (seq.has_value()) found.emplace_back(*seq, name);
  }
  ::closedir(handle);
  return found;
}

/// Every tenant-*.uckpt filename in `dir`.
std::vector<std::string> ScanTenantFiles(const std::string& dir) {
  std::vector<std::string> found;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return found;
  const std::size_t suffix_len = sizeof(kTenantSuffix) - 1;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() > suffix_len + 7 && name.compare(0, 7, "tenant-") == 0 &&
        name.compare(name.size() - suffix_len, suffix_len, kTenantSuffix) ==
            0) {
      found.push_back(name);
    }
  }
  ::closedir(handle);
  return found;
}

struct ManifestRecord {
  std::uint64_t tenant = 0;
  std::string file;
  std::uint64_t points = 0;
  std::uint64_t checksum = 0;
};

struct Manifest {
  std::uint64_t seq = 0;
  std::size_t dimensions = 0;
  std::vector<ManifestRecord> records;
};

std::string ManifestToString(const Manifest& manifest) {
  std::ostringstream body;
  body << "seq " << manifest.seq << "\n";
  body << "dimensions " << manifest.dimensions << "\n";
  body << "tenants " << manifest.records.size() << "\n";
  for (const ManifestRecord& record : manifest.records) {
    body << "T " << record.tenant << ' ' << record.file << ' '
         << record.points << ' ' << record.checksum << "\n";
  }
  std::ostringstream out;
  out << "ufleetmanifest 1 "
      << static_cast<unsigned long long>(io::Fnv1a(body.str())) << "\n"
      << body.str();
  return out.str();
}

/// Parses manifest text, verifying the header checksum over the body.
/// Hostile input (truncation, flips, bogus counts) yields std::nullopt.
std::optional<Manifest> ParseManifest(const std::string& text) {
  constexpr std::size_t kMaxTenants = std::size_t{1} << 24;
  const std::size_t newline = text.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  {
    std::istringstream header(text.substr(0, newline));
    std::string magic;
    int version = 0;
    std::uint64_t checksum = 0;
    if (!(header >> magic >> version >> checksum)) return std::nullopt;
    if (magic != "ufleetmanifest" || version != 1) return std::nullopt;
    if (checksum != io::Fnv1a(text.substr(newline + 1))) return std::nullopt;
  }
  std::istringstream in(text.substr(newline + 1));
  std::string key;
  Manifest manifest;
  std::size_t count = 0;
  if (!(in >> key >> manifest.seq) || key != "seq") return std::nullopt;
  if (!(in >> key >> manifest.dimensions) || key != "dimensions") {
    return std::nullopt;
  }
  if (!(in >> key >> count) || key != "tenants" || count > kMaxTenants) {
    return std::nullopt;
  }
  manifest.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ManifestRecord record;
    if (!(in >> key >> record.tenant >> record.file >> record.points >>
          record.checksum) ||
        key != "T") {
      return std::nullopt;
    }
    // Defense against path traversal through a corrupted manifest: the
    // file must be a plain name inside the checkpoint directory.
    if (record.file.empty() ||
        record.file.find('/') != std::string::npos) {
      return std::nullopt;
    }
    manifest.records.push_back(std::move(record));
  }
  return manifest;
}

/// Reads + validates the manifest at `path`.
std::optional<Manifest> ReadManifestFile(const std::string& path) {
  const std::optional<std::string> text = io::ReadWholeFile(path);
  if (!text.has_value()) return std::nullopt;
  return ParseManifest(*text);
}

}  // namespace

FleetCheckpointer::FleetCheckpointer(std::string dir,
                                     core::CheckpointConfig config,
                                     obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)),
      config_(std::move(config)),
      last_checkpoint_time_(std::chrono::steady_clock::now()) {
  util::EnsureDirectory(dir_);
  if (metrics != nullptr) {
    dirty_ratio_gauge_ = &metrics->GetGauge("fleet.checkpoint.dirty_ratio");
    passes_ = &metrics->GetCounter("fleet.checkpoint.passes");
    tenants_written_ =
        &metrics->GetCounter("fleet.checkpoint.tenants_written");
    failures_ = &metrics->GetCounter("fleet.checkpoint.write_failures");
  }
  // Continue the sequence past anything on disk, and seed the image
  // from the newest valid manifest so the first pass after a restart
  // rewrites only tenants that moved since it.
  std::vector<std::pair<std::uint64_t, std::string>> manifests =
      ScanManifests(dir_);
  std::sort(manifests.begin(), manifests.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [seq, name] : manifests) {
    next_seq_ = std::max(next_seq_, seq + 1);
  }
  for (const auto& [seq, name] : manifests) {
    const std::optional<Manifest> manifest =
        ReadManifestFile(dir_ + "/" + name);
    if (!manifest.has_value()) continue;
    for (const ManifestRecord& record : manifest->records) {
      latest_[record.tenant] = {record.file, record.points, record.checksum};
    }
    last_seq_ = manifest->seq;
    break;
  }
}

bool FleetCheckpointer::MaybeCheckpoint(EngineFleet& fleet) {
  bool due = false;
  if (config_.every_points > 0) {
    const std::uint64_t points = fleet.Stats().points_ingested;
    due = points >= last_checkpoint_points_ + config_.every_points;
  }
  if (!due && config_.every_seconds > 0.0) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - last_checkpoint_time_;
    due = elapsed.count() >= config_.every_seconds;
  }
  if (!due) return false;
  return CheckpointNow(fleet);
}

bool FleetCheckpointer::CheckpointNow(EngineFleet& fleet) {
  fleet.Flush();
  const std::uint64_t total_points = fleet.Stats().points_ingested;
  const auto fail = [this, total_points] {
    ++write_failures_;
    if (failures_ != nullptr) failures_->Increment();
    // The cadence still advances -- a failed pass must not retry on
    // every subsequent point.
    last_checkpoint_points_ = total_points;
    last_checkpoint_time_ = std::chrono::steady_clock::now();
    return false;
  };
  const std::uint64_t seq = next_seq_;
  Manifest manifest;
  manifest.seq = seq;
  manifest.dimensions = fleet.dimensions();
  std::map<std::uint64_t, TenantRecord> image;
  std::size_t dirty = 0;
  for (const std::uint64_t tenant : fleet.TenantIds()) {
    const std::uint64_t points = fleet.TenantPoints(tenant);
    const auto it = latest_.find(tenant);
    TenantRecord record;
    if (it != latest_.end() && it->second.points == points) {
      record = it->second;  // clean: reference the existing file
    } else {
      ++dirty;
      const core::EngineState state = fleet.ExportTenantState(tenant);
      const std::string text = io::EngineStateToString(state);
      record.file = TenantFileName(tenant, seq);
      record.points = points;
      record.checksum = io::Fnv1a(text);
      if (UMICRO_FAILPOINT("checkpoint.write_fail") ||
          !io::WriteTextFileAtomic(text, dir_ + "/" + record.file)) {
        return fail();
      }
      if (tenants_written_ != nullptr) tenants_written_->Increment();
    }
    image[tenant] = record;
    manifest.records.push_back(
        {tenant, record.file, record.points, record.checksum});
  }
  if (UMICRO_FAILPOINT("fleet.manifest.write_fail") ||
      !io::WriteTextFileAtomic(ManifestToString(manifest),
                               dir_ + "/" + ManifestName(seq))) {
    return fail();
  }
  ++next_seq_;
  ++checkpoints_written_;
  last_seq_ = seq;
  latest_ = std::move(image);
  last_dirty_count_ = dirty;
  last_dirty_ratio_ =
      manifest.records.empty()
          ? 0.0
          : static_cast<double>(dirty) /
                static_cast<double>(manifest.records.size());
  if (dirty_ratio_gauge_ != nullptr) {
    dirty_ratio_gauge_->Set(last_dirty_ratio_);
  }
  if (passes_ != nullptr) passes_->Increment();
  last_checkpoint_points_ = total_points;
  last_checkpoint_time_ = std::chrono::steady_clock::now();
  PruneOld();
  return true;
}

void FleetCheckpointer::PruneOld() {
  if (config_.keep_last == 0) return;
  std::vector<std::pair<std::uint64_t, std::string>> manifests =
      ScanManifests(dir_);
  std::sort(manifests.begin(), manifests.end());  // oldest first
  if (manifests.size() > config_.keep_last) {
    const std::size_t excess = manifests.size() - config_.keep_last;
    for (std::size_t i = 0; i < excess; ++i) {
      std::remove((dir_ + "/" + manifests[i].second).c_str());
    }
    manifests.erase(manifests.begin(),
                    manifests.begin() + static_cast<std::ptrdiff_t>(excess));
  }
  // Tenant files are shared between manifests (clean tenants); remove
  // only those no surviving manifest references.
  std::set<std::string> referenced;
  for (const auto& [seq, name] : manifests) {
    const std::optional<Manifest> manifest =
        ReadManifestFile(dir_ + "/" + name);
    if (!manifest.has_value()) continue;
    for (const ManifestRecord& record : manifest->records) {
      referenced.insert(record.file);
    }
  }
  for (const std::string& name : ScanTenantFiles(dir_)) {
    if (referenced.find(name) == referenced.end()) {
      std::remove((dir_ + "/" + name).c_str());
    }
  }
}

std::vector<std::string> ListFleetManifestFiles(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found =
      ScanManifests(dir);
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (const auto& [seq, name] : found) paths.push_back(dir + "/" + name);
  return paths;
}

RecoveredFleet RecoverOrCreateFleet(const std::string& checkpoint_dir,
                                    std::size_t dimensions,
                                    const core::EngineConfig& config) {
  RecoveredFleet result;
  result.fleet = std::make_unique<EngineFleet>(dimensions, config);
  for (const std::string& path : ListFleetManifestFiles(checkpoint_dir)) {
    const std::optional<Manifest> manifest = ReadManifestFile(path);
    if (!manifest.has_value() || manifest->dimensions != dimensions) {
      ++result.manifests_skipped;
      continue;
    }
    result.recovered = true;
    result.manifest_seq = manifest->seq;
    for (const ManifestRecord& record : manifest->records) {
      // The tenant exists either way; only a fully validated state is
      // restored into it. A bad record costs one tenant's history, not
      // the fleet.
      result.fleet->EnsureTenant(record.tenant);
      const std::optional<std::string> text =
          io::ReadWholeFile(checkpoint_dir + "/" + record.file);
      if (!text.has_value() || io::Fnv1a(*text) != record.checksum) {
        ++result.corrupt_skipped;
        continue;
      }
      const std::optional<core::EngineState> state =
          io::ParseEngineState(*text);
      if (!state.has_value() ||
          !result.fleet->RestoreTenantState(record.tenant, *state)) {
        ++result.corrupt_skipped;
        continue;
      }
      ++result.tenants_restored;
      result.resume_from[record.tenant] = record.points;
    }
    break;
  }
  return result;
}

}  // namespace umicro::fleet
