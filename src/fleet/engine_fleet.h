// EngineFleet: N independent tenant engines in one process, multiplexed
// over a small shared worker pool.
//
// The ROADMAP north star is "millions of users" -- hundreds of
// thousands of small independent uncertain streams (arXiv:0909.1777's
// per-source uncertainty state), not one monolithic stream. The fleet
// owns one TenantHandle (-> core::EngineCore) per tenant and routes
// (tenant_id, point) ingest by tenant hash onto the same shard-worker
// machinery the sharded engine uses: a parallel::BoundedQueue per
// worker, per-tenant batches of `fleet.tenant_batch` points, each batch
// drained through the batched kernel path (EngineCore::ProcessBatch).
// Hashing a tenant to exactly one worker keeps every tenant's points in
// ingest order, which is why a tenant's state stays bit-identical to an
// isolated single-engine run (the fleet parity test's invariant).
//
// Threading model:
//   * Ingest/Flush/EnsureTenant/checkpoint/export -- coordinator only
//     (one thread at a time), like every engine in this codebase.
//   * Workers touch a tenant's core only under that tenant's slot
//     mutex; the coordinator takes the same mutex for queries/exports,
//     so handing a tenant between threads is race-free.
//   * Resolver() is safe from any broker thread concurrently with
//     tenant creation: the tenant table and the per-tenant replica
//     pointers are guarded by one fleet mutex, and a resolved replica
//     is kept alive by shared ownership for the query's duration.
//
// Serving: EnsureServing(tenant) attaches a per-tenant
// serve::SnapshotReadReplica as the tenant core's snapshot sink --
// idempotently (a second call, or re-attaching the same sink, never
// double-primes the replica's retention rings) -- and Resolver() hands
// the replica table to a tenant-aware serve::QueryBroker.
//
// Metrics (fleet.* in the fleet's registry): fleet.tenants,
// fleet.points, fleet.worker.<i>.points (per-worker ingest counters),
// fleet.ingest_skew (max/mean worker load), fleet.tenant_batch_micros
// (per-tenant batch drain latency; its p99 is the per-tenant tail),
// plus fleet.checkpoint.* written by FleetCheckpointer.

#ifndef UMICRO_FLEET_ENGINE_FLEET_H_
#define UMICRO_FLEET_ENGINE_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/engine_core.h"
#include "core/horizon.h"
#include "fleet/tenant_handle.h"
#include "obs/metrics.h"
#include "parallel/bounded_queue.h"
#include "serve/query_broker.h"
#include "serve/replica.h"
#include "stream/point.h"

namespace umicro::fleet {

/// Point-in-time fleet counters.
struct FleetStats {
  /// Live tenants.
  std::size_t tenants = 0;
  /// Points accepted by Ingest() so far.
  std::uint64_t points_ingested = 0;
  /// Points drained per worker (ingest skew source).
  std::vector<std::uint64_t> worker_points;
  /// max/mean of worker_points (1.0 = perfectly even; 0 before any
  /// drain).
  double ingest_skew = 0.0;
};

/// A fleet of tenant engines behind hash-routed shared workers.
class EngineFleet {
 public:
  /// Creates the fleet for `dimensions`-dimensional streams:
  /// `config.fleet.tenants` engines (ids 0..N-1) eagerly, more lazily
  /// via EnsureTenant/Ingest; `config.fleet.workers` ingest workers.
  /// Each tenant runs config.TenantOptions() -- the shared algorithm
  /// tunables with the fleet-sized pyramidal store.
  EngineFleet(std::size_t dimensions, const core::EngineConfig& config);

  EngineFleet(const EngineFleet&) = delete;
  EngineFleet& operator=(const EngineFleet&) = delete;

  /// Drains queued work and joins the workers.
  ~EngineFleet();

  /// Routes one point to `tenant` (created on first sight). Batches of
  /// `fleet.tenant_batch` points are handed to the tenant's worker;
  /// call Flush() to push out partial batches and wait for the queues
  /// to drain. Coordinator only.
  void Ingest(std::uint64_t tenant, const stream::UncertainPoint& point);

  /// Routes every partial batch, waits until all queued batches are
  /// drained, and publishes a fresh current view to every serving
  /// tenant's replica. Coordinator only.
  void Flush();

  /// Creates `tenant` if missing; returns its slot handle (owned by the
  /// fleet). Coordinator only.
  TenantHandle& EnsureTenant(std::uint64_t tenant);

  /// True when `tenant` exists. Safe from any thread.
  bool HasTenant(std::uint64_t tenant) const;

  /// Live tenant count. Safe from any thread.
  std::size_t tenant_count() const;

  /// All tenant ids, ascending. Coordinator only.
  std::vector<std::uint64_t> TenantIds() const;

  /// Detaches `tenant` from the fleet and moves its engine out (drains
  /// first; any replica is detached). Empty handle when the tenant does
  /// not exist. Coordinator only.
  TenantHandle ReleaseTenant(std::uint64_t tenant);

  /// Moves an externally built (or previously released) tenant engine
  /// into the fleet. False when the handle is empty or the id is taken.
  /// Coordinator only.
  bool AdoptTenant(TenantHandle handle);

  /// Horizon clustering for one tenant (drains the fleet first so the
  /// answer reflects everything ingested). Coordinator only.
  std::optional<core::HorizonClustering> ClusterRecent(
      std::uint64_t tenant, double horizon,
      const core::MacroClusteringOptions& options);

  /// Points processed by `tenant` (0 for an unknown tenant). Reflects
  /// drained work only -- call Flush() first for an exact figure.
  /// Coordinator only.
  std::uint64_t TenantPoints(std::uint64_t tenant) const;

  /// Exports one tenant's durable state (drains the fleet first).
  /// Coordinator only; `tenant` must exist.
  core::EngineState ExportTenantState(std::uint64_t tenant);

  /// Restores an exported state into `tenant` (created if missing).
  /// False when the state is incompatible. Coordinator only.
  bool RestoreTenantState(std::uint64_t tenant,
                          const core::EngineState& state);

  /// Starts serving `tenant`: builds its read replica and attaches it
  /// as the tenant's snapshot sink, priming it with retained snapshots
  /// plus the live state. Idempotent -- a tenant that is already
  /// serving keeps its replica untouched. Coordinator only.
  void EnsureServing(std::uint64_t tenant);

  /// Stops serving `tenant`: detaches the sink and drops the fleet's
  /// replica reference (in-flight queries keep theirs alive).
  /// Idempotent. Coordinator only.
  void StopServing(std::uint64_t tenant);

  /// The tenant's replica; nullptr when not serving. Safe from any
  /// thread.
  std::shared_ptr<const serve::SnapshotReadReplica> Replica(
      std::uint64_t tenant) const;

  /// Tenant-id -> replica resolver for serve::QueryBroker. Safe from
  /// any broker thread; the fleet must outlive the broker.
  serve::ReplicaResolver Resolver();

  /// Current counters (also refreshes the fleet.ingest_skew gauge).
  FleetStats Stats() const;

  /// The fleet's metrics registry (fleet.* instruments).
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Stream dimensionality.
  std::size_t dimensions() const { return dimensions_; }

  /// The configuration the fleet runs.
  const core::EngineConfig& config() const { return config_; }

 private:
  /// One tenant's slot: the handle plus the state handoff machinery.
  struct TenantSlot {
    TenantHandle handle;
    /// Guards the engine core: held by the worker draining a batch and
    /// by the coordinator for queries/exports/sink changes.
    std::mutex mu;
    /// Partial ingest batch (coordinator only).
    std::vector<stream::UncertainPoint> pending;
    /// Serving replica; pointer guarded by tenants_mu_ (shared
    /// ownership keeps it alive for resolved queries).
    std::shared_ptr<serve::SnapshotReadReplica> replica;
  };

  /// One queued unit of work: a tenant batch bound for its worker.
  struct WorkItem {
    TenantSlot* slot = nullptr;
    std::vector<stream::UncertainPoint> batch;
  };

  struct Worker {
    Worker(std::size_t capacity, parallel::BackpressurePolicy policy)
        : queue(capacity, policy) {}
    parallel::BoundedQueue<WorkItem> queue;
    obs::Counter* points = nullptr;
    std::thread thread;
  };

  void WorkerLoop(Worker* worker);

  /// Worker a tenant's batches are pinned to (splitmix64 of the id, so
  /// dense tenant ids still spread evenly).
  std::size_t WorkerOf(std::uint64_t tenant) const;

  TenantSlot* FindSlot(std::uint64_t tenant) const;
  TenantSlot* EnsureSlot(std::uint64_t tenant);

  /// Hands a tenant's pending batch to its worker (coordinator only).
  void RouteBatch(TenantSlot* slot);

  /// Waits until every routed batch has been drained.
  void DrainAll();

  /// Recomputes the ingest-skew gauge from the worker counters.
  double ComputeSkew() const;

  const std::size_t dimensions_;
  const core::EngineConfig config_;

  obs::MetricsRegistry metrics_;
  obs::Gauge* tenants_gauge_;
  obs::Counter* points_counter_;
  obs::Histogram* batch_micros_;
  obs::Gauge* skew_gauge_;

  /// Guards the tenant table and every slot's replica pointer (the two
  /// things broker threads read through Resolver()).
  mutable std::mutex tenants_mu_;
  std::map<std::uint64_t, std::unique_ptr<TenantSlot>> tenants_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> in_flight_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  /// Coordinator-only ingest tally.
  std::uint64_t points_ingested_ = 0;
};

}  // namespace umicro::fleet

#endif  // UMICRO_FLEET_ENGINE_FLEET_H_
