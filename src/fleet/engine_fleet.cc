#include "fleet/engine_fleet.h"

#include <algorithm>
#include <utility>

#include "obs/scoped_timer.h"
#include "util/check.h"

namespace umicro::fleet {

EngineFleet::EngineFleet(std::size_t dimensions,
                         const core::EngineConfig& config)
    : dimensions_(dimensions),
      config_(config),
      tenants_gauge_(&metrics_.GetGauge("fleet.tenants")),
      points_counter_(&metrics_.GetCounter("fleet.points")),
      batch_micros_(&metrics_.GetHistogram("fleet.tenant_batch_micros")),
      skew_gauge_(&metrics_.GetGauge("fleet.ingest_skew")) {
  UMICRO_CHECK(dimensions_ > 0);
  const std::size_t num_workers = std::max<std::size_t>(
      1, config_.fleet.workers);
  const std::size_t capacity = std::max<std::size_t>(
      1, config_.fleet.queue_capacity);
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>(
        capacity, parallel::BackpressurePolicy::kBlock);
    worker->points = &metrics_.GetCounter(
        "fleet.worker." + std::to_string(i) + ".points");
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
  for (std::uint64_t tenant = 0; tenant < config_.fleet.tenants; ++tenant) {
    EnsureSlot(tenant);
  }
}

EngineFleet::~EngineFleet() {
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::size_t EngineFleet::WorkerOf(std::uint64_t tenant) const {
  // splitmix64: dense tenant ids (0..N-1, the common case) must still
  // spread evenly across the workers.
  std::uint64_t z = tenant + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % workers_.size());
}

EngineFleet::TenantSlot* EngineFleet::FindSlot(std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.get() : nullptr;
}

EngineFleet::TenantSlot* EngineFleet::EnsureSlot(std::uint64_t tenant) {
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second.get();
  }
  // Build the engine outside the lock (resolver callers must never wait
  // on an engine construction), then publish the slot.
  auto slot = std::make_unique<TenantSlot>();
  slot->handle =
      TenantHandle(tenant, dimensions_, config_.TenantOptions());
  slot->pending.reserve(config_.fleet.tenant_batch);
  TenantSlot* raw = slot.get();
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants_.emplace(tenant, std::move(slot));
    tenants_gauge_->Set(static_cast<double>(tenants_.size()));
  }
  return raw;
}

TenantHandle& EngineFleet::EnsureTenant(std::uint64_t tenant) {
  return EnsureSlot(tenant)->handle;
}

bool EngineFleet::HasTenant(std::uint64_t tenant) const {
  return FindSlot(tenant) != nullptr;
}

std::size_t EngineFleet::tenant_count() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  return tenants_.size();
}

std::vector<std::uint64_t> EngineFleet::TenantIds() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  std::vector<std::uint64_t> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, slot] : tenants_) ids.push_back(id);
  return ids;
}

void EngineFleet::RouteBatch(TenantSlot* slot) {
  if (slot->pending.empty()) return;
  WorkItem item;
  item.slot = slot;
  item.batch = std::move(slot->pending);
  slot->pending.clear();
  slot->pending.reserve(config_.fleet.tenant_batch);
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  Worker& worker = *workers_[WorkerOf(slot->handle.id())];
  if (!worker.queue.Push(std::move(item))) {
    // Queue closed (shutdown): the batch is dropped, undo the account.
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

void EngineFleet::WorkerLoop(Worker* worker) {
  WorkItem item;
  while (worker->queue.Pop(&item)) {
    {
      const obs::ScopedTimer timer(batch_micros_);
      std::lock_guard<std::mutex> lock(item.slot->mu);
      item.slot->handle.core().ProcessBatch(item.batch);
    }
    worker->points->Increment(item.batch.size());
    item.batch.clear();
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

void EngineFleet::DrainAll() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void EngineFleet::Ingest(std::uint64_t tenant,
                         const stream::UncertainPoint& point) {
  TenantSlot* slot = EnsureSlot(tenant);
  slot->pending.push_back(point);
  ++points_ingested_;
  points_counter_->Increment();
  if (slot->pending.size() >= config_.fleet.tenant_batch) RouteBatch(slot);
}

void EngineFleet::Flush() {
  std::vector<TenantSlot*> slots;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    slots.reserve(tenants_.size());
    for (const auto& [id, slot] : tenants_) slots.push_back(slot.get());
  }
  for (TenantSlot* slot : slots) RouteBatch(slot);
  DrainAll();
  for (TenantSlot* slot : slots) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->handle.core().Flush();
  }
  skew_gauge_->Set(ComputeSkew());
}

TenantHandle EngineFleet::ReleaseTenant(std::uint64_t tenant) {
  TenantSlot* slot = FindSlot(tenant);
  if (slot == nullptr) return TenantHandle();
  RouteBatch(slot);
  DrainAll();
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->handle.core().AttachSnapshotSink(nullptr);
  }
  std::unique_ptr<TenantSlot> owned;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    const auto it = tenants_.find(tenant);
    owned = std::move(it->second);
    tenants_.erase(it);
    tenants_gauge_->Set(static_cast<double>(tenants_.size()));
  }
  return std::move(owned->handle);
}

bool EngineFleet::AdoptTenant(TenantHandle handle) {
  if (!handle) return false;
  auto slot = std::make_unique<TenantSlot>();
  slot->pending.reserve(config_.fleet.tenant_batch);
  std::lock_guard<std::mutex> lock(tenants_mu_);
  if (tenants_.find(handle.id()) != tenants_.end()) return false;
  const std::uint64_t id = handle.id();
  slot->handle = std::move(handle);
  tenants_.emplace(id, std::move(slot));
  tenants_gauge_->Set(static_cast<double>(tenants_.size()));
  return true;
}

std::optional<core::HorizonClustering> EngineFleet::ClusterRecent(
    std::uint64_t tenant, double horizon,
    const core::MacroClusteringOptions& options) {
  TenantSlot* slot = FindSlot(tenant);
  if (slot == nullptr) return std::nullopt;
  RouteBatch(slot);
  DrainAll();
  std::lock_guard<std::mutex> lock(slot->mu);
  return slot->handle.core().ClusterRecent(horizon, options);
}

std::uint64_t EngineFleet::TenantPoints(std::uint64_t tenant) const {
  TenantSlot* slot = FindSlot(tenant);
  if (slot == nullptr) return 0;
  std::lock_guard<std::mutex> lock(slot->mu);
  return slot->handle.core().points_processed();
}

core::EngineState EngineFleet::ExportTenantState(std::uint64_t tenant) {
  TenantSlot* slot = FindSlot(tenant);
  UMICRO_CHECK(slot != nullptr);
  RouteBatch(slot);
  DrainAll();
  std::lock_guard<std::mutex> lock(slot->mu);
  return slot->handle.core().ExportState();
}

bool EngineFleet::RestoreTenantState(std::uint64_t tenant,
                                     const core::EngineState& state) {
  TenantSlot* slot = EnsureSlot(tenant);
  std::lock_guard<std::mutex> lock(slot->mu);
  return slot->handle.core().RestoreState(state);
}

void EngineFleet::EnsureServing(std::uint64_t tenant) {
  TenantSlot* slot = EnsureSlot(tenant);
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    if (slot->replica != nullptr) return;  // already serving
  }
  auto replica = std::make_shared<serve::SnapshotReadReplica>(
      config_.fleet.snapshot, config_.umicro.decay_lambda);
  {
    // Priming happens under the slot mutex, serialized against the
    // tenant's worker; AttachSnapshotSink itself is idempotent, so even
    // a re-attach of the same sink can never double-prime the rings.
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->handle.core().AttachSnapshotSink(replica.get());
  }
  // Publish the replica to broker threads only after priming completed.
  std::lock_guard<std::mutex> lock(tenants_mu_);
  slot->replica = std::move(replica);
}

void EngineFleet::StopServing(std::uint64_t tenant) {
  TenantSlot* slot = FindSlot(tenant);
  if (slot == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->handle.core().AttachSnapshotSink(nullptr);
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  slot->replica.reset();
}

std::shared_ptr<const serve::SnapshotReadReplica> EngineFleet::Replica(
    std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return nullptr;
  return it->second->replica;
}

serve::ReplicaResolver EngineFleet::Resolver() {
  return [this](std::uint64_t tenant)
             -> std::shared_ptr<const serve::SnapshotReadReplica> {
    return Replica(tenant);
  };
}

double EngineFleet::ComputeSkew() const {
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const auto& worker : workers_) {
    const std::uint64_t points = worker->points->value();
    total += points;
    peak = std::max(peak, points);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(workers_.size());
  return static_cast<double>(peak) / mean;
}

FleetStats EngineFleet::Stats() const {
  FleetStats stats;
  stats.tenants = tenant_count();
  stats.points_ingested = points_counter_->value();
  stats.worker_points.reserve(workers_.size());
  for (const auto& worker : workers_) {
    stats.worker_points.push_back(worker->points->value());
  }
  stats.ingest_skew = ComputeSkew();
  skew_gauge_->Set(stats.ingest_skew);
  return stats;
}

}  // namespace umicro::fleet
