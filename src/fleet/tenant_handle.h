// TenantHandle: one tenant's complete engine behind a compact movable
// handle -- the umappp Status shape applied to the fleet ("all algorithm
// state behind one movable handle with a driver").
//
// A handle owns exactly one core::EngineCore (the UMicro online
// component + pyramidal store + stream clock extracted from
// UMicroEngine) tagged with the tenant id. Handles move freely: the
// fleet keeps them in its tenant table, ReleaseTenant() moves one out
// (live migration, offline compaction), AdoptTenant() moves one back
// in. An empty (default-constructed or moved-from) handle owns nothing
// and converts to false.

#ifndef UMICRO_FLEET_TENANT_HANDLE_H_
#define UMICRO_FLEET_TENANT_HANDLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/config.h"
#include "core/engine_core.h"

namespace umicro::fleet {

/// Movable owner of one tenant's engine state.
class TenantHandle {
 public:
  /// Empty handle (owns no engine; operator bool is false).
  TenantHandle() = default;

  /// Creates tenant `id`'s engine for `dimensions`-dimensional streams.
  TenantHandle(std::uint64_t id, std::size_t dimensions,
               const core::EngineOptions& options)
      : id_(id),
        core_(std::make_unique<core::EngineCore>(dimensions, options)) {}

  TenantHandle(TenantHandle&&) noexcept = default;
  TenantHandle& operator=(TenantHandle&&) noexcept = default;
  TenantHandle(const TenantHandle&) = delete;
  TenantHandle& operator=(const TenantHandle&) = delete;

  /// True when the handle owns an engine.
  explicit operator bool() const { return core_ != nullptr; }

  /// Tenant id (meaningful only on a non-empty handle).
  std::uint64_t id() const { return id_; }

  /// The owned engine state. Undefined on an empty handle.
  core::EngineCore& core() { return *core_; }
  const core::EngineCore& core() const { return *core_; }

 private:
  std::uint64_t id_ = 0;
  std::unique_ptr<core::EngineCore> core_;
};

}  // namespace umicro::fleet

#endif  // UMICRO_FLEET_TENANT_HANDLE_H_
