// Prequential (test-then-train) evaluation.
//
// Purity inspects the clustering after the fact; the prequential
// protocol scores each record *before* the algorithm sees it: predict
// the record's class from the nearest current cluster's majority label,
// then hand the record to the algorithm. Stale or misplaced clusters
// immediately cost accuracy, which makes this the sharper lens on
// evolving streams (and the standard protocol in the stream-mining
// literature, e.g. MOA).

#ifndef UMICRO_EVAL_PREQUENTIAL_H_
#define UMICRO_EVAL_PREQUENTIAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "stream/clusterer.h"
#include "stream/dataset.h"

namespace umicro::eval {

/// One sample of the prequential accuracy curve.
struct PrequentialSample {
  std::size_t points_processed = 0;
  /// Accuracy over the records since the previous sample.
  double window_accuracy = 0.0;
  /// Accuracy over the whole stream so far.
  double cumulative_accuracy = 0.0;
};

/// Result of a prequential run.
struct PrequentialSeries {
  std::string algorithm;
  std::vector<PrequentialSample> samples;
  /// Final cumulative accuracy.
  double final_accuracy = 0.0;
  /// Labeled records scored (records arriving before any cluster exists
  /// or while all clusters are unlabeled are skipped).
  std::size_t scored = 0;
};

/// Runs test-then-train over `dataset`: each labeled record is first
/// classified by the majority label of the nearest current centroid,
/// then processed. Samples are emitted every `sample_interval` records.
PrequentialSeries RunPrequentialEvaluation(
    stream::StreamClusterer& clusterer, const stream::Dataset& dataset,
    std::size_t sample_interval);

}  // namespace umicro::eval

#endif  // UMICRO_EVAL_PREQUENTIAL_H_
