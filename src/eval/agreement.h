// Clustering-agreement metrics: Adjusted Rand Index and Normalized
// Mutual Information.
//
// The paper evaluates with cluster purity, which rewards fragmenting the
// stream into many small clusters. ARI and NMI penalize both mixing and
// fragmentation and are the standard complements in the clustering
// literature. Both are computed from the cluster-by-class contingency
// table, which for a stream clusterer is exactly the per-cluster label
// histogram the algorithms already maintain (weighted counts are
// supported; decay weights simply generalize the combinatorics'
// n-choose-2 to w^2/2 in the limit -- we use the standard integer
// formulas on the weights, exact whenever weights are counts).

#ifndef UMICRO_EVAL_AGREEMENT_H_
#define UMICRO_EVAL_AGREEMENT_H_

#include <vector>

#include "stream/clusterer.h"

namespace umicro::eval {

/// Adjusted Rand Index between the clustering and the ground truth
/// implied by `histograms`. 1 = perfect agreement, ~0 = random, can be
/// negative. Returns 0 when fewer than 2 units of mass are present.
double AdjustedRandIndex(
    const std::vector<stream::LabelHistogram>& histograms);

/// Normalized Mutual Information (arithmetic-mean normalization,
/// natural log). In [0, 1]; 1 = perfect agreement. Returns 0 when the
/// table is degenerate (single cluster or single class carries all
/// mass).
double NormalizedMutualInformation(
    const std::vector<stream::LabelHistogram>& histograms);

}  // namespace umicro::eval

#endif  // UMICRO_EVAL_AGREEMENT_H_
