#include "eval/purity.h"

namespace umicro::eval {

double ClusterPurity(const std::vector<stream::LabelHistogram>& histograms) {
  double sum = 0.0;
  std::size_t live = 0;
  for (const auto& histogram : histograms) {
    if (stream::HistogramWeight(histogram) <= 0.0) continue;
    sum += stream::DominantLabelFraction(histogram);
    ++live;
  }
  if (live == 0) return 0.0;
  return sum / static_cast<double>(live);
}

double WeightedClusterPurity(
    const std::vector<stream::LabelHistogram>& histograms) {
  double dominant_mass = 0.0;
  double total_mass = 0.0;
  for (const auto& histogram : histograms) {
    const double weight = stream::HistogramWeight(histogram);
    if (weight <= 0.0) continue;
    dominant_mass += weight * stream::DominantLabelFraction(histogram);
    total_mass += weight;
  }
  if (total_mass <= 0.0) return 0.0;
  return dominant_mass / total_mass;
}

std::size_t NonEmptyClusterCount(
    const std::vector<stream::LabelHistogram>& histograms) {
  std::size_t live = 0;
  for (const auto& histogram : histograms) {
    if (stream::HistogramWeight(histogram) > 0.0) ++live;
  }
  return live;
}

}  // namespace umicro::eval
