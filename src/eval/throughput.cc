#include "eval/throughput.h"

#include <algorithm>

#include "util/check.h"

namespace umicro::eval {

ThroughputMeter::ThroughputMeter(double window_seconds)
    : window_seconds_(window_seconds) {
  UMICRO_CHECK(window_seconds > 0.0);
}

void ThroughputMeter::EvictOld(double now) {
  while (!events_.empty() && events_.front().time < now - window_seconds_) {
    window_points_ -= events_.front().count;
    events_.pop_front();
  }
}

void ThroughputMeter::Record(double now, std::size_t count) {
  UMICRO_CHECK(now >= latest_time_);
  latest_time_ = now;
  events_.push_back({now, count});
  window_points_ += count;
  total_points_ += count;
  EvictOld(now);
}

double ThroughputMeter::Rate() const {
  if (events_.empty()) return 0.0;
  // Use the actual covered span, capped at the window length, so early
  // readings (before a full window has elapsed) are not underestimated.
  const double span = latest_time_ - events_.front().time;
  const double effective = span > 0.0 ? std::min(span, window_seconds_)
                                      : window_seconds_;
  if (span <= 0.0) {
    // All events at one instant: fall back to the full window convention.
    return static_cast<double>(window_points_) / window_seconds_;
  }
  return static_cast<double>(window_points_) / effective;
}

}  // namespace umicro::eval
