#include "eval/agreement.h"

#include <cmath>
#include <map>

namespace umicro::eval {

namespace {

/// "n choose 2" generalized to real-valued mass.
double Choose2(double n) { return n * (n - 1.0) / 2.0; }

/// Row sums (per cluster), column sums (per class), and total mass.
struct Marginals {
  std::vector<double> cluster_mass;
  std::map<int, double> class_mass;
  double total = 0.0;
};

Marginals ComputeMarginals(
    const std::vector<stream::LabelHistogram>& histograms) {
  Marginals m;
  m.cluster_mass.reserve(histograms.size());
  for (const auto& histogram : histograms) {
    double row = 0.0;
    for (const auto& [label, weight] : histogram) {
      row += weight;
      m.class_mass[label] += weight;
    }
    m.cluster_mass.push_back(row);
    m.total += row;
  }
  return m;
}

}  // namespace

double AdjustedRandIndex(
    const std::vector<stream::LabelHistogram>& histograms) {
  const Marginals m = ComputeMarginals(histograms);
  if (m.total < 2.0) return 0.0;

  double sum_cells = 0.0;
  for (const auto& histogram : histograms) {
    for (const auto& [label, weight] : histogram) {
      sum_cells += Choose2(weight);
    }
  }
  double sum_rows = 0.0;
  for (double row : m.cluster_mass) sum_rows += Choose2(row);
  double sum_cols = 0.0;
  for (const auto& [label, mass] : m.class_mass) sum_cols += Choose2(mass);

  const double expected = sum_rows * sum_cols / Choose2(m.total);
  const double maximum = 0.5 * (sum_rows + sum_cols);
  if (maximum - expected == 0.0) {
    // Degenerate table (e.g. one cluster == one class): perfect
    // agreement by convention.
    return 1.0;
  }
  return (sum_cells - expected) / (maximum - expected);
}

double NormalizedMutualInformation(
    const std::vector<stream::LabelHistogram>& histograms) {
  const Marginals m = ComputeMarginals(histograms);
  if (m.total <= 0.0) return 0.0;

  double mutual_information = 0.0;
  for (std::size_t c = 0; c < histograms.size(); ++c) {
    for (const auto& [label, weight] : histograms[c]) {
      if (weight <= 0.0) continue;
      const double p_joint = weight / m.total;
      const double p_cluster = m.cluster_mass[c] / m.total;
      const double p_class = m.class_mass.at(label) / m.total;
      mutual_information +=
          p_joint * std::log(p_joint / (p_cluster * p_class));
    }
  }

  double h_cluster = 0.0;
  for (double row : m.cluster_mass) {
    if (row <= 0.0) continue;
    const double p = row / m.total;
    h_cluster -= p * std::log(p);
  }
  double h_class = 0.0;
  for (const auto& [label, mass] : m.class_mass) {
    if (mass <= 0.0) continue;
    const double p = mass / m.total;
    h_class -= p * std::log(p);
  }

  const double normalizer = 0.5 * (h_cluster + h_class);
  if (normalizer <= 0.0) return 0.0;
  // Clamp tiny floating-point overshoot.
  const double nmi = mutual_information / normalizer;
  if (nmi < 0.0) return 0.0;
  if (nmi > 1.0) return 1.0;
  return nmi;
}

}  // namespace umicro::eval
