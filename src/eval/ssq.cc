#include "eval/ssq.h"

#include <limits>

#include "util/check.h"
#include "util/math_utils.h"

namespace umicro::eval {

double SumOfSquares(const stream::Dataset& dataset, std::size_t begin,
                    std::size_t end,
                    const std::vector<std::vector<double>>& centroids) {
  UMICRO_CHECK(!centroids.empty());
  UMICRO_CHECK(begin <= end && end <= dataset.size());
  double total = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& centroid : centroids) {
      best = std::min(best,
                      util::SquaredDistance(dataset[i].values, centroid));
    }
    total += best;
  }
  return total;
}

double SumOfSquares(const stream::Dataset& dataset,
                    const std::vector<std::vector<double>>& centroids) {
  return SumOfSquares(dataset, 0, dataset.size(), centroids);
}

}  // namespace umicro::eval
