// Trailing-window throughput measurement.
//
// The paper reports "the average number of points processed per second in
// the last 2 seconds" at points of the stream's progression; this meter
// reproduces that measurement.

#ifndef UMICRO_EVAL_THROUGHPUT_H_
#define UMICRO_EVAL_THROUGHPUT_H_

#include <cstddef>
#include <deque>

namespace umicro::eval {

/// Sliding-window points-per-second meter.
///
/// The caller feeds (wall-time, batch-size) observations; `Rate` reports
/// the processing rate over the last `window_seconds`.
class ThroughputMeter {
 public:
  /// `window_seconds` is the trailing window length (paper: 2 s).
  explicit ThroughputMeter(double window_seconds = 2.0);

  /// Records that `count` points finished processing at wall time `now`
  /// (seconds, monotonic). Times must be non-decreasing.
  void Record(double now, std::size_t count);

  /// Points per second over the trailing window ending at the latest
  /// recorded time. 0 before any record.
  double Rate() const;

  /// Total number of points recorded.
  std::size_t total_points() const { return total_points_; }

 private:
  struct Event {
    double time;
    std::size_t count;
  };

  void EvictOld(double now);

  double window_seconds_;
  std::deque<Event> events_;
  std::size_t window_points_ = 0;
  std::size_t total_points_ = 0;
  double latest_time_ = 0.0;
};

}  // namespace umicro::eval

#endif  // UMICRO_EVAL_THROUGHPUT_H_
