#include "eval/classification.h"

#include <limits>

#include "util/check.h"
#include "util/math_utils.h"

namespace umicro::eval {

std::vector<int> MajorityLabels(
    const std::vector<stream::LabelHistogram>& histograms) {
  std::vector<int> labels;
  labels.reserve(histograms.size());
  for (const auto& histogram : histograms) {
    int best_label = stream::kUnlabeled;
    double best_weight = 0.0;
    for (const auto& [label, weight] : histogram) {
      if (weight > best_weight) {
        best_weight = weight;
        best_label = label;
      }
    }
    labels.push_back(best_label);
  }
  return labels;
}

ClassificationReport EvaluateNearestCentroid(
    const stream::Dataset& dataset,
    const std::vector<std::vector<double>>& centroids,
    const std::vector<int>& cluster_labels) {
  UMICRO_CHECK(centroids.size() == cluster_labels.size());
  UMICRO_CHECK(!centroids.empty());

  ClassificationReport report;
  std::size_t correct = 0;
  for (const auto& point : dataset.points()) {
    if (point.label == stream::kUnlabeled) continue;
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      const double d2 = util::SquaredDistance(point.values, centroids[c]);
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    const int predicted = cluster_labels[best_c];
    ++report.evaluated;
    ++report.confusion[{point.label, predicted}];
    ++report.per_class[point.label].support;
    if (predicted != stream::kUnlabeled) {
      ++report.per_class[predicted].predicted;
    }
    if (predicted == point.label) {
      ++correct;
      ++report.per_class[point.label].true_positive;
    }
  }
  report.accuracy = report.evaluated == 0
                        ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(report.evaluated);
  return report;
}

ClassificationReport EvaluateClusterer(
    const stream::StreamClusterer& clusterer,
    const stream::Dataset& dataset) {
  const auto centroids = clusterer.ClusterCentroids();
  const auto labels = MajorityLabels(clusterer.ClusterLabelHistograms());
  UMICRO_CHECK_MSG(centroids.size() == labels.size(),
                   "clusterer returned %zu centroids but %zu histograms",
                   centroids.size(), labels.size());
  return EvaluateNearestCentroid(dataset, centroids, labels);
}

}  // namespace umicro::eval
