// Cluster-purity measurement (the paper's accuracy metric).
//
// Section III: "We computed the percentage presence of the dominant class
// label in the different clusters and averaged them over all clusters. We
// refer to this measure as cluster purity."

#ifndef UMICRO_EVAL_PURITY_H_
#define UMICRO_EVAL_PURITY_H_

#include <vector>

#include "stream/clusterer.h"

namespace umicro::eval {

/// The paper's cluster purity: the dominant-label fraction of each
/// non-empty cluster, averaged *unweighted* over clusters. Returns 0 when
/// every histogram is empty.
double ClusterPurity(const std::vector<stream::LabelHistogram>& histograms);

/// Mass-weighted variant: clusters contribute proportionally to the
/// weight they hold (equivalently, the fraction of all points that sit
/// under their cluster's dominant label). Less sensitive to tiny
/// fragment clusters; reported alongside the paper metric.
double WeightedClusterPurity(
    const std::vector<stream::LabelHistogram>& histograms);

/// Number of histograms carrying non-zero mass.
std::size_t NonEmptyClusterCount(
    const std::vector<stream::LabelHistogram>& histograms);

}  // namespace umicro::eval

#endif  // UMICRO_EVAL_PURITY_H_
