// Experiment harness: drives a stream clusterer over a labeled dataset
// and records the time series the paper's figures plot.

#ifndef UMICRO_EVAL_EXPERIMENT_H_
#define UMICRO_EVAL_EXPERIMENT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "stream/clusterer.h"
#include "stream/dataset.h"

namespace umicro::eval {

/// Optional per-point hook of the experiment drivers, called with the
/// number of points processed so far (1-based, after each Process).
/// Used to tick periodic side effects -- e.g. MetricsExporter exports --
/// at stream-position cadence. An empty function costs one branch per
/// point.
using ProgressFn = std::function<void(std::size_t points_processed)>;

/// One sample of a purity-vs-progression run.
struct PuritySample {
  std::size_t points_processed = 0;
  /// The paper's metric: dominant-label fraction averaged over clusters.
  double purity = 0.0;
  /// Mass-weighted purity (auxiliary).
  double weighted_purity = 0.0;
  /// Live (non-empty) clusters at the sample instant.
  std::size_t live_clusters = 0;
};

/// Result of a purity experiment.
struct PuritySeries {
  std::string algorithm;
  std::vector<PuritySample> samples;

  /// Mean of the paper-metric purity over all samples (the quantity the
  /// error-level figures 5-7 plot per eta).
  double MeanPurity() const;
};

/// Streams `dataset` through `clusterer`, sampling purity every
/// `sample_interval` points (and once at the end if it does not divide
/// the stream length).
///
/// `batch_size` > 1 drives the clusterer through ProcessBatch in runs of
/// up to that many points (capped at every sample boundary, so the
/// sampled series is identical to the point-by-point run); the progress
/// hook then fires once per batch with the cumulative count.
PuritySeries RunPurityExperiment(stream::StreamClusterer& clusterer,
                                 const stream::Dataset& dataset,
                                 std::size_t sample_interval,
                                 const ProgressFn& progress = {},
                                 std::size_t batch_size = 1);

/// One sample of a throughput-vs-progression run.
struct ThroughputSample {
  std::size_t points_processed = 0;
  /// Points per second over the trailing measurement window.
  double points_per_second = 0.0;
};

/// Result of a throughput experiment.
struct ThroughputSeries {
  std::string algorithm;
  std::vector<ThroughputSample> samples;
  /// Whole-run average rate.
  double overall_points_per_second = 0.0;
};

/// Streams `dataset` through `clusterer` as fast as possible, sampling
/// the trailing-window rate (paper: 2 s window) every `sample_interval`
/// points. `batch_size` as in RunPurityExperiment.
ThroughputSeries RunThroughputExperiment(stream::StreamClusterer& clusterer,
                                         const stream::Dataset& dataset,
                                         std::size_t sample_interval,
                                         double window_seconds = 2.0,
                                         const ProgressFn& progress = {},
                                         std::size_t batch_size = 1);

}  // namespace umicro::eval

#endif  // UMICRO_EVAL_EXPERIMENT_H_
