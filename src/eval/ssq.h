// Sum-of-squared-distances quality metric.

#ifndef UMICRO_EVAL_SSQ_H_
#define UMICRO_EVAL_SSQ_H_

#include <cstddef>
#include <vector>

#include "stream/dataset.h"

namespace umicro::eval {

/// SSQ of dataset points in [begin, end) against the closest of the given
/// centroids. The classic stream-clustering quality metric (used by the
/// CluStream and STREAM papers); lower is better.
double SumOfSquares(const stream::Dataset& dataset, std::size_t begin,
                    std::size_t end,
                    const std::vector<std::vector<double>>& centroids);

/// SSQ over the whole dataset.
double SumOfSquares(const stream::Dataset& dataset,
                    const std::vector<std::vector<double>>& centroids);

}  // namespace umicro::eval

#endif  // UMICRO_EVAL_SSQ_H_
