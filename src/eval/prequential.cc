#include "eval/prequential.h"

#include <limits>

#include "eval/classification.h"
#include "util/check.h"
#include "util/math_utils.h"

namespace umicro::eval {

PrequentialSeries RunPrequentialEvaluation(
    stream::StreamClusterer& clusterer, const stream::Dataset& dataset,
    std::size_t sample_interval) {
  UMICRO_CHECK(sample_interval > 0);
  PrequentialSeries series;
  series.algorithm = clusterer.name();

  std::size_t correct_total = 0;
  std::size_t scored_total = 0;
  std::size_t correct_window = 0;
  std::size_t scored_window = 0;

  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const stream::UncertainPoint& point = dataset[i];

    // Test: classify against the *current* clustering.
    if (point.label != stream::kUnlabeled) {
      const auto centroids = clusterer.ClusterCentroids();
      if (!centroids.empty()) {
        const auto labels =
            MajorityLabels(clusterer.ClusterLabelHistograms());
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < centroids.size(); ++c) {
          const double d2 =
              util::SquaredDistance(point.values, centroids[c]);
          if (d2 < best) {
            best = d2;
            best_c = c;
          }
        }
        if (labels[best_c] != stream::kUnlabeled) {
          ++scored_total;
          ++scored_window;
          if (labels[best_c] == point.label) {
            ++correct_total;
            ++correct_window;
          }
        }
      }
    }

    // Train.
    clusterer.Process(point);

    if ((i + 1) % sample_interval == 0 || i + 1 == dataset.size()) {
      PrequentialSample sample;
      sample.points_processed = i + 1;
      sample.window_accuracy =
          scored_window == 0 ? 0.0
                             : static_cast<double>(correct_window) /
                                   static_cast<double>(scored_window);
      sample.cumulative_accuracy =
          scored_total == 0 ? 0.0
                            : static_cast<double>(correct_total) /
                                  static_cast<double>(scored_total);
      series.samples.push_back(sample);
      correct_window = 0;
      scored_window = 0;
    }
  }

  series.scored = scored_total;
  series.final_accuracy =
      scored_total == 0 ? 0.0
                        : static_cast<double>(correct_total) /
                              static_cast<double>(scored_total);
  return series;
}

}  // namespace umicro::eval
