#include "eval/experiment.h"

#include <algorithm>
#include <span>

#include "eval/purity.h"
#include "eval/throughput.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace umicro::eval {

double PuritySeries::MeanPurity() const {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& sample : samples) sum += sample.purity;
  return sum / static_cast<double>(samples.size());
}

namespace {

/// Largest run starting at `offset` that stays within `batch_size` and
/// does not cross the next multiple of `sample_interval` (so samples
/// land at exactly the same stream positions as a point-by-point run).
std::size_t NextChunk(std::size_t offset, std::size_t total,
                      std::size_t sample_interval, std::size_t batch_size) {
  std::size_t take = std::min(batch_size, total - offset);
  const std::size_t to_boundary =
      sample_interval - (offset % sample_interval);
  return std::min(take, to_boundary);
}

}  // namespace

PuritySeries RunPurityExperiment(stream::StreamClusterer& clusterer,
                                 const stream::Dataset& dataset,
                                 std::size_t sample_interval,
                                 const ProgressFn& progress,
                                 std::size_t batch_size) {
  UMICRO_CHECK(sample_interval > 0);
  UMICRO_CHECK(batch_size > 0);
  PuritySeries series;
  series.algorithm = clusterer.name();

  auto take_sample = [&](std::size_t processed) {
    const auto histograms = clusterer.ClusterLabelHistograms();
    PuritySample sample;
    sample.points_processed = processed;
    sample.purity = ClusterPurity(histograms);
    sample.weighted_purity = WeightedClusterPurity(histograms);
    sample.live_clusters = NonEmptyClusterCount(histograms);
    series.samples.push_back(sample);
  };

  if (batch_size == 1) {
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      clusterer.Process(dataset[i]);
      if (progress) progress(i + 1);
      if ((i + 1) % sample_interval == 0) take_sample(i + 1);
    }
  } else {
    const std::span<const stream::UncertainPoint> all(dataset.points());
    std::size_t offset = 0;
    while (offset < all.size()) {
      const std::size_t take =
          NextChunk(offset, all.size(), sample_interval, batch_size);
      clusterer.ProcessBatch(all.subspan(offset, take));
      offset += take;
      if (progress) progress(offset);
      if (offset % sample_interval == 0) take_sample(offset);
    }
  }
  if (dataset.size() % sample_interval != 0) take_sample(dataset.size());
  return series;
}

ThroughputSeries RunThroughputExperiment(stream::StreamClusterer& clusterer,
                                         const stream::Dataset& dataset,
                                         std::size_t sample_interval,
                                         double window_seconds,
                                         const ProgressFn& progress,
                                         std::size_t batch_size) {
  UMICRO_CHECK(sample_interval > 0);
  UMICRO_CHECK(batch_size > 0);
  ThroughputSeries series;
  series.algorithm = clusterer.name();

  ThroughputMeter meter(window_seconds);
  util::Stopwatch stopwatch;
  if (batch_size == 1) {
    // Record in small batches so the trailing window has resolution
    // without paying a clock read per point.
    const std::size_t batch = std::max<std::size_t>(1, sample_interval / 16);
    std::size_t pending = 0;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      clusterer.Process(dataset[i]);
      if (progress) progress(i + 1);
      ++pending;
      if (pending == batch || i + 1 == dataset.size()) {
        meter.Record(stopwatch.ElapsedSeconds(), pending);
        pending = 0;
      }
      if ((i + 1) % sample_interval == 0 || i + 1 == dataset.size()) {
        ThroughputSample sample;
        sample.points_processed = i + 1;
        sample.points_per_second = meter.Rate();
        series.samples.push_back(sample);
      }
    }
  } else {
    const std::span<const stream::UncertainPoint> all(dataset.points());
    std::size_t offset = 0;
    while (offset < all.size()) {
      const std::size_t take =
          NextChunk(offset, all.size(), sample_interval, batch_size);
      clusterer.ProcessBatch(all.subspan(offset, take));
      offset += take;
      if (progress) progress(offset);
      meter.Record(stopwatch.ElapsedSeconds(), take);
      if (offset % sample_interval == 0 || offset == all.size()) {
        ThroughputSample sample;
        sample.points_processed = offset;
        sample.points_per_second = meter.Rate();
        series.samples.push_back(sample);
      }
    }
  }
  const double elapsed = stopwatch.ElapsedSeconds();
  series.overall_points_per_second =
      elapsed > 0.0 ? static_cast<double>(dataset.size()) / elapsed : 0.0;
  return series;
}

}  // namespace umicro::eval
