// Cluster-to-class evaluation: treat a clustering as a classifier.
//
// The paper evaluates clusterings through class labels (purity); this
// module takes the same idea one step further, the standard methodology
// in the stream-mining literature: map every cluster to its majority
// ground-truth label, classify points by their nearest cluster centroid,
// and report accuracy / per-class precision-recall / the confusion
// matrix. Useful for the intrusion scenario, where per-attack-class
// recall matters more than aggregate purity.

#ifndef UMICRO_EVAL_CLASSIFICATION_H_
#define UMICRO_EVAL_CLASSIFICATION_H_

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "stream/clusterer.h"
#include "stream/dataset.h"

namespace umicro::eval {

/// Majority ground-truth label of each cluster; stream::kUnlabeled for
/// clusters with empty histograms.
std::vector<int> MajorityLabels(
    const std::vector<stream::LabelHistogram>& histograms);

/// Per-class classification quality.
struct ClassMetrics {
  std::size_t support = 0;       ///< points with this true label
  std::size_t predicted = 0;     ///< points predicted as this label
  std::size_t true_positive = 0;

  /// Precision (0 when nothing was predicted as this class).
  double Precision() const {
    return predicted == 0
               ? 0.0
               : static_cast<double>(true_positive) /
                     static_cast<double>(predicted);
  }
  /// Recall (0 when the class has no support).
  double Recall() const {
    return support == 0 ? 0.0
                        : static_cast<double>(true_positive) /
                              static_cast<double>(support);
  }
  /// F1 score.
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Full evaluation result.
struct ClassificationReport {
  /// Labeled points evaluated.
  std::size_t evaluated = 0;
  /// Overall fraction classified correctly.
  double accuracy = 0.0;
  /// Per-true-class metrics.
  std::map<int, ClassMetrics> per_class;
  /// confusion[{true_label, predicted_label}] = count.
  std::map<std::pair<int, int>, std::size_t> confusion;
};

/// Classifies each labeled point of `dataset` by the majority label of
/// its nearest centroid and scores the result. `centroids` and
/// `cluster_labels` must be parallel; clusters labeled kUnlabeled still
/// attract points (counted as misclassifications unless the point is
/// also unlabeled, in which case it is skipped). Unlabeled points are
/// skipped entirely.
ClassificationReport EvaluateNearestCentroid(
    const stream::Dataset& dataset,
    const std::vector<std::vector<double>>& centroids,
    const std::vector<int>& cluster_labels);

/// Convenience: evaluates a live clusterer against a labeled dataset.
ClassificationReport EvaluateClusterer(
    const stream::StreamClusterer& clusterer,
    const stream::Dataset& dataset);

}  // namespace umicro::eval

#endif  // UMICRO_EVAL_CLASSIFICATION_H_
