// Tests for the crash-safe checkpoint manager and recovery helper.

#include "resilience/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "io/state_io.h"
#include "stream/dataset.h"
#include "util/failpoints.h"
#include "util/random.h"

namespace umicro::resilience {
namespace {

stream::Dataset RandomStream(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  stream::Dataset dataset(3);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.NextBounded(3));
    dataset.Add(stream::UncertainPoint(
        {cls * 5.0 + rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5),
         rng.Gaussian(0.0, 0.5)},
        {rng.Uniform(0.0, 0.3), rng.Uniform(0.0, 0.3),
         rng.Uniform(0.0, 0.3)},
        static_cast<double>(i), cls));
  }
  return dataset;
}

std::unique_ptr<core::ClusteringEngine> MakeEngine(std::size_t dims = 3) {
  core::EngineOptions options;
  options.umicro.num_micro_clusters = 20;
  options.snapshot.snapshot_every = 256;
  return std::make_unique<core::UMicroEngine>(dims, options);
}

/// A fresh, empty checkpoint directory unique to `name`.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  for (const std::string& path : ListCheckpointFiles(dir)) {
    std::remove(path.c_str());
  }
  return dir;
}

class CheckpointTest : public testing::Test {
 protected:
  void TearDown() override {
    util::FailpointRegistry::Instance().DisarmAll();
  }
};

TEST_F(CheckpointTest, RecoverFromMissingDirIsFresh) {
  const RecoveredEngine recovered = RecoverOrCreateEngine(
      testing::TempDir() + "/checkpoint_no_such_dir", [] {
        return MakeEngine();
      });
  ASSERT_NE(recovered.engine, nullptr);
  EXPECT_FALSE(recovered.recovered);
  EXPECT_EQ(recovered.resume_from, 0u);
  EXPECT_EQ(recovered.corrupt_skipped, 0u);
  EXPECT_EQ(recovered.engine->points_processed(), 0u);
}

TEST_F(CheckpointTest, RoundTripRestoresTheEngine) {
  const std::string dir = FreshDir("checkpoint_roundtrip");
  const auto dataset = RandomStream(1000, 1);
  auto engine = MakeEngine();
  for (const auto& point : dataset.points()) engine->Process(point);

  CheckpointManager manager(dir, CheckpointPolicy{});
  ASSERT_TRUE(manager.CheckpointNow(*engine));
  EXPECT_EQ(manager.checkpoints_written(), 1u);
  EXPECT_FALSE(manager.last_path().empty());

  const RecoveredEngine recovered =
      RecoverOrCreateEngine(dir, [] { return MakeEngine(); });
  ASSERT_TRUE(recovered.recovered);
  EXPECT_EQ(recovered.resume_from, 1000u);
  EXPECT_EQ(recovered.checkpoint_path, manager.last_path());
  // Bit-identical durable state.
  EXPECT_EQ(io::EngineStateToString(recovered.engine->ExportEngineState()),
            io::EngineStateToString(engine->ExportEngineState()));
}

TEST_F(CheckpointTest, MaybeCheckpointHonorsPointCadence) {
  const std::string dir = FreshDir("checkpoint_cadence");
  const auto dataset = RandomStream(250, 2);
  auto engine = MakeEngine();
  CheckpointPolicy policy;
  policy.every_points = 100;
  CheckpointManager manager(dir, policy);

  for (std::size_t i = 0; i < dataset.size(); ++i) {
    engine->Process(dataset[i]);
    manager.MaybeCheckpoint(*engine);
  }
  // Due at 100 and 200 processed points; not again before 300.
  EXPECT_EQ(manager.checkpoints_written(), 2u);
}

TEST_F(CheckpointTest, RecoverySkipsCorruptNewestCheckpoint) {
  const std::string dir = FreshDir("checkpoint_corrupt");
  const auto dataset = RandomStream(600, 3);
  auto engine = MakeEngine();
  CheckpointManager manager(dir, CheckpointPolicy{});
  for (std::size_t i = 0; i < 300; ++i) engine->Process(dataset[i]);
  ASSERT_TRUE(manager.CheckpointNow(*engine));
  const std::string good_path = manager.last_path();
  for (std::size_t i = 300; i < 600; ++i) engine->Process(dataset[i]);
  ASSERT_TRUE(manager.CheckpointNow(*engine));

  {
    // Flip a byte in the body of the newest checkpoint: the checksum in
    // the header must catch it.
    std::fstream file(manager.last_path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(64);
    file.put('#');
  }

  const RecoveredEngine recovered =
      RecoverOrCreateEngine(dir, [] { return MakeEngine(); });
  ASSERT_TRUE(recovered.recovered);
  EXPECT_EQ(recovered.corrupt_skipped, 1u);
  EXPECT_EQ(recovered.checkpoint_path, good_path);
  EXPECT_EQ(recovered.resume_from, 300u);
}

TEST_F(CheckpointTest, RecoverySkipsIncompatibleCheckpoint) {
  const std::string dir = FreshDir("checkpoint_incompatible");
  const auto dataset = RandomStream(100, 4);
  auto engine = MakeEngine(3);
  for (const auto& point : dataset.points()) engine->Process(point);
  CheckpointManager manager(dir, CheckpointPolicy{});
  ASSERT_TRUE(manager.CheckpointNow(*engine));

  // The factory builds a 2-d engine; the 3-d checkpoint parses fine but
  // must be refused and counted, leaving a fresh engine.
  const RecoveredEngine recovered =
      RecoverOrCreateEngine(dir, [] { return MakeEngine(2); });
  ASSERT_NE(recovered.engine, nullptr);
  EXPECT_FALSE(recovered.recovered);
  EXPECT_EQ(recovered.corrupt_skipped, 1u);
  EXPECT_EQ(recovered.engine->points_processed(), 0u);
}

TEST_F(CheckpointTest, RecoveryRefusesMismatchedPyramidGeometry) {
  const std::string dir = FreshDir("checkpoint_pyramid_mismatch");
  const auto dataset = RandomStream(1000, 9);
  auto engine = MakeEngine();  // pyramid defaults: alpha=2, l=3
  for (const auto& point : dataset.points()) engine->Process(point);
  CheckpointManager manager(dir, CheckpointPolicy{});
  ASSERT_TRUE(manager.CheckpointNow(*engine));

  // Same kind and dimensions, different pyramid precision: restoring
  // would silently truncate/overfill the order rings, so the store's
  // geometry check must refuse the state and recovery must fall back to
  // a fresh engine instead of a half-restored one.
  const RecoveredEngine recovered = RecoverOrCreateEngine(dir, [] {
    core::EngineOptions options;
    options.umicro.num_micro_clusters = 20;
    options.snapshot.snapshot_every = 256;
    options.snapshot.pyramid_l = 2;
    return std::make_unique<core::UMicroEngine>(3, options);
  });
  ASSERT_NE(recovered.engine, nullptr);
  EXPECT_FALSE(recovered.recovered);
  EXPECT_EQ(recovered.corrupt_skipped, 1u);
  EXPECT_EQ(recovered.engine->points_processed(), 0u);
}

TEST_F(CheckpointTest, SequenceContinuesAcrossManagers) {
  const std::string dir = FreshDir("checkpoint_sequence");
  const auto dataset = RandomStream(100, 5);
  auto engine = MakeEngine();
  for (const auto& point : dataset.points()) engine->Process(point);

  {
    CheckpointManager first(dir, CheckpointPolicy{});
    ASSERT_TRUE(first.CheckpointNow(*engine));
    ASSERT_TRUE(first.CheckpointNow(*engine));
  }
  CheckpointManager second(dir, CheckpointPolicy{});
  ASSERT_TRUE(second.CheckpointNow(*engine));
  // The second manager must not reuse sequence numbers 1/2, or "newest
  // wins" would pick a stale file after a restart.
  EXPECT_NE(second.last_path().find("checkpoint-00000003"),
            std::string::npos);
  EXPECT_EQ(ListCheckpointFiles(dir).size(), 3u);
  EXPECT_EQ(ListCheckpointFiles(dir).front(), second.last_path());
}

TEST_F(CheckpointTest, WriteFailpointIsCountedNotFatal) {
  const std::string dir = FreshDir("checkpoint_write_fail");
  const auto dataset = RandomStream(100, 6);
  auto engine = MakeEngine();
  for (const auto& point : dataset.points()) engine->Process(point);
  CheckpointManager manager(dir, CheckpointPolicy{});

  util::FailpointRegistry::Instance().Arm("checkpoint.write_fail",
                                          {.limit = 1});
  EXPECT_FALSE(manager.CheckpointNow(*engine));
  EXPECT_EQ(manager.write_failures(), 1u);
  EXPECT_EQ(manager.checkpoints_written(), 0u);
  EXPECT_TRUE(manager.last_path().empty());
  EXPECT_TRUE(ListCheckpointFiles(dir).empty());

  // The failpoint's budget is spent; the next attempt succeeds.
  EXPECT_TRUE(manager.CheckpointNow(*engine));
  EXPECT_EQ(manager.checkpoints_written(), 1u);
}

TEST_F(CheckpointTest, PruneKeepsOnlyTheNewest) {
  const std::string dir = FreshDir("checkpoint_prune");
  const auto dataset = RandomStream(100, 7);
  auto engine = MakeEngine();
  for (const auto& point : dataset.points()) engine->Process(point);

  CheckpointPolicy policy;
  policy.keep_last = 2;
  CheckpointManager manager(dir, policy);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(manager.CheckpointNow(*engine));

  const auto remaining = ListCheckpointFiles(dir);
  ASSERT_EQ(remaining.size(), 2u);
  EXPECT_EQ(remaining.front(), manager.last_path());
}

}  // namespace
}  // namespace umicro::resilience
