// Distributed merge-tree tests (src/dist): protocol payload parsing
// under hostile input, and in-process multi-leaf topologies over real
// loopback sockets.
//
// The load-bearing assertions:
//   * bit-identity -- two leaves shipping round-robin substreams yield a
//     merged view byte-identical (canonical "uclusters 1" dump) to the
//     in-process sharded engine over the same stream;
//   * exactly-once application -- re-sent and replayed deltas are acked
//     but change nothing;
//   * crash recovery -- a leaf killed mid-stream and restarted from its
//     last checkpoint converges to the same merged state;
//   * straggler handling -- a mute aggregator triggers timeout-bounded
//     re-sends, not a hang;
//   * query parity -- answers over the remote line protocol equal the
//     in-process broker's, byte for byte.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dist/aggregator.h"
#include "dist/leaf.h"
#include "dist/protocol.h"
#include "io/state_io.h"
#include "net/socket.h"
#include "net/socket_stream.h"
#include "obs/metrics.h"
#include "parallel/sharded_umicro.h"
#include "serve/server.h"
#include "stream/dataset.h"
#include "synth/workloads.h"

namespace umicro::dist {
namespace {

TEST(DistProtocolTest, HelloRoundTrip) {
  HelloMessage hello;
  hello.leaf_id = 7;
  hello.dimensions = 20;
  const auto parsed = ParseHello(EncodeHello(hello));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->leaf_id, 7u);
  EXPECT_EQ(parsed->dimensions, 20u);
}

TEST(DistProtocolTest, DeltaRoundTrip) {
  DeltaMessage delta;
  delta.leaf_id = 3;
  delta.seq = 12;
  delta.points = 4096;
  delta.state_text = "ucheckpoint 2 fake body\nwith lines\n";
  const auto parsed = ParseDelta(EncodeDelta(delta));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->leaf_id, 3u);
  EXPECT_EQ(parsed->seq, 12u);
  EXPECT_EQ(parsed->points, 4096u);
  EXPECT_EQ(parsed->state_text, delta.state_text);
}

TEST(DistProtocolTest, AckRoundTrip) {
  AckMessage ack;
  ack.leaf_id = 2;
  ack.seq = 9;
  const auto parsed = ParseAck(EncodeAck(ack));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->leaf_id, 2u);
  EXPECT_EQ(parsed->seq, 9u);
}

TEST(DistProtocolTest, ParsersRejectHostileInput) {
  EXPECT_FALSE(ParseHello("").has_value());
  EXPECT_FALSE(ParseHello("uhello").has_value());
  EXPECT_FALSE(ParseHello("uhello 99 0 2").has_value());  // bad version
  EXPECT_FALSE(ParseHello("udelta 1 0 2").has_value());   // wrong keyword
  EXPECT_FALSE(ParseHello("uhello 1 x 2").has_value());

  EXPECT_FALSE(ParseDelta("").has_value());
  EXPECT_FALSE(ParseDelta("udelta 1 0 0 100\nstate").has_value());  // seq 0
  EXPECT_FALSE(ParseDelta("udelta 1 0 1 100\n").has_value());  // empty state
  const std::uint64_t huge_leaf = kMaxLeafId + 1;
  EXPECT_FALSE(ParseDelta("udelta 1 " + std::to_string(huge_leaf) +
                          " 1 100\nstate")
                   .has_value());

  EXPECT_FALSE(ParseAck("").has_value());
  EXPECT_FALSE(ParseAck("uack 1 2").has_value());
  EXPECT_FALSE(ParseAck("uack 2 1 1").has_value());  // future version
}

/// Engine configuration shared by every leaf / shard / reference run.
core::EngineOptions LeafEngineOptions() {
  core::EngineOptions options;
  options.umicro.num_micro_clusters = 40;
  options.snapshot.snapshot_every = 0;  // snapshots orthogonal here
  return options;
}

AggregatorOptions MatchingAggregatorOptions(std::size_t dimensions) {
  const core::EngineOptions engine = LeafEngineOptions();
  AggregatorOptions options;
  options.dimensions = dimensions;
  options.dimension_threshold = engine.umicro.dimension_threshold;
  options.global_budget = engine.umicro.num_micro_clusters;
  options.snapshot = engine.snapshot;
  return options;
}

/// Canonical dump used for every bit-identity comparison.
std::string Canonical(const std::vector<core::MicroCluster>& clusters,
                      std::size_t dimensions) {
  return io::MicroClustersToString(clusters, dimensions);
}

/// Runs one leaf: a sequential engine over the round-robin substream
/// `offset mod stride`, shipping a delta every `delta_every` points and
/// once at the end.
void RunLeaf(const stream::Dataset& dataset, std::uint64_t leaf_id,
             std::size_t stride, std::uint16_t port,
             std::size_t delta_every) {
  core::UMicroEngine engine(dataset.dimensions(), LeafEngineOptions());
  LeafShipperOptions options;
  options.leaf_id = leaf_id;
  options.dimensions = dataset.dimensions();
  LeafShipper shipper({"127.0.0.1", port}, options);
  std::uint64_t done = 0;
  for (std::size_t i = 0; i < dataset.points().size(); ++i) {
    if (i % stride != leaf_id) continue;
    engine.Process(dataset.points()[i]);
    ++done;
    if (delta_every > 0 && done % delta_every == 0) {
      ASSERT_TRUE(shipper.ShipState(
          done, done, io::EngineStateToString(engine.ExportEngineState())));
    }
  }
  engine.Flush();
  ASSERT_TRUE(shipper.ShipState(
      done, done, io::EngineStateToString(engine.ExportEngineState())));
  shipper.Finish();
}

/// The in-process reference: the sharded engine over the same stream,
/// same round-robin partitioning, same budgets.
std::vector<core::MicroCluster> ShardedReference(
    const stream::Dataset& dataset, std::size_t shards) {
  parallel::ShardedUMicroOptions options;
  options.umicro = LeafEngineOptions().umicro;
  options.num_shards = shards;
  options.producer_batch = 1;  // per-point round robin, like the leaves
  options.merge_every = 0;
  parallel::ShardedUMicro sharded(dataset.dimensions(), options);
  for (const auto& point : dataset.points()) sharded.Process(point);
  sharded.Flush();
  return sharded.GlobalClusters();
}

TEST(DistTopologyTest, TwoLeavesMatchShardedReferenceBitForBit) {
  const stream::Dataset dataset =
      synth::MakeSynDriftWorkload(4000, 0.5, 21);
  const std::size_t total = dataset.points().size();

  Aggregator aggregator(MatchingAggregatorOptions(dataset.dimensions()));
  ASSERT_TRUE(aggregator.Start());

  std::thread leaf0([&] {
    RunLeaf(dataset, 0, 2, aggregator.port(), 512);
  });
  std::thread leaf1([&] {
    RunLeaf(dataset, 1, 2, aggregator.port(), 512);
  });
  leaf0.join();
  leaf1.join();
  ASSERT_TRUE(aggregator.WaitForPoints(total, 10000));

  const std::string reference =
      Canonical(ShardedReference(dataset, 2), dataset.dimensions());
  const std::string merged =
      Canonical(aggregator.MergedClusters(), dataset.dimensions());
  EXPECT_EQ(merged, reference);
  EXPECT_EQ(aggregator.leaves_known(), 2u);
  aggregator.Stop();
}

TEST(DistTopologyTest, ReplayedDeltasAreAckedButNotReapplied) {
  const stream::Dataset dataset = synth::MakeSynDriftWorkload(600, 0.5, 5);
  Aggregator aggregator(MatchingAggregatorOptions(dataset.dimensions()));
  ASSERT_TRUE(aggregator.Start());

  core::UMicroEngine engine(dataset.dimensions(), LeafEngineOptions());
  for (const auto& point : dataset.points()) engine.Process(point);
  engine.Flush();
  const std::string state =
      io::EngineStateToString(engine.ExportEngineState());

  LeafShipperOptions options;
  options.leaf_id = 0;
  options.dimensions = dataset.dimensions();
  LeafShipper shipper({"127.0.0.1", aggregator.port()}, options);
  ASSERT_TRUE(shipper.ShipState(600, 600, state));
  const std::uint64_t applied_once = aggregator.deltas_applied();
  const std::string merged_once =
      Canonical(aggregator.MergedClusters(), dataset.dimensions());

  // Same delta again (lost-ACK replay), then a stale lower sequence
  // (restarted leaf catching up): both acked, neither applied.
  ASSERT_TRUE(shipper.ShipState(600, 600, state));
  ASSERT_TRUE(shipper.ShipState(600, 600, state));
  EXPECT_EQ(aggregator.deltas_applied(), applied_once);
  EXPECT_EQ(Canonical(aggregator.MergedClusters(), dataset.dimensions()),
            merged_once);
  EXPECT_EQ(shipper.deltas_acked(), 3u);
  shipper.Finish();
  aggregator.Stop();
}

TEST(DistTopologyTest, LeafCrashAndCheckpointRestartConverges) {
  const stream::Dataset dataset =
      synth::MakeSynDriftWorkload(3000, 0.5, 33);
  const std::size_t total = dataset.points().size();
  const std::size_t dims = dataset.dimensions();

  Aggregator aggregator(MatchingAggregatorOptions(dims));
  ASSERT_TRUE(aggregator.Start());

  // Leaf 1 runs to completion normally.
  std::thread leaf1([&] { RunLeaf(dataset, 1, 2, aggregator.port(), 400); });

  // Leaf 0 "crashes" after 1000 of its points; its durable checkpoint
  // is the delta it shipped at point 800 (the crash loses points
  // 801..1000, exactly like a real process kill between checkpoints).
  std::string checkpoint;
  {
    core::UMicroEngine engine(dims, LeafEngineOptions());
    LeafShipperOptions options;
    options.leaf_id = 0;
    options.dimensions = dims;
    LeafShipper shipper({"127.0.0.1", aggregator.port()}, options);
    std::uint64_t done = 0;
    for (std::size_t i = 0; i < dataset.points().size() && done < 1000;
         ++i) {
      if (i % 2 != 0) continue;
      engine.Process(dataset.points()[i]);
      ++done;
      if (done % 400 == 0) {
        checkpoint = io::EngineStateToString(engine.ExportEngineState());
        ASSERT_TRUE(shipper.ShipState(done, done, checkpoint));
      }
    }
    // Destructors simulate the kill: no Finish(), no final delta.
  }

  // Restart: restore from the checkpoint, replay the substream from the
  // recovery point (the upstream source replays what wasn't durable),
  // re-ship -- the first delta repeats an already-applied sequence and
  // is deduplicated.
  {
    const std::optional<core::EngineState> restored =
        io::ParseEngineState(checkpoint);
    ASSERT_TRUE(restored.has_value());
    core::UMicroEngine engine(dims, LeafEngineOptions());
    ASSERT_TRUE(engine.RestoreEngineState(*restored));

    LeafShipperOptions options;
    options.leaf_id = 0;
    options.dimensions = dims;
    LeafShipper shipper({"127.0.0.1", aggregator.port()}, options);
    std::uint64_t done = 800;  // recovered progress
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < dataset.points().size(); ++i) {
      if (i % 2 != 0) continue;
      ++seen;
      if (seen <= 800) continue;  // already inside the checkpoint
      engine.Process(dataset.points()[i]);
      ++done;
      if (done % 400 == 0) {
        ASSERT_TRUE(shipper.ShipState(
            done, done,
            io::EngineStateToString(engine.ExportEngineState())));
      }
    }
    engine.Flush();
    ASSERT_TRUE(shipper.ShipState(
        done, done, io::EngineStateToString(engine.ExportEngineState())));
    shipper.Finish();
  }

  leaf1.join();
  ASSERT_TRUE(aggregator.WaitForPoints(total, 10000));

  const std::string reference =
      Canonical(ShardedReference(dataset, 2), dims);
  EXPECT_EQ(Canonical(aggregator.MergedClusters(), dims), reference);
  aggregator.Stop();
}

TEST(DistTopologyTest, MuteAggregatorTriggersBoundedResends) {
  // A listener that accepts and reads but never acks: the shipper must
  // time out, re-send, and eventually give up -- never hang.
  auto listener = net::TcpListener::Listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.has_value());
  std::atomic<bool> stop{false};
  std::thread mute([&] {
    std::vector<net::Socket> sockets;
    while (!stop.load()) {
      if (auto socket = listener->Accept(100)) {
        sockets.push_back(std::move(*socket));
      }
      for (auto& socket : sockets) {
        char sink[4096];
        bool timed_out = false;
        socket.RecvSome(sink, sizeof(sink), 10, &timed_out);
      }
    }
  });

  LeafShipperOptions options;
  options.leaf_id = 0;
  options.dimensions = 2;
  options.ack_timeout_ms = 200;
  options.max_attempts = 3;
  LeafShipper shipper({"127.0.0.1", listener->port()}, options);
  EXPECT_FALSE(shipper.ShipState(1, 100, "ucheckpoint 2 bogus\n"));
  EXPECT_EQ(shipper.resends(), 2u);  // attempts 2 and 3
  shipper.Stop();
  stop.store(true);
  mute.join();
  listener->Close();
}

TEST(DistTopologyTest, RemoteQueriesMatchInProcessBroker) {
  const stream::Dataset dataset =
      synth::MakeSynDriftWorkload(1500, 0.5, 77);
  Aggregator aggregator(MatchingAggregatorOptions(dataset.dimensions()));
  ASSERT_TRUE(aggregator.Start());

  std::thread leaf0([&] { RunLeaf(dataset, 0, 2, aggregator.port(), 0); });
  std::thread leaf1([&] { RunLeaf(dataset, 1, 2, aggregator.port(), 0); });
  leaf0.join();
  leaf1.join();
  ASSERT_TRUE(
      aggregator.WaitForPoints(dataset.points().size(), 10000));

  std::ostringstream request;
  request << "STATS\n";
  request << "NEAREST";
  for (std::size_t j = 0; j < dataset.dimensions(); ++j) request << " 0";
  request << "\nCLUSTER 500 3\nQUIT\n";

  // In-process reference answer through the identical line protocol.
  std::istringstream local_in(request.str());
  std::ostringstream local_out;
  serve::ServeLineProtocol(aggregator.broker(), local_in, local_out);

  // Same bytes over a real socket through the aggregator's query plane.
  auto socket = net::TcpConnect({"127.0.0.1", aggregator.port()}, 2000);
  ASSERT_TRUE(socket.has_value());
  net::SocketStream remote(&*socket, 5000);
  remote << request.str();
  remote.flush();
  std::ostringstream remote_out;
  remote_out << remote.rdbuf();

  // The served=/queue= fields of STATS are live monitoring counters of
  // the shared broker, so they depend on which pass ran first; every
  // semantic answer must still match byte for byte.
  const auto normalized = [](const std::string& text) {
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t served = line.find(" served=");
      if (line.rfind("OK STATS", 0) == 0 && served != std::string::npos) {
        line.resize(served);
      }
      out << line << "\n";
    }
    return out.str();
  };
  EXPECT_EQ(normalized(remote_out.str()), normalized(local_out.str()));
  aggregator.Stop();
}

}  // namespace
}  // namespace umicro::dist
