// Tests for util::CsvWriter.

#include "util/csv_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace umicro::util {
namespace {

TEST(CsvWriterTest, HeaderOnly) {
  CsvWriter writer({"a", "b"});
  EXPECT_EQ(writer.ToString(), "a,b\n");
  EXPECT_EQ(writer.row_count(), 0u);
}

TEST(CsvWriterTest, StringRows) {
  CsvWriter writer({"name", "value"});
  writer.AddRow(std::vector<std::string>{"x", "1"});
  writer.AddRow(std::vector<std::string>{"y", "2"});
  EXPECT_EQ(writer.ToString(), "name,value\nx,1\ny,2\n");
  EXPECT_EQ(writer.row_count(), 2u);
}

TEST(CsvWriterTest, DoubleRowsFormatted) {
  CsvWriter writer({"a", "b"});
  writer.AddRow(std::vector<double>{1.5, 0.25});
  EXPECT_EQ(writer.ToString(), "a,b\n1.5,0.25\n");
}

TEST(CsvWriterTest, EscapesSpecialCells) {
  EXPECT_EQ(EscapeCsvCell("plain"), "plain");
  EXPECT_EQ(EscapeCsvCell("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvCell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(EscapeCsvCell("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, EscapedCellsInTable) {
  CsvWriter writer({"k", "v"});
  writer.AddRow(std::vector<std::string>{"a,b", "c"});
  EXPECT_EQ(writer.ToString(), "k,v\n\"a,b\",c\n");
}

TEST(CsvWriterTest, WriteFileRoundTrips) {
  CsvWriter writer({"x"});
  writer.AddRow(std::vector<std::string>{"42"});
  const std::string path = testing::TempDir() + "/csv_writer_test.csv";
  ASSERT_TRUE(writer.WriteFile(path));
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), "x\n42\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteFileFailsOnBadPath) {
  CsvWriter writer({"x"});
  EXPECT_FALSE(writer.WriteFile("/nonexistent-dir-xyz/out.csv"));
}

}  // namespace
}  // namespace umicro::util
