// Tests for util math helpers.

#include "util/math_utils.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace umicro::util {
namespace {

TEST(WelfordTest, EmptyIsZero) {
  WelfordAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.PopulationVariance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.SampleVariance(), 0.0);
}

TEST(WelfordTest, SingleValue) {
  WelfordAccumulator acc;
  acc.Add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.PopulationVariance(), 0.0);
}

TEST(WelfordTest, KnownSmallSequence) {
  WelfordAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.PopulationVariance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.PopulationStddev(), 2.0);
  EXPECT_NEAR(acc.SampleVariance(), 32.0 / 7.0, 1e-12);
}

TEST(WelfordTest, MergeEqualsSequential) {
  Rng rng(3);
  WelfordAccumulator all;
  WelfordAccumulator left;
  WelfordAccumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(2.0, 3.0);
    all.Add(v);
    (i < 400 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-10);
  EXPECT_NEAR(left.PopulationVariance(), all.PopulationVariance(), 1e-9);
}

TEST(WelfordTest, MergeWithEmptySides) {
  WelfordAccumulator a;
  WelfordAccumulator b;
  a.Add(1.0);
  a.Add(3.0);
  WelfordAccumulator a_copy = a;
  a.Merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  b.Merge(a_copy);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(WelfordTest, NumericallyStableForLargeOffsets) {
  WelfordAccumulator acc;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.Add(v);
  EXPECT_NEAR(acc.Mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.PopulationVariance(), 2.0 / 3.0, 1e-6);
}

TEST(InverseNormalCdfTest, MedianIsZero) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.9986501019683699), 3.0, 1e-6);
}

TEST(InverseNormalCdfTest, Symmetry) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(InverseNormalCdf(p), -InverseNormalCdf(1.0 - p), 1e-8);
  }
}

TEST(InverseNormalCdfTest, RoundTripsThroughErfc) {
  for (double p : {0.001, 0.05, 0.3, 0.7, 0.95, 0.999}) {
    const double x = InverseNormalCdf(p);
    const double back = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(back, p, 1e-9);
  }
}

TEST(RegularizedGammaPTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(1.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 1e6), 1.0, 1e-12);
}

TEST(RegularizedGammaPTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaPTest, ChiSquareQuantiles) {
  // Chi-square CDF with k dof = P(k/2, x/2); standard table values.
  EXPECT_NEAR(RegularizedGammaP(0.5, 3.841 / 2.0), 0.95, 1e-3);   // k=1
  EXPECT_NEAR(RegularizedGammaP(1.0, 5.991 / 2.0), 0.95, 1e-3);   // k=2
  EXPECT_NEAR(RegularizedGammaP(2.5, 11.070 / 2.0), 0.95, 1e-3);  // k=5
  EXPECT_NEAR(RegularizedGammaP(5.0, 18.307 / 2.0), 0.95, 1e-3);  // k=10
}

TEST(RegularizedGammaPTest, MonotoneInX) {
  double previous = -1.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double p = RegularizedGammaP(2.3, x);
    EXPECT_GE(p, previous);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
}

TEST(DistanceTest, SquaredDistanceBasic) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 6.0, 3.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(DistanceTest, ZeroForIdenticalVectors) {
  const std::vector<double> a = {1.5, -2.5};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a), 0.0);
}

TEST(ClampTest, Clamps) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace umicro::util
