// Tests for the bounded backpressure queue of the sharded pipeline.

#include "parallel/bounded_queue.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace umicro::parallel {
namespace {

TEST(BoundedQueueTest, FifoOrderAcrossWraparound) {
  BoundedQueue<int> queue(4, BackpressurePolicy::kBlock);
  // Push/pop more than capacity items so head wraps several times.
  int next_pushed = 0;
  int next_popped = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.Push(next_pushed++));
    int out = -1;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(queue.Pop(&out));
      EXPECT_EQ(out, next_popped++);
    }
  }
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.stats().pushed, 15u);
  EXPECT_EQ(queue.stats().popped, 15u);
}

TEST(BoundedQueueTest, CapacityIsEnforced) {
  BoundedQueue<int> queue(3, BackpressurePolicy::kDropNewest);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_FALSE(queue.Push(99));
  EXPECT_EQ(queue.size(), 3u);
}

TEST(BoundedQueueTest, DropOldestEvictsHeadAndReportsIt) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kDropOldest);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  std::optional<int> displaced;
  ASSERT_TRUE(queue.Push(3, &displaced));
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(*displaced, 1);
  EXPECT_EQ(queue.stats().dropped_oldest, 1u);
  EXPECT_EQ(queue.stats().dropped_newest, 0u);

  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(BoundedQueueTest, DropNewestRejectsAndCounts) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kDropNewest);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  std::optional<int> displaced;
  EXPECT_FALSE(queue.Push(3, &displaced));
  EXPECT_FALSE(displaced.has_value());
  EXPECT_EQ(queue.stats().dropped_newest, 1u);
  EXPECT_EQ(queue.stats().dropped_oldest, 0u);

  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, HighWaterMarkTracksPeakOccupancy) {
  BoundedQueue<int> queue(8, BackpressurePolicy::kBlock);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(i));
  int out = 0;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Pop(&out));
  ASSERT_TRUE(queue.Push(42));
  EXPECT_EQ(queue.stats().high_water, 5u);
}

TEST(BoundedQueueTest, BlockPolicyWaitsForConsumer) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));

  std::atomic<bool> third_push_done{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(3));  // must block until the pop below
    third_push_done = true;
  });
  // Give the producer a chance to reach the blocking push. If it did not
  // actually block this is a (benign) race, but the ordering assertions
  // below hold either way.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(third_push_done.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(queue.stats().dropped_oldest + queue.stats().dropped_newest, 0u);
}

TEST(BoundedQueueTest, CloseUnblocksConsumersAndRejectsProducers) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kBlock);
  std::atomic<bool> pop_returned_false{false};
  std::thread consumer([&] {
    int out = -1;
    pop_returned_false = !queue.Pop(&out);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_TRUE(pop_returned_false.load());
  EXPECT_FALSE(queue.Push(1));
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueueTest, CloseUnderPressureCountsEachRejectionOnce) {
  // Several producers blocked on a full kBlock queue when Close() lands:
  // every blocked Push must return false and be counted exactly once in
  // rejected_closed, and nothing may be lost or double-counted.
  BoundedQueue<int> queue(2, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(0));
  ASSERT_TRUE(queue.Push(1));  // queue now full

  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&queue, &rejected, &accepted, i] {
      if (queue.Push(100 + i)) {
        ++accepted;
      } else {
        ++rejected;
      }
    });
  }
  // Let the producers reach the blocking wait, then close under pressure.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  for (auto& producer : producers) producer.join();

  EXPECT_EQ(accepted.load(), 0);
  EXPECT_EQ(rejected.load(), kProducers);
  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.rejected_closed, static_cast<std::size_t>(kProducers));
  // A late push on the already-closed queue lands in the same count.
  EXPECT_FALSE(queue.Push(999));
  EXPECT_EQ(queue.stats().rejected_closed,
            static_cast<std::size_t>(kProducers) + 1);
  // The queued items survived the close and drain in order.
  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_EQ(queue.stats().pushed, 2u);
  EXPECT_EQ(queue.stats().popped, 2u);
}

TEST(BoundedQueueTest, CloseDrainsQueuedItemsFirst) {
  BoundedQueue<int> queue(4, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(7));
  ASSERT_TRUE(queue.Push(8));
  queue.Close();
  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 7);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BoundedQueueTest, TwoThreadStressDeliversEverythingInOrder) {
  constexpr int kItems = 20000;
  BoundedQueue<int> queue(64, BackpressurePolicy::kBlock);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.Push(i));
    queue.Close();
  });
  std::int64_t sum = 0;
  int expected = 0;
  int out = -1;
  bool ordered = true;
  while (queue.Pop(&out)) {
    ordered = ordered && (out == expected++);
    sum += out;
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected, kItems);
  EXPECT_EQ(sum, static_cast<std::int64_t>(kItems) * (kItems - 1) / 2);
  EXPECT_EQ(queue.stats().dropped_oldest + queue.stats().dropped_newest, 0u);
}

TEST(BoundedQueueTest, MultiProducerStressLosesNothingUnderBlock) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> queue(32, BackpressurePolicy::kBlock);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen_count(kProducers * kPerProducer, 0);
  std::thread consumer([&] {
    int out = -1;
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
      ASSERT_TRUE(queue.Pop(&out));
      ++seen_count[out];
    }
  });
  for (auto& thread : producers) thread.join();
  consumer.join();
  for (int count : seen_count) EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace umicro::parallel
